//! Quickstart: profile retention-weak rows with Row Scout and use the
//! retention side channel to discover which `REF` commands perform
//! TRR-induced refreshes on a simulated DDR4 module.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dram_sim::Bank;
use softmc::MemoryController;
use utrr::utrr_core::reverse::{discover_trr_ref_ratio, ReverseOptions};
use utrr::utrr_core::schedule::learn_group_schedules;
use utrr::utrr_core::{RowGroupLayout, RowScout, ScoutConfig, TrrAnalyzer};
use utrr::utrr_modules::by_id;

fn main() {
    // 1. Pick a module from the paper's Table 1 and build it (scaled to
    //    2048 rows/bank for speed — the TRR engine is the real thing).
    let spec = by_id("A5").expect("A5 is in the catalog");
    println!(
        "module {}: vendor {}, TRR version {} (ground truth hidden from U-TRR)",
        spec.id, spec.vendor, spec.trr_version
    );
    let mut mc = MemoryController::new(spec.build_scaled(2_048, 42));
    let bank = Bank::new(0);

    // 2. Row Scout: find row groups in the R-A-R layout (two
    //    retention-profiled rows sandwiching an aggressor position) with
    //    matching, consistent retention times.
    let scout =
        RowScout::new(ScoutConfig::new(bank, 2_048, RowGroupLayout::single_aggressor_pair(), 5));
    let groups = scout.scan(&mut mc).expect("the bank has profilable rows");
    for g in &groups {
        println!(
            "row group at {}: rows {:?}, retention bucket {}",
            g.base,
            g.rows.iter().map(|r| r.row.index()).collect::<Vec<_>>(),
            g.retention
        );
    }

    // 3. Learn each profiled row's regular-refresh schedule so periodic
    //    refreshes are never mistaken for TRR activity.
    let mut analyzer = TrrAnalyzer::new();
    for g in &groups {
        learn_group_schedules(&mut mc, bank, g, &mut analyzer).expect("schedules learnable");
    }
    let schedule = analyzer.schedule(groups[0].rows[0].row).expect("just learned");
    println!(
        "regular refresh: every {} REFs (the paper's Observation A8 finds 3758 on vendor A)",
        schedule.period
    );

    // 4. TRR Analyzer: hammer the aggressors, issue one REF per
    //    iteration, and watch which REFs rescue the victims — the
    //    TRR-to-REF ratio.
    let opts = ReverseOptions::default();
    let ratio = discover_trr_ref_ratio(&mut mc, &analyzer, bank, &groups, &opts)
        .expect("experiments run")
        .expect("this module has TRR");
    println!("TRR-capable REF every {ratio} REFs (Observation A1: every 9th)");
}
