//! Capture and replay DDR command traces: build the vendor-A custom
//! pattern as an explicit command trace, serialize it to the
//! line-oriented SoftMC-style text format, parse it back, and replay it
//! on a fresh module — demonstrating that the whole attack is a
//! deterministic, auditable artifact.
//!
//! ```sh
//! cargo run --release --example trace_capture
//! ```

use dram_sim::{Bank, DataPattern, Nanos, RowAddr};
use softmc::trace::CommandTrace;
use utrr::utrr_modules::by_id;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = by_id("A5").expect("catalog module");
    let bank = Bank::new(0);
    let victim = RowAddr::new(512);
    let (a0, a1) = (victim.minus(1), victim.plus(1));

    // Author the §7.1 vendor-A pattern as an explicit trace: victim
    // init, then per REF interval 24 cascaded hammers per aggressor
    // followed by 16 dummy-row insertions, closed by the REF.
    let mut trace = CommandTrace::new();
    let mut t = Nanos::ZERO;
    trace.record_act(t, bank, victim);
    trace.record_write(t, bank, DataPattern::RowStripe);
    trace.record_pre(t, bank);
    t += Nanos::from_us(1);
    let t_refi = Nanos::from_ns(7_800);
    for interval in 0..4_000u64 {
        trace.record_hammer(t, bank, a0, 24);
        trace.record_hammer(t + Nanos::from_ns(1_200), bank, a1, 24);
        for d in 0..16u32 {
            trace.record_hammer(
                t + Nanos::from_ns(2_400 + d as u64 * 300),
                bank,
                RowAddr::new(700 + d * 4),
                6,
            );
        }
        trace.record_ref(t + Nanos::from_ns(7_400));
        t += t_refi;
        let _ = interval;
    }
    trace.record_act(t, bank, victim);
    trace.record_read(t, bank);
    trace.record_pre(t, bank);

    // Serialize → parse → replay on a fresh module.
    let text = trace.to_text();
    println!("trace: {} commands, {} KiB of text", trace.len(), text.len() / 1024);
    println!("first lines:");
    for line in text.lines().take(6) {
        println!("  {line}");
    }
    let parsed = CommandTrace::parse(&text)?;
    assert_eq!(parsed, trace);

    let mut module = spec.build_scaled(2_048, 5);
    parsed.replay(&mut module)?;
    let readout = module.read_row(bank, victim)?;
    println!(
        "\nreplayed {} REFs against {} ({}): victim row {} shows {} bit flips",
        module.ref_count(),
        spec.id,
        spec.trr_version,
        victim.index(),
        readout.flip_count()
    );
    assert!(!readout.is_clean(), "the traced attack must flip the victim");
    Ok(())
}
