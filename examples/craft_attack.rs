//! §7: baselines vs the U-TRR-derived custom patterns. Conventional
//! single-/double-/many-sided hammering achieves nothing against the
//! planted TRR engines (footnote 18), while each vendor's custom pattern
//! flips bits across the bank.
//!
//! ```sh
//! cargo run --release --example craft_attack
//! ```

use utrr::attacks::baseline::{DoubleSided, ManySided, SingleSided};
use utrr::attacks::custom;
use utrr::attacks::eval::{sweep_bank, EvalConfig};
use utrr::attacks::AccessPattern;
use utrr::utrr_modules::by_id;

fn main() {
    let config = EvalConfig::quick(32);
    println!(
        "{:<8} {:<10} {:<18} {:>12} {:>14} {:>16}",
        "module", "version", "pattern", "vulnerable", "max flips/row", "flips/word max"
    );
    for id in ["A5", "B0", "C9"] {
        let spec = by_id(id).expect("catalog module");
        let custom_pattern = custom::pattern_for(&spec);
        let patterns: Vec<(&str, Box<dyn AccessPattern>)> = vec![
            ("single-sided", Box::new(SingleSided::max_rate())),
            ("double-sided", Box::new(DoubleSided::max_rate())),
            ("many-sided (9)", Box::new(ManySided::nine_sided())),
            ("custom (U-TRR)", custom_pattern),
        ];
        for (label, pattern) in &patterns {
            let sweep = sweep_bank(&spec, pattern.as_ref(), &config);
            println!(
                "{:<8} {:<10} {:<18} {:>11.1}% {:>14} {:>16}",
                spec.id,
                spec.trr_version,
                label,
                sweep.vulnerable_pct(),
                sweep.max_flips_per_row(),
                sweep.max_flips_per_dataword(),
            );
        }
        println!();
    }
    println!("(paper §7.3: the custom patterns flip bits on all 45 modules; conventional");
    println!(" patterns flip none — the TRR engines absorb them.)");
}
