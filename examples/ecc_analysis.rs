//! §7.4: does ECC save a system whose TRR has been circumvented?
//! Runs the custom pattern on a flip-heavy module, takes the measured
//! flips-per-8-byte-dataword distribution, and pushes it through SECDED,
//! Chipkill, and Reed-Solomon codes of increasing strength.
//!
//! ```sh
//! cargo run --release --example ecc_analysis
//! ```

use utrr::attacks::custom;
use utrr::attacks::eval::{sweep_bank, EvalConfig};
use utrr::ecc::{analyze, CodeKind};
use utrr::utrr_modules::by_id;

fn main() {
    // B7 is the paper's flip-density champion (31.14 max flips per row
    // per hammer).
    let spec = by_id("B7").expect("catalog module");
    let pattern = custom::pattern_for(&spec);
    let config = EvalConfig::quick(32);
    let sweep = sweep_bank(&spec, pattern.as_ref(), &config);

    println!(
        "module {}: {:.1}% rows vulnerable, up to {} flips per row",
        spec.id,
        sweep.vulnerable_pct(),
        sweep.max_flips_per_row()
    );
    let hist = sweep.dataword_histogram();
    println!("\nflips-per-8-byte-dataword distribution (Fig. 10 ingredient):");
    for &(k, n) in &hist {
        println!("  {k} flips: {n} datawords");
    }

    println!("\nECC outcomes over that distribution (§7.4):");
    println!("  {:<16} {:>10} {:>10} {:>8}  verdict", "code", "corrected", "detected", "silent");
    for code in [
        CodeKind::Secded,
        CodeKind::Chipkill,
        CodeKind::ReedSolomon { parity: 2 },
        CodeKind::ReedSolomon { parity: 4 },
        CodeKind::ReedSolomon { parity: 7 },
    ] {
        let report = analyze(code, &hist, 99);
        println!(
            "  {:<16} {:>10} {:>10} {:>8}  {}",
            code.to_string(),
            report.corrected,
            report.detected,
            report.silent,
            if report.fully_protects() { "protects" } else { "DEFEATED (silent corruption)" }
        );
    }
    let bound = utrr::ecc::rs_parity_needed(&hist);
    println!("\nminimum RS parity for *guaranteed* detection of this distribution: {bound:?}");
    println!("(the paper: SECDED and Chipkill cannot protect against ≥3 flips per word;");
    println!(" detecting the worst case needs a Reed-Solomon code with ≥7 parity symbols.)");
}
