//! Full §6 reverse engineering of one module per vendor: the mapping
//! probe (§5.3), Row Scout, schedule learning, and the complete
//! experiment suite — everything U-TRR infers purely through the DDR
//! command interface, compared against the planted ground truth.
//!
//! ```sh
//! cargo run --release --example reverse_engineer
//! ```

use dram_sim::{Bank, RowAddr};
use softmc::MemoryController;
use utrr::utrr_core::mapping_re::{candidate_mappings, detect_paired_rows, discover_mapping};
use utrr::utrr_modules::by_id;
use utrr_bench::reverse_engineer_module;

fn main() {
    for id in ["A0", "B7", "C7"] {
        let spec = by_id(id).expect("catalog module");
        println!(
            "== module {} ({} {}, manufactured {}) ==",
            spec.id, spec.vendor, spec.trr_version, spec.date
        );

        // §5.3: reverse engineer the logical→physical row mapping first.
        // A0 and B7 carry decoder scrambling; C7 uses paired rows.
        let mut mc = MemoryController::new(spec.build(3));
        let bank = Bank::new(0);
        // Plenty of probes (row strength varies hugely; many probes
        // come back inconclusive on strong parts), spread over the bank
        // and including block-boundary rows that discriminate mirror and
        // XOR decoders.
        let rows = mc.module().geometry().rows_per_bank;
        let probes: Vec<RowAddr> =
            (0..24u32).map(|i| RowAddr::new(640 + i * (rows - 1_280) / 24 + i % 8)).collect();
        // Probe hammer counts scale with the module's RowHammer
        // threshold: distance-1 neighbours must flip decisively.
        let paired_hammers = spec.hc_first * 16;
        let mapping_hammers = spec.hc_first * 16;
        let paired = detect_paired_rows(&mut mc, bank, &probes, paired_hammers)
            .expect("probe runs")
            .unwrap_or(false);
        println!(
            "  paired-row organization: {paired} (ground truth: {})",
            spec.topology() == dram_sim::Topology::Paired
        );
        if !paired {
            let mapping =
                discover_mapping(&mut mc, bank, &probes, &candidate_mappings(), mapping_hammers)
                    .expect("probe runs");
            println!("  discovered mapping: {mapping:?} (ground truth: {:?})", spec.mapping());
        }

        // §6: the full experiment suite on a scaled build.
        let outcome = reverse_engineer_module(&spec, 2_048, 7);
        println!(
            "  inferred: ratio 1/{}, {} neighbours refreshed, {:?}, per-bank {}",
            outcome.profile.trr_ref_ratio,
            outcome.profile.neighbors_refreshed,
            outcome.profile.detection,
            outcome.profile.per_bank,
        );
        println!(
            "  regular refresh period: {} REFs (ground truth {})",
            outcome.refresh_period,
            spec.refresh().period_refs,
        );
        println!(
            "  ground truth fully re-discovered: {}",
            if outcome.matches.all() { "yes" } else { "partially" }
        );
        println!();
    }
}
