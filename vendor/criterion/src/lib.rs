//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the slice of the criterion 0.5 API the workspace benches
//! compile against: [`Criterion`], [`criterion_group!`] /
//! [`criterion_main!`], benchmark groups, and [`Bencher::iter`] /
//! [`Bencher::iter_batched_ref`]. Instead of criterion's statistical
//! sampling it times each benchmark as the minimum over a handful of
//! timed runs and prints one line per benchmark — enough to compare
//! implementations by hand, not a substitute for real criterion.
//!
//! Runs are intentionally short (bounded iterations, no warm-up
//! schedule) so `cargo bench` finishes quickly in CI.

use std::time::{Duration, Instant};

/// How many timed runs each benchmark gets; the minimum is reported.
const RUNS: u32 = 5;

/// Iterations per timed run, scaled down if one run exceeds
/// [`TARGET_RUN_TIME`].
const START_ITERS: u64 = 16;

/// Soft cap on the time spent in a single timed run.
const TARGET_RUN_TIME: Duration = Duration::from_millis(200);

/// Top-level benchmark driver (criterion 0.5 subset).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string() }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, f);
        self
    }
}

/// A named group of benchmarks; results print as `group/id`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's run count is fixed.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Ends the group (no-op; results print as they complete).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; drives the timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the run's iteration budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` against a fresh `setup` value per iteration,
    /// passing it by mutable reference; setup time is excluded.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like [`Bencher::iter_batched_ref`] but passes the input by value.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Hint for how expensive per-iteration setup is (ignored by the stub).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: criterion would batch many per allocation.
    SmallInput,
    /// Large inputs: criterion would batch few per allocation.
    LargeInput,
    /// Each iteration gets exactly one input.
    PerIteration,
}

/// Re-export of `std::hint::black_box` under criterion's path.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn run_benchmark<F>(id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut iters = START_ITERS;
    let mut best = Duration::MAX;
    for _ in 0..RUNS {
        let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut bencher);
        if bencher.elapsed > Duration::ZERO {
            best = best.min(bencher.elapsed / iters as u32);
        }
        if bencher.elapsed > TARGET_RUN_TIME && iters > 1 {
            iters = (iters / 2).max(1);
        }
    }
    if best == Duration::MAX {
        best = Duration::ZERO;
    }
    println!("bench {id:<50} {:>12.3} µs/iter (min of {RUNS})", best.as_secs_f64() * 1e6);
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_nonzero_time() {
        let mut seen = 0u64;
        let mut bencher = Bencher { iters: 8, elapsed: Duration::ZERO };
        bencher.iter(|| {
            seen += 1;
            std::hint::black_box(seen)
        });
        assert_eq!(seen, 8);
    }

    #[test]
    fn iter_batched_ref_gets_fresh_input_each_iteration() {
        let mut bencher = Bencher { iters: 4, elapsed: Duration::ZERO };
        bencher.iter_batched_ref(
            || vec![0u8; 4],
            |v| {
                assert!(v.iter().all(|&b| b == 0));
                v[0] = 1;
            },
            BatchSize::SmallInput,
        );
    }

    #[test]
    fn groups_run_to_completion() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("stub");
        group.sample_size(10);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
