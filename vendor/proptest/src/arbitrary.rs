//! `any::<T>()` — canonical whole-domain strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u8_covers_extremes() {
        let mut rng = TestRng::new(9);
        let strat = any::<u8>();
        let mut lo = u8::MAX;
        let mut hi = u8::MIN;
        for _ in 0..4096 {
            let v = strat.generate(&mut rng);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 8 && hi > 247, "poor coverage: lo={lo} hi={hi}");
    }
}
