//! Collection strategies (`prop::collection::…`).

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A collection-size specification: an exact size or a range of sizes
/// (mirrors `proptest::collection::SizeRange`).
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi_inclusive - self.lo) as u64 + 1;
        self.lo + (rng.next_u64() % span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { lo: exact, hi_inclusive: exact }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange { lo: range.start, hi_inclusive: range.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        SizeRange { lo: *range.start(), hi_inclusive: *range.end() }
    }
}

/// A `Vec` of elements drawn from `element`, sized per `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let size = self.size.sample(rng);
        (0..size).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `HashSet` of distinct elements drawn from `element`, with the
/// target size sampled per `size`. If the element domain cannot supply
/// enough distinct values, the set is smaller — matching real
/// proptest's behaviour for tight domains.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy { element, size: size.into() }
}

/// See [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let size = self.size.sample(rng);
        let mut out = HashSet::with_capacity(size);
        // Bounded attempts so tiny domains terminate.
        for _ in 0..size.saturating_mul(16).max(64) {
            if out.len() >= size {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_stay_in_range() {
        let mut rng = TestRng::new(5);
        let strat = vec(0u8..255, 2..6);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn vec_exact_size_is_exact() {
        let mut rng = TestRng::new(7);
        let strat = vec(0u8..255, 12);
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut rng).len(), 12);
        }
    }

    #[test]
    fn hash_set_elements_are_distinct_and_bounded() {
        let mut rng = TestRng::new(6);
        let strat = hash_set(0usize..4, 0..4);
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!(s.len() < 4);
            assert!(s.iter().all(|&v| v < 4));
        }
    }
}
