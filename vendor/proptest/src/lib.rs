//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the slice of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_filter`, [`prop_oneof!`], [`strategy::Just`], [`arbitrary::any`],
//! integer-range strategies, and [`collection::vec`] /
//! [`collection::hash_set`].
//!
//! Semantics: each test runs `cases` random inputs (default 256,
//! configurable via [`test_runner::ProptestConfig::with_cases`] or the
//! `PROPTEST_CASES` environment variable). A failing case panics with the
//! generated inputs. Unlike real proptest there is **no shrinking** — the
//! reported counterexample is the raw generated value — and generation is
//! deterministic per test name unless `PROPTEST_SEED` overrides it.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirrors the `prop` module alias the real prelude exports
    /// (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { … } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands each `fn` item inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let strat = ($($strat,)+);
            runner.run_named(stringify!($name), &strat, |($($arg,)+)| {
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
                    stringify!($left), stringify!($right), left, right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`, both `{:?}`",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

/// Discards the current test case (does not count toward the case
/// budget) unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Chooses uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
