//! The case-running engine behind [`crate::proptest!`].

use std::fmt::Debug;

use crate::strategy::Strategy;

/// How many rejected cases ([`crate::prop_assume!`] / filter discards at
/// the runner level) are tolerated per test before giving up.
const MAX_GLOBAL_REJECTS: u32 = 65_536;

/// Deterministic splitmix64 generator driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Runner configuration (`proptest::test_runner::ProptestConfig` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many passing cases each test must accumulate.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case is outside the test's domain; generate a replacement.
    Reject(String),
    /// The property is violated; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// A [`TestCaseError::Fail`] with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A [`TestCaseError::Reject`] with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Drives one property test: generates inputs and checks the property.
#[derive(Debug, Clone)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner with the given config.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `test` against `config.cases` generated inputs, panicking on
    /// the first failing case with the generated input (no shrinking).
    ///
    /// Seeding is deterministic per `name` so reruns reproduce, unless
    /// the `PROPTEST_SEED` environment variable overrides the base seed.
    pub fn run_named<S, F>(&mut self, name: &str, strategy: &S, mut test: F)
    where
        S: Strategy,
        S::Value: Debug,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0xC0FF_EE00_D15E_A5E5u64);
        let mut rng = TestRng::new(base ^ fnv1a(name));

        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases {
            let input = strategy.generate(&mut rng);
            let shown = format!("{input:?}");
            match test(input) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(reason)) => {
                    rejected += 1;
                    if rejected > MAX_GLOBAL_REJECTS {
                        panic!(
                            "proptest {name}: too many rejected cases \
                             ({rejected}; last: {reason}); \
                             property checked on {passed} cases only"
                        );
                    }
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "proptest {name} failed after {passed} passing cases\n\
                         input: {shown}\n{message}"
                    );
                }
            }
        }
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1_0000_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(64));
        let mut seen = 0u32;
        runner.run_named("all_cases", &(0u32..100), |v| {
            assert!(v < 100);
            seen += 1;
            Ok(())
        });
        assert_eq!(seen, 64);
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics_with_input() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(64));
        runner.run_named("always_fails", &(0u32..100), |_| Err(TestCaseError::fail("nope")));
    }

    #[test]
    fn rejected_cases_do_not_count_toward_budget() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(32));
        let mut passed = 0u32;
        runner.run_named("rejects_odd", &(0u32..100), |v| {
            if v % 2 == 1 {
                return Err(TestCaseError::reject("odd"));
            }
            passed += 1;
            Ok(())
        });
        assert_eq!(passed, 32);
    }

    #[test]
    fn same_name_reproduces_same_inputs() {
        let collect = |label: &str| {
            let mut runner = TestRunner::new(ProptestConfig::with_cases(16));
            let mut values = Vec::new();
            runner.run_named(label, &(0u64..1 << 40), |v| {
                values.push(v);
                Ok(())
            });
            values
        };
        assert_eq!(collect("stable"), collect("stable"));
        assert_ne!(collect("stable"), collect("different"));
    }
}
