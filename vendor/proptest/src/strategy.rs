//! Value-generation strategies: the composable core of the stub.

use crate::test_runner::TestRng;

/// How many consecutive rejections a [`Strategy::prop_filter`] tolerates
/// before giving up on the whole test.
const MAX_FILTER_RETRIES: u32 = 10_000;

/// A recipe for generating random values of one type.
///
/// Mirrors `proptest::strategy::Strategy`, minus shrinking: `generate`
/// plays the role of `new_tree(…).current()`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Keeps only values accepted by the predicate. `whence` names the
    /// requirement in the panic raised if the predicate rejects
    /// everything.
    fn prop_filter<F>(self, whence: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, predicate }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Boxes a strategy; used by [`crate::prop_oneof!`] so every branch
/// unifies to the same type.
pub fn boxed<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
    Box::new(strategy)
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let value = self.inner.generate(rng);
            if (self.predicate)(&value) {
                return value;
            }
        }
        panic!("prop_filter gave up after {MAX_FILTER_RETRIES} rejections: {}", self.whence);
    }
}

/// Uniform choice among same-valued strategies ([`crate::prop_oneof!`]).
pub struct Union<V> {
    branches: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union of the given branches (at least one).
    pub fn new(branches: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        Union { branches }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() % self.branches.len() as u64) as usize;
        self.branches[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::new(1);
        let strat = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn filter_retries_until_accepted() {
        let mut rng = TestRng::new(2);
        let strat = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = TestRng::new(3);
        let strat = 1u8..=2;
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn union_covers_all_branches() {
        let mut rng = TestRng::new(4);
        let strat = Union::new(vec![boxed(Just(1u8)), boxed(Just(2u8)), boxed(Just(3u8))]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
