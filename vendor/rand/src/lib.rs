//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of the `rand 0.8` API it compiles against:
//! [`Rng`], [`SeedableRng`], [`rngs::StdRng`], and [`thread_rng`]. The
//! generator is the same splitmix64/xoshiro-style core the simulator
//! already uses for its physics derivation — deterministic, seedable,
//! and plenty for test workloads. This is **not** a cryptographic RNG.

/// Core random-number-generation trait (the `rand 0.8` subset).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random value of a supported primitive type
    /// (`rand 0.8` spells this `gen`, which is a reserved keyword in
    /// newer editions, so the stub uses `random`).
    fn random<T: Fill>(&mut self) -> T
    where
        Self: Sized,
    {
        T::fill(self)
    }

    /// A uniformly random value in `[range.start, range.end)`.
    fn gen_range<T: UniformSample>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Construction from a seed (the `rand 0.8` subset).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Fill {
    /// Draws one uniformly random value.
    fn fill<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_fill_int {
    ($($t:ty),*) => {$(
        impl Fill for $t {
            fn fill<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_fill_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Fill for bool {
    fn fill<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Fill for f64 {
    fn fill<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Types [`Rng::gen_range`] can produce.
pub trait UniformSample: Copy {
    /// Draws a uniformly random value in `[lo, hi)`.
    fn sample<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi - lo) as u64;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl UniformSample for $t {
            fn sample<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range requires a non-empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_uniform_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl UniformSample for f64 {
    fn sample<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic splitmix64-seeded xorshift generator standing in
    /// for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            Self::splitmix(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0xD6E8_FEB8_6659_FD93 }
        }
    }

    /// Stand-in for `rand::rngs::ThreadRng` (deterministic per handle).
    pub type ThreadRng = StdRng;
}

/// Returns a generator seeded from the current time — the closest
/// offline analogue of `rand::thread_rng`.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    SeedableRng::seed_from_u64(nanos)
}

/// `rand::prelude` subset.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{thread_rng, Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_generators_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let s: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&s));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..64).any(|_| rng.gen_bool(0.0)));
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
    }
}
