//! Facade crate for the U-TRR reproduction (Hassan et al., MICRO 2021).
//!
//! Re-exports every subsystem so examples and downstream users can depend
//! on a single crate:
//!
//! * [`dram_sim`] — the simulated DDR4 device (retention, VRT, RowHammer
//!   physics, address scrambling);
//! * [`trr`] — ground-truth in-DRAM TRR engines (counter-, sampler-, and
//!   window-based);
//! * [`softmc`] — the SoftMC-style command-level memory controller;
//! * [`utrr_core`] — the paper's contribution: Row Scout, TRR Analyzer,
//!   and the reverse-engineering experiment suite;
//! * [`utrr_modules`] — the Table-1 catalog of 45 simulated DIMMs;
//! * [`attacks`] — baseline and custom RowHammer access patterns plus the
//!   §7 evaluation harness;
//! * [`ecc`] — SECDED / Chipkill / Reed-Solomon models for the §7.4
//!   analysis.

pub use attacks;
pub use dram_sim;
pub use ecc;
pub use softmc;
pub use trr;
pub use utrr_core;
pub use utrr_modules;
