//! End-to-end pipeline tests spanning every crate: build a Table-1
//! module, reverse engineer its TRR through the command interface,
//! verify the custom attack defeats it while baselines do not, and push
//! the resulting flip distribution through the ECC models.

use utrr::attacks::baseline::DoubleSided;
use utrr::attacks::custom;
use utrr::attacks::eval::{sweep_bank, EvalConfig};
use utrr::ecc::{analyze, CodeKind};
use utrr::utrr_core::reverse::DetectionKind;
use utrr::utrr_modules::by_id;
use utrr_bench::reverse_engineer_module;

fn eval_config() -> EvalConfig {
    EvalConfig { sample_count: 16, ..EvalConfig::quick(16) }
}

#[test]
fn vendor_a_pipeline() {
    let spec = by_id("A5").unwrap();
    let outcome = reverse_engineer_module(&spec, 2_048, 7);
    assert!(outcome.matches.all(), "{:?}", outcome);
    assert!(matches!(
        outcome.profile.detection,
        DetectionKind::Counter { capacity: 16, counters_reset: true, persistent_entries: true }
    ));
    assert_eq!(outcome.refresh_period, 3_758, "Observation A8");

    let custom_sweep = sweep_bank(&spec, custom::pattern_for(&spec).as_ref(), &eval_config());
    assert!(custom_sweep.vulnerable_pct() > 90.0, "{}", custom_sweep.vulnerable_pct());
    let baseline = sweep_bank(&spec, &DoubleSided::max_rate(), &eval_config());
    assert_eq!(baseline.vulnerable_pct(), 0.0, "footnote 18");
}

#[test]
fn vendor_b_pipeline() {
    let spec = by_id("B0").unwrap();
    let outcome = reverse_engineer_module(&spec, 2_048, 7);
    assert!(outcome.matches.all(), "{:?}", outcome);
    assert!(matches!(
        outcome.profile.detection,
        DetectionKind::Sampler { shared_across_banks: true }
    ));
    assert_eq!(outcome.profile.trr_ref_ratio, 4, "Observation B1");

    let custom_sweep = sweep_bank(&spec, custom::pattern_for(&spec).as_ref(), &eval_config());
    assert!(custom_sweep.vulnerable_pct() > 90.0, "{}", custom_sweep.vulnerable_pct());
    let baseline = sweep_bank(&spec, &DoubleSided::max_rate(), &eval_config());
    assert_eq!(baseline.vulnerable_pct(), 0.0);
}

#[test]
fn vendor_c_pipeline() {
    let spec = by_id("C9").unwrap();
    let outcome = reverse_engineer_module(&spec, 2_048, 7);
    assert!(outcome.matches.all(), "{:?}", outcome);
    assert!(matches!(outcome.profile.detection, DetectionKind::Window { .. }));
    assert_eq!(outcome.profile.trr_ref_ratio, 9, "Observation C1 (C_TRR2)");

    let custom_sweep = sweep_bank(&spec, custom::pattern_for(&spec).as_ref(), &eval_config());
    assert!(custom_sweep.vulnerable_pct() > 85.0, "{}", custom_sweep.vulnerable_pct());
    let baseline = sweep_bank(&spec, &DoubleSided::max_rate(), &eval_config());
    assert_eq!(baseline.vulnerable_pct(), 0.0);
}

#[test]
fn flip_distribution_defeats_secded_but_not_rs7() {
    // §7.4 end to end: a flip-dense module's measured dataword histogram
    // breaks SECDED but not a 7-parity Reed-Solomon code.
    let spec = by_id("C9").unwrap();
    let sweep = sweep_bank(&spec, custom::pattern_for(&spec).as_ref(), &eval_config());
    let hist = sweep.dataword_histogram();
    assert!(
        hist.iter().any(|&(k, _)| k >= 3),
        "the custom pattern must produce ≥3-flip datawords: {hist:?}"
    );
    let secded = analyze(CodeKind::Secded, &hist, 1);
    assert!(!secded.fully_protects(), "{secded:?}");
    let rs7 = analyze(CodeKind::ReedSolomon { parity: 7 }, &hist, 2);
    assert!(rs7.fully_protects(), "{rs7:?}");
}

#[test]
fn every_module_falls_to_its_custom_pattern() {
    // The paper's headline §7.3 claim, scaled down: every one of the 45
    // modules shows bit flips under its vendor's custom pattern.
    let config = EvalConfig { sample_count: 8, windows: 2, ..EvalConfig::quick(8) };
    for spec in utrr::utrr_modules::catalog() {
        let sweep = sweep_bank(&spec, custom::pattern_for(&spec).as_ref(), &config);
        // Low-vulnerability parts (the paper's weakest is 1.0%) may
        // legitimately show nothing in an 8-position sample.
        assert!(
            sweep.vulnerable_pct() > 0.0 || spec.paper_vulnerable_pct.1 < 25.0,
            "{} must show bit flips (paper: {:?})",
            spec.id,
            spec.paper_vulnerable_pct
        );
    }
}
