//! The memory controller: high-level building blocks over raw DDR
//! commands.

use dram_sim::{Bank, DataPattern, DramError, Module, Nanos, RowAddr, RowReadout};

use crate::faults::{FaultInjector, WriteFault};

/// The order in which multiple aggressor rows are hammered (§5.2).
///
/// The paper: "interleaved hammering generally causes more bit flips (up
/// to four orders of magnitude) compared to cascaded hammering […] in
/// contrast, cascaded hammering is more effective at evading the TRR
/// mechanism. Therefore, it is critical to support both hammering modes."
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum HammerMode {
    /// Hammer each aggressor one activation at a time, round-robin, until
    /// every aggressor reaches its count.
    #[default]
    Interleaved,
    /// Hammer one aggressor to its full count before moving to the next.
    Cascaded,
}

/// A multi-aggressor hammer specification: per-aggressor counts and the
/// hammering mode (Requirement 1 of §5.1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HammerSpec {
    /// `(row, hammer count)` per aggressor, hammered in this order.
    pub aggressors: Vec<(RowAddr, u64)>,
    /// Interleaved or cascaded (§5.2).
    pub mode: HammerMode,
}

impl HammerSpec {
    /// A single-sided hammer of one aggressor.
    pub fn single_sided(aggressor: RowAddr, count: u64) -> Self {
        HammerSpec { aggressors: vec![(aggressor, count)], mode: HammerMode::Cascaded }
    }

    /// The classic double-sided pattern around `victim` (Fig. 2b):
    /// alternating activations of the two logical neighbours. Callers
    /// that know the physical mapping should pass physical neighbours
    /// through [`HammerSpec::interleaved_pair`] instead.
    pub fn double_sided(victim: RowAddr, count_per_aggressor: u64) -> Self {
        HammerSpec::interleaved_pair(victim.minus(1), victim.plus(1), count_per_aggressor)
    }

    /// Two aggressors hammered in interleaved mode, `count` times each.
    pub fn interleaved_pair(first: RowAddr, second: RowAddr, count: u64) -> Self {
        HammerSpec {
            aggressors: vec![(first, count), (second, count)],
            mode: HammerMode::Interleaved,
        }
    }

    /// Total number of activations the spec performs.
    pub fn total_hammers(&self) -> u64 {
        self.aggressors.iter().map(|&(_, n)| n).sum()
    }

    /// Sets the mode, builder-style.
    pub fn with_mode(mut self, mode: HammerMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Per-controller adaptive-recovery ladder state.
///
/// Every decision the recovery ladder makes (vote width, relocation
/// attempts, drift re-profiling, budget trips) must be a pure function
/// of this controller's own command history — never of a shared metrics
/// registry, whose counters interleave nondeterministically across
/// worker threads. The controller therefore carries the ladder state
/// itself; the `utrr_core` recovery policy reads and updates it, and
/// mirrors the totals into (commutative) registry counters for
/// reporting only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryLadder {
    /// Current majority-vote width (`0` = policy default of 3).
    pub vote_width: u8,
    /// Voted reads observed since the last widening step.
    pub voted_reads: u64,
    /// Vote disagreements observed since the last widening step.
    pub disagreements: u64,
    /// Times the vote width was widened (3→5, 5→7).
    pub vote_widenings: u64,
    /// Row Scout candidate windows relocated to fresh subarray regions.
    pub relocations: u64,
    /// Mid-run retention-drift re-profiles (margin ladder escalations).
    pub reprofiles: u64,
    /// Phases closed early by an ACT-budget circuit breaker.
    pub budget_trips: u64,
}

impl RecoveryLadder {
    /// Records one voted read and its disagreement outcome.
    pub fn record_vote(&mut self, disagreed: bool) {
        self.voted_reads += 1;
        self.disagreements += u64::from(disagreed);
    }

    /// Resets the disagreement-rate window (after a widening step).
    pub fn reset_vote_window(&mut self) {
        self.voted_reads = 0;
        self.disagreements = 0;
    }
}

/// A command-level memory controller driving one simulated module.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct MemoryController {
    module: Module,
    /// Optional fault-injection hook at the controller/device boundary.
    /// `None` (the default) keeps every code path bit-identical to a
    /// controller without the hook.
    faults: Option<Box<dyn FaultInjector>>,
    /// Adaptive-recovery ladder state (see [`RecoveryLadder`]).
    recovery: RecoveryLadder,
}

impl MemoryController {
    /// Takes ownership of a module. No refresh happens unless explicitly
    /// requested.
    pub fn new(module: Module) -> Self {
        MemoryController { module, faults: None, recovery: RecoveryLadder::default() }
    }

    /// A controller with a fault injector installed from the start.
    pub fn with_faults(module: Module, injector: Box<dyn FaultInjector>) -> Self {
        MemoryController { module, faults: Some(injector), recovery: RecoveryLadder::default() }
    }

    /// Installs (or, with `None`, removes) the fault injector.
    pub fn set_fault_injector(&mut self, injector: Option<Box<dyn FaultInjector>>) {
        self.faults = injector;
    }

    /// Whether a fault injector is installed. Robust callers use this to
    /// decide whether defensive re-reads are worth their device traffic:
    /// when `false`, the substrate is exact and extra verification would
    /// only perturb command-stream reproducibility.
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// The installed injector's [`FaultInjector::severity`], or `0` when
    /// no injector is installed. Recovery policies gate their escalating
    /// stages on `>= 2` so milder substrates keep exact command streams.
    pub fn fault_severity(&self) -> u8 {
        self.faults.as_ref().map_or(0, |f| f.severity())
    }

    /// The adaptive-recovery ladder state (read-only).
    pub fn recovery(&self) -> &RecoveryLadder {
        &self.recovery
    }

    /// The adaptive-recovery ladder state, for the recovery policy.
    pub fn recovery_mut(&mut self) -> &mut RecoveryLadder {
        &mut self.recovery
    }

    /// Runs `f` with the injector temporarily detached, so the hook can
    /// receive `&mut self.module` without aliasing the controller.
    fn with_fault_hook(&mut self, f: impl FnOnce(&mut dyn FaultInjector, &mut Module)) {
        if let Some(mut hook) = self.faults.take() {
            f(hook.as_mut(), &mut self.module);
            self.faults = Some(hook);
        }
    }

    /// Lets the injector evolve environmental conditions after a bulk
    /// time step.
    fn tick_faults(&mut self) {
        self.with_fault_hook(|hook, module| {
            let now = module.now();
            hook.on_tick(now, module);
        });
    }

    /// The underlying device (read-only).
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The underlying device. Escape hatch for raw command sequences.
    pub fn module_mut(&mut self) -> &mut Module {
        &mut self.module
    }

    /// Releases the device.
    pub fn into_module(self) -> Module {
        self.module
    }

    /// The metrics registry of the underlying device.
    pub fn registry(&self) -> &std::sync::Arc<obs::MetricsRegistry> {
        self.module.registry()
    }

    /// Replays a recorded trace onto the underlying device (see
    /// [`crate::CommandTrace::replay`]).
    ///
    /// # Errors
    ///
    /// Propagates device protocol errors.
    pub fn replay(&mut self, trace: &crate::CommandTrace) -> Result<(), DramError> {
        trace.replay(&mut self.module)
    }

    /// Current device time.
    pub fn now(&self) -> Nanos {
        self.module.now()
    }

    /// Writes `pattern` into a row (activate, write, precharge).
    ///
    /// # Errors
    ///
    /// Propagates protocol/addressing errors from the device.
    pub fn write_row(
        &mut self,
        bank: Bank,
        row: RowAddr,
        pattern: DataPattern,
    ) -> Result<(), DramError> {
        if let Some(mut hook) = self.faults.take() {
            let fate = hook.on_write(bank, row, &pattern, self.module.now());
            self.faults = Some(hook);
            return match fate {
                WriteFault::None => self.module.write_row(bank, row, pattern),
                WriteFault::Dropped => Ok(()),
                WriteFault::Garbled(garbled) => self.module.write_row(bank, row, garbled),
            };
        }
        self.module.write_row(bank, row, pattern)
    }

    /// Writes `pattern` into every row in `rows`.
    ///
    /// # Errors
    ///
    /// Propagates protocol/addressing errors from the device.
    pub fn write_rows(
        &mut self,
        bank: Bank,
        rows: &[RowAddr],
        pattern: &DataPattern,
    ) -> Result<(), DramError> {
        for &row in rows {
            self.write_row(bank, row, pattern.clone())?;
        }
        Ok(())
    }

    /// Reads a row back (activate, read, precharge).
    ///
    /// # Errors
    ///
    /// Propagates protocol/addressing errors from the device.
    pub fn read_row(&mut self, bank: Bank, row: RowAddr) -> Result<RowReadout, DramError> {
        let mut readout = self.module.read_row(bank, row)?;
        if let Some(mut hook) = self.faults.take() {
            hook.on_read(bank, row, &mut readout, self.module.now());
            self.faults = Some(hook);
        }
        Ok(readout)
    }

    /// Reads every row in `rows`.
    ///
    /// # Errors
    ///
    /// Propagates protocol/addressing errors from the device.
    pub fn read_rows(
        &mut self,
        bank: Bank,
        rows: &[RowAddr],
    ) -> Result<Vec<RowReadout>, DramError> {
        rows.iter().map(|&row| self.read_row(bank, row)).collect()
    }

    /// Gives an installed fault injector a chance to evolve
    /// environmental conditions (retention drift, VRT bursts) at the
    /// current simulated time. Harnesses that drive the module directly
    /// (bypassing the controller's wait/refresh wrappers) call this once
    /// per interval; without an injector it is a no-op.
    pub fn tick_environment(&mut self) {
        self.tick_faults();
    }

    /// Lets time pass with refresh disabled (rows decay).
    pub fn wait_no_refresh(&mut self, duration: Nanos) {
        self.module.advance(duration);
        self.tick_faults();
    }

    /// Lets time pass while issuing `REF` at the default rate (one per
    /// `tREFI`), like a normal system would.
    pub fn wait_with_refresh(&mut self, duration: Nanos) {
        let t_refi = self.module.timings().t_refi;
        let refs = duration.as_ns() / t_refi.as_ns();
        self.module.refresh_burst_at_refi(refs);
        let remainder = duration - t_refi * refs;
        self.module.advance(remainder);
        self.tick_faults();
    }

    /// Issues `count` `REF` commands paced at the default `tREFI` rate
    /// (Requirement 3 of §5.1: flexible `REF` issuing).
    pub fn refresh(&mut self, count: u64) {
        self.module.refresh_burst_at_refi(count);
        self.tick_faults();
    }

    /// Executes a hammer specification against one bank (Requirements 1
    /// and 2 of §5.1).
    ///
    /// # Errors
    ///
    /// Propagates protocol/addressing errors from the device.
    pub fn hammer(&mut self, bank: Bank, spec: &HammerSpec) -> Result<(), DramError> {
        match spec.mode {
            HammerMode::Cascaded => {
                for &(row, count) in &spec.aggressors {
                    self.module.hammer(bank, row, count)?;
                }
            }
            HammerMode::Interleaved => self.hammer_interleaved(bank, &spec.aggressors)?,
        }
        Ok(())
    }

    /// Round-robin interleaved hammering with per-aggressor counts. The
    /// two-aggressor equal-count case uses the device's batched
    /// interleaved path; everything else replays activation by
    /// activation.
    fn hammer_interleaved(
        &mut self,
        bank: Bank,
        aggressors: &[(RowAddr, u64)],
    ) -> Result<(), DramError> {
        match aggressors {
            [] => Ok(()),
            [(row, count)] => self.module.hammer(bank, *row, *count),
            [(r1, c1), (r2, c2)] if c1 == c2 => self.module.hammer_pair(bank, *r1, *r2, *c1),
            _ => {
                let mut remaining: Vec<(RowAddr, u64)> = aggressors.to_vec();
                loop {
                    let mut any = false;
                    for (row, count) in &mut remaining {
                        if *count > 0 {
                            self.module.hammer(bank, *row, 1)?;
                            *count -= 1;
                            any = true;
                        }
                    }
                    if !any {
                        return Ok(());
                    }
                }
            }
        }
    }

    /// Picks `count` dummy rows in `bank` at physical distance of at
    /// least `min_distance` from every row in `avoid` (the paper enforces
    /// a minimum distance of 100 so dummy hammering cannot disturb the
    /// profiled rows).
    pub fn pick_dummy_rows(
        &self,
        avoid: &[RowAddr],
        min_distance: u32,
        count: usize,
    ) -> Vec<RowAddr> {
        let rows = self.module.geometry().rows_per_bank;
        let avoid_phys: Vec<u32> = avoid.iter().map(|&r| self.module.phys_of(r).index()).collect();
        let mut out = Vec::with_capacity(count);
        let mut candidate = 0u32;
        while out.len() < count && candidate < rows {
            let logical = RowAddr::new(candidate);
            let phys = self.module.phys_of(logical).index();
            let clear = avoid_phys.iter().all(|&a| phys.abs_diff(a) >= min_distance);
            // Also keep dummies spread apart so they occupy distinct TRR
            // tracker entries.
            let spread =
                out.iter().all(|&r: &RowAddr| self.module.phys_of(r).index().abs_diff(phys) >= 4);
            if clear && spread {
                out.push(logical);
            }
            candidate += 1;
        }
        out
    }

    /// Resets the TRR mechanism's internal state without any backdoor
    /// (Requirement 4 of §5.1): issues `REF` at the default rate for
    /// `periods` nominal 64 ms refresh periods while hammering `dummies`
    /// between consecutive `REF` commands as much as the timing budget
    /// allows.
    ///
    /// # Errors
    ///
    /// Propagates protocol/addressing errors from the device.
    pub fn reset_trr_state(
        &mut self,
        bank: Bank,
        dummies: &[RowAddr],
        periods: u32,
    ) -> Result<(), DramError> {
        if dummies.is_empty() {
            return Ok(());
        }
        self.module.registry().trace(
            obs::TraceKind::TrrReset,
            self.module.now().as_ns(),
            bank.index() as u32,
            None,
            &[("dummies", dummies.len() as u64), ("periods", u64::from(periods))],
            "reset storm",
        );
        let timings = self.module.timings();
        let refs_per_period = timings.refs_per_64ms();
        let budget = timings.max_hammers_per_refi();
        let per_dummy = (budget / dummies.len() as u64).max(1);
        let idle = timings
            .t_refi
            .saturating_sub(timings.t_rfc + timings.t_rc() * (per_dummy * dummies.len() as u64));
        for _ in 0..periods {
            for _ in 0..refs_per_period {
                for &dummy in dummies {
                    self.module.hammer(bank, dummy, per_dummy)?;
                }
                self.module.refresh();
                self.module.advance(idle);
            }
            // One environmental tick per ~64 ms storm period is plenty
            // of resolution for drift/burst evolution.
            self.tick_faults();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::ModuleConfig;

    fn controller() -> MemoryController {
        MemoryController::new(Module::new(ModuleConfig::small_test(), 3))
    }

    #[test]
    fn spec_constructors() {
        let s = HammerSpec::single_sided(RowAddr::new(5), 100);
        assert_eq!(s.total_hammers(), 100);
        assert_eq!(s.mode, HammerMode::Cascaded);
        let d = HammerSpec::double_sided(RowAddr::new(5), 100);
        assert_eq!(d.aggressors, vec![(RowAddr::new(4), 100), (RowAddr::new(6), 100)]);
        assert_eq!(d.total_hammers(), 200);
        assert_eq!(d.mode, HammerMode::Interleaved);
        let c = d.with_mode(HammerMode::Cascaded);
        assert_eq!(c.mode, HammerMode::Cascaded);
    }

    #[test]
    fn double_sided_hammer_flips_victim() {
        let mut mc = controller();
        let bank = Bank::new(0);
        let victim = RowAddr::new(200);
        mc.write_row(bank, victim, DataPattern::Ones).unwrap();
        mc.hammer(bank, &HammerSpec::double_sided(victim, 5_000)).unwrap();
        assert!(!mc.read_row(bank, victim).unwrap().is_clean());
    }

    #[test]
    fn interleaved_beats_cascaded() {
        let flips = |mode| {
            let mut mc = controller();
            let bank = Bank::new(0);
            let victim = RowAddr::new(200);
            mc.write_row(bank, victim, DataPattern::Ones).unwrap();
            let spec = HammerSpec::double_sided(victim, 3_000).with_mode(mode);
            mc.hammer(bank, &spec).unwrap();
            mc.read_row(bank, victim).unwrap().flip_count()
        };
        assert!(flips(HammerMode::Interleaved) > flips(HammerMode::Cascaded));
    }

    #[test]
    fn many_sided_interleaved_hammering() {
        let mut mc = controller();
        let bank = Bank::new(0);
        let victim = RowAddr::new(200);
        mc.write_row(bank, victim, DataPattern::Ones).unwrap();
        // Three aggressors with distinct counts exercise the round-robin
        // path.
        let spec = HammerSpec {
            aggressors: vec![
                (victim.minus(1), 3_000),
                (victim.plus(1), 2_000),
                (victim.plus(3), 1_000),
            ],
            mode: HammerMode::Interleaved,
        };
        mc.hammer(bank, &spec).unwrap();
        assert!(!mc.read_row(bank, victim).unwrap().is_clean());
        let acts = mc.module().stats().activations;
        assert_eq!(acts, 6_000 + 2 /* write + read activate */);
    }

    #[test]
    fn wait_with_refresh_preserves_data() {
        let mut mc = controller();
        let bank = Bank::new(0);
        // Find a weak row through the device's introspection.
        let weak = (0..1024)
            .map(RowAddr::new)
            .find(|&r| {
                let v = mc.module_mut().inspect_row(bank, r);
                v.min_retention().is_some() && !v.has_vrt()
            })
            .expect("test module has weak rows");
        for pattern in [DataPattern::Ones, DataPattern::Zeros] {
            mc.write_row(bank, weak, pattern).unwrap();
            mc.wait_with_refresh(Nanos::from_ms(2_000));
            assert!(mc.read_row(bank, weak).unwrap().is_clean(), "refreshed rows must never decay");
        }
    }

    #[test]
    fn wait_no_refresh_lets_rows_decay() {
        let mut mc = controller();
        let bank = Bank::new(0);
        let mut decayed = 0;
        for r in 0..512 {
            mc.write_row(bank, RowAddr::new(r), DataPattern::Ones).unwrap();
        }
        mc.wait_no_refresh(Nanos::from_ms(10_000));
        for r in 0..512 {
            if !mc.read_row(bank, RowAddr::new(r)).unwrap().is_clean() {
                decayed += 1;
            }
        }
        assert!(decayed > 0);
    }

    #[test]
    fn dummy_rows_keep_their_distance() {
        let mc = controller();
        let avoid = vec![RowAddr::new(500), RowAddr::new(502)];
        let dummies = mc.pick_dummy_rows(&avoid, 100, 8);
        assert_eq!(dummies.len(), 8);
        for d in &dummies {
            for a in &avoid {
                assert!(d.index().abs_diff(a.index()) >= 100);
            }
        }
    }

    #[test]
    fn refresh_counts_are_forwarded() {
        let mut mc = controller();
        mc.refresh(42);
        assert_eq!(mc.module().ref_count(), 42);
    }

    #[test]
    fn reset_trr_storm_runs_within_budget() {
        let mut mc = controller();
        let bank = Bank::new(0);
        let dummies = mc.pick_dummy_rows(&[], 0, 16);
        let t0 = mc.now();
        mc.reset_trr_state(bank, &dummies, 1).unwrap();
        let elapsed = mc.now() - t0;
        // One nominal refresh period of REFs, paced at tREFI
        // (8205 × 7.8 µs ≈ 64 ms).
        assert!(
            elapsed >= Nanos::from_ms(63) && elapsed < Nanos::from_ms(72),
            "storm took {elapsed}"
        );
    }
}
