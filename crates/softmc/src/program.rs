//! SoftMC-style DDR command programs.
//!
//! SoftMC exposes DRAM testing as small programs of raw DDR instructions
//! that the FPGA replays with cycle accuracy. This module mirrors that
//! interface: a [`Program`] is a list of [`Instruction`]s executed
//! back-to-back against the device, collecting tagged row readouts.
//!
//! The higher-level [`crate::MemoryController`] methods cover the common
//! experiment shapes; programs are the faithful escape hatch for
//! arbitrary command sequences (and what an eventual port back to real
//! SoftMC hardware would serialize).

use dram_sim::{Bank, DataPattern, DramError, Module, Nanos, RowAddr, RowReadout};

/// One DDR-level instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instruction {
    /// Open a row.
    Act { bank: Bank, row: RowAddr },
    /// Close the open row.
    Pre { bank: Bank },
    /// Write a full-row pattern into the open row.
    WriteRow { bank: Bank, pattern: DataPattern },
    /// Read the open row back; the readout is returned under `tag`.
    ReadRow { bank: Bank, tag: u32 },
    /// Issue one refresh command.
    Ref,
    /// Let time pass with no commands.
    Wait { duration: Nanos },
    /// `count` back-to-back ACT/PRE cycles of one row (a hammer loop —
    /// SoftMC expresses this as an instruction loop; we keep it as one
    /// batched instruction).
    Hammer { bank: Bank, row: RowAddr, count: u64 },
    /// `pairs` alternating ACT/PRE cycles of two rows.
    HammerPair { bank: Bank, first: RowAddr, second: RowAddr, pairs: u64 },
}

/// A sequence of instructions, built incrementally.
///
/// # Example
///
/// ```
/// use dram_sim::{Module, ModuleConfig, DataPattern, Bank, RowAddr, Nanos};
/// use softmc::Program;
///
/// # fn main() -> Result<(), dram_sim::DramError> {
/// let mut module = Module::new(ModuleConfig::small_test(), 3);
/// let bank = Bank::new(0);
/// let out = Program::new()
///     .act(bank, RowAddr::new(7))
///     .write_row(bank, DataPattern::Ones)
///     .pre(bank)
///     .wait(Nanos::from_ms(1))
///     .act(bank, RowAddr::new(7))
///     .read_row(bank, 0)
///     .pre(bank)
///     .run(&mut module)?;
/// assert!(out.readout(0).unwrap().is_clean());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    instructions: Vec<Instruction>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, instruction: Instruction) -> &mut Self {
        self.instructions.push(instruction);
        self
    }

    /// The instructions accumulated so far.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Appends an `ACT`.
    pub fn act(mut self, bank: Bank, row: RowAddr) -> Self {
        self.instructions.push(Instruction::Act { bank, row });
        self
    }

    /// Appends a `PRE`.
    pub fn pre(mut self, bank: Bank) -> Self {
        self.instructions.push(Instruction::Pre { bank });
        self
    }

    /// Appends a full-row write to the open row.
    pub fn write_row(mut self, bank: Bank, pattern: DataPattern) -> Self {
        self.instructions.push(Instruction::WriteRow { bank, pattern });
        self
    }

    /// Appends a full-row read of the open row, tagged for retrieval.
    pub fn read_row(mut self, bank: Bank, tag: u32) -> Self {
        self.instructions.push(Instruction::ReadRow { bank, tag });
        self
    }

    /// Appends one `REF`.
    pub fn refresh(mut self) -> Self {
        self.instructions.push(Instruction::Ref);
        self
    }

    /// Appends `count` `REF`s.
    pub fn refresh_n(mut self, count: u64) -> Self {
        for _ in 0..count {
            self.instructions.push(Instruction::Ref);
        }
        self
    }

    /// Appends an idle wait.
    pub fn wait(mut self, duration: Nanos) -> Self {
        self.instructions.push(Instruction::Wait { duration });
        self
    }

    /// Appends a hammer loop.
    pub fn hammer(mut self, bank: Bank, row: RowAddr, count: u64) -> Self {
        self.instructions.push(Instruction::Hammer { bank, row, count });
        self
    }

    /// Appends an interleaved two-row hammer loop.
    pub fn hammer_pair(mut self, bank: Bank, first: RowAddr, second: RowAddr, pairs: u64) -> Self {
        self.instructions.push(Instruction::HammerPair { bank, first, second, pairs });
        self
    }

    /// Executes the program against a module.
    ///
    /// # Errors
    ///
    /// Stops at the first protocol/addressing error, leaving the module
    /// in whatever state the executed prefix produced (as real hardware
    /// would).
    pub fn run(&self, module: &mut Module) -> Result<ProgramOutput, DramError> {
        let mut readouts = Vec::new();
        for instruction in &self.instructions {
            match instruction {
                Instruction::Act { bank, row } => module.activate(*bank, *row)?,
                Instruction::Pre { bank } => module.precharge(*bank)?,
                Instruction::WriteRow { bank, pattern } => {
                    module.write_open_row(*bank, pattern.clone())?;
                }
                Instruction::ReadRow { bank, tag } => {
                    readouts.push((*tag, module.read_open_row(*bank)?));
                }
                Instruction::Ref => module.refresh(),
                Instruction::Wait { duration } => module.advance(*duration),
                Instruction::Hammer { bank, row, count } => {
                    module.hammer(*bank, *row, *count)?;
                }
                Instruction::HammerPair { bank, first, second, pairs } => {
                    module.hammer_pair(*bank, *first, *second, *pairs)?;
                }
            }
        }
        Ok(ProgramOutput { readouts })
    }
}

/// Results collected while running a [`Program`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramOutput {
    readouts: Vec<(u32, RowReadout)>,
}

impl ProgramOutput {
    /// The first readout recorded under `tag`.
    pub fn readout(&self, tag: u32) -> Option<&RowReadout> {
        self.readouts.iter().find(|(t, _)| *t == tag).map(|(_, r)| r)
    }

    /// All readouts, in program order.
    pub fn readouts(&self) -> &[(u32, RowReadout)] {
        &self.readouts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::ModuleConfig;

    fn module() -> Module {
        Module::new(ModuleConfig::small_test(), 3)
    }

    #[test]
    fn write_wait_read_roundtrip() {
        let mut m = module();
        let bank = Bank::new(0);
        let out = Program::new()
            .act(bank, RowAddr::new(9))
            .write_row(bank, DataPattern::Checkerboard)
            .pre(bank)
            .act(bank, RowAddr::new(9))
            .read_row(bank, 7)
            .pre(bank)
            .run(&mut m)
            .unwrap();
        assert!(out.readout(7).unwrap().is_clean());
        assert!(out.readout(8).is_none());
        assert_eq!(out.readouts().len(), 1);
    }

    #[test]
    fn hammer_program_flips_victim() {
        let mut m = module();
        let bank = Bank::new(0);
        let victim = RowAddr::new(100);
        let out = Program::new()
            .act(bank, victim)
            .write_row(bank, DataPattern::Ones)
            .pre(bank)
            .hammer_pair(bank, victim.minus(1), victim.plus(1), 5_000)
            .act(bank, victim)
            .read_row(bank, 0)
            .pre(bank)
            .run(&mut m)
            .unwrap();
        assert!(!out.readout(0).unwrap().is_clean());
    }

    #[test]
    fn refresh_and_wait_instructions_advance_state() {
        let mut m = module();
        let t0 = m.now();
        Program::new().refresh_n(3).wait(Nanos::from_us(10)).run(&mut m).unwrap();
        assert_eq!(m.ref_count(), 3);
        assert_eq!(m.now() - t0, m.timings().t_rfc * 3 + Nanos::from_us(10));
    }

    #[test]
    fn errors_abort_mid_program() {
        let mut m = module();
        let bank = Bank::new(0);
        let err = Program::new()
            .act(bank, RowAddr::new(1))
            .act(bank, RowAddr::new(2)) // bank already open
            .run(&mut m)
            .unwrap_err();
        assert!(matches!(err, DramError::BankAlreadyOpen { .. }));
        // The prefix executed: the bank is still open.
        assert!(m.precharge(bank).is_ok());
    }

    #[test]
    fn push_and_inspect() {
        let mut p = Program::new();
        p.push(Instruction::Ref);
        assert_eq!(p.instructions().len(), 1);
    }
}
