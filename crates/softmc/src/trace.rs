//! DDR command traces: record, serialize, parse, replay.
//!
//! SoftMC programs are ultimately flat lists of timed DDR commands; this
//! module gives the simulated controller the same artifact. A recorded
//! [`CommandTrace`] serializes to a line-oriented text format
//! (`@<ns> <CMD> <args…>`), parses back, and replays onto any
//! [`Module`] — which makes experiments auditable, diffable, and
//! portable toward real SoftMC hardware.
//!
//! # Example
//!
//! ```
//! use dram_sim::{Module, ModuleConfig, DataPattern, Bank, RowAddr};
//! use softmc::trace::CommandTrace;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut trace = CommandTrace::new();
//! trace.record_hammer(dram_sim::Nanos::ZERO, Bank::new(0), RowAddr::new(5), 100);
//! trace.record_ref(dram_sim::Nanos::from_us(7));
//!
//! let text = trace.to_text();
//! let parsed = CommandTrace::parse(&text)?;
//! assert_eq!(parsed, trace);
//!
//! let mut module = Module::new(ModuleConfig::small_test(), 1);
//! parsed.replay(&mut module)?;
//! assert_eq!(module.ref_count(), 1);
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use dram_sim::{Bank, DataPattern, DramError, Module, Nanos, RowAddr};

/// One recorded command.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceCommand {
    /// Open a row.
    Act {
        /// Target bank.
        bank: Bank,
        /// Logical row.
        row: RowAddr,
    },
    /// Close the open row.
    Pre {
        /// Target bank.
        bank: Bank,
    },
    /// Full-row write of a pattern into the open row.
    WriteRow {
        /// Target bank.
        bank: Bank,
        /// Pattern written.
        pattern: DataPattern,
    },
    /// Full-row read of the open row.
    ReadRow {
        /// Target bank.
        bank: Bank,
    },
    /// One refresh command.
    Ref,
    /// `count` back-to-back ACT/PRE cycles of a row.
    Hammer {
        /// Target bank.
        bank: Bank,
        /// Hammered row.
        row: RowAddr,
        /// Cycles.
        count: u64,
    },
    /// `pairs` alternating ACT/PRE cycles of two rows.
    HammerPair {
        /// Target bank.
        bank: Bank,
        /// First row of each pair.
        first: RowAddr,
        /// Second row of each pair.
        second: RowAddr,
        /// Pair count.
        pairs: u64,
    },
    /// Idle time.
    Wait {
        /// Duration.
        duration: Nanos,
    },
}

/// A timestamped command.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Device time when the command was issued.
    pub at: Nanos,
    /// The command.
    pub command: TraceCommand,
}

/// An ordered list of timestamped DDR commands.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommandTrace {
    entries: Vec<TraceEntry>,
}

fn pattern_token(pattern: &DataPattern) -> String {
    match pattern {
        DataPattern::Custom(bytes) => {
            let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
            format!("custom:{hex}")
        }
        named => named.label().to_string(),
    }
}

fn parse_pattern(token: &str) -> Result<DataPattern, TraceParseError> {
    match token {
        "zeros" => Ok(DataPattern::Zeros),
        "ones" => Ok(DataPattern::Ones),
        "checkerboard" => Ok(DataPattern::Checkerboard),
        "rowstripe" => Ok(DataPattern::RowStripe),
        custom if custom.starts_with("custom:") => {
            let hex = &custom["custom:".len()..];
            if hex.is_empty() || hex.len() % 2 != 0 {
                return Err(TraceParseError::bad_field(token));
            }
            let bytes: Result<Vec<u8>, _> =
                (0..hex.len()).step_by(2).map(|i| u8::from_str_radix(&hex[i..i + 2], 16)).collect();
            Ok(DataPattern::Custom(Arc::from(
                bytes.map_err(|_| TraceParseError::bad_field(token))?,
            )))
        }
        other => Err(TraceParseError::bad_field(other)),
    }
}

impl CommandTrace {
    /// An empty trace.
    pub fn new() -> Self {
        CommandTrace::default()
    }

    /// The recorded entries, in order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded commands.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends a raw entry.
    pub fn push(&mut self, at: Nanos, command: TraceCommand) {
        self.entries.push(TraceEntry { at, command });
    }

    /// Records an `ACT`.
    pub fn record_act(&mut self, at: Nanos, bank: Bank, row: RowAddr) {
        self.push(at, TraceCommand::Act { bank, row });
    }

    /// Records a `PRE`.
    pub fn record_pre(&mut self, at: Nanos, bank: Bank) {
        self.push(at, TraceCommand::Pre { bank });
    }

    /// Records a full-row write.
    pub fn record_write(&mut self, at: Nanos, bank: Bank, pattern: DataPattern) {
        self.push(at, TraceCommand::WriteRow { bank, pattern });
    }

    /// Records a full-row read.
    pub fn record_read(&mut self, at: Nanos, bank: Bank) {
        self.push(at, TraceCommand::ReadRow { bank });
    }

    /// Records a `REF`.
    pub fn record_ref(&mut self, at: Nanos) {
        self.push(at, TraceCommand::Ref);
    }

    /// Records a hammer loop.
    pub fn record_hammer(&mut self, at: Nanos, bank: Bank, row: RowAddr, count: u64) {
        self.push(at, TraceCommand::Hammer { bank, row, count });
    }

    /// Records an interleaved hammer loop.
    pub fn record_hammer_pair(
        &mut self,
        at: Nanos,
        bank: Bank,
        first: RowAddr,
        second: RowAddr,
        pairs: u64,
    ) {
        self.push(at, TraceCommand::HammerPair { bank, first, second, pairs });
    }

    /// Records idle time.
    pub fn record_wait(&mut self, at: Nanos, duration: Nanos) {
        self.push(at, TraceCommand::Wait { duration });
    }

    /// Serializes the trace to its line-oriented text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            out.push_str(&format!("{entry}\n"));
        }
        out
    }

    /// Parses a trace from its text form. Blank lines and `#` comments
    /// are ignored.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line.
    pub fn parse(text: &str) -> Result<Self, TraceParseError> {
        let mut trace = CommandTrace::new();
        for (number, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let entry: TraceEntry =
                line.parse().map_err(|e: TraceParseError| e.at_line(number + 1))?;
            trace.entries.push(entry);
        }
        Ok(trace)
    }

    /// Replays the trace onto a module, advancing the module's clock to
    /// each entry's timestamp before issuing it.
    ///
    /// The replay is wrapped in a `softmc.trace.replay` span on the
    /// module's metrics registry, tagged with the command count; the span
    /// closes at the module's clock after the last replayed entry, even
    /// when the replay fails partway.
    ///
    /// # Errors
    ///
    /// Propagates device protocol errors (a trace recorded on one
    /// geometry may not fit another).
    pub fn replay(&self, module: &mut Module) -> Result<(), DramError> {
        let registry = std::sync::Arc::clone(module.registry());
        let span = obs::span!(
            registry,
            "softmc.trace.replay",
            module.now().as_ns(),
            commands = self.entries.len() as u64
        );
        let result = self.replay_inner(module);
        span.finish(module.now().as_ns());
        result
    }

    fn replay_inner(&self, module: &mut Module) -> Result<(), DramError> {
        for entry in &self.entries {
            if entry.at > module.now() {
                module.advance(entry.at - module.now());
            }
            match &entry.command {
                TraceCommand::Act { bank, row } => module.activate(*bank, *row)?,
                TraceCommand::Pre { bank } => module.precharge(*bank)?,
                TraceCommand::WriteRow { bank, pattern } => {
                    module.write_open_row(*bank, pattern.clone())?;
                }
                TraceCommand::ReadRow { bank } => {
                    module.read_open_row(*bank)?;
                }
                TraceCommand::Ref => module.refresh(),
                TraceCommand::Hammer { bank, row, count } => {
                    module.hammer(*bank, *row, *count)?;
                }
                TraceCommand::HammerPair { bank, first, second, pairs } => {
                    module.hammer_pair(*bank, *first, *second, *pairs)?;
                }
                TraceCommand::Wait { duration } => module.advance(*duration),
            }
        }
        Ok(())
    }
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} ", self.at.as_ns())?;
        match &self.command {
            TraceCommand::Act { bank, row } => {
                write!(f, "ACT {} {}", bank.index(), row.index())
            }
            TraceCommand::Pre { bank } => write!(f, "PRE {}", bank.index()),
            TraceCommand::WriteRow { bank, pattern } => {
                write!(f, "WR {} {}", bank.index(), pattern_token(pattern))
            }
            TraceCommand::ReadRow { bank } => write!(f, "RD {}", bank.index()),
            TraceCommand::Ref => write!(f, "REF"),
            TraceCommand::Hammer { bank, row, count } => {
                write!(f, "HAMMER {} {} {}", bank.index(), row.index(), count)
            }
            TraceCommand::HammerPair { bank, first, second, pairs } => write!(
                f,
                "HAMMERPAIR {} {} {} {}",
                bank.index(),
                first.index(),
                second.index(),
                pairs
            ),
            TraceCommand::Wait { duration } => write!(f, "WAIT {}", duration.as_ns()),
        }
    }
}

/// Error from [`CommandTrace::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    line: Option<usize>,
    field: String,
}

impl TraceParseError {
    fn bad_field(field: &str) -> Self {
        TraceParseError { line: None, field: field.to_string() }
    }

    fn at_line(mut self, line: usize) -> Self {
        self.line = Some(line);
        self
    }
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(n) => write!(f, "trace line {n}: unparseable field {:?}", self.field),
            None => write!(f, "unparseable trace field {:?}", self.field),
        }
    }
}

impl std::error::Error for TraceParseError {}

impl FromStr for TraceEntry {
    type Err = TraceParseError;

    fn from_str(line: &str) -> Result<Self, Self::Err> {
        let mut parts = line.split_whitespace();
        let stamp = parts.next().ok_or_else(|| TraceParseError::bad_field(line))?;
        let at = stamp
            .strip_prefix('@')
            .and_then(|n| n.parse::<u64>().ok())
            .map(Nanos::from_ns)
            .ok_or_else(|| TraceParseError::bad_field(stamp))?;
        let op = parts.next().ok_or_else(|| TraceParseError::bad_field(line))?;
        let mut field = |name: &str| -> Result<String, TraceParseError> {
            parts.next().map(str::to_string).ok_or_else(|| TraceParseError::bad_field(name))
        };
        let parse_u = |s: &str| s.parse::<u64>().map_err(|_| TraceParseError::bad_field(s));
        let command = match op {
            "ACT" => TraceCommand::Act {
                bank: Bank::new(parse_u(&field("bank")?)? as u8),
                row: RowAddr::new(parse_u(&field("row")?)? as u32),
            },
            "PRE" => TraceCommand::Pre { bank: Bank::new(parse_u(&field("bank")?)? as u8) },
            "WR" => TraceCommand::WriteRow {
                bank: Bank::new(parse_u(&field("bank")?)? as u8),
                pattern: parse_pattern(&field("pattern")?)?,
            },
            "RD" => TraceCommand::ReadRow { bank: Bank::new(parse_u(&field("bank")?)? as u8) },
            "REF" => TraceCommand::Ref,
            "HAMMER" => TraceCommand::Hammer {
                bank: Bank::new(parse_u(&field("bank")?)? as u8),
                row: RowAddr::new(parse_u(&field("row")?)? as u32),
                count: parse_u(&field("count")?)?,
            },
            "HAMMERPAIR" => TraceCommand::HammerPair {
                bank: Bank::new(parse_u(&field("bank")?)? as u8),
                first: RowAddr::new(parse_u(&field("first")?)? as u32),
                second: RowAddr::new(parse_u(&field("second")?)? as u32),
                pairs: parse_u(&field("pairs")?)?,
            },
            "WAIT" => TraceCommand::Wait { duration: Nanos::from_ns(parse_u(&field("ns")?)?) },
            other => return Err(TraceParseError::bad_field(other)),
        };
        Ok(TraceEntry { at, command })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::ModuleConfig;

    fn sample_trace() -> CommandTrace {
        let mut t = CommandTrace::new();
        let bank = Bank::new(0);
        t.record_act(Nanos::ZERO, bank, RowAddr::new(5));
        t.record_write(Nanos::from_ns(35), bank, DataPattern::Ones);
        t.record_pre(Nanos::from_ns(535), bank);
        t.record_hammer(Nanos::from_ns(600), bank, RowAddr::new(6), 1_000);
        t.record_hammer_pair(Nanos::from_us(51), bank, RowAddr::new(4), RowAddr::new(6), 500);
        t.record_ref(Nanos::from_us(101));
        t.record_wait(Nanos::from_us(102), Nanos::from_ms(150));
        t.record_act(Nanos::from_ms(151), bank, RowAddr::new(5));
        t.record_read(Nanos::from_ms(151) + Nanos::from_ns(35), bank);
        t.record_pre(Nanos::from_ms(152), bank);
        t
    }

    #[test]
    fn text_roundtrip() {
        let trace = sample_trace();
        let text = trace.to_text();
        assert!(text.contains("HAMMER 0 6 1000"));
        assert!(text.contains("WR 0 ones"));
        let parsed = CommandTrace::parse(&text).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn custom_pattern_roundtrip() {
        let mut t = CommandTrace::new();
        t.record_write(
            Nanos::ZERO,
            Bank::new(1),
            DataPattern::Custom(std::sync::Arc::from(&[0xDE, 0xAD][..])),
        );
        let parsed = CommandTrace::parse(&t.to_text()).unwrap();
        assert_eq!(parsed, t);
        assert!(t.to_text().contains("custom:dead"));
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# a comment\n\n@0 REF\n  \n@7800 REF\n";
        let trace = CommandTrace::parse(text).unwrap();
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn malformed_lines_report_their_number() {
        let err = CommandTrace::parse("@0 REF\n@5 BOGUS 1\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
        assert!(err.to_string().contains("BOGUS"));
        assert!(CommandTrace::parse("REF").is_err(), "timestamp required");
        assert!(CommandTrace::parse("@x REF").is_err());
        assert!(CommandTrace::parse("@0 WR 0 custom:xyz").is_err());
        assert!(CommandTrace::parse("@0 HAMMER 0 5").is_err(), "missing count");
    }

    #[test]
    fn replay_reproduces_device_state() {
        let trace = sample_trace();
        let mut a = Module::new(ModuleConfig::small_test(), 9);
        let mut b = Module::new(ModuleConfig::small_test(), 9);
        trace.replay(&mut a).unwrap();
        CommandTrace::parse(&trace.to_text()).unwrap().replay(&mut b).unwrap();
        assert_eq!(a.ref_count(), b.ref_count());
        assert_eq!(a.stats(), b.stats());
        // Same final readout of the written row.
        let ra = a.read_row(Bank::new(0), RowAddr::new(5)).unwrap();
        let rb = b.read_row(Bank::new(0), RowAddr::new(5)).unwrap();
        assert_eq!(ra, rb);
    }

    /// The registry view of a replayed trace is an exact backfill of the
    /// trace's command totals: every ACT (batched hammers expanded), PRE,
    /// REF, and row read/write lands in the matching counter.
    #[test]
    fn replay_backfills_registry_counters_exactly() {
        let trace = sample_trace();
        let (mut acts, mut pres, mut refs, mut reads, mut writes) = (0u64, 0u64, 0u64, 0u64, 0u64);
        for entry in trace.entries() {
            match &entry.command {
                TraceCommand::Act { .. } => acts += 1,
                TraceCommand::Pre { .. } => pres += 1,
                TraceCommand::WriteRow { .. } => writes += 1,
                TraceCommand::ReadRow { .. } => reads += 1,
                TraceCommand::Ref => refs += 1,
                TraceCommand::Hammer { count, .. } => acts += count,
                TraceCommand::HammerPair { pairs, .. } => acts += 2 * pairs,
                TraceCommand::Wait { .. } => {}
            }
        }

        let registry = obs::MetricsRegistry::shared();
        let mut module = Module::new(ModuleConfig::small_test(), 9);
        module.attach_registry(Arc::clone(&registry));
        trace.replay(&mut module).unwrap();

        use dram_sim::metrics::{CTR_ACT, CTR_PRE, CTR_REF, CTR_ROW_READS, CTR_ROW_WRITES};
        assert_eq!(registry.counter(CTR_ACT).get(), acts);
        assert_eq!(registry.counter(CTR_PRE).get(), pres);
        assert_eq!(registry.counter(CTR_REF).get(), refs);
        assert_eq!(registry.counter(CTR_ROW_READS).get(), reads);
        assert_eq!(registry.counter(CTR_ROW_WRITES).get(), writes);

        // The replay span covers the whole trace.
        let (spans, _) = registry.spans_snapshot();
        let span = spans.iter().find(|s| s.name == "softmc.trace.replay").unwrap();
        assert_eq!(span.fields, vec![("commands".to_string(), trace.len() as u64)]);
        assert_eq!(span.sim_end, module.now().as_ns());
    }

    #[test]
    fn replay_rejects_oversized_addresses() {
        let mut t = CommandTrace::new();
        t.record_act(Nanos::ZERO, Bank::new(50), RowAddr::new(5));
        let mut m = Module::new(ModuleConfig::small_test(), 9);
        assert!(t.replay(&mut m).is_err());
    }

    #[test]
    fn empty_trace_is_empty() {
        let t = CommandTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_text(), "");
    }
}
