//! The controller-side fault-injection interface.
//!
//! Real SoftMC experiments run against hardware that misbehaves:
//! transient bus errors corrupt readouts, commands get dropped, and the
//! environment (temperature, VRT weather) shifts under the experiment.
//! A [`FaultInjector`] models exactly that boundary: it sits between
//! the [`MemoryController`](crate::MemoryController) and the device and
//! may corrupt completed reads, drop or garble writes, and evolve
//! environmental conditions as simulated time passes.
//!
//! The trait lives here (not in the `faults` crate that implements the
//! deterministic fault plans) so that `softmc` does not depend on its
//! own fault vocabulary's consumer — the controller only needs the
//! interface. When no injector is installed the controller takes the
//! exact same code paths as before the interface existed, so fault-free
//! runs are bit-for-bit identical.

use dram_sim::{Bank, DataPattern, Module, Nanos, RowAddr, RowReadout};

/// What a fault injector decides to do with an in-flight row write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteFault {
    /// The write proceeds untouched.
    None,
    /// The write is silently dropped: the command never reaches the
    /// array, leaving the row's previous contents (and its running
    /// decay window) in place.
    Dropped,
    /// The write lands, but with a different pattern than requested —
    /// a garbled transfer.
    Garbled(DataPattern),
}

/// Injects deterministic faults at the controller/device boundary.
///
/// Installed via
/// [`MemoryController::set_fault_injector`](crate::MemoryController::set_fault_injector).
/// Implementations must be deterministic functions of the command
/// sequence (seeded RNG, simulated time) so that runs remain
/// reproducible — the point is a *repeatable* hostile substrate.
pub trait FaultInjector: std::fmt::Debug {
    /// Possibly corrupts the readout of a completed row read. The
    /// device's stored state is untouched — only the data in flight.
    fn on_read(&mut self, bank: Bank, row: RowAddr, readout: &mut RowReadout, now: Nanos);

    /// Decides the fate of an impending row write.
    fn on_write(
        &mut self,
        bank: Bank,
        row: RowAddr,
        pattern: &DataPattern,
        now: Nanos,
    ) -> WriteFault;

    /// Called after simulated time passes in bulk (waits, paced refresh
    /// bursts, reset storms) so the injector can evolve environmental
    /// conditions — retention drift, VRT burst episodes — by mutating
    /// the device directly.
    fn on_tick(&mut self, now: Nanos, module: &mut Module);

    /// How aggressive the injected substrate is, on a coarse ordinal
    /// scale: `1` (the default) for substrates the baseline self-healing
    /// (voting, bounded retries) absorbs, `2` and up for hostile
    /// substrates that warrant escalating recovery — adaptive vote
    /// widths, candidate relocation, mid-run drift re-profiling. The
    /// pipeline keys its recovery ladder off this value so that milder
    /// profiles keep their exact command streams.
    fn severity(&self) -> u8 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryController;
    use dram_sim::ModuleConfig;

    /// A scripted injector: flips one fixed bit on every read, drops
    /// every `drop_nth` write, and counts ticks.
    #[derive(Debug, Default)]
    struct Scripted {
        reads: u64,
        writes: u64,
        ticks: u64,
        drop_every: u64,
    }

    impl FaultInjector for Scripted {
        fn on_read(&mut self, _: Bank, _: RowAddr, readout: &mut RowReadout, _: Nanos) {
            self.reads += 1;
            readout.inject_flip(7);
        }

        fn on_write(&mut self, _: Bank, _: RowAddr, _: &DataPattern, _: Nanos) -> WriteFault {
            self.writes += 1;
            if self.drop_every > 0 && self.writes.is_multiple_of(self.drop_every) {
                WriteFault::Dropped
            } else {
                WriteFault::None
            }
        }

        fn on_tick(&mut self, _: Nanos, _: &mut Module) {
            self.ticks += 1;
        }
    }

    #[test]
    fn read_hook_corrupts_the_readout_not_the_cell() {
        let module = Module::new(ModuleConfig::small_test(), 3);
        let mut mc = MemoryController::with_faults(module, Box::new(Scripted::default()));
        let bank = Bank::new(0);
        let row = RowAddr::new(10);
        mc.write_row(bank, row, DataPattern::Ones).unwrap();
        let corrupted = mc.read_row(bank, row).unwrap();
        assert_eq!(corrupted.flipped_bits(), &[7], "injected transient flip");
        // The cell itself is clean: remove the injector and re-read.
        mc.set_fault_injector(None);
        assert!(!mc.faults_enabled());
        assert!(mc.read_row(bank, row).unwrap().is_clean());
    }

    #[test]
    fn dropped_write_leaves_previous_contents() {
        let module = Module::new(ModuleConfig::small_test(), 3);
        let mut mc = MemoryController::new(module);
        let bank = Bank::new(0);
        let row = RowAddr::new(20);
        mc.write_row(bank, row, DataPattern::Ones).unwrap();
        mc.set_fault_injector(Some(Box::new(Scripted { drop_every: 1, ..Scripted::default() })));
        mc.write_row(bank, row, DataPattern::Zeros).unwrap();
        mc.set_fault_injector(None);
        let readout = mc.read_row(bank, row).unwrap();
        assert_eq!(readout.pattern(), &DataPattern::Ones, "write must have been dropped");
    }

    #[test]
    fn ticks_fire_on_waits_and_refresh() {
        let module = Module::new(ModuleConfig::small_test(), 3);
        let mut mc = MemoryController::with_faults(module, Box::new(Scripted::default()));
        mc.wait_no_refresh(Nanos::from_ms(1));
        mc.refresh(4);
        mc.wait_with_refresh(Nanos::from_ms(1));
        let stats = format!("{mc:?}");
        assert!(stats.contains("ticks: 3"), "one tick per bulk time step: {stats}");
    }
}
