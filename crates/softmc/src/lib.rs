//! A SoftMC-style command-level DDR4 memory controller for the simulated
//! device.
//!
//! The paper implements Row Scout and TRR Analyzer on SoftMC (Hassan et
//! al., HPCA 2017), an FPGA platform that can issue individual DDR
//! commands at precisely controlled times — the capability §3.3 calls out
//! as the reason commodity CPUs cannot run these experiments. This crate
//! provides the same contract against a [`dram_sim::Module`]:
//!
//! * a [`Program`] of DDR [`Instruction`]s executed back-to-back, the
//!   moral equivalent of a SoftMC program;
//! * a [`MemoryController`] with higher-level building blocks — paced
//!   refresh, hammer specifications with interleaved/cascaded modes
//!   (§5.2), dummy-row selection, and the TRR-state reset storm
//!   (Requirement 4 of §5.1).
//!
//! Auto-refresh is *off* by default: the whole methodology depends on the
//! controller deciding exactly when `REF` commands are issued.
//!
//! # Example
//!
//! ```
//! use dram_sim::{Module, ModuleConfig, DataPattern, Bank, RowAddr, Nanos};
//! use softmc::{MemoryController, HammerSpec, HammerMode};
//!
//! # fn main() -> Result<(), dram_sim::DramError> {
//! let mut mc = MemoryController::new(Module::new(ModuleConfig::small_test(), 3));
//! let bank = Bank::new(0);
//! let victim = RowAddr::new(300);
//! mc.write_row(bank, victim, DataPattern::Ones)?;
//!
//! let spec = HammerSpec::double_sided(victim, 5_000);
//! mc.hammer(bank, &spec)?;
//!
//! let readout = mc.read_row(bank, victim)?;
//! assert!(!readout.is_clean(), "double-sided hammering flips the victim");
//! # Ok(())
//! # }
//! ```

pub mod controller;
pub mod faults;
pub mod program;
pub mod trace;

pub use controller::{HammerMode, HammerSpec, MemoryController, RecoveryLadder};
pub use faults::{FaultInjector, WriteFault};
pub use program::{Instruction, Program, ProgramOutput};
pub use trace::{CommandTrace, TraceCommand, TraceEntry};
