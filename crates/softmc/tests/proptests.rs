//! Property tests on the command-trace text format: any recordable
//! trace serializes to text and parses back identically.

use std::sync::Arc;

use dram_sim::{Bank, DataPattern, Nanos, RowAddr};
use proptest::prelude::*;
use softmc::trace::{CommandTrace, TraceCommand};

fn pattern_strategy() -> impl Strategy<Value = DataPattern> {
    prop_oneof![
        Just(DataPattern::Zeros),
        Just(DataPattern::Ones),
        Just(DataPattern::Checkerboard),
        Just(DataPattern::RowStripe),
        proptest::collection::vec(any::<u8>(), 1..9)
            .prop_map(|bytes| DataPattern::Custom(Arc::from(bytes.as_slice()))),
    ]
}

fn command_strategy() -> impl Strategy<Value = TraceCommand> {
    prop_oneof![
        (any::<u8>(), any::<u32>())
            .prop_map(|(b, r)| TraceCommand::Act { bank: Bank::new(b), row: RowAddr::new(r) }),
        any::<u8>().prop_map(|b| TraceCommand::Pre { bank: Bank::new(b) }),
        (any::<u8>(), pattern_strategy())
            .prop_map(|(b, p)| TraceCommand::WriteRow { bank: Bank::new(b), pattern: p }),
        any::<u8>().prop_map(|b| TraceCommand::ReadRow { bank: Bank::new(b) }),
        Just(TraceCommand::Ref),
        (any::<u8>(), any::<u32>(), any::<u64>()).prop_map(|(b, r, count)| {
            TraceCommand::Hammer { bank: Bank::new(b), row: RowAddr::new(r), count }
        }),
        (any::<u8>(), any::<u32>(), any::<u32>(), any::<u64>()).prop_map(
            |(b, first, second, pairs)| TraceCommand::HammerPair {
                bank: Bank::new(b),
                first: RowAddr::new(first),
                second: RowAddr::new(second),
                pairs,
            }
        ),
        any::<u64>().prop_map(|ns| TraceCommand::Wait { duration: Nanos::from_ns(ns) }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(to_text(t)) == t` for every recordable trace — the text
    /// format loses nothing, so traces are a faithful archival artifact.
    #[test]
    fn trace_text_round_trips(
        commands in proptest::collection::vec(
            (any::<u64>(), command_strategy()),
            0..40,
        )
    ) {
        let mut trace = CommandTrace::new();
        for (at, command) in commands {
            trace.push(Nanos::from_ns(at), command);
        }
        let text = trace.to_text();
        let parsed = CommandTrace::parse(&text).unwrap();
        prop_assert_eq!(parsed, trace);
    }

    /// The text form is also stable: re-serializing a parsed trace
    /// reproduces the text byte-for-byte.
    #[test]
    fn trace_text_is_canonical(
        commands in proptest::collection::vec(
            (any::<u64>(), command_strategy()),
            1..20,
        )
    ) {
        let mut trace = CommandTrace::new();
        for (at, command) in commands {
            trace.push(Nanos::from_ns(at), command);
        }
        let text = trace.to_text();
        prop_assert_eq!(CommandTrace::parse(&text).unwrap().to_text(), text);
    }
}
