//! The 45 DDR4 modules of the paper's Table 1, as simulated devices.
//!
//! Each [`ModuleSpec`] carries the module's organization (date code,
//! density, ranks, banks, pins), its measured `HC_first`, and the ground
//! truth of its TRR implementation (version, detection mechanism,
//! capacity, per-bank operation, TRR-to-REF ratio, neighbours refreshed)
//! exactly as the paper reports them. [`ModuleSpec::build`] instantiates
//! a [`dram_sim::Module`] with the matching geometry, the matching
//! ground-truth engine from the `trr` crate, vendor A's faster internal
//! refresh (Observation A8), and vendor C's paired-row organization for
//! C_TRR1 parts (Observation C3).
//!
//! Two classes of numbers live here (see DESIGN.md §5): the TRR columns
//! are *ground truth to be re-discovered* by U-TRR, while the
//! vulnerability columns (`HC_first`, % vulnerable rows, max flips)
//! *calibrate the physics* — the attack outcomes then emerge from the
//! pattern mechanics.
//!
//! # Example
//!
//! ```
//! use utrr_modules::{catalog, by_id};
//!
//! assert_eq!(catalog().len(), 45);
//! let a5 = by_id("A5").unwrap();
//! assert_eq!(a5.trr_version, "A_TRR1");
//! assert_eq!(a5.trr_to_ref_ratio, 9);
//! let module = a5.build_scaled(2048, 7);
//! assert_eq!(module.geometry().rows_per_bank, 2048);
//! ```

use dram_sim::{
    MitigationEngine, Module, ModuleConfig, ModuleGeometry, Nanos, PhysicsConfig, RefreshConfig,
    RowMapping, Timings, Topology,
};

/// DRAM vendor, anonymized as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// Counter-based TRR (§6.1).
    A,
    /// Sampling-based TRR (§6.2).
    B,
    /// Mixed, activation-window TRR (§6.3).
    C,
}

impl std::fmt::Display for Vendor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Vendor::A => f.write_str("A"),
            Vendor::B => f.write_str("B"),
            Vendor::C => f.write_str("C"),
        }
    }
}

/// One row of Table 1: a DDR4 module's organization and its TRR ground
/// truth.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleSpec {
    /// Module identifier, e.g. `"A5"`.
    pub id: String,
    /// Vendor.
    pub vendor: Vendor,
    /// Manufacturing date, `yy-ww`.
    pub date: &'static str,
    /// Chip density in Gbit.
    pub density_gbit: u8,
    /// Ranks on the module.
    pub ranks: u8,
    /// Banks per rank.
    pub banks: u8,
    /// Data pins per chip (x8 or x16).
    pub pins: u8,
    /// Minimum per-aggressor double-sided activation count to the first
    /// bit flip.
    pub hc_first: u64,
    /// TRR version identifier (`A_TRR1` … `C_TRR3`).
    pub trr_version: &'static str,
    /// The paper's "Aggressor Detection" column.
    pub detection: &'static str,
    /// The paper's "Aggressor Capacity" column (`None` = unknown).
    pub aggressor_capacity: Option<u32>,
    /// Whether TRR operates independently per bank.
    pub per_bank_trr: bool,
    /// One TRR-capable `REF` every this many `REF`s.
    pub trr_to_ref_ratio: u64,
    /// Victim rows refreshed per detection.
    pub neighbors_refreshed: u32,
    /// The paper's "% Vulnerable DRAM Rows" range (min, max).
    pub paper_vulnerable_pct: (f64, f64),
    /// The paper's "Max. Bit Flips per Row per Hammer" range (min, max).
    pub paper_max_flips_per_hammer: (f64, f64),
    /// Multiplier on the weak-cell retention window (`1.0` for every
    /// Table-1 part). The fleet generator perturbs this around the
    /// anchors to model die-to-die retention spread without touching the
    /// calibrated HC arithmetic.
    pub retention_scale: f64,
}

impl ModuleSpec {
    /// Rows per bank, following the paper's §7.3 discussion (16-bank
    /// 8 Gbit parts have 32K rows/bank, 8-bank parts 64K).
    pub fn rows_per_bank(&self) -> u32 {
        let chip_bits = self.density_gbit as u64 * (1 << 30);
        let bank_bits = chip_bits / self.banks as u64;
        // Reference point: 8 Gbit / 16 banks = 512 Mbit per bank = 32K
        // rows of 2^14 bits.
        (bank_bits / (1 << 14)) as u32
    }

    /// The simulated geometry (row size fixed at the 8 KiB DIMM-level
    /// row the paper counts 8-byte datawords over).
    pub fn geometry(&self) -> ModuleGeometry {
        ModuleGeometry { banks: self.banks, rows_per_bank: self.rows_per_bank(), row_bytes: 8192 }
    }

    /// Victim-row disturbance (in the simulator's units: one unit per
    /// adjacent full-weight activation) that the vendor's §7.1 custom
    /// pattern lands per `REF` interval — the arithmetic DESIGN.md §5's
    /// calibration is anchored on.
    fn attack_disturbance_per_interval(&self) -> f64 {
        match self.vendor {
            // 24 cascaded hammers per aggressor, first activation at full
            // weight, the rest discounted: 2 × (1 + 0.5 × 23).
            Vendor::A => 25.0,
            // Interleaved pairs at full budget in (ratio − 1) of ratio
            // intervals.
            Vendor::B => 148.0 * (self.trr_to_ref_ratio - 1) as f64 / self.trr_to_ref_ratio as f64,
            // ~2.15 intervals of window-opening dummies, then interleaved
            // pairs (or a cascaded single aggressor at half weight on the
            // paired-row organization).
            Vendor::C => {
                let hammer_intervals = (self.trr_to_ref_ratio as f64 - 2.15).max(1.0);
                let per_interval = if self.topology() == Topology::Paired { 74.0 } else { 148.0 };
                per_interval * hammer_intervals / self.trr_to_ref_ratio as f64
            }
        }
    }

    /// The calibrated cell physics (see DESIGN.md §5). `HC_first` comes
    /// straight from Table 1; the per-row threshold spread `hc_lambda`
    /// is solved from the module's "% Vulnerable DRAM Rows" column and
    /// the attack-disturbance arithmetic, and the flip ladder is scaled
    /// so the per-row flip ceiling tracks the "max flips per hammer"
    /// column. The attack *outcomes* still emerge mechanically: TRR
    /// escape dynamics, pattern budgets, and topology are simulated, not
    /// fitted.
    /// Expected uninterrupted attack span in `REF`s: the victim's
    /// regular-refresh period, truncated for vendor B by the sampler's
    /// diversion-failure rate (an aggressor occasionally survives the
    /// dummy barrage and gets its victims TRR-refreshed, ending the
    /// disturbance streak early).
    fn effective_attack_refs(&self) -> f64 {
        let period = self.refresh().period_refs as f64;
        match self.vendor {
            Vendor::B => {
                let (sample_prob, dummy_acts): (f64, f64) =
                    if self.per_bank_trr { (1.0 / 25.0, 149.0) } else { (1.0 / 100.0, 624.0) };
                let p_fail = (1.0 - sample_prob).powf(dummy_acts);
                // The victim's fate is set by the *longest* clean streak
                // it sees, not the mean one; over the thousands of TRR
                // windows in a refresh period the maximum of the
                // geometric streak lengths runs well past the mean (factor fitted at 2.2 against the delivered-streak statistics of a two-window evaluation).
                (2.2 * self.trr_to_ref_ratio as f64 / p_fail.max(1e-6)).min(period)
            }
            _ => period,
        }
    }

    pub fn physics(&self) -> PhysicsConfig {
        // On the paired-row organization a victim has a single aggressor
        // (its pair), so "HC_first activations per aggressor" maps to a
        // per-row threshold of HC_first disturbance units rather than
        // the 2×HC_first a double-sided victim accumulates.
        let hc_eff = if self.topology() == Topology::Paired {
            self.hc_first as f64 / 2.0
        } else {
            self.hc_first as f64
        };
        // Expected victim disturbance across its longest uninterrupted
        // attack streak.
        let d_max = self.attack_disturbance_per_interval() * self.effective_attack_refs();
        let r = d_max / (2.0 * hc_eff);
        let v = ((self.paper_vulnerable_pct.0 + self.paper_vulnerable_pct.1) / 200.0)
            .clamp(0.005, 0.995);
        let hc_lambda = ((r - 1.0).max(0.05) / -(1.0 - v).ln()).clamp(0.02, 300.0);

        // Flip ladder: the weakest sampled rows should reach the paper's
        // per-row flip ceiling at the vendor's typical hammer rate.
        let typical_hammers = match self.vendor {
            Vendor::A => 26.0,
            Vendor::B => 55.0,
            Vendor::C => 65.0,
        };
        let target_flips = (self.paper_max_flips_per_hammer.1 * typical_hammers).max(4.0);
        let hc_cell_step = (2.0 / target_flips).clamp(5e-4, 0.2);
        let hc_max_cells = ((target_flips * 2.0) as u32).clamp(16, 8_192);

        // Die-to-die retention spread: the generator's multiplier moves
        // the whole weak-cell retention window; the anchors sit at 1.0
        // (80 ms – 2 s), so Table-1 builds are bit-identical to before.
        let scale_nanos = |base: Nanos| -> Nanos {
            if self.retention_scale == 1.0 {
                base
            } else {
                Nanos::from_ns((base.as_ns() as f64 * self.retention_scale).max(1.0) as u64)
            }
        };
        PhysicsConfig {
            weak_row_prob: 1.0,
            extra_weak_cell_prob: 0.35,
            retention_min: scale_nanos(Nanos::from_ms(80)),
            retention_max: scale_nanos(Nanos::from_ms(2_000)),
            vrt_prob: 0.15,
            vrt_switch_prob: 0.08,
            vrt_retention_factor: 3.0,
            hc_first: hc_eff,
            hc_lambda,
            hc_cell_step,
            hc_max_cells,
            radius2_weight: 0.25,
            same_row_discount: 0.5,
            striped_aggressor_coupling: 0.85,
            temperature_c: PhysicsConfig::REFERENCE_TEMP_C,
        }
    }

    /// Regular-refresh schedule: vendor A chips internally refresh each
    /// row once every 3758 `REF`s (Observation A8); everyone else
    /// follows the nominal ~8K.
    pub fn refresh(&self) -> RefreshConfig {
        match self.vendor {
            Vendor::A => RefreshConfig { period_refs: 3758 },
            _ => RefreshConfig::ddr4_nominal(),
        }
    }

    /// The logical→physical row mapping of this part. Most parts use the
    /// identity; a few carry decoder scrambling so the §5.3 mapping
    /// reverse engineering has something to find.
    pub fn mapping(&self) -> RowMapping {
        match self.id.as_str() {
            "A0" => RowMapping::msb_xor(3, 0b110),
            "B7" => RowMapping::block_mirror(3),
            _ => RowMapping::Identity,
        }
    }

    /// Disturbance topology: C_TRR1 parts (C0–C8) use the paired-row
    /// organization of Observation C3.
    pub fn topology(&self) -> Topology {
        if self.vendor == Vendor::C && self.trr_version == "C_TRR1" {
            Topology::Paired
        } else {
            Topology::Linear
        }
    }

    /// The ground-truth mitigation engine.
    pub fn engine(&self, seed: u64) -> Box<dyn MitigationEngine> {
        trr::engine_for_version(self.trr_version, self.banks, seed)
    }

    /// Builds the module at its full Table-1 geometry.
    pub fn build(&self, seed: u64) -> Module {
        self.build_scaled(self.rows_per_bank(), seed)
    }

    /// Builds the module with a reduced `rows_per_bank` — experiments
    /// that sample victim positions are unbiased under scaling, and the
    /// regular-refresh *period in REFs* is preserved so TRR-to-REF
    /// interactions stay faithful.
    pub fn build_scaled(&self, rows_per_bank: u32, seed: u64) -> Module {
        let mut geometry = self.geometry();
        geometry.rows_per_bank = rows_per_bank;
        let config = ModuleConfig {
            geometry,
            timings: Timings::ddr4(),
            physics: self.physics(),
            mapping: {
                // Keep the decoder scrambling whenever it remains a
                // bijection at the scaled size; fall back to identity
                // otherwise.
                let mapping = self.mapping();
                if mapping.valid_for(rows_per_bank) {
                    mapping
                } else {
                    RowMapping::Identity
                }
            },
            topology: self.topology(),
            refresh: self.refresh(),
        };
        Module::with_engine(config, self.engine(seed ^ 0x7272), seed)
    }

    /// Like [`ModuleSpec::build_scaled`], but attaches `registry` to the
    /// built module so its command counters, latency histograms, and TRR
    /// engine metrics land in a shared run artifact.
    pub fn build_scaled_with_registry(
        &self,
        rows_per_bank: u32,
        seed: u64,
        registry: std::sync::Arc<obs::MetricsRegistry>,
    ) -> Module {
        let mut module = self.build_scaled(rows_per_bank, seed);
        module.attach_registry(registry);
        module
    }
}

/// Expands one Table-1 row (which may cover several modules) into
/// individual [`ModuleSpec`]s.
struct Row {
    vendor: Vendor,
    first_idx: u32,
    count: u32,
    date: &'static str,
    density: u8,
    ranks: u8,
    banks: u8,
    pins: u8,
    hc_first: (u64, u64),
    version: &'static str,
    detection: &'static str,
    capacity: Option<u32>,
    per_bank: bool,
    ratio: u64,
    neighbors: u32,
    vulnerable: (f64, f64),
    max_flips: (f64, f64),
}

impl Row {
    fn expand(&self, out: &mut Vec<ModuleSpec>) {
        for i in 0..self.count {
            // Interpolate HC_first across the row's reported range.
            let hc = if self.count == 1 {
                self.hc_first.0
            } else {
                let span = self.hc_first.1 - self.hc_first.0;
                self.hc_first.0 + span * i as u64 / (self.count - 1) as u64
            };
            // Interpolate per-module vulnerability across the row's
            // reported range (stronger HC_first parts sit at the weak
            // end of the vulnerability range).
            let frac = if self.count == 1 { 0.0 } else { i as f64 / (self.count - 1) as f64 };
            let v = self.vulnerable.0 + (self.vulnerable.1 - self.vulnerable.0) * frac;
            out.push(ModuleSpec {
                id: format!("{}{}", self.vendor, self.first_idx + i),
                vendor: self.vendor,
                date: self.date,
                density_gbit: self.density,
                ranks: self.ranks,
                banks: self.banks,
                pins: self.pins,
                hc_first: hc,
                trr_version: self.version,
                detection: self.detection,
                aggressor_capacity: self.capacity,
                per_bank_trr: self.per_bank,
                trr_to_ref_ratio: self.ratio,
                neighbors_refreshed: self.neighbors,
                paper_vulnerable_pct: (v, v),
                paper_max_flips_per_hammer: self.max_flips,
                retention_scale: 1.0,
            });
        }
    }
}

/// The full Table 1: all 45 modules.
pub fn catalog() -> Vec<ModuleSpec> {
    use Vendor::{A, B, C};
    let rows = [
        // Vendor A — counter-based, every 9th REF, per-bank, 16 entries.
        Row {
            vendor: A,
            first_idx: 0,
            count: 1,
            date: "19-50",
            density: 8,
            ranks: 1,
            banks: 16,
            pins: 8,
            hc_first: (16_000, 16_000),
            version: "A_TRR1",
            detection: "Counter-based",
            capacity: Some(16),
            per_bank: true,
            ratio: 9,
            neighbors: 4,
            vulnerable: (73.3, 73.3),
            max_flips: (1.16, 1.16),
        },
        Row {
            vendor: A,
            first_idx: 1,
            count: 5,
            date: "19-36",
            density: 8,
            ranks: 1,
            banks: 8,
            pins: 16,
            hc_first: (13_000, 15_000),
            version: "A_TRR1",
            detection: "Counter-based",
            capacity: Some(16),
            per_bank: true,
            ratio: 9,
            neighbors: 4,
            vulnerable: (99.2, 99.4),
            max_flips: (2.32, 4.73),
        },
        Row {
            vendor: A,
            first_idx: 6,
            count: 2,
            date: "19-45",
            density: 8,
            ranks: 1,
            banks: 8,
            pins: 16,
            hc_first: (13_000, 15_000),
            version: "A_TRR1",
            detection: "Counter-based",
            capacity: Some(16),
            per_bank: true,
            ratio: 9,
            neighbors: 4,
            vulnerable: (99.3, 99.4),
            max_flips: (2.12, 3.86),
        },
        Row {
            vendor: A,
            first_idx: 8,
            count: 2,
            date: "20-07",
            density: 8,
            ranks: 1,
            banks: 16,
            pins: 8,
            hc_first: (12_000, 14_000),
            version: "A_TRR1",
            detection: "Counter-based",
            capacity: Some(16),
            per_bank: true,
            ratio: 9,
            neighbors: 4,
            vulnerable: (74.6, 75.0),
            max_flips: (1.96, 2.96),
        },
        Row {
            vendor: A,
            first_idx: 10,
            count: 3,
            date: "19-51",
            density: 8,
            ranks: 1,
            banks: 16,
            pins: 8,
            hc_first: (12_000, 13_000),
            version: "A_TRR1",
            detection: "Counter-based",
            capacity: Some(16),
            per_bank: true,
            ratio: 9,
            neighbors: 4,
            vulnerable: (74.6, 75.0),
            max_flips: (1.48, 2.86),
        },
        Row {
            vendor: A,
            first_idx: 13,
            count: 2,
            date: "20-31",
            density: 8,
            ranks: 1,
            banks: 8,
            pins: 16,
            hc_first: (11_000, 14_000),
            version: "A_TRR2",
            detection: "Counter-based",
            capacity: Some(16),
            per_bank: true,
            ratio: 9,
            neighbors: 2,
            vulnerable: (94.3, 98.6),
            max_flips: (1.53, 2.78),
        },
        // Vendor B — sampling-based, single shared register (B_TRR3: per bank).
        Row {
            vendor: B,
            first_idx: 0,
            count: 1,
            date: "18-22",
            density: 4,
            ranks: 1,
            banks: 16,
            pins: 8,
            hc_first: (44_000, 44_000),
            version: "B_TRR1",
            detection: "Sampling-based",
            capacity: Some(1),
            per_bank: false,
            ratio: 4,
            neighbors: 2,
            vulnerable: (99.9, 99.9),
            max_flips: (2.13, 2.13),
        },
        Row {
            vendor: B,
            first_idx: 1,
            count: 4,
            date: "20-17",
            density: 4,
            ranks: 1,
            banks: 16,
            pins: 8,
            hc_first: (159_000, 192_000),
            version: "B_TRR1",
            detection: "Sampling-based",
            capacity: Some(1),
            per_bank: false,
            ratio: 4,
            neighbors: 2,
            vulnerable: (23.3, 51.2),
            max_flips: (0.06, 0.11),
        },
        Row {
            vendor: B,
            first_idx: 5,
            count: 2,
            date: "16-48",
            density: 4,
            ranks: 1,
            banks: 16,
            pins: 8,
            hc_first: (44_000, 50_000),
            version: "B_TRR1",
            detection: "Sampling-based",
            capacity: Some(1),
            per_bank: false,
            ratio: 4,
            neighbors: 2,
            vulnerable: (99.9, 99.9),
            max_flips: (1.85, 2.03),
        },
        Row {
            vendor: B,
            first_idx: 7,
            count: 1,
            date: "19-06",
            density: 8,
            ranks: 2,
            banks: 16,
            pins: 8,
            hc_first: (20_000, 20_000),
            version: "B_TRR1",
            detection: "Sampling-based",
            capacity: Some(1),
            per_bank: false,
            ratio: 4,
            neighbors: 2,
            vulnerable: (99.9, 99.9),
            max_flips: (31.14, 31.14),
        },
        Row {
            vendor: B,
            first_idx: 8,
            count: 1,
            date: "18-03",
            density: 4,
            ranks: 1,
            banks: 16,
            pins: 8,
            hc_first: (43_000, 43_000),
            version: "B_TRR1",
            detection: "Sampling-based",
            capacity: Some(1),
            per_bank: false,
            ratio: 4,
            neighbors: 2,
            vulnerable: (99.9, 99.9),
            max_flips: (2.57, 2.57),
        },
        Row {
            vendor: B,
            first_idx: 9,
            count: 4,
            date: "19-48",
            density: 8,
            ranks: 1,
            banks: 16,
            pins: 8,
            hc_first: (42_000, 65_000),
            version: "B_TRR2",
            detection: "Sampling-based",
            capacity: Some(1),
            per_bank: false,
            ratio: 9,
            neighbors: 2,
            vulnerable: (36.3, 38.9),
            max_flips: (16.83, 24.26),
        },
        Row {
            vendor: B,
            first_idx: 13,
            count: 2,
            date: "20-08",
            density: 4,
            ranks: 1,
            banks: 16,
            pins: 8,
            hc_first: (11_000, 14_000),
            version: "B_TRR3",
            detection: "Sampling-based",
            capacity: Some(1),
            per_bank: true,
            ratio: 2,
            neighbors: 4,
            vulnerable: (99.9, 99.9),
            max_flips: (16.20, 18.12),
        },
        // Vendor C — mixed/windowed; C_TRR1 parts use paired rows.
        Row {
            vendor: C,
            first_idx: 0,
            count: 4,
            date: "16-48",
            density: 4,
            ranks: 1,
            banks: 16,
            pins: 8,
            hc_first: (137_000, 194_000),
            version: "C_TRR1",
            detection: "Mix",
            capacity: None,
            per_bank: true,
            ratio: 17,
            neighbors: 2,
            vulnerable: (1.0, 23.2),
            max_flips: (0.05, 0.15),
        },
        Row {
            vendor: C,
            first_idx: 4,
            count: 3,
            date: "17-12",
            density: 8,
            ranks: 1,
            banks: 16,
            pins: 8,
            hc_first: (130_000, 150_000),
            version: "C_TRR1",
            detection: "Mix",
            capacity: None,
            per_bank: true,
            ratio: 17,
            neighbors: 2,
            vulnerable: (7.8, 12.0),
            max_flips: (0.06, 0.08),
        },
        Row {
            vendor: C,
            first_idx: 7,
            count: 2,
            date: "20-31",
            density: 8,
            ranks: 1,
            banks: 8,
            pins: 16,
            hc_first: (40_000, 44_000),
            version: "C_TRR1",
            detection: "Mix",
            capacity: None,
            per_bank: true,
            ratio: 17,
            neighbors: 2,
            vulnerable: (39.8, 41.8),
            max_flips: (9.66, 14.56),
        },
        Row {
            vendor: C,
            first_idx: 9,
            count: 3,
            date: "20-31",
            density: 8,
            ranks: 1,
            banks: 8,
            pins: 16,
            hc_first: (42_000, 53_000),
            version: "C_TRR2",
            detection: "Mix",
            capacity: None,
            per_bank: true,
            ratio: 9,
            neighbors: 2,
            vulnerable: (99.7, 99.7),
            max_flips: (9.30, 32.04),
        },
        Row {
            vendor: C,
            first_idx: 12,
            count: 3,
            date: "20-46",
            density: 16,
            ranks: 1,
            banks: 8,
            pins: 16,
            hc_first: (6_000, 7_000),
            version: "C_TRR3",
            detection: "Mix",
            capacity: None,
            per_bank: true,
            ratio: 8,
            neighbors: 2,
            vulnerable: (99.9, 99.9),
            max_flips: (4.91, 12.64),
        },
    ];
    let mut out = Vec::with_capacity(45);
    for row in &rows {
        row.expand(&mut out);
    }
    out
}

/// Looks a module up by its Table-1 identifier.
pub fn by_id(id: &str) -> Option<ModuleSpec> {
    catalog().into_iter().find(|m| m.id == id)
}

/// All modules of one vendor.
pub fn by_vendor(vendor: Vendor) -> Vec<ModuleSpec> {
    catalog().into_iter().filter(|m| m.vendor == vendor).collect()
}

/// All modules implementing one TRR version (`"A_TRR1"`…`"C_TRR3"`).
pub fn by_version(version: &str) -> Vec<ModuleSpec> {
    catalog().into_iter().filter(|m| m.trr_version == version).collect()
}

/// One representative module per distinct TRR version, in catalog order
/// — what a per-version analysis (like the Table-1 reverse-engineering
/// columns) iterates over.
pub fn version_representatives() -> Vec<ModuleSpec> {
    let mut seen = Vec::new();
    catalog()
        .into_iter()
        .filter(|m| {
            if seen.contains(&m.trr_version) {
                false
            } else {
                seen.push(m.trr_version);
                true
            }
        })
        .collect()
}

/// The three representative modules the paper's Fig. 8 sweeps
/// (A5, B8, C7: the most flip-prone module of each vendor's first TRR
/// version).
pub fn fig8_modules() -> Vec<ModuleSpec> {
    ["A5", "B8", "C7"].iter().map(|id| by_id(id).expect("catalog contains it")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_45_modules() {
        let all = catalog();
        assert_eq!(all.len(), 45);
        let a = all.iter().filter(|m| m.vendor == Vendor::A).count();
        let b = all.iter().filter(|m| m.vendor == Vendor::B).count();
        let c = all.iter().filter(|m| m.vendor == Vendor::C).count();
        assert_eq!((a, b, c), (15, 15, 15));
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let all = catalog();
        let mut ids: Vec<&str> = all.iter().map(|m| m.id.as_str()).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
        assert_eq!(all[0].id, "A0");
        assert_eq!(all[44].id, "C14");
    }

    #[test]
    fn table1_spot_checks() {
        let a0 = by_id("A0").unwrap();
        assert_eq!(a0.hc_first, 16_000);
        assert_eq!(a0.banks, 16);
        assert_eq!(a0.neighbors_refreshed, 4);
        let b13 = by_id("B13").unwrap();
        assert_eq!(b13.trr_version, "B_TRR3");
        assert_eq!(b13.trr_to_ref_ratio, 2);
        assert!(b13.per_bank_trr);
        let c12 = by_id("C12").unwrap();
        assert_eq!(c12.density_gbit, 16);
        assert_eq!(c12.trr_to_ref_ratio, 8);
    }

    #[test]
    fn rows_per_bank_matches_section_7_3() {
        // §7.3: 16-bank 8 Gbit parts have 32K rows/bank, 8-bank 64K.
        assert_eq!(by_id("A0").unwrap().rows_per_bank(), 32 * 1024);
        assert_eq!(by_id("A5").unwrap().rows_per_bank(), 64 * 1024);
        assert_eq!(by_id("B0").unwrap().rows_per_bank(), 16 * 1024);
        assert_eq!(by_id("C12").unwrap().rows_per_bank(), 128 * 1024);
    }

    #[test]
    fn hc_first_interpolates_across_ranges() {
        assert_eq!(by_id("A1").unwrap().hc_first, 13_000);
        assert_eq!(by_id("A5").unwrap().hc_first, 15_000);
        assert_eq!(by_id("B1").unwrap().hc_first, 159_000);
        assert_eq!(by_id("B4").unwrap().hc_first, 192_000);
    }

    #[test]
    fn built_modules_carry_their_engine_and_refresh() {
        let a5 = by_id("A5").unwrap().build_scaled(1024, 3);
        assert_eq!(a5.engine_name(), "A_TRR1");
        assert_eq!(a5.config().refresh.period_refs, 3758);
        let b0 = by_id("B0").unwrap().build_scaled(1024, 3);
        assert_eq!(b0.engine_name(), "B_TRR1");
        assert_eq!(b0.config().refresh.period_refs, 8192);
    }

    #[test]
    fn registry_builds_share_one_artifact() {
        let registry = std::sync::Arc::new(obs::MetricsRegistry::new());
        let mut m = by_id("A5").unwrap().build_scaled_with_registry(
            1024,
            3,
            std::sync::Arc::clone(&registry),
        );
        m.hammer(dram_sim::Bank::new(0), dram_sim::RowAddr::new(10), 50).unwrap();
        assert_eq!(registry.counter("dram.cmd.act").get(), 50);
        // Attaching also re-registers the engine's counters on the
        // shared registry.
        let names: Vec<String> = registry.counters_snapshot().into_iter().map(|(n, _)| n).collect();
        assert!(names.iter().any(|n| n == "trr.A_TRR1.detections"), "{names:?}");
    }

    #[test]
    fn c_trr1_parts_are_paired() {
        assert_eq!(by_id("C7").unwrap().topology(), Topology::Paired);
        assert_eq!(by_id("C9").unwrap().topology(), Topology::Linear);
        assert_eq!(by_id("A5").unwrap().topology(), Topology::Linear);
    }

    #[test]
    fn fig8_representatives() {
        let reps = fig8_modules();
        assert_eq!(reps.len(), 3);
        assert_eq!(reps[0].id, "A5");
        assert_eq!(reps[1].trr_version, "B_TRR1");
        assert_eq!(reps[2].trr_version, "C_TRR1");
    }

    #[test]
    fn scaled_builds_keep_valid_mappings() {
        let a0 = by_id("A0").unwrap();
        assert_eq!(a0.mapping(), dram_sim::RowMapping::msb_xor(3, 0b110));
        // The MsbXor scheme stays a bijection at any 16-aligned size, so
        // scaled builds keep it…
        let scaled = a0.build_scaled(512, 1);
        assert_eq!(scaled.config().mapping, dram_sim::RowMapping::msb_xor(3, 0b110));
        // …and only misaligned sizes fall back to identity.
        let odd = a0.build_scaled(1_000, 1);
        assert_eq!(odd.config().mapping, dram_sim::RowMapping::Identity);
        let full = a0.build(1);
        assert_eq!(full.config().mapping, dram_sim::RowMapping::msb_xor(3, 0b110));
    }

    #[test]
    fn vendor_and_version_filters() {
        assert_eq!(by_vendor(Vendor::A).len(), 15);
        assert_eq!(by_version("B_TRR2").len(), 4);
        assert_eq!(by_version("C_TRR1").len(), 9);
        assert!(by_version("X_TRR9").is_empty());
        let reps = version_representatives();
        assert_eq!(reps.len(), 8);
        let versions: Vec<&str> = reps.iter().map(|m| m.trr_version).collect();
        assert_eq!(
            versions,
            ["A_TRR1", "A_TRR2", "B_TRR1", "B_TRR2", "B_TRR3", "C_TRR1", "C_TRR2", "C_TRR3"]
        );
    }

    #[test]
    fn retention_scale_moves_the_retention_window() {
        let anchor = by_id("A5").unwrap();
        let base = anchor.physics();
        assert_eq!(base.retention_min, Nanos::from_ms(80));
        assert_eq!(base.retention_max, Nanos::from_ms(2_000));
        let mut scaled = anchor.clone();
        scaled.retention_scale = 1.25;
        let physics = scaled.physics();
        assert_eq!(physics.retention_min, Nanos::from_ms(100));
        assert_eq!(physics.retention_max, Nanos::from_ms(2_500));
        // The HC calibration is untouched by retention spread.
        assert_eq!(physics.hc_first, base.hc_first);
        assert_eq!(physics.hc_lambda, base.hc_lambda);
    }

    #[test]
    fn physics_flip_caps_track_paper_flip_ceilings() {
        let weak = by_id("C0").unwrap().physics(); // 0.15 flips/hammer
        let strong = by_id("B7").unwrap().physics(); // 31.14 flips/hammer
        assert!(weak.hc_max_cells < strong.hc_max_cells);
        assert_eq!(by_id("A5").unwrap().physics().hc_first, 15_000.0);
    }
}
