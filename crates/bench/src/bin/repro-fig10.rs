//! Regenerates Fig. 10 of the paper: the distribution of 8-byte
//! datawords by RowHammer bit-flip count, per module — plus the §7.4
//! ECC verdicts (pass `--ecc`): how SECDED, Chipkill, and Reed-Solomon
//! codes fare against the measured distributions.
//!
//! Usage: repro-fig10 [--rows N] [--samples N] [--windows N]
//!                    [--modules A5,...] [--ecc] [--threads N]
//!                    [--faults none|mild|hostile] [--fault-seed N]
//!                    [--metrics-out PATH] [--trace-out PATH] [--trace-chrome PATH]
//!                    [--trace-rows SPEC]

use attacks::eval::EvalConfig;
use ecc::{analyze_with_registry, CodeKind};
use faults::FaultProfile;
use utrr_bench::{
    arg_flag, arg_value, attack_columns_par, emit_metrics, emit_trace, fault_args, install_trace,
    metrics_out_path, par_config, run_registry, threads_arg, trace_args,
};
use utrr_modules::{catalog, ModuleSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows: u32 = arg_value(&args, "--rows").and_then(|v| v.parse().ok()).unwrap_or(2_048);
    let samples: u32 = arg_value(&args, "--samples").and_then(|v| v.parse().ok()).unwrap_or(48);
    let windows: u32 = arg_value(&args, "--windows").and_then(|v| v.parse().ok()).unwrap_or(2);
    let filter = arg_value(&args, "--modules");
    let run_ecc = arg_flag(&args, "--ecc");
    let metrics_path = metrics_out_path(&args);
    let (fault_profile, fault_seed) = fault_args(&args);
    let trace = trace_args(&args);
    let registry = run_registry();
    install_trace(&registry, &trace);
    let pool = par_config(threads_arg(&args), &registry);
    let config = EvalConfig {
        sample_count: samples,
        windows,
        scaled_rows: Some(rows),
        registry: Some(std::sync::Arc::clone(&registry)),
        fault_profile,
        fault_seed,
        ..EvalConfig::quick(samples)
    };

    println!("# Fig. 10 reproduction — 8-byte datawords by bit-flip count");
    println!(
        "# ({samples} sampled victim rows per bank, {rows} rows/bank, {windows} refresh windows)"
    );
    if fault_profile != FaultProfile::None {
        println!("# fault injection: {fault_profile} profile, seed {fault_seed}");
    }
    println!();

    let modules: Vec<ModuleSpec> = catalog()
        .into_iter()
        .filter(|spec| match &filter {
            Some(list) => list.split(',').any(|id| id == spec.id),
            None => true,
        })
        .collect();
    // One worker-pool task per module; histograms (and the sequential
    // ECC analysis below) print in catalog order.
    let sweeps = attack_columns_par(&modules, &config, &pool);

    let mut global_max_flips_per_word = 0u32;
    for (spec, sweep) in modules.iter().zip(&sweeps) {
        let hist = sweep.dataword_histogram();
        let counts: Vec<String> = hist.iter().map(|&(k, n)| format!("{k}:{n}")).collect();
        println!(
            "  {:<7} {:<9} words(flips:count) {}",
            spec.id,
            spec.trr_version,
            counts.join(" ")
        );
        global_max_flips_per_word = global_max_flips_per_word.max(sweep.max_flips_per_dataword());

        if run_ecc && !hist.is_empty() {
            for code in [
                CodeKind::Secded,
                CodeKind::Chipkill,
                CodeKind::ReedSolomon { parity: 2 },
                CodeKind::ReedSolomon { parity: 7 },
            ] {
                let report = analyze_with_registry(code, &hist, 17, &registry);
                println!(
                    "          {:<14} corrected {:>8}  detected {:>8}  SILENT {:>6}  {}",
                    code.to_string(),
                    report.corrected,
                    report.detected,
                    report.silent,
                    if report.fully_protects() { "protects" } else { "DEFEATED" },
                );
            }
        }
    }
    println!();
    println!(
        "# max flips in a single 8-byte dataword across modules: {global_max_flips_per_word} (paper: 7)"
    );
    println!(
        "# RS parity symbols needed for guaranteed detection of the worst word: {:?} (paper: ≥7)",
        ecc::rs_parity_needed(&[(global_max_flips_per_word, 1)])
    );
    if run_ecc {
        println!(
            "# §7.4 conclusion check: SECDED/Chipkill are defeated wherever words carry ≥3 flips;"
        );
        println!("# only the 7-parity Reed-Solomon code protects every measured distribution.");
    }

    emit_trace(&registry, &trace).expect("trace artifact is writable");
    emit_metrics(&registry, metrics_path.as_deref()).expect("metrics artifact is writable");
}
