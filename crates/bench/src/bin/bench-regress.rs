//! Perf-trajectory regression gate.
//!
//! Compares a fresh `utrr-bench/1` artifact (from `repro-table1
//! --bench-out`) against the committed `BENCH_sweep.json` baseline and
//! fails when any per-phase wall-clock or the `device_ns_per_act`
//! micro-benchmark regressed past the threshold. Optionally appends the
//! current record to `BENCH_history.jsonl` so the perf trajectory of
//! the repo stays on file.
//!
//! Usage:
//!   bench-regress --current PATH[,PATH...] [--baseline PATH]
//!                 [--threshold PCT] [--history PATH] [--update-baseline]
//!
//! `--current` accepts a comma-separated list of artifacts (e.g. the
//! `repro-table1` and `repro-fleet` runs of one CI job); their phases
//! and scalars are unioned into one record before the comparison, and
//! the baseline/history writes store the merged artifact. A phase or
//! scalar name appearing in two artifacts is a hard error — a silent
//! last-wins would hide a real measurement.
//!
//! The threshold (percent, default 15) can also come from the
//! `UTRR_BENCH_THRESHOLD` environment variable; the explicit flag wins.
//! Phases or scalars present on only one side are reported as warnings
//! in both directions — a renamed or dropped measurement never slips
//! through silently. `--update-baseline` accepts the current run as the
//! new baseline: it rewrites the baseline file with the current artifact
//! and appends the record to the history (default `BENCH_history.jsonl`)
//! in one step, and never fails on regressions (the comparison is still
//! printed for the record).
//! Exits 1 on regression, 2 on malformed input, 0 otherwise.

use obs::jsonl::{parse_json, JsonValue};
use utrr_bench::{arg_flag, arg_value};

struct BenchRecord {
    threads: usize,
    phases: Vec<(String, f64)>,
    scalars: Vec<(String, f64)>,
}

fn load(path: &str) -> BenchRecord {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let value = parse_json(text.trim()).unwrap_or_else(|e| {
        eprintln!("error: {path} is not valid JSON: {e}");
        std::process::exit(2);
    });
    if value.get("schema").and_then(JsonValue::as_str) != Some("utrr-bench/1") {
        eprintln!("error: {path} is not a utrr-bench/1 artifact");
        std::process::exit(2);
    }
    let phases = value
        .get("phases")
        .and_then(JsonValue::as_array)
        .map(|entries| {
            entries
                .iter()
                .filter_map(|p| {
                    Some((p.get("name")?.as_str()?.to_string(), p.get("wall_ms")?.as_f64()?))
                })
                .collect()
        })
        .unwrap_or_default();
    let scalars = match value.get("scalars") {
        Some(JsonValue::Obj(map)) => {
            map.iter().filter_map(|(k, v)| Some((k.clone(), v.as_f64()?))).collect()
        }
        _ => Vec::new(),
    };
    let threads = value.get("threads").and_then(JsonValue::as_u64).unwrap_or(0) as usize;
    BenchRecord { threads, phases, scalars }
}

/// Loads one or more comma-separated current artifacts, unioning their
/// phases and scalars. Returns the merged record plus the artifact text
/// the baseline/history writes should store (the raw file for a single
/// artifact, a re-rendered merged one otherwise).
fn load_current(spec: &str) -> (BenchRecord, String) {
    let paths: Vec<&str> = spec.split(',').filter(|p| !p.is_empty()).collect();
    if paths.is_empty() {
        eprintln!("error: --current lists no artifacts");
        std::process::exit(2);
    }
    if let [path] = paths[..] {
        let text = std::fs::read_to_string(path).expect("just loaded");
        return (load(path), format!("{}\n", text.trim()));
    }
    let mut merged = BenchRecord { threads: 0, phases: Vec::new(), scalars: Vec::new() };
    for path in paths {
        let part = load(path);
        if merged.threads == 0 {
            merged.threads = part.threads;
        }
        for (name, ms) in part.phases {
            if merged.phases.iter().any(|(n, _)| *n == name) {
                eprintln!("error: phase {name} appears in more than one --current artifact");
                std::process::exit(2);
            }
            merged.phases.push((name, ms));
        }
        for (name, value) in part.scalars {
            if merged.scalars.iter().any(|(n, _)| *n == name) {
                eprintln!("error: scalar {name} appears in more than one --current artifact");
                std::process::exit(2);
            }
            merged.scalars.push((name, value));
        }
    }
    // Re-render through the artifact writer so the stored merged record
    // is schema-identical to a directly produced one.
    let mut artifact = utrr_bench::BenchPhases::new(merged.threads);
    for (name, ms) in &merged.phases {
        artifact.record(name, std::time::Duration::from_secs_f64(ms / 1e3));
    }
    for (name, value) in &merged.scalars {
        artifact.scalar(name, *value);
    }
    (merged, artifact.to_json())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(current_path) = arg_value(&args, "--current") else {
        eprintln!("usage: bench-regress --current PATH[,PATH...] [--baseline PATH] [--threshold PCT] [--history PATH] [--update-baseline]");
        std::process::exit(2);
    };
    let update_baseline = arg_flag(&args, "--update-baseline");
    let baseline_path =
        arg_value(&args, "--baseline").unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let threshold: f64 = arg_value(&args, "--threshold")
        .or_else(|| std::env::var("UTRR_BENCH_THRESHOLD").ok())
        .and_then(|v| v.parse().ok())
        .unwrap_or(15.0);

    let baseline = load(&baseline_path);
    let (current, current_artifact) = load_current(&current_path);

    println!("# bench-regress — current {current_path} vs baseline {baseline_path} (threshold {threshold}%)");
    let mut regressions = 0u32;
    let mut compared = 0u32;
    let mut compare = |name: &str, base: f64, cur: f64, unit: &str| {
        compared += 1;
        let delta_pct = if base > 0.0 { 100.0 * (cur - base) / base } else { 0.0 };
        // Rate metrics (`*_per_sec`) regress when they *drop*; everything
        // else (wall-clock, ns-per-op) regresses when it grows.
        let worse_pct = if name.ends_with("_per_sec") { -delta_pct } else { delta_pct };
        let verdict = if worse_pct > threshold {
            regressions += 1;
            "REGRESSED"
        } else if worse_pct < -threshold {
            "improved"
        } else {
            "ok"
        };
        println!(
            "  {name:<24} {base:>12.3} -> {cur:>12.3} {unit:<5} {delta_pct:>+7.1}%  {verdict}"
        );
    };
    let mut warnings = 0u32;
    for (name, base) in &baseline.phases {
        match current.phases.iter().find(|(n, _)| n == name) {
            Some((_, cur)) => compare(name, *base, *cur, "ms"),
            None => {
                warnings += 1;
                eprintln!(
                    "warning: phase {name} is in the baseline but missing from the current run"
                );
            }
        }
    }
    for (name, _) in &current.phases {
        if !baseline.phases.iter().any(|(n, _)| n == name) {
            warnings += 1;
            eprintln!("warning: phase {name} is in the current run but missing from the baseline");
        }
    }
    for (name, base) in &baseline.scalars {
        match current.scalars.iter().find(|(n, _)| n == name) {
            Some((_, cur)) => {
                let unit = if name.ends_with("_per_sec") { "/s" } else { "ns" };
                compare(name, *base, *cur, unit);
            }
            None => {
                warnings += 1;
                eprintln!(
                    "warning: scalar {name} is in the baseline but missing from the current run"
                );
            }
        }
    }
    for (name, _) in &current.scalars {
        if !baseline.scalars.iter().any(|(n, _)| n == name) {
            warnings += 1;
            eprintln!("warning: scalar {name} is in the current run but missing from the baseline");
        }
    }
    if compared == 0 && !update_baseline {
        eprintln!("error: nothing to compare — baseline and current share no phases or scalars");
        std::process::exit(2);
    }
    if warnings > 0 {
        println!("# {warnings} coverage warning(s) — see stderr");
    }

    let history_path = arg_value(&args, "--history")
        .or_else(|| update_baseline.then(|| "BENCH_history.jsonl".to_string()));
    if let Some(history_path) = history_path {
        let mut record = String::from(current_artifact.trim());
        record.push('\n');
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&history_path)
            .unwrap_or_else(|e| {
                eprintln!("error: cannot open {history_path}: {e}");
                std::process::exit(2);
            });
        file.write_all(record.as_bytes()).expect("history record appends");
        println!("# appended record to {history_path}");
    }

    if update_baseline {
        std::fs::write(&baseline_path, &current_artifact).unwrap_or_else(|e| {
            eprintln!("error: cannot rewrite baseline {baseline_path}: {e}");
            std::process::exit(2);
        });
        println!("# baseline {baseline_path} updated from {current_path}");
        if regressions > 0 {
            println!("# {regressions} regression(s) past {threshold}% accepted into the baseline");
        }
        return;
    }

    if regressions > 0 {
        println!("# {regressions} regression(s) past {threshold}% — failing");
        std::process::exit(1);
    }
    println!("# no regressions past {threshold}%");
}
