//! Regenerates Fig. 8 of the paper: the distribution of bit flips per
//! DRAM row as the per-aggressor hammer count sweeps, for the three
//! representative modules A5, B8, and C7.
//!
//! The paper's box-and-whisker panels become ASCII box lines: `-` spans
//! min..max, `=` spans the inter-quartile range, `#` marks the median.
//!
//! Usage: repro-fig8 [--rows N] [--samples N] [--windows N] [--threads N]
//!                   [--faults none|mild|hostile] [--fault-seed N]
//!                   [--metrics-out PATH] [--trace-out PATH] [--trace-chrome PATH]
//!                   [--trace-rows SPEC]

use attacks::eval::EvalConfig;
use faults::FaultProfile;
use utrr_bench::{
    arg_value, boxplot_line, emit_metrics, emit_trace, fault_args, fig8_sweep_par, install_trace,
    metrics_out_path, par_config, run_registry, threads_arg, trace_args,
};
use utrr_modules::fig8_modules;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows: u32 = arg_value(&args, "--rows").and_then(|v| v.parse().ok()).unwrap_or(2_048);
    let samples: u32 = arg_value(&args, "--samples").and_then(|v| v.parse().ok()).unwrap_or(32);
    let windows: u32 = arg_value(&args, "--windows").and_then(|v| v.parse().ok()).unwrap_or(2);
    let metrics_path = metrics_out_path(&args);
    let (fault_profile, fault_seed) = fault_args(&args);
    let trace = trace_args(&args);
    let registry = run_registry();
    install_trace(&registry, &trace);
    let pool = par_config(threads_arg(&args), &registry);
    let config = EvalConfig {
        sample_count: samples,
        windows,
        scaled_rows: Some(rows),
        registry: Some(std::sync::Arc::clone(&registry)),
        fault_profile,
        fault_seed,
        ..EvalConfig::quick(samples)
    };

    println!("# Fig. 8 reproduction — flips per row vs hammers per aggressor per REF");
    println!("# ({samples} victim rows per point, {rows} rows/bank, {windows} refresh windows)");
    if fault_profile != FaultProfile::None {
        println!("# fault injection: {fault_profile} profile, seed {fault_seed}");
    }

    for spec in fig8_modules() {
        // Sweep the same region the paper shows: a handful of points
        // around each vendor's optimum.
        let hammer_values: Vec<f64> = match spec.vendor {
            utrr_modules::Vendor::A => vec![12.0, 18.0, 24.0, 36.0, 50.0, 65.0, 70.0, 74.0],
            _ => vec![20.0, 35.0, 50.0, 65.0, 73.0],
        };
        println!();
        println!("## Module {} ({})", spec.id, spec.trr_version);
        let points = fig8_sweep_par(&spec, &hammer_values, &config, &pool);
        let max_flips = points.iter().map(|p| p.quartiles.4).max().unwrap_or(1).max(1);
        println!("  hammers/aggr/REF   min   q1  med   q3  max   0 {:>38} {max_flips}", "flips →");
        for p in &points {
            let (min, q1, med, q3, max) = p.quartiles;
            println!(
                "  {:>16.1} {:>5} {:>4} {:>4} {:>4} {:>4}   |{}|",
                p.hammers,
                min,
                q1,
                med,
                q3,
                max,
                boxplot_line(p.quartiles, max_flips, 40)
            );
        }
        let best = points.iter().max_by_key(|p| p.quartiles.4).expect("points exist");
        println!(
            "  → most flips at ≈{:.0} hammers/aggressor/REF (paper: A at 26, B at 68, C at 65)",
            best.hammers
        );
    }

    emit_trace(&registry, &trace).expect("trace artifact is writable");
    emit_metrics(&registry, metrics_path.as_deref()).expect("metrics artifact is writable");
}
