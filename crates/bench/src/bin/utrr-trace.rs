//! Flight-recorder trace explorer.
//!
//! `explain` renders the causal chain behind each verdict in a JSONL
//! trace (schema `utrr-trace/1`) as a per-row timeline — ACT → TRR
//! detection → targeted REF → flip/no-flip read-back → verdict — by
//! walking the verdict's evidence links transitively. `chrome` converts
//! a JSONL trace into Chrome `trace_event` JSON for chrome://tracing or
//! Perfetto (the repro binaries can also emit that directly via
//! `--trace-chrome`).
//!
//! Usage:
//!   utrr-trace explain TRACE.jsonl [--row N] [--limit N]
//!   utrr-trace chrome TRACE.jsonl OUT.json

use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

use obs::{TraceEvent, TraceFilter, TraceKind};
use utrr_bench::arg_value;

/// Prints an accumulated report, ignoring broken pipes (`… | head`).
fn flush_report(report: &str) {
    use std::io::Write as _;
    let _ = std::io::stdout().write_all(report.as_bytes());
}

fn usage() -> ! {
    eprintln!("usage: utrr-trace explain TRACE.jsonl [--row N] [--limit N]");
    eprintln!("       utrr-trace chrome TRACE.jsonl OUT.json");
    std::process::exit(2);
}

fn load(path: &str) -> (Vec<TraceEvent>, u64) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(1);
    });
    obs::trace::read_trace_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("error: {path} is not a {} trace: {e}", obs::TRACE_SCHEMA);
        std::process::exit(1);
    })
}

/// Transitive evidence closure of one verdict: the cited events, the
/// events *they* cite (sub-verdicts cite read-checks), and so on.
fn evidence_closure(root: &TraceEvent, by_id: &HashMap<u64, &TraceEvent>) -> Vec<u64> {
    let mut seen = BTreeSet::new();
    let mut frontier: Vec<u64> = root.evidence.clone();
    while let Some(id) = frontier.pop() {
        if seen.insert(id) {
            if let Some(event) = by_id.get(&id) {
                frontier.extend(event.evidence.iter().copied());
            }
        }
    }
    seen.into_iter().collect()
}

fn render_event(report: &mut String, event: &TraceEvent, marker: &str) {
    let row = event.row.map_or("    -".to_string(), |r| format!("{r:>5}"));
    let fields: Vec<String> = event.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
    let mut line = format!(
        "  {marker} {:>14} ns  #{:<8} {:<14} bank {:<2} row {row}  {}",
        event.t_sim,
        event.id,
        event.kind.as_str(),
        event.bank,
        fields.join(" "),
    );
    if !event.detail.is_empty() {
        line.push_str(&format!("  \"{}\"", event.detail));
    }
    let _ = writeln!(report, "{}", line.trim_end());
}

fn explain(path: &str, args: &[String]) {
    let row_filter: Option<u32> = arg_value(args, "--row").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --row expects a physical row index");
            std::process::exit(2);
        })
    });
    let limit: usize = arg_value(args, "--limit").and_then(|v| v.parse().ok()).unwrap_or(20);

    let (events, dropped) = load(path);
    let mut report = String::new();
    let _ = writeln!(report, "# {} — {} events, {} dropped", path, events.len(), dropped);
    let by_id: HashMap<u64, &TraceEvent> = events.iter().map(|e| (e.id, e)).collect();

    // A verdict is "about" a row when it carries that row directly or
    // when any event in its evidence closure does (within the filter
    // radius, so aggressors of a tracked victim count).
    let near = |event: &TraceEvent, row: u32| {
        event.row.is_some_and(|r| r.abs_diff(row) <= TraceFilter::RADIUS)
    };
    let verdicts: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.kind == TraceKind::Verdict)
        .filter(|e| match row_filter {
            None => true,
            Some(row) => {
                near(e, row)
                    || evidence_closure(e, &by_id)
                        .iter()
                        .any(|id| by_id.get(id).is_some_and(|ev| near(ev, row)))
            }
        })
        .collect();

    if verdicts.is_empty() {
        match row_filter {
            Some(row) => {
                let _ = writeln!(report, "no verdicts touch row {row}");
            }
            None => {
                let _ = writeln!(report, "no verdicts in trace");
            }
        }
        flush_report(&report);
        return;
    }
    let _ = writeln!(
        report,
        "# {} verdict(s){}{}",
        verdicts.len(),
        row_filter.map_or(String::new(), |r| format!(" touching row {r}")),
        if verdicts.len() > limit { format!(", showing first {limit}") } else { String::new() },
    );

    for verdict in verdicts.iter().take(limit) {
        let _ = writeln!(report);
        render_event(&mut report, verdict, "==");
        let closure = evidence_closure(verdict, &by_id);
        let mut chain: Vec<&TraceEvent> =
            closure.iter().filter_map(|id| by_id.get(id).copied()).collect();
        let missing = closure.len() - chain.len();
        chain.sort_by_key(|e| (e.t_sim, e.id));
        for event in chain {
            let marker = if event.kind == TraceKind::Verdict { "--" } else { "  " };
            render_event(&mut report, event, marker);
        }
        if missing > 0 {
            let _ = writeln!(report, "     ({missing} cited event(s) no longer in the ring)");
        }
    }
    flush_report(&report);
}

fn chrome(trace_path: &str, out_path: &str) {
    let (events, dropped) = load(trace_path);
    obs::trace::write_chrome_trace_to_path(&events, std::path::Path::new(out_path)).unwrap_or_else(
        |e| {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(1);
        },
    );
    println!("{out_path}: {} events ({dropped} dropped before export)", events.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("explain") => match args.get(1) {
            Some(path) => explain(path, &args[2..]),
            None => usage(),
        },
        Some("chrome") => match (args.get(1), args.get(2)) {
            (Some(trace_path), Some(out_path)) => chrome(trace_path, out_path),
            _ => usage(),
        },
        _ => usage(),
    }
}
