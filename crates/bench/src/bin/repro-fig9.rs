//! Regenerates Fig. 9 of the paper: the percentage of rows in one bank
//! that experience at least one RowHammer bit flip under the vendor's
//! custom access pattern, for all 45 modules.
//!
//! Usage: repro-fig9 [--rows N] [--samples N] [--windows N] [--modules A5,...]
//!                   [--threads N] [--faults none|mild|hostile] [--fault-seed N]
//!                   [--metrics-out PATH] [--trace-out PATH] [--trace-chrome PATH]
//!                   [--trace-rows SPEC]

use attacks::eval::EvalConfig;
use faults::FaultProfile;
use utrr_bench::{
    arg_value, attack_columns_par, emit_metrics, emit_trace, fault_args, install_trace,
    metrics_out_path, par_config, run_registry, threads_arg, trace_args,
};
use utrr_modules::{catalog, ModuleSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows: u32 = arg_value(&args, "--rows").and_then(|v| v.parse().ok()).unwrap_or(2_048);
    let samples: u32 = arg_value(&args, "--samples").and_then(|v| v.parse().ok()).unwrap_or(48);
    let windows: u32 = arg_value(&args, "--windows").and_then(|v| v.parse().ok()).unwrap_or(2);
    let filter = arg_value(&args, "--modules");
    let metrics_path = metrics_out_path(&args);
    let (fault_profile, fault_seed) = fault_args(&args);
    let trace = trace_args(&args);
    let registry = run_registry();
    install_trace(&registry, &trace);
    let pool = par_config(threads_arg(&args), &registry);
    let config = EvalConfig {
        sample_count: samples,
        windows,
        scaled_rows: Some(rows),
        registry: Some(std::sync::Arc::clone(&registry)),
        fault_profile,
        fault_seed,
        ..EvalConfig::quick(samples)
    };

    println!("# Fig. 9 reproduction — % vulnerable DRAM rows per module");
    println!("# ({samples} sampled victim positions per bank, {rows} rows/bank, {windows} refresh windows)");
    if fault_profile != FaultProfile::None {
        println!("# fault injection: {fault_profile} profile, seed {fault_seed}");
    }
    println!();
    println!("  module  version    measured   paper        0%        50%       100%");

    let modules: Vec<ModuleSpec> = catalog()
        .into_iter()
        .filter(|spec| match &filter {
            Some(list) => list.split(',').any(|id| id == spec.id),
            None => true,
        })
        .collect();
    // One worker-pool task per module; rows print in catalog order.
    let sweeps = attack_columns_par(&modules, &config, &pool);

    let mut fully_vulnerable = 0u32;
    let mut total = 0u32;
    for (spec, sweep) in modules.iter().zip(&sweeps) {
        let pct = sweep.vulnerable_pct();
        let bar_len = (pct / 2.5) as usize;
        println!(
            "  {:<7} {:<9} {:>6.1}%   {:>4.1}–{:>5.1}%  |{:<40}|",
            spec.id,
            spec.trr_version,
            pct,
            spec.paper_vulnerable_pct.0,
            spec.paper_vulnerable_pct.1,
            "#".repeat(bar_len.min(40)),
        );
        total += 1;
        if pct > 99.0 {
            fully_vulnerable += 1;
        }
    }
    println!();
    println!(
        "# {fully_vulnerable}/{total} modules above 99% (paper: 21 of 45 above 99.9%); every module shows bit flips"
    );

    emit_trace(&registry, &trace).expect("trace artifact is writable");
    emit_metrics(&registry, metrics_path.as_deref()).expect("metrics artifact is writable");
}
