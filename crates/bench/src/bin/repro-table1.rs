//! Regenerates Table 1 of the paper: per-module TRR reverse engineering
//! (U-TRR's findings vs the planted ground truth) plus the attack
//! columns (measured HC_first, % vulnerable rows, max flips per row per
//! hammer).
//!
//! Usage:
//!   repro-table1 [--rows N] [--samples N] [--windows N] [--modules A5,B0,...]
//!                [--per-module-re] [--attack-only] [--threads N]
//!                [--faults none|mild|hostile] [--fault-seed N]
//!                [--metrics-out PATH] [--bench-out PATH] [--trace-out PATH]
//!                [--trace-chrome PATH] [--trace-rows SPEC]
//!
//! By default the reverse-engineering suite runs once per *TRR version*
//! (modules sharing a version share their engine, so the findings are
//! identical); `--per-module-re` widens the memoization key to the full
//! reverse-engineering inputs (geometry, physics, mapping, topology,
//! refresh schedule, engine), so the suite still only re-runs when the
//! inputs actually differ.
//!
//! `--threads N` (or `UTRR_THREADS`) fans the reverse-engineering and
//! attack phases over a worker pool; results are bit-identical to a
//! sequential run for any thread count. `--bench-out PATH` writes a
//! `BENCH_sweep.json` baseline artifact recording wall-clock per phase
//! plus a per-command device cost micro-benchmark.

use std::collections::HashMap;

use attacks::eval::{BankSweep, EvalConfig};
use faults::FaultProfile;
use utrr_bench::{
    arg_flag, arg_value, attack_columns, detection_label, device_ns_per_act, emit_metrics,
    emit_trace, fault_args, install_trace, measure_hc_first_faulty, metrics_out_path, par_config,
    re_input_key, reverse_engineer_module_resilient, run_registry, threads_arg, trace_args,
    BenchPhases, ReOutcome,
};
use utrr_modules::{catalog, ModuleSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows: u32 = arg_value(&args, "--rows").and_then(|v| v.parse().ok()).unwrap_or(2_048);
    // Row Scout needs space for 18 pair groups plus the neighbour probe.
    let rows = if rows < 1_024 {
        eprintln!("note: --rows {rows} is too small for the reverse-engineering suite; using 1024");
        1_024
    } else {
        rows
    };
    let samples: u32 = arg_value(&args, "--samples").and_then(|v| v.parse().ok()).unwrap_or(48);
    let windows: u32 = arg_value(&args, "--windows").and_then(|v| v.parse().ok()).unwrap_or(2);
    let filter = arg_value(&args, "--modules");
    let per_module_re = arg_flag(&args, "--per-module-re");
    let attack_only = arg_flag(&args, "--attack-only");
    let metrics_path = metrics_out_path(&args);
    let bench_path = arg_value(&args, "--bench-out").map(std::path::PathBuf::from);
    let (fault_profile, fault_seed) = fault_args(&args);
    let trace = trace_args(&args);
    let threads = threads_arg(&args);
    let registry = run_registry();
    install_trace(&registry, &trace);
    let pool = par_config(threads, &registry);
    let mut bench = BenchPhases::new(threads);

    let modules: Vec<ModuleSpec> = catalog()
        .into_iter()
        .filter(|m| match &filter {
            Some(list) => list.split(',').any(|id| id == m.id),
            None => true,
        })
        .collect();

    println!("# Table 1 reproduction — {} modules, {rows} rows/bank (scaled), {samples} victim samples, {windows} refresh windows", modules.len());
    if fault_profile != FaultProfile::None {
        println!("# fault injection: {fault_profile} profile, seed {fault_seed}");
    }
    println!();
    println!("## Reverse-engineering columns (U-TRR findings vs planted ground truth)");
    println!();
    println!(
        "| Module | Version | Ratio (GT) | Neighbors (GT) | Detection (GT) | Per-Bank (GT) | Refresh period (GT) | Match |"
    );
    println!("|---|---|---|---|---|---|---|---|");

    if !attack_only {
        // Memoize one reverse-engineering run per distinct key: the TRR
        // version by default, the full input set with `--per-module-re`
        // (a module whose mapping/physics/geometry differ still gets its
        // own run). Distinct keys run in parallel, first-appearance
        // order, so the printed table is identical for any thread count.
        let key_of = |spec: &ModuleSpec| -> String {
            if per_module_re {
                re_input_key(spec)
            } else {
                spec.trr_version.to_string()
            }
        };
        let mut unique: Vec<(String, ModuleSpec)> = Vec::new();
        for spec in &modules {
            let key = key_of(spec);
            if !unique.iter().any(|(k, _)| *k == key) {
                unique.push((key, spec.clone()));
            }
        }
        let outcomes: Vec<Option<ReOutcome>> = bench.time("reverse_engineering", || {
            par::par_map(&pool, &unique, |(_, spec)| {
                reverse_engineer_module_resilient(
                    spec,
                    rows,
                    7,
                    Some(&registry),
                    fault_profile,
                    fault_seed,
                )
            })
        });
        let re_cache: HashMap<&str, &Option<ReOutcome>> = unique
            .iter()
            .zip(outcomes.iter())
            .map(|((key, _), outcome)| (key.as_str(), outcome))
            .collect();
        let hostile = fault_profile == FaultProfile::Hostile;
        let mut tiers = [0u64; 3];
        for spec in &modules {
            match re_cache[key_of(spec).as_str()] {
                Some(outcome) => {
                    // Under the recovery ladder the match cell carries
                    // the verdict tier; below hostile the table is
                    // byte-identical to the pre-ladder one.
                    let mut verdict =
                        if outcome.matches.all() { "✓" } else { "partial" }.to_string();
                    if hostile {
                        tiers[usize::try_from(outcome.tier.code()).expect("code fits")] += 1;
                        if !outcome.tier.is_confirmed() {
                            verdict = format!(
                                "{verdict} [{}: {}]",
                                outcome.tier.label(),
                                outcome.tier.reasons_string()
                            );
                        }
                    }
                    println!(
                        "| {} | {} | {} ({}) | {} ({}) | {} ({}) | {} ({}) | {} ({}) | {} |",
                        spec.id,
                        spec.trr_version,
                        outcome.profile.trr_ref_ratio,
                        spec.trr_to_ref_ratio,
                        outcome.profile.neighbors_refreshed,
                        spec.neighbors_refreshed,
                        detection_label(&outcome.profile.detection),
                        spec.detection,
                        outcome.profile.per_bank,
                        spec.per_bank_trr,
                        outcome.refresh_period,
                        spec.refresh().period_refs,
                        verdict,
                    );
                }
                // Only reachable under hostile: the retry ladder is
                // exhausted, the module is recorded inconclusive, and
                // the run continues with the ground truth alone.
                None => {
                    tiers[2] += 1;
                    println!(
                        "| {} | {} | – ({}) | – ({}) | – ({}) | – ({}) | – ({}) | inconclusive |",
                        spec.id,
                        spec.trr_version,
                        spec.trr_to_ref_ratio,
                        spec.neighbors_refreshed,
                        spec.detection,
                        spec.per_bank_trr,
                        spec.refresh().period_refs,
                    );
                }
            }
        }
        println!();
        if hostile {
            println!(
                "verdict tiers: {} confirmed, {} degraded, {} inconclusive",
                tiers[0], tiers[1], tiers[2]
            );
            println!();
        }
    }

    println!("## Attack columns (custom §7.1 pattern per vendor)");
    println!();
    println!(
        "| Module | HC_first measured (Table 1) | % vulnerable (paper) | max flips/row/hammer (paper) | max flips/word |"
    );
    println!("|---|---|---|---|---|");
    let config = EvalConfig {
        sample_count: samples,
        windows,
        scaled_rows: Some(rows),
        registry: Some(std::sync::Arc::clone(&registry)),
        fault_profile,
        fault_seed,
        ..EvalConfig::quick(samples)
    };
    // One task per module: each measures HC_first and runs the attack
    // sweep on its own freshly built module, then the rows are printed
    // in catalog order.
    let results: Vec<(u64, BankSweep)> = bench.time("attack_columns", || {
        par::par_map(&pool, &modules, |spec| {
            let hc = measure_hc_first_faulty(
                spec,
                rows.min(2_048),
                48,
                11,
                Some(&registry),
                fault_profile,
                fault_seed,
            );
            let sweep = attack_columns(spec, &config);
            (hc, sweep)
        })
    });
    for (spec, (hc, sweep)) in modules.iter().zip(&results) {
        println!(
            "| {} | {} ({}) | {:.1}% ({:.1}–{:.1}%) | {:.2} ({:.2}–{:.2}) | {} |",
            spec.id,
            hc,
            spec.hc_first,
            sweep.vulnerable_pct(),
            spec.paper_vulnerable_pct.0,
            spec.paper_vulnerable_pct.1,
            sweep.max_flips_per_row_per_hammer(),
            spec.paper_max_flips_per_hammer.0,
            spec.paper_max_flips_per_hammer.1,
            sweep.max_flips_per_dataword(),
        );
    }

    if let Some(path) = &bench_path {
        let ns_per_act = bench.time("device_microbench", device_ns_per_act);
        bench.scalar("device_ns_per_act", ns_per_act);
        bench.scalar("refs_per_sec", utrr_bench::refs_per_sec());
        bench.scalar("weak_scan_ns_per_row", utrr_bench::weak_scan_ns_per_row());
        bench.write(path).expect("bench artifact is writable");
        eprintln!("bench artifact: {}", path.display());
    }
    emit_trace(&registry, &trace).expect("trace artifact is writable");
    emit_metrics(&registry, metrics_path.as_deref()).expect("metrics artifact is writable");
}
