//! Regenerates Table 1 of the paper: per-module TRR reverse engineering
//! (U-TRR's findings vs the planted ground truth) plus the attack
//! columns (measured HC_first, % vulnerable rows, max flips per row per
//! hammer).
//!
//! Usage:
//!   repro-table1 [--rows N] [--samples N] [--windows N] [--modules A5,B0,...]
//!                [--per-module-re] [--attack-only] [--metrics-out PATH]
//!
//! By default the reverse-engineering suite runs once per *TRR version*
//! (modules sharing a version share their engine, so the findings are
//! identical); `--per-module-re` runs it for all 45 modules.

use std::collections::HashMap;

use attacks::eval::EvalConfig;
use utrr_bench::{
    arg_flag, arg_value, attack_columns, emit_metrics, measure_hc_first_with, metrics_out_path,
    reverse_engineer_module_with, run_registry,
};
use utrr_core::reverse::DetectionKind;
use utrr_modules::{catalog, ModuleSpec};

fn detection_label(d: &DetectionKind) -> String {
    match d {
        DetectionKind::Counter { capacity, .. } => format!("Counter({capacity})"),
        DetectionKind::Sampler { shared_across_banks: true } => "Sampler(shared)".into(),
        DetectionKind::Sampler { shared_across_banks: false } => "Sampler(per-bank)".into(),
        DetectionKind::Window { max_window } => format!("Window(≤{max_window})"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows: u32 = arg_value(&args, "--rows").and_then(|v| v.parse().ok()).unwrap_or(2_048);
    // Row Scout needs space for 18 pair groups plus the neighbour probe.
    let rows = if rows < 1_024 {
        eprintln!("note: --rows {rows} is too small for the reverse-engineering suite; using 1024");
        1_024
    } else {
        rows
    };
    let samples: u32 = arg_value(&args, "--samples").and_then(|v| v.parse().ok()).unwrap_or(48);
    let windows: u32 = arg_value(&args, "--windows").and_then(|v| v.parse().ok()).unwrap_or(2);
    let filter = arg_value(&args, "--modules");
    let per_module_re = arg_flag(&args, "--per-module-re");
    let attack_only = arg_flag(&args, "--attack-only");
    let metrics_path = metrics_out_path(&args);
    let registry = run_registry();

    let modules: Vec<ModuleSpec> = catalog()
        .into_iter()
        .filter(|m| match &filter {
            Some(list) => list.split(',').any(|id| id == m.id),
            None => true,
        })
        .collect();

    println!("# Table 1 reproduction — {} modules, {rows} rows/bank (scaled), {samples} victim samples, {windows} refresh windows", modules.len());
    println!();
    println!("## Reverse-engineering columns (U-TRR findings vs planted ground truth)");
    println!();
    println!(
        "| Module | Version | Ratio (GT) | Neighbors (GT) | Detection (GT) | Per-Bank (GT) | Refresh period (GT) | Match |"
    );
    println!("|---|---|---|---|---|---|---|---|");

    let mut re_cache: HashMap<&'static str, utrr_bench::ReOutcome> = HashMap::new();
    if !attack_only {
        for spec in &modules {
            let outcome = if per_module_re {
                reverse_engineer_module_with(spec, rows, 7, Some(&registry))
            } else {
                re_cache
                    .entry(spec.trr_version)
                    .or_insert_with(|| reverse_engineer_module_with(spec, rows, 7, Some(&registry)))
                    .clone()
            };
            println!(
                "| {} | {} | {} ({}) | {} ({}) | {} ({}) | {} ({}) | {} ({}) | {} |",
                spec.id,
                spec.trr_version,
                outcome.profile.trr_ref_ratio,
                spec.trr_to_ref_ratio,
                outcome.profile.neighbors_refreshed,
                spec.neighbors_refreshed,
                detection_label(&outcome.profile.detection),
                spec.detection,
                outcome.profile.per_bank,
                spec.per_bank_trr,
                outcome.refresh_period,
                spec.refresh().period_refs,
                if outcome.matches.all() { "✓" } else { "partial" },
            );
        }
        println!();
    }

    println!("## Attack columns (custom §7.1 pattern per vendor)");
    println!();
    println!(
        "| Module | HC_first measured (Table 1) | % vulnerable (paper) | max flips/row/hammer (paper) | max flips/word |"
    );
    println!("|---|---|---|---|---|");
    let config = EvalConfig {
        sample_count: samples,
        windows,
        scaled_rows: Some(rows),
        registry: Some(std::sync::Arc::clone(&registry)),
        ..EvalConfig::quick(samples)
    };
    for spec in &modules {
        let hc = measure_hc_first_with(spec, rows.min(2_048), 48, 11, Some(&registry));
        let sweep = attack_columns(spec, &config);
        println!(
            "| {} | {} ({}) | {:.1}% ({:.1}–{:.1}%) | {:.2} ({:.2}–{:.2}) | {} |",
            spec.id,
            hc,
            spec.hc_first,
            sweep.vulnerable_pct(),
            spec.paper_vulnerable_pct.0,
            spec.paper_vulnerable_pct.1,
            sweep.max_flips_per_row_per_hammer(),
            spec.paper_max_flips_per_hammer.0,
            spec.paper_max_flips_per_hammer.1,
            sweep.max_flips_per_dataword(),
        );
    }

    emit_metrics(&registry, metrics_path.as_deref()).expect("metrics artifact is writable");
}
