//! The paper's closing question made runnable: do the U-TRR-derived
//! custom patterns — which defeat *every* in-DRAM TRR of Table 1 — also
//! defeat mitigations with sound designs?
//!
//! This binary swaps each module's planted TRR engine for PARA
//! (probabilistic, stateless) or Graphene (deterministic counter
//! guarantee) and replays both the vendor's custom pattern and
//! full-budget double-sided hammering.
//!
//! Usage: secure-mitigations [--rows N] [--samples N] [--para-prob P]
//!                           [--threads N] [--faults none|mild|hostile]
//!                           [--fault-seed N] [--metrics-out PATH]
//!                           [--trace-out PATH] [--trace-chrome PATH]
//!                           [--trace-rows SPEC]

use attacks::baseline::DoubleSided;
use attacks::custom;
use attacks::eval::{sweep_bank_module, BankSweep, EvalConfig};
use dram_sim::{MitigationEngine, Module};
use faults::FaultProfile;
use trr::{Graphene, GrapheneConfig, Para};
use utrr_bench::{
    arg_value, emit_metrics, emit_trace, fault_args, install_trace, metrics_out_path, par_config,
    run_registry, threads_arg, trace_args,
};
use utrr_modules::{by_id, ModuleSpec};

fn build_with(spec: &ModuleSpec, rows: u32, engine: Box<dyn MitigationEngine>) -> Module {
    let config = spec.build_scaled(rows, 5).config().clone();
    Module::with_engine(config, engine, 5)
}

/// One evaluation cell: a module, a pattern, and a mitigation, by name.
/// Plain data so tasks can cross the worker pool — the engine and the
/// pattern (neither of which is `Send`) are built inside the task.
#[derive(Clone, Copy)]
struct Cell {
    id: &'static str,
    pattern: &'static str,
    mitigation: &'static str,
}

fn run_cell(cell: &Cell, rows: u32, para_prob: f64, config: &EvalConfig) -> (String, BankSweep) {
    let spec = by_id(cell.id).expect("catalog module");
    let (name, engine): (String, Box<dyn MitigationEngine>) = match cell.mitigation {
        "vendor" => (format!("vendor TRR ({})", spec.trr_version), spec.engine(5)),
        "PARA" => ("PARA".into(), Box::new(Para::new(para_prob, 11))),
        _ => (
            "Graphene".into(),
            Box::new(Graphene::new(GrapheneConfig::for_hc_first(spec.hc_first), spec.banks)),
        ),
    };
    let module = build_with(&spec, rows, engine);
    let sweep = if cell.pattern == "custom (U-TRR)" {
        let pattern = custom::pattern_for(&spec);
        sweep_bank_module(module, pattern.as_ref(), config)
    } else {
        sweep_bank_module(module, &DoubleSided::max_rate(), config)
    };
    (name, sweep)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows: u32 = arg_value(&args, "--rows").and_then(|v| v.parse().ok()).unwrap_or(2_048);
    let samples: u32 = arg_value(&args, "--samples").and_then(|v| v.parse().ok()).unwrap_or(24);
    let para_prob: f64 =
        arg_value(&args, "--para-prob").and_then(|v| v.parse().ok()).unwrap_or(0.001);
    let metrics_path = metrics_out_path(&args);
    let (fault_profile, fault_seed) = fault_args(&args);
    let trace = trace_args(&args);
    let registry = run_registry();
    install_trace(&registry, &trace);
    let pool = par_config(threads_arg(&args), &registry);
    let config = EvalConfig {
        sample_count: samples,
        scaled_rows: Some(rows),
        registry: Some(std::sync::Arc::clone(&registry)),
        fault_profile,
        fault_seed,
        ..EvalConfig::quick(samples)
    };

    println!("# Secure-mitigation evaluation — custom patterns vs PARA/Graphene");
    println!("# ({samples} victim samples, {rows} rows/bank, PARA p = {para_prob})");
    if fault_profile != FaultProfile::None {
        println!("# fault injection: {fault_profile} profile, seed {fault_seed}");
    }
    println!();
    println!(
        "{:<8} {:<18} {:<22} {:>11} {:>14}",
        "module", "pattern", "mitigation", "vulnerable", "max flips/row"
    );

    // The full evaluation grid, one pool task per cell; results land in
    // grid order so the table prints identically for any thread count.
    let mut cells = Vec::new();
    for id in ["A5", "B0", "C9"] {
        for pattern in ["custom (U-TRR)", "double-sided"] {
            for mitigation in ["vendor", "PARA", "Graphene"] {
                cells.push(Cell { id, pattern, mitigation });
            }
        }
    }
    let results = par::par_map(&pool, &cells, |cell| run_cell(cell, rows, para_prob, &config));

    let mut last_id = "";
    for (cell, (name, sweep)) in cells.iter().zip(&results) {
        if !last_id.is_empty() && cell.id != last_id {
            println!();
        }
        last_id = cell.id;
        println!(
            "{:<8} {:<18} {:<22} {:>10.1}% {:>14}",
            cell.id,
            cell.pattern,
            name,
            sweep.vulnerable_pct(),
            sweep.max_flips_per_row(),
        );
    }
    println!();
    println!("# Expected shape: the custom patterns defeat the vendor TRR but neither");
    println!("# PARA (nothing to divert) nor Graphene (deterministic counter bound).");

    emit_trace(&registry, &trace).expect("trace artifact is writable");
    emit_metrics(&registry, metrics_path.as_deref()).expect("metrics artifact is writable");
}
