//! The paper's closing question made runnable: do the U-TRR-derived
//! custom patterns — which defeat *every* in-DRAM TRR of Table 1 — also
//! defeat mitigations with sound designs?
//!
//! This binary swaps each module's planted TRR engine for PARA
//! (probabilistic, stateless) or Graphene (deterministic counter
//! guarantee) and replays both the vendor's custom pattern and
//! full-budget double-sided hammering.
//!
//! Usage: secure-mitigations [--rows N] [--samples N] [--para-prob P]
//!                           [--metrics-out PATH]

use attacks::baseline::DoubleSided;
use attacks::custom;
use attacks::eval::{sweep_bank_module, EvalConfig};
use attacks::AccessPattern;
use dram_sim::{MitigationEngine, Module};
use trr::{Graphene, GrapheneConfig, Para};
use utrr_bench::{arg_value, emit_metrics, metrics_out_path, run_registry};
use utrr_modules::{by_id, ModuleSpec};

fn build_with(spec: &ModuleSpec, rows: u32, engine: Box<dyn MitigationEngine>) -> Module {
    let config = spec.build_scaled(rows, 5).config().clone();
    Module::with_engine(config, engine, 5)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows: u32 = arg_value(&args, "--rows").and_then(|v| v.parse().ok()).unwrap_or(2_048);
    let samples: u32 = arg_value(&args, "--samples").and_then(|v| v.parse().ok()).unwrap_or(24);
    let para_prob: f64 =
        arg_value(&args, "--para-prob").and_then(|v| v.parse().ok()).unwrap_or(0.001);
    let metrics_path = metrics_out_path(&args);
    let registry = run_registry();
    let config = EvalConfig {
        sample_count: samples,
        scaled_rows: Some(rows),
        registry: Some(std::sync::Arc::clone(&registry)),
        ..EvalConfig::quick(samples)
    };

    println!("# Secure-mitigation evaluation — custom patterns vs PARA/Graphene");
    println!("# ({samples} victim samples, {rows} rows/bank, PARA p = {para_prob})");
    println!();
    println!(
        "{:<8} {:<18} {:<22} {:>11} {:>14}",
        "module", "pattern", "mitigation", "vulnerable", "max flips/row"
    );

    for id in ["A5", "B0", "C9"] {
        let spec = by_id(id).expect("catalog module");
        let custom_pattern = custom::pattern_for(&spec);
        let double_sided = DoubleSided::max_rate();
        let patterns: [(&str, &dyn AccessPattern); 2] =
            [("custom (U-TRR)", custom_pattern.as_ref()), ("double-sided", &double_sided)];
        for (label, pattern) in patterns {
            let mitigations: Vec<(String, Box<dyn MitigationEngine>)> = vec![
                (format!("vendor TRR ({})", spec.trr_version), spec.engine(5)),
                ("PARA".into(), Box::new(Para::new(para_prob, 11))),
                (
                    "Graphene".into(),
                    Box::new(Graphene::new(
                        GrapheneConfig::for_hc_first(spec.hc_first),
                        spec.banks,
                    )),
                ),
            ];
            for (name, engine) in mitigations {
                let module = build_with(&spec, rows, engine);
                let sweep = sweep_bank_module(module, pattern, &config);
                println!(
                    "{:<8} {:<18} {:<22} {:>10.1}% {:>14}",
                    spec.id,
                    label,
                    name,
                    sweep.vulnerable_pct(),
                    sweep.max_flips_per_row(),
                );
            }
        }
        println!();
    }
    println!("# Expected shape: the custom patterns defeat the vendor TRR but neither");
    println!("# PARA (nothing to divert) nor Graphene (deterministic counter bound).");

    emit_metrics(&registry, metrics_path.as_deref()).expect("metrics artifact is writable");
}
