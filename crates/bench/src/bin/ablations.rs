//! Outcome ablations for the simulator design choices DESIGN.md §6
//! calls out. Each ablation switches one mechanism off (or distorts it)
//! and shows how a paper-relevant observable changes — evidence that the
//! mechanism is load-bearing rather than decorative.
//!
//! Usage: ablations [--rows N] [--samples N] [--threads N]
//!                  [--faults none|mild|hostile] [--fault-seed N]
//!                  [--metrics-out PATH] [--trace-out PATH] [--trace-chrome PATH]
//!                  [--trace-rows SPEC]

use std::sync::Arc;

use attacks::baseline::DoubleSided;
use attacks::custom::VendorAPattern;
use attacks::eval::{sweep_bank_module, EvalConfig};
use dram_sim::{Bank, DataPattern, Module, RowAddr};
use faults::FaultProfile;
use obs::MetricsRegistry;
use utrr_bench::{
    arg_value, emit_metrics, emit_trace, fault_args, install_trace, metrics_out_path, par_config,
    run_registry, threads_arg, trace_args,
};
use utrr_modules::by_id;

fn config(
    samples: u32,
    rows: u32,
    registry: &Arc<MetricsRegistry>,
    faults: (FaultProfile, u64),
) -> EvalConfig {
    EvalConfig {
        sample_count: samples,
        scaled_rows: Some(rows),
        registry: Some(Arc::clone(registry)),
        fault_profile: faults.0,
        fault_seed: faults.1,
        ..EvalConfig::quick(samples)
    }
}

/// Ablation 1 — same-row discount: without it, cascaded hammering is as
/// disruptive as interleaved, erasing the §5.2 asymmetry.
fn ablate_same_row_discount(spec: &utrr_modules::ModuleSpec, rows: u32) {
    println!("## Ablation: same-row activation discount (§5.2 asymmetry)");
    for (label, discount) in
        [("with discount (default)", 0.5f64), ("ablated (discount = 1.0)", 1.0)]
    {
        let mut module_cfg_flips = Vec::new();
        for interleaved in [true, false] {
            let mut module = {
                let mut m = spec.build_scaled(rows, 5);
                // Rebuild with a modified physics config.
                let mut config = m.config().clone();
                config.physics.same_row_discount = discount;
                m = Module::with_engine(config, Box::new(dram_sim::NoMitigation), 5);
                m
            };
            let bank = Bank::new(0);
            let mut flips = 0usize;
            for v in 0..8u32 {
                let victim = RowAddr::new(200 + v * 150);
                module.write_row(bank, victim, DataPattern::Ones).expect("in range");
                let n = spec.hc_first * 3;
                if interleaved {
                    module.hammer_pair(bank, victim.minus(1), victim.plus(1), n).expect("in range");
                } else {
                    module.hammer(bank, victim.minus(1), n).expect("in range");
                    module.hammer(bank, victim.plus(1), n).expect("in range");
                }
                flips += module.read_row(bank, victim).expect("in range").flip_count();
            }
            module_cfg_flips.push(flips);
        }
        println!(
            "  {label:<28} interleaved {:>5} flips vs cascaded {:>5} flips",
            module_cfg_flips[0], module_cfg_flips[1]
        );
    }
    println!("  → the discount is what makes interleaved hammering hit harder.\n");
}

/// Ablation 2 — blast radius 2: without it A_TRR1's ±2 refreshes have
/// nothing to protect and the paper's Observation A2 becomes
/// unobservable.
fn ablate_blast_radius(spec: &utrr_modules::ModuleSpec, rows: u32) {
    println!("## Ablation: distance-2 disturbance weight (Observation A2 observability)");
    for (label, weight) in
        [("with radius-2 (default 0.25)", 0.25f64), ("ablated (weight = 0)", 0.0)]
    {
        let mut config = spec.build_scaled(rows, 5).config().clone();
        config.physics.radius2_weight = weight;
        let mut module = Module::new(config, 5);
        let bank = Bank::new(0);
        let victim = RowAddr::new(500);
        module.write_row(bank, victim, DataPattern::Ones).expect("in range");
        // Aggressors at distance 2 only; the same hammer count in both
        // configurations (sized for the default weight) so neither run
        // outlasts the victim's retention time.
        let _ = weight;
        let n = spec.hc_first * 8 * 4;
        module.hammer_pair(bank, victim.minus(2), victim.plus(2), n).expect("in range");
        let flips = module.read_row(bank, victim).expect("in range").flip_count();
        println!("  {label:<28} distance-2 victim flips: {flips}");
    }
    println!("  → with the weight ablated, ±2 rows can never flip, so a ±2-refreshing TRR is indistinguishable from a ±1 one.\n");
}

/// Ablation 3 — dummy-row pressure in the vendor-A pattern: the attack
/// collapses without enough dummy insertions to flush the 16-entry LRU.
fn ablate_dummy_pressure(
    spec: &utrr_modules::ModuleSpec,
    samples: u32,
    rows: u32,
    registry: &Arc<MetricsRegistry>,
    pool: &par::ParConfig,
    faults: (FaultProfile, u64),
) {
    println!("## Ablation: dummy-row pressure in the vendor-A custom pattern (Fig. 8 trade-off)");
    let cfg = config(samples, rows, registry, faults);
    let variants = [
        ("paper optimum (24 hammers + 16 dummies)", VendorAPattern::paper_optimum()),
        (
            "no dummies at all",
            VendorAPattern { aggressor_hammers: 24, dummy_rows: 0, dummy_hammers: 0 },
        ),
        (
            "half the dummies (8)",
            VendorAPattern { aggressor_hammers: 24, dummy_rows: 8, dummy_hammers: 6 },
        ),
        ("over-hammered aggressors (70)", VendorAPattern::with_aggressor_hammers(70)),
    ];
    // Each variant sweeps its own freshly built module — one pool task
    // per variant, printed in declaration order.
    let sweeps = par::par_map(pool, &variants, |(_, pattern)| {
        sweep_bank_module(spec.build_scaled(rows, 5), pattern, &cfg)
    });
    for ((label, _), sweep) in variants.iter().zip(&sweeps) {
        println!(
            "  {label:<40} vulnerable {:>5.1}%  max flips/row {:>4}",
            sweep.vulnerable_pct(),
            sweep.max_flips_per_row()
        );
    }
    println!(
        "  → fewer than 16 dummy insertions leave the aggressors resident in the LRU table.\n"
    );
}

/// Ablation 4 — the baseline contrast: TRR stops double-sided hammering
/// entirely; removing TRR restores it.
fn ablate_trr_presence(
    spec: &utrr_modules::ModuleSpec,
    samples: u32,
    rows: u32,
    registry: &Arc<MetricsRegistry>,
    pool: &par::ParConfig,
    faults: (FaultProfile, u64),
) {
    println!("## Ablation: TRR presence (footnote 18 baseline contrast)");
    let cfg = config(samples, rows, registry, faults);
    let pattern = DoubleSided::max_rate();
    // Both arms build their own module inside the task (the engine is
    // not Send), so the two sweeps run concurrently.
    let arms = [true, false];
    let sweeps = par::par_map(pool, &arms, |&trr| {
        if trr {
            sweep_bank_module(spec.build_scaled(rows, 5), &pattern, &cfg)
        } else {
            let config_no_trr = spec.build_scaled(rows, 5).config().clone();
            sweep_bank_module(Module::new(config_no_trr, 5), &pattern, &cfg)
        }
    });
    let (with_trr, without) = (&sweeps[0], &sweeps[1]);
    println!(
        "  double-sided vs {}:    {:>5.1}% vulnerable | TRR removed: {:>5.1}% vulnerable",
        spec.trr_version,
        with_trr.vulnerable_pct(),
        without.vulnerable_pct()
    );
    println!("  → the planted TRR engines are what stop conventional hammering.\n");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows: u32 = arg_value(&args, "--rows").and_then(|v| v.parse().ok()).unwrap_or(2_048);
    let samples: u32 = arg_value(&args, "--samples").and_then(|v| v.parse().ok()).unwrap_or(24);
    let metrics_path = metrics_out_path(&args);
    let faults = fault_args(&args);
    let trace = trace_args(&args);
    let registry = run_registry();
    install_trace(&registry, &trace);
    let pool = par_config(threads_arg(&args), &registry);
    let spec = by_id("A5").expect("catalog contains A5");
    println!("# Simulator design-choice ablations (module A5 unless noted)");
    if faults.0 != FaultProfile::None {
        println!("# fault injection: {} profile, seed {}", faults.0, faults.1);
    }
    println!();
    ablate_same_row_discount(&spec, rows);
    ablate_blast_radius(&spec, rows);
    ablate_dummy_pressure(&spec, samples, rows, &registry, &pool, faults);
    ablate_trr_presence(&spec, samples, rows, &registry, &pool, faults);

    emit_trace(&registry, &trace).expect("trace artifact is writable");
    emit_metrics(&registry, metrics_path.as_deref()).expect("metrics artifact is writable");
}
