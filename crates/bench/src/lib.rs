//! Shared machinery for the table/figure reproduction binaries and the
//! Criterion benches.
//!
//! The binaries regenerate every evaluation artifact of the paper:
//!
//! | binary        | paper artifact |
//! |---------------|----------------|
//! | `repro-table1`| Table 1 — per-module TRR reverse engineering + attack columns |
//! | `repro-fig8`  | Fig. 8 — flips/row vs hammers-per-aggressor sweep on A5, B8, C7 |
//! | `repro-fig9`  | Fig. 9 — % vulnerable rows for all 45 modules |
//! | `repro-fig10` | Fig. 10 — flips-per-8-byte-dataword histograms (+ §7.4 ECC verdicts) |
//! | `ablations`   | DESIGN.md §6 — outcome sensitivity to simulator design choices |

use attacks::eval::{sweep_bank, BankSweep, EvalConfig};
use attacks::custom;
use dram_sim::{Bank, Nanos};
use softmc::MemoryController;
use utrr_core::reverse::{self, DetectionKind, ReverseOptions, TrrProfile};
use utrr_core::schedule::{learn_group_schedules, learn_refresh_schedule};
use utrr_core::{ProfiledRowGroup, RowGroupLayout, RowScout, ScoutConfig, TrrAnalyzer};
use utrr_modules::ModuleSpec;

/// Everything U-TRR re-discovers about one module, next to the planted
/// ground truth.
#[derive(Debug, Clone)]
pub struct ReOutcome {
    /// The module's Table-1 identifier.
    pub id: String,
    /// The inferred profile.
    pub profile: TrrProfile,
    /// The measured per-row regular-refresh period in `REF`s (Obs. A8).
    pub refresh_period: u64,
    /// Whether each inferred column matches the ground truth.
    pub matches: ReMatches,
}

/// Per-column ground-truth agreement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReMatches {
    /// TRR-to-REF ratio column.
    pub ratio: bool,
    /// Neighbours-refreshed column.
    pub neighbors: bool,
    /// Aggressor-detection mechanism column.
    pub detection: bool,
    /// Aggressor-capacity column (`true` when the paper marks it
    /// unknown).
    pub capacity: bool,
    /// Per-bank TRR column.
    pub per_bank: bool,
    /// Regular-refresh period (3758 for vendor A, ~8K otherwise).
    pub refresh_period: bool,
}

impl ReMatches {
    /// All columns agree.
    pub fn all(&self) -> bool {
        self.ratio
            && self.neighbors
            && self.detection
            && self.capacity
            && self.per_bank
            && self.refresh_period
    }
}

/// Runs the full §6 reverse-engineering suite against a module built
/// from its spec (at a scaled geometry) and compares the findings with
/// the planted ground truth.
///
/// # Panics
///
/// Panics when Row Scout cannot find the required row groups — the
/// scaled geometry below 1024 rows is too small for that.
pub fn reverse_engineer_module(spec: &ModuleSpec, rows: u32, seed: u64) -> ReOutcome {
    let mut mc = MemoryController::new(spec.build_scaled(rows, seed));
    let bank = Bank::new(0);
    let pair_layout = RowGroupLayout::single_aggressor_pair();
    // 18 pair groups give the counter-capacity sweep room up to 17.
    let groups = RowScout::new(ScoutConfig::new(bank, rows, pair_layout, 18))
        .scan(&mut mc)
        .expect("row scout finds pair groups");
    let probe = RowScout::new(ScoutConfig::new(bank, rows, RowGroupLayout::neighbor_probe(), 1))
        .scan(&mut mc)
        .expect("row scout finds the neighbour probe")
        .remove(0);
    // A second-bank group for the shared-sampler test.
    let other_bank = Bank::new(1);
    let cross = RowScout::new(ScoutConfig::new(other_bank, rows, RowGroupLayout::single_aggressor_pair(), 1))
        .scan(&mut mc)
        .expect("row scout finds a cross-bank group")
        .remove(0);

    let opts = ReverseOptions {
        trigger_hammers: (spec.hc_first / 4).clamp(400, 4_000),
        ratio_iterations: 80,
        long_iterations: 400,
    };
    let profile = reverse::classify(&mut mc, bank, &groups, &probe, Some((other_bank, &cross)), &opts)
        .expect("classification experiments run");
    let refresh_period = learn_refresh_schedule(&mut mc, &groups[0], bank)
        .expect("schedule learner converges")
        .period;

    let detection_matches = matches!(
        (&profile.detection, spec.detection),
        (DetectionKind::Counter { .. }, "Counter-based")
            | (DetectionKind::Sampler { .. }, "Sampling-based")
            | (DetectionKind::Window { .. }, "Mix")
    );
    let capacity_matches = match (spec.aggressor_capacity, &profile.detection) {
        (Some(gt), DetectionKind::Counter { capacity, .. }) => *capacity == gt as usize,
        (Some(1), DetectionKind::Sampler { .. }) => true,
        (None, _) => true,
        _ => false,
    };
    // On the paired-row organization a detection refreshes exactly one
    // row (the pair — Observation C3), which is what U-TRR observes even
    // though Table 1 lists "2" for those parts.
    let expected_neighbors = if spec.topology() == dram_sim::Topology::Paired {
        1
    } else {
        spec.neighbors_refreshed
    };
    let matches = ReMatches {
        ratio: profile.trr_ref_ratio == spec.trr_to_ref_ratio,
        neighbors: profile.neighbors_refreshed == expected_neighbors,
        detection: detection_matches,
        capacity: capacity_matches,
        per_bank: profile.per_bank == spec.per_bank_trr,
        refresh_period: refresh_period == spec.refresh().period_refs as u64,
    };
    ReOutcome { id: spec.id.clone(), profile, refresh_period, matches }
}

/// Measures `HC_first` (footnote 1) on a module built from its spec,
/// delegating to [`utrr_core::measure_hc_first`].
pub fn measure_hc_first(spec: &ModuleSpec, rows: u32, samples: u32, seed: u64) -> u64 {
    let mut mc = MemoryController::new(spec.build_scaled(rows, seed));
    utrr_core::measure_hc_first(&mut mc, Bank::new(0), samples, spec.hc_first * 2)
        .expect("characterization runs on an in-range bank")
}

/// The Table-1 attack columns for one module: % vulnerable rows and max
/// flips per row per hammer, via the vendor's custom pattern.
pub fn attack_columns(spec: &ModuleSpec, config: &EvalConfig) -> BankSweep {
    let pattern = custom::pattern_for(spec);
    sweep_bank(spec, pattern.as_ref(), config)
}

/// One point of the Fig. 8 sweep.
#[derive(Debug, Clone)]
pub struct Fig8Point {
    /// Average hammers per aggressor per `REF`.
    pub hammers: f64,
    /// Five-number summary of flips per row.
    pub quartiles: (u32, u32, u32, u32, u32),
}

/// Sweeps hammers-per-aggressor for one module (Fig. 8's per-module
/// panel).
pub fn fig8_sweep(spec: &ModuleSpec, hammer_values: &[f64], config: &EvalConfig) -> Vec<Fig8Point> {
    hammer_values
        .iter()
        .map(|&h| {
            let pattern = custom::pattern_with_hammers(spec, h);
            let sweep = sweep_bank(spec, pattern.as_ref(), config);
            Fig8Point { hammers: sweep.hammers_per_aggressor_per_ref, quartiles: sweep.flip_quartiles() }
        })
        .collect()
}

/// A tiny ASCII sparkline box for a five-number summary, for terminal
/// figures.
pub fn boxplot_line(q: (u32, u32, u32, u32, u32), max_scale: u32, width: usize) -> String {
    let scale = |v: u32| -> usize {
        if max_scale == 0 {
            0
        } else {
            ((v as usize * (width - 1)) / max_scale as usize).min(width - 1)
        }
    };
    let mut line = vec![' '; width];
    let (min, q1, med, q3, max) = q;
    for i in scale(min)..=scale(max) {
        line[i] = '-';
    }
    for i in scale(q1)..=scale(q3) {
        line[i] = '=';
    }
    line[scale(med)] = '#';
    line.into_iter().collect()
}

/// Parses `--key value` style arguments, returning the value for `key`.
pub fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1).cloned())
}

/// Whether a bare `--flag` is present.
pub fn arg_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

/// Builds an analyzer with learned schedules for every group — used by
/// benches that need schedule-filtered experiments.
pub fn analyzer_with_schedules(
    mc: &mut MemoryController,
    bank: Bank,
    groups: &[ProfiledRowGroup],
) -> TrrAnalyzer {
    let mut analyzer = TrrAnalyzer::new();
    for g in groups {
        learn_group_schedules(mc, bank, g, &mut analyzer).expect("schedules learnable");
    }
    analyzer
}

/// Formats a `Nanos` duration for report footers.
pub fn fmt_sim_time(t: Nanos) -> String {
    format!("{:.1} s simulated", t.as_ms_f64() / 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use utrr_modules::by_id;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> =
            ["--rows", "512", "--full"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_value(&args, "--rows").as_deref(), Some("512"));
        assert_eq!(arg_value(&args, "--samples"), None);
        assert!(arg_flag(&args, "--full"));
        assert!(!arg_flag(&args, "--quick"));
    }

    #[test]
    fn boxplot_is_width_stable() {
        let line = boxplot_line((0, 10, 20, 30, 40), 40, 20);
        assert_eq!(line.len(), 20);
        assert!(line.contains('#'));
        let empty = boxplot_line((0, 0, 0, 0, 0), 0, 10);
        assert_eq!(empty.len(), 10);
    }

    #[test]
    fn hc_first_measurement_tracks_ground_truth() {
        let spec = by_id("A5").unwrap();
        let measured = measure_hc_first(&spec, 1_024, 24, 11);
        let gt = spec.hc_first;
        assert!(
            measured as f64 > gt as f64 * 0.8 && (measured as f64) < gt as f64 * 2.5,
            "measured {measured} vs HC_first {gt}"
        );
    }

    #[test]
    fn attack_columns_quick_run() {
        let spec = by_id("C9").unwrap();
        let sweep = attack_columns(&spec, &EvalConfig::quick(12));
        assert!(sweep.vulnerable_pct() > 80.0);
    }
}
