//! Shared machinery for the table/figure reproduction binaries and the
//! Criterion benches.
//!
//! The binaries regenerate every evaluation artifact of the paper:
//!
//! | binary        | paper artifact |
//! |---------------|----------------|
//! | `repro-table1`| Table 1 — per-module TRR reverse engineering + attack columns |
//! | `repro-fig8`  | Fig. 8 — flips/row vs hammers-per-aggressor sweep on A5, B8, C7 |
//! | `repro-fig9`  | Fig. 9 — % vulnerable rows for all 45 modules |
//! | `repro-fig10` | Fig. 10 — flips-per-8-byte-dataword histograms (+ §7.4 ECC verdicts) |
//! | `ablations`   | DESIGN.md §6 — outcome sensitivity to simulator design choices |

use attacks::custom;
use attacks::eval::{sweep_bank, BankSweep, EvalConfig};
use dram_sim::{Bank, Module, ModuleConfig, Nanos, RowAddr};
use faults::FaultProfile;
use softmc::{MemoryController, RecoveryLadder};
use utrr_core::reverse::{self, DetectionKind, ReverseOptions, TrrProfile};
use utrr_core::schedule::{learn_group_schedules, learn_refresh_schedule};
use utrr_core::{
    ProfiledRowGroup, RowGroupLayout, RowScout, ScoutConfig, TrrAnalyzer, VerdictTier,
};
use utrr_modules::ModuleSpec;

/// Per-phase ACT budget the hostile profile arms on every `discover_*`
/// phase ([`ReverseOptions::phase_act_budget`]): far above what any
/// honest phase consumes, so it only trips on pathological spin — and
/// the phase then closes with partial evidence instead of hanging.
pub const HOSTILE_PHASE_ACT_BUDGET: u64 = 48_000_000;

/// Whole-scan ACT budget the hostile profile arms on each Row Scout
/// scan ([`utrr_core::ScoutConfig::max_acts`]).
pub const HOSTILE_SCOUT_ACT_BUDGET: u64 = 24_000_000;

/// Everything U-TRR re-discovers about one module, next to the planted
/// ground truth.
#[derive(Debug, Clone)]
pub struct ReOutcome {
    /// The module's Table-1 identifier.
    pub id: String,
    /// The inferred profile.
    pub profile: TrrProfile,
    /// The measured per-row regular-refresh period in `REF`s (Obs. A8).
    pub refresh_period: u64,
    /// Whether each inferred column matches the ground truth.
    pub matches: ReMatches,
    /// How much of the pipeline completed within budget (always
    /// `Confirmed` below hostile severity).
    pub tier: VerdictTier,
    /// The controller's recovery-ladder history for this module: vote
    /// widenings, relocations, re-profiles, budget trips.
    pub ladder: RecoveryLadder,
}

/// Per-column ground-truth agreement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReMatches {
    /// TRR-to-REF ratio column.
    pub ratio: bool,
    /// Neighbours-refreshed column.
    pub neighbors: bool,
    /// Aggressor-detection mechanism column.
    pub detection: bool,
    /// Aggressor-capacity column (`true` when the paper marks it
    /// unknown).
    pub capacity: bool,
    /// Per-bank TRR column.
    pub per_bank: bool,
    /// Regular-refresh period (3758 for vendor A, ~8K otherwise).
    pub refresh_period: bool,
}

impl ReMatches {
    /// All columns agree.
    pub fn all(&self) -> bool {
        self.ratio
            && self.neighbors
            && self.detection
            && self.capacity
            && self.per_bank
            && self.refresh_period
    }
}

/// Runs the full §6 reverse-engineering suite against a module built
/// from its spec (at a scaled geometry) and compares the findings with
/// the planted ground truth.
///
/// # Panics
///
/// Panics when Row Scout cannot find the required row groups — the
/// scaled geometry below 1024 rows is too small for that.
pub fn reverse_engineer_module(spec: &ModuleSpec, rows: u32, seed: u64) -> ReOutcome {
    reverse_engineer_module_with(spec, rows, seed, None)
}

/// [`reverse_engineer_module`] with an optional shared metrics registry
/// attached to the module under test, so the suite's Row Scout and TRR
/// Analyzer spans land in the run artifact.
///
/// # Panics
///
/// Panics when Row Scout cannot find the required row groups.
pub fn reverse_engineer_module_with(
    spec: &ModuleSpec,
    rows: u32,
    seed: u64,
    registry: Option<&std::sync::Arc<obs::MetricsRegistry>>,
) -> ReOutcome {
    reverse_engineer_module_faulty(spec, rows, seed, registry, FaultProfile::None, 0)
}

/// [`reverse_engineer_module_with`] against a faulty substrate: installs
/// the deterministic fault plan for `(fault_profile, fault_seed)` into
/// the controller before the suite runs. Under [`FaultProfile::None`]
/// nothing is installed and the run is bit-identical to
/// [`reverse_engineer_module_with`].
///
/// # Panics
///
/// Panics when Row Scout cannot find the required row groups — expected
/// under [`FaultProfile::Hostile`], where only graceful degradation (not
/// correctness) is promised.
pub fn reverse_engineer_module_faulty(
    spec: &ModuleSpec,
    rows: u32,
    seed: u64,
    registry: Option<&std::sync::Arc<obs::MetricsRegistry>>,
    fault_profile: FaultProfile,
    fault_seed: u64,
) -> ReOutcome {
    try_reverse_engineer_module_faulty(spec, rows, seed, registry, fault_profile, fault_seed)
        .unwrap_or_else(|e| panic!("reverse-engineering {}: {e}", spec.id))
}

/// Experiment-seed retry budget for
/// [`reverse_engineer_module_resilient`].
pub const RE_BIN_ATTEMPTS: u64 = 4;

/// [`try_reverse_engineer_module_faulty`] behind the repro binaries'
/// retry ladder: up to [`RE_BIN_ATTEMPTS`] deterministic experiment
/// seeds (the first is `seed` itself, so sub-hostile runs are
/// bit-identical to the panicking wrapper). Under
/// [`FaultProfile::Hostile`] an exhausted ladder returns `None` — the
/// caller records the module inconclusive and the run continues.
///
/// # Panics
///
/// Panics on exhaustion below hostile severity, where a failed suite is
/// a regression, exactly like [`reverse_engineer_module_faulty`].
pub fn reverse_engineer_module_resilient(
    spec: &ModuleSpec,
    rows: u32,
    seed: u64,
    registry: Option<&std::sync::Arc<obs::MetricsRegistry>>,
    fault_profile: FaultProfile,
    fault_seed: u64,
) -> Option<ReOutcome> {
    let mut last = None;
    for attempt in 0..RE_BIN_ATTEMPTS {
        match try_reverse_engineer_module_faulty(
            spec,
            rows,
            seed + 97 * attempt,
            registry,
            fault_profile,
            fault_seed,
        ) {
            Ok(re) => return Some(re),
            Err(e) => last = Some(e),
        }
    }
    if fault_profile == FaultProfile::Hostile {
        None
    } else {
        panic!("reverse-engineering {}: {}", spec.id, last.expect("at least one attempt ran"))
    }
}

/// The fallible core of [`reverse_engineer_module_faulty`]: identical
/// pipeline, but scout shortfalls and non-converging measurements come
/// back as errors instead of panics. Sweeps over arbitrary seeds (the
/// fleet executor) retry with a different experiment seed on `Err`;
/// the fixed-seed repro binaries keep the panicking wrapper.
///
/// # Errors
///
/// Propagates the first [`utrr_core::UtrrError`] of the suite: not
/// enough row groups, failed classification experiments, or a
/// non-converging refresh-schedule learner.
pub fn try_reverse_engineer_module_faulty(
    spec: &ModuleSpec,
    rows: u32,
    seed: u64,
    registry: Option<&std::sync::Arc<obs::MetricsRegistry>>,
    fault_profile: FaultProfile,
    fault_seed: u64,
) -> Result<ReOutcome, utrr_core::UtrrError> {
    let mut module = spec.build_scaled(rows, seed);
    if let Some(registry) = registry {
        module.attach_registry(std::sync::Arc::clone(registry));
    }
    let mut mc = MemoryController::new(module);
    faults::install(&mut mc, fault_profile, fault_seed);
    // Hostile severity unlocks the recovery ladder; arm its circuit
    // breakers. Below that, every budget stays `None` and the command
    // stream is exactly the pre-ladder one.
    let ladder_on = utrr_core::recovery::ladder_active(&mc);
    let scout_budget = ladder_on.then_some(HOSTILE_SCOUT_ACT_BUDGET);
    let mut tier = VerdictTier::Confirmed;
    let bank = Bank::new(0);
    let pair_layout = RowGroupLayout::single_aggressor_pair();
    // 18 pair groups give the counter-capacity sweep room up to 17.
    let mut pair_cfg = ScoutConfig::new(bank, rows, pair_layout, 18);
    pair_cfg.max_acts = scout_budget;
    let (groups, scout_tier) = RowScout::new(pair_cfg).scan_recover(&mut mc)?;
    tier.merge(&scout_tier);
    let mut probe_cfg = ScoutConfig::new(bank, rows, RowGroupLayout::neighbor_probe(), 1);
    probe_cfg.max_acts = scout_budget;
    let (mut probe_groups, probe_tier) = RowScout::new(probe_cfg).scan_recover(&mut mc)?;
    tier.merge(&probe_tier);
    let probe = probe_groups.remove(0);
    // A second-bank group for the shared-sampler test.
    let other_bank = Bank::new(1);
    let mut cross_cfg =
        ScoutConfig::new(other_bank, rows, RowGroupLayout::single_aggressor_pair(), 1);
    cross_cfg.max_acts = scout_budget;
    let (mut cross_groups, cross_tier) = RowScout::new(cross_cfg).scan_recover(&mut mc)?;
    tier.merge(&cross_tier);
    let cross = cross_groups.remove(0);

    let opts = ReverseOptions {
        trigger_hammers: (spec.hc_first / 4).clamp(400, 4_000),
        ratio_iterations: 80,
        long_iterations: 400,
        phase_act_budget: ladder_on.then_some(HOSTILE_PHASE_ACT_BUDGET),
    };
    // Hand the scout-phase tier in so the final verdict trace event
    // carries the whole pipeline's confidence, not just classification's.
    let (profile, classify_tier) = reverse::classify_recover(
        &mut mc,
        bank,
        &groups,
        &probe,
        Some((other_bank, &cross)),
        &opts,
        tier.clone(),
    )?;
    tier.merge(&classify_tier);
    let refresh_period = learn_refresh_schedule(&mut mc, &groups[0], bank)?.period;

    let detection_matches = matches!(
        (&profile.detection, spec.detection),
        (DetectionKind::Counter { .. }, "Counter-based")
            | (DetectionKind::Sampler { .. }, "Sampling-based")
            | (DetectionKind::Window { .. }, "Mix")
    );
    let capacity_matches = match (spec.aggressor_capacity, &profile.detection) {
        (Some(gt), DetectionKind::Counter { capacity, .. }) => *capacity == gt as usize,
        (Some(1), DetectionKind::Sampler { .. }) => true,
        (None, _) => true,
        _ => false,
    };
    // On the paired-row organization a detection refreshes exactly one
    // row (the pair — Observation C3), which is what U-TRR observes even
    // though Table 1 lists "2" for those parts.
    let expected_neighbors =
        if spec.topology() == dram_sim::Topology::Paired { 1 } else { spec.neighbors_refreshed };
    let matches = ReMatches {
        ratio: profile.trr_ref_ratio == spec.trr_to_ref_ratio,
        neighbors: profile.neighbors_refreshed == expected_neighbors,
        detection: detection_matches,
        capacity: capacity_matches,
        per_bank: profile.per_bank == spec.per_bank_trr,
        refresh_period: refresh_period == spec.refresh().period_refs as u64,
    };
    Ok(ReOutcome {
        id: spec.id.clone(),
        profile,
        refresh_period,
        matches,
        tier,
        ladder: *mc.recovery(),
    })
}

/// Measures `HC_first` (footnote 1) on a module built from its spec,
/// delegating to [`utrr_core::measure_hc_first`].
pub fn measure_hc_first(spec: &ModuleSpec, rows: u32, samples: u32, seed: u64) -> u64 {
    measure_hc_first_with(spec, rows, samples, seed, None)
}

/// [`measure_hc_first`] with an optional shared metrics registry
/// attached to the module under test.
///
/// # Panics
///
/// Panics when the characterization cannot run on the built bank.
pub fn measure_hc_first_with(
    spec: &ModuleSpec,
    rows: u32,
    samples: u32,
    seed: u64,
    registry: Option<&std::sync::Arc<obs::MetricsRegistry>>,
) -> u64 {
    measure_hc_first_faulty(spec, rows, samples, seed, registry, FaultProfile::None, 0)
}

/// [`measure_hc_first_with`] against a faulty substrate; under
/// [`FaultProfile::None`] nothing is installed and the measurement is
/// bit-identical to [`measure_hc_first_with`].
///
/// # Panics
///
/// Panics when the characterization cannot run on the built bank.
pub fn measure_hc_first_faulty(
    spec: &ModuleSpec,
    rows: u32,
    samples: u32,
    seed: u64,
    registry: Option<&std::sync::Arc<obs::MetricsRegistry>>,
    fault_profile: FaultProfile,
    fault_seed: u64,
) -> u64 {
    let mut module = spec.build_scaled(rows, seed);
    if let Some(registry) = registry {
        module.attach_registry(std::sync::Arc::clone(registry));
    }
    let mut mc = MemoryController::new(module);
    faults::install(&mut mc, fault_profile, fault_seed);
    utrr_core::measure_hc_first(&mut mc, Bank::new(0), samples, spec.hc_first * 2)
        .expect("characterization runs on an in-range bank")
}

/// The Table-1 attack columns for one module: % vulnerable rows and max
/// flips per row per hammer, via the vendor's custom pattern.
pub fn attack_columns(spec: &ModuleSpec, config: &EvalConfig) -> BankSweep {
    let pattern = custom::pattern_for(spec);
    sweep_bank(spec, pattern.as_ref(), config)
}

/// One point of the Fig. 8 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Point {
    /// Average hammers per aggressor per `REF`.
    pub hammers: f64,
    /// Five-number summary of flips per row.
    pub quartiles: (u32, u32, u32, u32, u32),
}

/// One point of the Fig. 8 sweep: a fresh module evaluated at hammer
/// rate `h`. Both the sequential and the parallel sweep call exactly
/// this function per point, which is what makes them bit-identical.
fn fig8_point(spec: &ModuleSpec, h: f64, config: &EvalConfig) -> Fig8Point {
    let pattern = custom::pattern_with_hammers(spec, h);
    let sweep = sweep_bank(spec, pattern.as_ref(), config);
    Fig8Point { hammers: sweep.hammers_per_aggressor_per_ref, quartiles: sweep.flip_quartiles() }
}

/// Sweeps hammers-per-aggressor for one module (Fig. 8's per-module
/// panel).
pub fn fig8_sweep(spec: &ModuleSpec, hammer_values: &[f64], config: &EvalConfig) -> Vec<Fig8Point> {
    hammer_values.iter().map(|&h| fig8_point(spec, h, config)).collect()
}

/// [`fig8_sweep`] fanned over a worker pool. Every grid point builds its
/// own module from `(spec, config.seed)`, so points are independent and
/// the result is bit-identical to the sequential sweep for any thread
/// count.
pub fn fig8_sweep_par(
    spec: &ModuleSpec,
    hammer_values: &[f64],
    config: &EvalConfig,
    pool: &par::ParConfig,
) -> Vec<Fig8Point> {
    par::par_map(pool, hammer_values, |&h| fig8_point(spec, h, config))
}

/// [`attack_columns`] for many modules on a worker pool, one task per
/// module; results are in `specs` order.
pub fn attack_columns_par(
    specs: &[ModuleSpec],
    config: &EvalConfig,
    pool: &par::ParConfig,
) -> Vec<BankSweep> {
    par::par_map(pool, specs, |spec| attack_columns(spec, config))
}

/// [`reverse_engineer_module_with`] for many modules on a worker pool;
/// results are in `specs` order. Each task builds its own module (and
/// engine) inside the worker, so nothing non-`Send` crosses threads.
pub fn reverse_engineer_modules_par(
    specs: &[ModuleSpec],
    rows: u32,
    seed: u64,
    registry: Option<&std::sync::Arc<obs::MetricsRegistry>>,
    pool: &par::ParConfig,
) -> Vec<ReOutcome> {
    par::par_map(pool, specs, |spec| reverse_engineer_module_with(spec, rows, seed, registry))
}

/// [`measure_hc_first_with`] for many modules on a worker pool; results
/// are in `specs` order.
pub fn measure_hc_first_modules_par(
    specs: &[ModuleSpec],
    rows: u32,
    samples: u32,
    seed: u64,
    registry: Option<&std::sync::Arc<obs::MetricsRegistry>>,
    pool: &par::ParConfig,
) -> Vec<u64> {
    par::par_map(pool, specs, |spec| measure_hc_first_with(spec, rows, samples, seed, registry))
}

/// Everything that determines a reverse-engineering outcome for a spec,
/// folded into a memoization key: the fields feeding the scaled module
/// build (geometry, physics, mapping, topology, refresh schedule,
/// engine) and the `ReverseOptions` inputs. Two specs with equal keys
/// produce byte-identical [`ReOutcome`]s (modulo `id`), so
/// `repro-table1` reverse engineers each distinct key once and reuses
/// the outcome — re-running only when inputs actually differ.
pub fn re_input_key(spec: &ModuleSpec) -> String {
    format!(
        "{:?}|{}|{}|{}|{}|{}|{:?}|{}|{}|{}|{:?}|{}|{:?}|{:?}|{:?}|{:?}",
        spec.vendor,
        spec.density_gbit,
        spec.ranks,
        spec.banks,
        spec.pins,
        spec.hc_first,
        spec.trr_version,
        spec.per_bank_trr,
        spec.trr_to_ref_ratio,
        spec.neighbors_refreshed,
        spec.aggressor_capacity,
        spec.detection,
        spec.mapping(),
        spec.topology(),
        spec.physics(),
        spec.refresh(),
    )
}

/// Compact human-readable label for an inferred detection mechanism —
/// the form both Table 1 and the fleet records print.
pub fn detection_label(d: &DetectionKind) -> String {
    match d {
        DetectionKind::Counter { capacity, .. } => format!("Counter({capacity})"),
        DetectionKind::Sampler { shared_across_banks: true } => "Sampler(shared)".into(),
        DetectionKind::Sampler { shared_across_banks: false } => "Sampler(per-bank)".into(),
        DetectionKind::Window { max_window } => format!("Window(≤{max_window})"),
    }
}

/// A tiny ASCII sparkline box for a five-number summary, for terminal
/// figures.
pub fn boxplot_line(q: (u32, u32, u32, u32, u32), max_scale: u32, width: usize) -> String {
    let scale = |v: u32| -> usize {
        if max_scale == 0 {
            0
        } else {
            ((v as usize * (width - 1)) / max_scale as usize).min(width - 1)
        }
    };
    let mut line = vec![' '; width];
    let (min, q1, med, q3, max) = q;
    for cell in &mut line[scale(min)..=scale(max)] {
        *cell = '-';
    }
    for cell in &mut line[scale(q1)..=scale(q3)] {
        *cell = '=';
    }
    line[scale(med)] = '#';
    line.into_iter().collect()
}

/// Parses `--key value` style arguments, returning the value for `key`.
pub fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1).cloned())
}

/// The metrics artifact path for a run: the `--metrics-out <path>`
/// argument, with the `UTRR_METRICS_OUT` environment variable as
/// fallback. `None` disables the artifact (the summary table is still
/// printed).
pub fn metrics_out_path(args: &[String]) -> Option<std::path::PathBuf> {
    arg_value(args, "--metrics-out")
        .or_else(|| std::env::var("UTRR_METRICS_OUT").ok())
        .map(std::path::PathBuf::from)
}

/// A shared run registry (detail instrumentation enabled): attach it to
/// every module a binary builds so the whole run lands in one artifact.
pub fn run_registry() -> std::sync::Arc<obs::MetricsRegistry> {
    obs::MetricsRegistry::shared()
}

/// End-of-run metrics emission: writes the JSONL artifact when a path is
/// configured and prints the human-readable summary table to stderr.
///
/// # Errors
///
/// Propagates artifact I/O errors.
pub fn emit_metrics(
    registry: &obs::MetricsRegistry,
    path: Option<&std::path::Path>,
) -> std::io::Result<()> {
    if let Some(path) = path {
        obs::jsonl::write_jsonl_to_path(registry, path)?;
        eprintln!("metrics artifact: {}", path.display());
    }
    eprint!("{}", obs::report::render_summary(registry));
    Ok(())
}

/// Whether a bare `--flag` is present.
pub fn arg_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

/// Flight-recorder arguments shared by every repro binary:
/// `--trace-out PATH` (JSONL, schema `utrr-trace/1`), `--trace-chrome
/// PATH` (Chrome `trace_event` JSON for chrome://tracing / Perfetto),
/// and `--trace-rows SPEC` (`all`, or a comma list of physical rows and
/// inclusive `A-B` ranges restricting capture to those rows ±2).
#[derive(Debug, Clone)]
pub struct TraceArgs {
    /// JSONL trace path, when requested.
    pub jsonl_out: Option<std::path::PathBuf>,
    /// Chrome `trace_event` JSON path, when requested.
    pub chrome_out: Option<std::path::PathBuf>,
    /// Row filter for captured events.
    pub filter: obs::TraceFilter,
}

impl TraceArgs {
    /// Whether any trace output was requested.
    pub fn enabled(&self) -> bool {
        self.jsonl_out.is_some() || self.chrome_out.is_some()
    }
}

/// Parses the flight-recorder arguments. Exits with status 2 on an
/// unparsable `--trace-rows` spec.
pub fn trace_args(args: &[String]) -> TraceArgs {
    let filter = match arg_value(args, "--trace-rows") {
        Some(spec) => obs::TraceFilter::parse(&spec).unwrap_or_else(|e| {
            eprintln!("error: --trace-rows: {e}");
            std::process::exit(2);
        }),
        None => obs::TraceFilter::all(),
    };
    TraceArgs {
        jsonl_out: arg_value(args, "--trace-out").map(std::path::PathBuf::from),
        chrome_out: arg_value(args, "--trace-chrome").map(std::path::PathBuf::from),
        filter,
    }
}

/// Installs a flight recorder into `registry` when tracing was
/// requested. With no trace output configured this does nothing at all
/// — the recorder stays uninstalled and every `trace()` call remains a
/// single relaxed atomic load, keeping untraced runs byte-identical.
pub fn install_trace(registry: &std::sync::Arc<obs::MetricsRegistry>, trace: &TraceArgs) {
    if trace.enabled() {
        registry.install_recorder(std::sync::Arc::new(obs::FlightRecorder::new(
            obs::DEFAULT_TRACE_CAPACITY,
            trace.filter.clone(),
        )));
    }
}

/// End-of-run trace emission: writes the requested JSONL and/or Chrome
/// artifacts from the installed recorder, logging each path to stderr.
///
/// # Errors
///
/// Propagates artifact I/O errors.
pub fn emit_trace(registry: &obs::MetricsRegistry, trace: &TraceArgs) -> std::io::Result<()> {
    let Some(recorder) = registry.recorder() else {
        return Ok(());
    };
    let (events, dropped) = recorder.snapshot();
    if let Some(path) = &trace.jsonl_out {
        obs::trace::write_trace_jsonl_to_path(&events, dropped, path)?;
        eprintln!(
            "trace artifact: {} ({} events, {} dropped)",
            path.display(),
            events.len(),
            dropped
        );
    }
    if let Some(path) = &trace.chrome_out {
        obs::trace::write_chrome_trace_to_path(&events, path)?;
        eprintln!("chrome trace: {} ({} events)", path.display(), events.len());
    }
    Ok(())
}

/// Fault-injection arguments for a run: `--faults none|mild|hostile`
/// (default `none`, the strict no-op path) and `--fault-seed N` (default
/// 1). Shared by every repro binary. Exits with status 2 on an
/// unrecognised profile name.
pub fn fault_args(args: &[String]) -> (FaultProfile, u64) {
    let profile = match arg_value(args, "--faults") {
        Some(name) => name.parse().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        }),
        None => FaultProfile::None,
    };
    let seed = arg_value(args, "--fault-seed").and_then(|v| v.parse().ok()).unwrap_or(1);
    (profile, seed)
}

/// Worker count for a run: the `--threads <n>` argument, with the
/// `UTRR_THREADS` environment variable as fallback and the machine's
/// available parallelism as default. Shared by every repro binary.
pub fn threads_arg(args: &[String]) -> usize {
    par::resolve_threads(arg_value(args, "--threads").and_then(|v| v.parse().ok()))
}

/// The worker-pool configuration for a run: `threads` workers with
/// per-worker metrics (task counts, queue-wait and task-latency
/// histograms, worker spans) landing in the run `registry`.
pub fn par_config(
    threads: usize,
    registry: &std::sync::Arc<obs::MetricsRegistry>,
) -> par::ParConfig {
    par::ParConfig::metered(threads, std::sync::Arc::clone(registry))
}

/// Wall-clock per phase of a benchmark run, serialised to the
/// `BENCH_sweep.json` baseline artifact by [`BenchPhases::write`].
///
/// Hand-rolled JSON (schema `utrr-bench/1`): one object with the thread
/// count, a `phases` array of `{name, wall_ms}` pairs in execution
/// order, and a flat `scalars` object for extra measurements (e.g. the
/// device micro-benchmark's ns-per-ACT).
#[derive(Debug, Default)]
pub struct BenchPhases {
    threads: usize,
    phases: Vec<(String, f64)>,
    scalars: Vec<(String, f64)>,
}

impl BenchPhases {
    /// A new recorder for a run using `threads` workers.
    pub fn new(threads: usize) -> Self {
        BenchPhases { threads, phases: Vec::new(), scalars: Vec::new() }
    }

    /// Records `phase` as having taken `elapsed` of wall-clock time.
    pub fn record(&mut self, phase: &str, elapsed: std::time::Duration) {
        self.phases.push((phase.to_string(), elapsed.as_secs_f64() * 1e3));
    }

    /// Runs `f`, recording its wall-clock under `phase`, and returns its
    /// result.
    pub fn time<R>(&mut self, phase: &str, f: impl FnOnce() -> R) -> R {
        let start = std::time::Instant::now();
        let result = f();
        self.record(phase, start.elapsed());
        result
    }

    /// Records a named scalar measurement (e.g. `device_ns_per_act`).
    pub fn scalar(&mut self, name: &str, value: f64) {
        self.scalars.push((name.to_string(), value));
    }

    /// Renders the artifact as JSON.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => vec!['\\', '"'],
                    '\\' => vec!['\\', '\\'],
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        let mut out = String::from("{\"schema\":\"utrr-bench/1\",");
        out.push_str(&format!("\"threads\":{},\"phases\":[", self.threads));
        for (i, (name, ms)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"name\":\"{}\",\"wall_ms\":{:.3}}}", esc(name), ms));
        }
        out.push_str("],\"scalars\":{");
        for (i, (name, value)) in self.scalars.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{:.3}", esc(name), value));
        }
        out.push_str("}}\n");
        out
    }

    /// Writes the artifact to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be written.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// A small device micro-benchmark: the average wall-clock cost in
/// nanoseconds of one `hammer(1)` command against an unmitigated test
/// module. Recorded into `BENCH_sweep.json` so per-command device cost
/// is tracked as a baseline across changes.
pub fn device_ns_per_act() -> f64 {
    let mut module = Module::new(ModuleConfig::small_test(), 11);
    let bank = Bank::new(0);
    let rows = module.config().geometry.rows_per_bank.min(64);
    // Warm the row map so the measurement is steady-state.
    for r in 0..rows {
        module.hammer(bank, RowAddr::new(r), 1).expect("warm-up hammer");
    }
    const ITERS: u32 = 50_000;
    let start = std::time::Instant::now();
    for i in 0..ITERS {
        module.hammer(bank, RowAddr::new(i % rows), 1).expect("bench hammer");
    }
    start.elapsed().as_nanos() as f64 / f64::from(ITERS)
}

/// Micro-benchmark of the auto-refresh sweep: REF commands retired per
/// wall-clock second against a module with a sparse touched-row
/// population (the realistic steady state — most of a bank's rows never
/// enter an experiment, and the event-driven sweep must skip them for
/// free).
pub fn refs_per_sec() -> f64 {
    let mut module = Module::new(ModuleConfig::small_test(), 13);
    let bank = Bank::new(0);
    // Touch a scattering of rows so REF windows hold real work
    // occasionally, as during an experiment.
    let rows = module.config().geometry.rows_per_bank;
    for r in (0..rows).step_by(97) {
        module.hammer(bank, RowAddr::new(r), 1).expect("warm-up hammer");
    }
    const ITERS: u32 = 200_000;
    let start = std::time::Instant::now();
    for _ in 0..ITERS {
        module.refresh();
    }
    f64::from(ITERS) / start.elapsed().as_secs_f64()
}

/// Micro-benchmark of the weak-cell retention scan: average wall-clock
/// nanoseconds to restore one decayed row (the Row Scout hot path — every
/// profiling pass writes, waits, and reads back a whole row range, and
/// each read re-runs the per-row weak-cell window scan).
pub fn weak_scan_ns_per_row() -> f64 {
    let mut module = Module::new(ModuleConfig::small_test(), 17);
    let bank = Bank::new(0);
    let rows = module.config().geometry.rows_per_bank.min(256);
    for r in 0..rows {
        module.write_row(bank, RowAddr::new(r), dram_sim::DataPattern::Ones).expect("bench write");
    }
    const PASSES: u32 = 400;
    let mut scanned = 0u32;
    let start = std::time::Instant::now();
    for _ in 0..PASSES {
        // Long enough that weak cells beat their retention and the scan
        // has decay work to do, short enough to keep sim-time bounded.
        module.advance(Nanos::from_ms(300));
        for r in 0..rows {
            let readout = module.read_row(bank, RowAddr::new(r)).expect("bench read");
            std::hint::black_box(readout.flip_count());
            scanned += 1;
        }
    }
    start.elapsed().as_nanos() as f64 / f64::from(scanned)
}

/// Builds an analyzer with learned schedules for every group — used by
/// benches that need schedule-filtered experiments.
pub fn analyzer_with_schedules(
    mc: &mut MemoryController,
    bank: Bank,
    groups: &[ProfiledRowGroup],
) -> TrrAnalyzer {
    let mut analyzer = TrrAnalyzer::new();
    for g in groups {
        learn_group_schedules(mc, bank, g, &mut analyzer).expect("schedules learnable");
    }
    analyzer
}

/// Formats a `Nanos` duration for report footers.
pub fn fmt_sim_time(t: Nanos) -> String {
    format!("{:.1} s simulated", t.as_ms_f64() / 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use utrr_modules::by_id;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--rows", "512", "--full"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_value(&args, "--rows").as_deref(), Some("512"));
        assert_eq!(arg_value(&args, "--samples"), None);
        assert!(arg_flag(&args, "--full"));
        assert!(!arg_flag(&args, "--quick"));
    }

    #[test]
    fn boxplot_is_width_stable() {
        let line = boxplot_line((0, 10, 20, 30, 40), 40, 20);
        assert_eq!(line.len(), 20);
        assert!(line.contains('#'));
        let empty = boxplot_line((0, 0, 0, 0, 0), 0, 10);
        assert_eq!(empty.len(), 10);
    }

    #[test]
    fn hc_first_measurement_tracks_ground_truth() {
        let spec = by_id("A5").unwrap();
        let measured = measure_hc_first(&spec, 1_024, 24, 11);
        let gt = spec.hc_first;
        assert!(
            measured as f64 > gt as f64 * 0.8 && (measured as f64) < gt as f64 * 2.5,
            "measured {measured} vs HC_first {gt}"
        );
    }

    #[test]
    fn attack_columns_quick_run() {
        let spec = by_id("C9").unwrap();
        let sweep = attack_columns(&spec, &EvalConfig::quick(12));
        assert!(sweep.vulnerable_pct() > 80.0);
    }

    #[test]
    fn metrics_artifact_round_trips() {
        let registry = run_registry();
        let spec = by_id("A5").unwrap();
        let config =
            EvalConfig { registry: Some(std::sync::Arc::clone(&registry)), ..EvalConfig::quick(4) };
        let sweep = attack_columns(&spec, &config);
        assert!(sweep.vulnerable_pct() > 0.0);

        let path = std::env::temp_dir().join(format!("utrr-artifact-{}.jsonl", std::process::id()));
        emit_metrics(&registry, Some(&path)).expect("artifact writes");
        let text = std::fs::read_to_string(&path).expect("artifact readable");
        let _ = std::fs::remove_file(&path);
        let records = obs::jsonl::parse_jsonl(&text).expect("every line parses");

        let meta = &records[0];
        assert_eq!(meta.get("type").and_then(|v| v.as_str()), Some("meta"));
        assert_eq!(meta.get("schema").and_then(|v| v.as_str()), Some("utrr-obs/1"));

        let counter_of = |name: &str| {
            records
                .iter()
                .find(|r| {
                    r.get("type").and_then(|v| v.as_str()) == Some("counter")
                        && r.get("name").and_then(|v| v.as_str()) == Some(name)
                })
                .and_then(|r| r.get("value").and_then(|v| v.as_u64()))
        };
        assert!(counter_of("dram.cmd.act").unwrap() > 0, "activations were counted");
        assert!(counter_of("dram.cmd.ref").unwrap() > 0, "refreshes were counted");

        let histogram = records
            .iter()
            .find(|r| {
                r.get("type").and_then(|v| v.as_str()) == Some("histogram")
                    && r.get("count").and_then(|v| v.as_u64()).unwrap_or(0) > 0
            })
            .expect("a populated histogram exists");
        for quantile in ["p50", "p90", "p99"] {
            assert!(histogram.get(quantile).and_then(|v| v.as_u64()).is_some());
        }
        assert!(!histogram.get("bins").and_then(|v| v.as_array()).unwrap().is_empty());

        let sweep_span = records
            .iter()
            .find(|r| {
                r.get("type").and_then(|v| v.as_str()) == Some("span")
                    && r.get("name").and_then(|v| v.as_str()) == Some("attacks.eval.sweep")
            })
            .expect("the sweep span was recorded");
        let end = sweep_span.get("sim_end_ns").and_then(|v| v.as_u64()).unwrap();
        let start = sweep_span.get("sim_start_ns").and_then(|v| v.as_u64()).unwrap();
        assert!(end > start, "sweep span covers simulated time");
    }
}
