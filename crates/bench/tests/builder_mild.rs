//! The §7 attack columns through the *builder-assembled* pipeline,
//! under fault injection — the component-refactor twin of
//! `attack_mild.rs`. The vendor patterns are assembled explicitly with
//! [`AttackBuilder`] (generator + canonical scheduler + flip-count
//! verdict) rather than through the `custom::pattern_for` factory, so
//! this suite gates the composed path itself: `mild` faults must leave
//! the attack metrics within sampling tolerance, and the `none` profile
//! must be a strict no-op, bit for bit.

use attacks::custom::{VendorAPattern, VendorBPattern, VendorCPattern};
use attacks::eval::sweep_bank;
use attacks::{AccessPattern, AttackBuilder, ComposedAttack, EvalConfig};
use faults::FaultProfile;
use obs::MetricsRegistry;
use utrr_modules::{by_id, ModuleSpec, Vendor};

/// One module per vendor, as in the RE fault matrix.
const VENDOR_SAMPLE: [&str; 3] = ["A5", "B0", "C9"];
const SAMPLES: u32 = 12;

fn quick_config(profile: FaultProfile, fault_seed: u64) -> EvalConfig {
    EvalConfig { windows: 1, fault_profile: profile, fault_seed, ..EvalConfig::quick(SAMPLES) }
}

/// The vendor's §7.1 attack for `spec`, assembled component by
/// component (the factory route is covered by `attack_mild.rs`).
fn built_attack(spec: &ModuleSpec) -> ComposedAttack {
    match spec.vendor {
        Vendor::A => AttackBuilder::from_attack(VendorAPattern::paper_optimum()).build(),
        Vendor::B => AttackBuilder::from_attack(VendorBPattern::for_module(spec)).build(),
        Vendor::C => AttackBuilder::from_attack(VendorCPattern::for_module(spec)).build(),
    }
}

#[test]
fn mild_faults_keep_builder_attack_columns_within_tolerance() {
    let registry = MetricsRegistry::shared();
    for id in VENDOR_SAMPLE {
        let spec = by_id(id).expect("catalog module");
        let attack = built_attack(&spec);
        let clean = sweep_bank(&spec, &attack, &quick_config(FaultProfile::None, 0));
        let mut mild_cfg = quick_config(FaultProfile::Mild, 1);
        mild_cfg.registry = Some(std::sync::Arc::clone(&registry));
        let mild = sweep_bank(&spec, &attack, &mild_cfg);

        // The vulnerability percentage is a physics property; transient
        // read noise on a 12-position sample can move it by at most a
        // couple of positions.
        let delta = (mild.vulnerable_pct() - clean.vulnerable_pct()).abs();
        assert!(
            delta <= 100.0 * 2.0 / SAMPLES as f64 + 1e-9,
            "{id}: vulnerable% moved {delta:.1} points under mild faults \
             (clean {:.1}, mild {:.1})",
            clean.vulnerable_pct(),
            mild.vulnerable_pct(),
        );
        // Hammer rate is commanded by the generator, not measured — it
        // must not move at all.
        assert_eq!(
            mild.hammers_per_aggressor_per_ref, clean.hammers_per_aggressor_per_ref,
            "{id}: hammer rate diverged under mild faults"
        );
        // A transient flip lands on one bit of one dataword; the worst
        // dataword can gain or lose at most a couple of flips.
        let dataword_delta = (mild.max_flips_per_dataword() as i64
            - clean.max_flips_per_dataword() as i64)
            .unsigned_abs();
        assert!(
            dataword_delta <= 2,
            "{id}: max flips/dataword moved by {dataword_delta} under mild faults"
        );
    }
    // The runs must actually have been faulty, or the tolerance checks
    // prove nothing.
    let injected = registry.counter(faults::CTR_INJECTED_TOTAL).get();
    assert!(injected > 0, "mild profile injected no faults at all");
}

#[test]
fn none_profile_builder_attack_is_strict_noop() {
    let spec = by_id("A5").expect("catalog module");
    let attack = built_attack(&spec);

    let clean_registry = MetricsRegistry::shared();
    let mut clean_cfg = quick_config(FaultProfile::None, 0);
    clean_cfg.registry = Some(std::sync::Arc::clone(&clean_registry));
    let clean = sweep_bank(&spec, &attack, &clean_cfg);

    // Under `None` the plan is never installed: any fault seed must be
    // irrelevant and the sweep identical, result and command stream both.
    let noop_registry = MetricsRegistry::shared();
    let mut noop_cfg = quick_config(FaultProfile::None, 0xDEAD_BEEF);
    noop_cfg.registry = Some(std::sync::Arc::clone(&noop_registry));
    let noop = sweep_bank(&spec, &attack, &noop_cfg);

    assert_eq!(noop, clean, "BankSweep diverged under the none profile");
    for name in [dram_sim::metrics::CTR_ACT, dram_sim::metrics::CTR_ROW_READS] {
        assert_eq!(
            noop_registry.counter(name).get(),
            clean_registry.counter(name).get(),
            "command counter {name} diverged under the none profile"
        );
    }
    assert_eq!(noop_registry.counter(faults::CTR_INJECTED_TOTAL).get(), 0);
}

#[test]
fn builder_attack_matches_the_factory_route() {
    // `custom::pattern_for` and the explicit assembly above must be the
    // same attack — same name, same sweep, flip for flip.
    for id in VENDOR_SAMPLE {
        let spec = by_id(id).expect("catalog module");
        let config = quick_config(FaultProfile::None, 0);
        let built = built_attack(&spec);
        let factory = attacks::custom::pattern_for(&spec);
        assert_eq!(built.name(), factory.name(), "{id}: pattern identity diverged");
        assert_eq!(
            sweep_bank(&spec, &built, &config),
            sweep_bank(&spec, factory.as_ref(), &config),
            "{id}: builder and factory sweeps diverged"
        );
    }
}
