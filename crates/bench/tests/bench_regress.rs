//! Integration tests of the `bench-regress` gate binary: exit codes,
//! bidirectional coverage warnings, and `--update-baseline`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn artifact(dir: &Path, name: &str, phases: &[(&str, f64)], scalars: &[(&str, f64)]) -> PathBuf {
    let mut json = String::from("{\"schema\":\"utrr-bench/1\",\"threads\":1,\"phases\":[");
    for (i, (n, ms)) in phases.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!("{{\"name\":\"{n}\",\"wall_ms\":{ms}}}"));
    }
    json.push_str("],\"scalars\":{");
    for (i, (n, v)) in scalars.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!("\"{n}\":{v}"));
    }
    json.push_str("}}\n");
    let path = dir.join(name);
    std::fs::write(&path, json).unwrap();
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench-regress"))
        .args(args)
        .env_remove("UTRR_BENCH_THRESHOLD")
        .output()
        .expect("bench-regress runs")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("utrr-bench-regress-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn clean_comparison_exits_zero() {
    let dir = tmpdir("clean");
    let base = artifact(&dir, "base.json", &[("phase_a", 100.0)], &[("device_ns_per_act", 50.0)]);
    let cur = artifact(&dir, "cur.json", &[("phase_a", 104.0)], &[("device_ns_per_act", 49.0)]);
    let out = run(&["--current", cur.to_str().unwrap(), "--baseline", base.to_str().unwrap()]);
    assert!(out.status.success(), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("no regressions"));
}

#[test]
fn regression_exits_one() {
    let dir = tmpdir("regress");
    let base = artifact(&dir, "base.json", &[("phase_a", 100.0)], &[]);
    let cur = artifact(&dir, "cur.json", &[("phase_a", 140.0)], &[]);
    let out = run(&["--current", cur.to_str().unwrap(), "--baseline", base.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESSED"));
}

#[test]
fn rate_scalars_regress_when_they_drop() {
    let dir = tmpdir("rate");
    // A 40% throughput collapse must fail the gate even though the raw
    // delta is negative; a 40% throughput gain must not.
    let base = artifact(&dir, "base.json", &[], &[("refs_per_sec", 50_000_000.0)]);
    let slow = artifact(&dir, "slow.json", &[], &[("refs_per_sec", 30_000_000.0)]);
    let fast = artifact(&dir, "fast.json", &[], &[("refs_per_sec", 70_000_000.0)]);
    let out = run(&["--current", slow.to_str().unwrap(), "--baseline", base.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESSED"));
    let out = run(&["--current", fast.to_str().unwrap(), "--baseline", base.to_str().unwrap()]);
    assert!(out.status.success(), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("improved"));
}

#[test]
fn missing_keys_warn_in_both_directions() {
    let dir = tmpdir("warn");
    let base = artifact(
        &dir,
        "base.json",
        &[("phase_a", 100.0), ("phase_gone", 5.0)],
        &[("scalar_gone", 1.0)],
    );
    let cur = artifact(
        &dir,
        "cur.json",
        &[("phase_a", 100.0), ("phase_new", 7.0)],
        &[("scalar_new", 2.0)],
    );
    let out = run(&["--current", cur.to_str().unwrap(), "--baseline", base.to_str().unwrap()]);
    assert!(out.status.success(), "shared phase_a compares clean");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("phase phase_gone is in the baseline but missing"), "{stderr}");
    assert!(stderr.contains("phase phase_new is in the current run but missing"), "{stderr}");
    assert!(stderr.contains("scalar scalar_gone is in the baseline but missing"), "{stderr}");
    assert!(stderr.contains("scalar scalar_new is in the current run but missing"), "{stderr}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("coverage warning(s)"));
}

#[test]
fn update_baseline_rewrites_and_appends_history() {
    let dir = tmpdir("update");
    let base = artifact(&dir, "base.json", &[("phase_a", 100.0)], &[]);
    // A regression that would normally fail the gate.
    let cur = artifact(&dir, "cur.json", &[("phase_a", 200.0)], &[]);
    let history = dir.join("history.jsonl");
    let out = run(&[
        "--current",
        cur.to_str().unwrap(),
        "--baseline",
        base.to_str().unwrap(),
        "--history",
        history.to_str().unwrap(),
        "--update-baseline",
    ]);
    assert!(out.status.success(), "update-baseline never fails on regressions");
    let rewritten = std::fs::read_to_string(&base).unwrap();
    assert!(rewritten.contains("200"), "baseline now holds the current numbers");
    let hist = std::fs::read_to_string(&history).unwrap();
    assert_eq!(hist.lines().count(), 1, "one history record appended");
    assert!(hist.contains("phase_a"));

    // A second update appends rather than truncates.
    let out = run(&[
        "--current",
        cur.to_str().unwrap(),
        "--baseline",
        base.to_str().unwrap(),
        "--history",
        history.to_str().unwrap(),
        "--update-baseline",
    ]);
    assert!(out.status.success());
    assert_eq!(std::fs::read_to_string(&history).unwrap().lines().count(), 2);
}

#[test]
fn multi_current_unions_disjoint_artifacts() {
    let dir = tmpdir("multi");
    let base = artifact(
        &dir,
        "base.json",
        &[("table1", 100.0), ("fleet_sweep", 500.0)],
        &[("fleet_modules_per_sec", 10.0)],
    );
    let cur_a = artifact(&dir, "cur_a.json", &[("table1", 104.0)], &[]);
    let cur_b =
        artifact(&dir, "cur_b.json", &[("fleet_sweep", 510.0)], &[("fleet_modules_per_sec", 9.9)]);
    let spec = format!("{},{}", cur_a.to_str().unwrap(), cur_b.to_str().unwrap());
    let out = run(&["--current", &spec, "--baseline", base.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout: {stdout}");
    assert!(stdout.contains("table1"), "{stdout}");
    assert!(stdout.contains("fleet_sweep"), "{stdout}");
    assert!(stdout.contains("fleet_modules_per_sec"), "{stdout}");
    assert!(stdout.contains("no regressions"), "{stdout}");
}

#[test]
fn multi_current_updates_baseline_with_the_merged_artifact() {
    let dir = tmpdir("multi-update");
    let base = artifact(&dir, "base.json", &[("table1", 100.0)], &[]);
    let cur_a = artifact(&dir, "cur_a.json", &[("table1", 104.0)], &[]);
    let cur_b = artifact(&dir, "cur_b.json", &[("fleet_sweep", 510.0)], &[("rate_per_sec", 9.9)]);
    let spec = format!("{},{}", cur_a.to_str().unwrap(), cur_b.to_str().unwrap());
    let history = dir.join("history.jsonl");
    let out = run(&[
        "--current",
        &spec,
        "--baseline",
        base.to_str().unwrap(),
        "--history",
        history.to_str().unwrap(),
        "--update-baseline",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    // The rewritten baseline and the history record hold the union, and
    // still parse as a utrr-bench/1 artifact (a follow-up gate accepts
    // them as a baseline).
    let rewritten = std::fs::read_to_string(&base).unwrap();
    for needle in ["utrr-bench/1", "table1", "fleet_sweep", "rate_per_sec"] {
        assert!(rewritten.contains(needle), "{rewritten}");
    }
    assert_eq!(std::fs::read_to_string(&history).unwrap().trim(), rewritten.trim());
    let out = run(&["--current", &spec, "--baseline", base.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn multi_current_duplicate_names_are_rejected() {
    let dir = tmpdir("multi-dup");
    let base = artifact(&dir, "base.json", &[("table1", 100.0)], &[]);
    let cur_a = artifact(&dir, "cur_a.json", &[("table1", 104.0)], &[]);
    let cur_b = artifact(&dir, "cur_b.json", &[("table1", 99.0)], &[]);
    let spec = format!("{},{}", cur_a.to_str().unwrap(), cur_b.to_str().unwrap());
    let out = run(&["--current", &spec, "--baseline", base.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("more than one --current artifact"), "{stderr}");
}
