//! The parallel-executor contract, end to end: fanning a sweep over a
//! worker pool must produce results bit-identical to the sequential
//! sweep, for any thread count. These tests drive the real sweep
//! functions (not toy closures) at 1, 2, and 8 threads, and
//! property-test the worker-seed derivation that underpins the
//! guarantee.

use attacks::eval::EvalConfig;
use par::ParConfig;
use proptest::prelude::*;
use utrr_bench::{attack_columns, attack_columns_par, fig8_sweep, fig8_sweep_par};
use utrr_modules::{by_id, ModuleSpec};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn quick_config(samples: u32) -> EvalConfig {
    EvalConfig { windows: 1, ..EvalConfig::quick(samples) }
}

#[test]
fn fig8_sweep_is_thread_count_invariant() {
    let spec = by_id("A5").expect("catalog module");
    let hammer_values = [18.0, 50.0, 70.0];
    let config = quick_config(4);
    let sequential = fig8_sweep(&spec, &hammer_values, &config);
    assert_eq!(sequential.len(), hammer_values.len());
    for threads in THREAD_COUNTS {
        let pool = ParConfig::with_threads(threads);
        let parallel = fig8_sweep_par(&spec, &hammer_values, &config, &pool);
        assert_eq!(parallel, sequential, "fig8 sweep diverged at {threads} threads");
    }
}

#[test]
fn attack_columns_is_thread_count_invariant() {
    let specs: Vec<ModuleSpec> =
        ["A5", "C9"].iter().map(|id| by_id(id).expect("catalog module")).collect();
    let config = quick_config(4);
    let sequential: Vec<_> = specs.iter().map(|s| attack_columns(s, &config)).collect();
    for threads in THREAD_COUNTS {
        let pool = ParConfig::with_threads(threads);
        let parallel = attack_columns_par(&specs, &config, &pool);
        assert_eq!(parallel, sequential, "attack columns diverged at {threads} threads");
    }
}

proptest! {
    /// Worker-seed derivation never collides across task indices of the
    /// same run: a collision would let two tasks replay each other's
    /// random stream and silently correlate their results.
    #[test]
    fn task_seeds_never_collide_across_indices(base in any::<u64>(), span in 1u64..512) {
        let mut seen = std::collections::HashSet::with_capacity(span as usize);
        for index in 0..span {
            prop_assert!(
                seen.insert(par::task_seed(base, index)),
                "seed collision at index {index} for base {base:#x}"
            );
        }
    }

    /// Distinct base seeds keep distinct streams at every index (no
    /// cross-run aliasing either).
    #[test]
    fn task_seeds_differ_across_bases(a in any::<u64>(), b in any::<u64>(), index in 0u64..1024) {
        prop_assume!(a != b);
        prop_assert_ne!(par::task_seed(a, index), par::task_seed(b, index));
    }
}
