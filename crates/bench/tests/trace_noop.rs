//! The flight-recorder contract, end to end: tracing must never change
//! what a repro binary computes or prints. These tests drive the real
//! binaries (via `CARGO_BIN_EXE_*`) at 1, 2, and 8 worker threads and
//! under `--faults none|mild`, and assert stdout is byte-identical
//! across thread counts and with tracing switched on — the recorder is
//! observation only, never a participant.

use std::path::PathBuf;
use std::process::Command;

/// Runs one binary with the given extra flags and returns its stdout
/// bytes, failing the test if the binary exits non-zero.
fn stdout_of(exe: &str, base: &[&str], extra: &[&str]) -> Vec<u8> {
    let out = Command::new(exe)
        .args(base)
        .args(extra)
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} {base:?} {extra:?} exited {:?}:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr),
    );
    out.stdout
}

fn trace_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("utrr_trace_noop_{tag}.jsonl"))
}

/// The shared matrix: byte-identical stdout at 1/2/8 threads (faults
/// off and on), and byte-identical stdout when a trace artifact is
/// being recorded alongside.
fn assert_trace_is_stdout_noop(tag: &str, exe: &str, base: &[&str]) {
    let clean = stdout_of(exe, base, &["--threads", "1", "--faults", "none"]);
    assert!(!clean.is_empty(), "{exe} printed nothing");
    for threads in ["2", "8"] {
        assert_eq!(
            stdout_of(exe, base, &["--threads", threads, "--faults", "none"]),
            clean,
            "{exe} stdout diverged at {threads} threads (faults none)",
        );
    }

    let mild = stdout_of(exe, base, &["--threads", "2", "--faults", "mild"]);
    assert_eq!(
        stdout_of(exe, base, &["--threads", "8", "--faults", "mild"]),
        mild,
        "{exe} stdout diverged at 8 threads (faults mild)",
    );

    // Tracing on: stdout must stay identical; only stderr gains the
    // artifact pointer. A narrow row filter keeps artifacts small.
    let jsonl = trace_path(tag);
    let jsonl_arg = jsonl.to_str().expect("temp path is utf-8");
    let traced = stdout_of(
        exe,
        base,
        &["--threads", "2", "--faults", "none", "--trace-out", jsonl_arg, "--trace-rows", "0-64"],
    );
    assert_eq!(traced, clean, "{exe} stdout changed when tracing was enabled");
    let text = std::fs::read_to_string(&jsonl).expect("trace artifact written");
    assert!(
        text.lines().next().is_some_and(|l| l.contains(obs::TRACE_SCHEMA)),
        "{exe} trace artifact lacks the {} schema header",
        obs::TRACE_SCHEMA,
    );
    let _ = std::fs::remove_file(&jsonl);

    let jsonl = trace_path(&format!("{tag}_mild"));
    let jsonl_arg = jsonl.to_str().expect("temp path is utf-8");
    let traced_mild = stdout_of(
        exe,
        base,
        &["--threads", "2", "--faults", "mild", "--trace-out", jsonl_arg, "--trace-rows", "0-64"],
    );
    assert_eq!(traced_mild, mild, "{exe} stdout changed when tracing was enabled (faults mild)");
    let _ = std::fs::remove_file(&jsonl);
}

const QUICK: &[&str] = &["--rows", "2048", "--samples", "2", "--windows", "1", "--modules", "A5"];
const QUICK_NO_MODULES: &[&str] = &["--rows", "2048", "--samples", "2"];

#[test]
fn repro_fig9_trace_is_stdout_noop() {
    assert_trace_is_stdout_noop("fig9", env!("CARGO_BIN_EXE_repro-fig9"), QUICK);
}

#[test]
fn repro_fig8_trace_is_stdout_noop() {
    assert_trace_is_stdout_noop("fig8", env!("CARGO_BIN_EXE_repro-fig8"), QUICK);
}

#[test]
fn repro_fig10_trace_is_stdout_noop() {
    assert_trace_is_stdout_noop("fig10", env!("CARGO_BIN_EXE_repro-fig10"), QUICK);
}

#[test]
fn repro_table1_trace_is_stdout_noop() {
    assert_trace_is_stdout_noop("table1", env!("CARGO_BIN_EXE_repro-table1"), QUICK);
}

#[test]
fn ablations_trace_is_stdout_noop() {
    assert_trace_is_stdout_noop("ablations", env!("CARGO_BIN_EXE_ablations"), QUICK_NO_MODULES);
}

#[test]
fn secure_mitigations_trace_is_stdout_noop() {
    assert_trace_is_stdout_noop(
        "secure",
        env!("CARGO_BIN_EXE_secure-mitigations"),
        QUICK_NO_MODULES,
    );
}

/// The `utrr-trace explain` view of an artifact is itself reproducible:
/// two identical traced runs yield byte-identical timelines.
#[test]
fn explain_timeline_is_reproducible() {
    let exe = env!("CARGO_BIN_EXE_repro-fig9");
    let reports: Vec<Vec<u8>> = (0..2)
        .map(|i| {
            let jsonl = trace_path(&format!("explain_{i}"));
            let jsonl_arg = jsonl.to_str().expect("temp path is utf-8");
            stdout_of(
                exe,
                QUICK,
                &["--threads", "2", "--trace-out", jsonl_arg, "--trace-rows", "all"],
            );
            let report = stdout_of(
                env!("CARGO_BIN_EXE_utrr-trace"),
                &["explain", jsonl_arg],
                &["--limit", "3"],
            );
            let _ = std::fs::remove_file(&jsonl);
            // The header line embeds the artifact path, which differs
            // per run; the timeline below it must not.
            let header_end = report.iter().position(|&b| b == b'\n').map_or(0, |p| p + 1);
            report[header_end..].to_vec()
        })
        .collect();
    assert!(!reports[0].is_empty());
    assert_eq!(reports[0], reports[1], "explain output differs between identical runs");
}
