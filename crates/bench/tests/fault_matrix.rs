//! The fault matrix: the reverse-engineering pipeline must stay
//! *correct* under the `mild` fault profile (recovering every module's
//! ground-truth TRR parameters through retries, voting, and
//! quarantine), and the `none` profile must be a strict no-op — the
//! same commands, the same results, bit for bit, as a build without
//! the fault layer.

use faults::FaultProfile;
use obs::MetricsRegistry;
use utrr_bench::{
    measure_hc_first_faulty, measure_hc_first_with, reverse_engineer_module_faulty,
    reverse_engineer_module_with,
};
use utrr_modules::by_id;

/// One module per vendor: counter-based (A), sampling-based (B), and
/// the mixed window design (C).
const VENDOR_SAMPLE: [&str; 3] = ["A5", "B0", "C9"];
const ROWS: u32 = 2_048;
const SEED: u64 = 7;

#[test]
fn mild_faults_do_not_break_reverse_engineering() {
    let registry = MetricsRegistry::shared();
    for id in VENDOR_SAMPLE {
        let spec = by_id(id).expect("catalog module");
        let outcome = reverse_engineer_module_faulty(
            &spec,
            ROWS,
            SEED,
            Some(&registry),
            FaultProfile::Mild,
            1,
        );
        assert!(
            outcome.matches.all(),
            "{id}: mild faults broke the inference: {:?} (profile {:?})",
            outcome.matches,
            outcome.profile,
        );
    }
    // The run must actually have been faulty — a pass with zero injected
    // faults would only prove the plan never fired.
    let injected = registry.counter(faults::CTR_INJECTED_TOTAL).get();
    assert!(injected > 0, "mild profile injected no faults at all");
    // And the pipeline must have visibly *recovered*, not just been
    // lucky: at least one retry, disagreement, or quarantine.
    let recoveries = registry.counter(utrr_core::robust::CTR_READ_DISAGREEMENTS).get()
        + registry.counter(utrr_core::robust::CTR_WRITE_RETRIES).get()
        + registry.counter(utrr_core::rowscout::CTR_SCOUT_RETRIES).get()
        + registry.counter(utrr_core::rowscout::CTR_SCOUT_QUARANTINED).get()
        + registry.counter(utrr_core::schedule::CTR_SCHEDULE_RETRIES).get();
    assert!(
        recoveries > 0,
        "{injected} faults injected but no retry/disagreement/quarantine recorded"
    );
}

#[test]
fn none_profile_is_a_strict_noop() {
    let spec = by_id("A5").expect("catalog module");

    let clean_registry = MetricsRegistry::shared();
    let clean = reverse_engineer_module_with(&spec, ROWS, SEED, Some(&clean_registry));

    // Any fault seed: under `None` the plan is never installed, so the
    // seed must be irrelevant and the command stream identical.
    let noop_registry = MetricsRegistry::shared();
    let noop = reverse_engineer_module_faulty(
        &spec,
        ROWS,
        SEED,
        Some(&noop_registry),
        FaultProfile::None,
        0xDEAD_BEEF,
    );

    assert_eq!(noop.profile, clean.profile);
    assert_eq!(noop.refresh_period, clean.refresh_period);
    assert_eq!(noop.matches, clean.matches);
    // Same command traffic, not merely the same conclusion.
    for name in [dram_sim::metrics::CTR_ACT, dram_sim::metrics::CTR_ROW_READS] {
        assert_eq!(
            noop_registry.counter(name).get(),
            clean_registry.counter(name).get(),
            "command counter {name} diverged under the none profile"
        );
    }
    assert_eq!(noop_registry.counter(faults::CTR_INJECTED_TOTAL).get(), 0);
}

#[test]
fn hc_first_measurement_survives_mild_faults() {
    let spec = by_id("A5").expect("catalog module");
    let clean = measure_hc_first_with(&spec, ROWS, 16, 11, None);
    let faulty = measure_hc_first_faulty(&spec, ROWS, 16, 11, None, FaultProfile::Mild, 1);
    // The binary-search characterization self-heals through voted
    // reads; the mild substrate may nudge individual probes but the
    // estimate must stay within the sampling tolerance of Table 1.
    let lo = clean as f64 * 0.5;
    let hi = clean as f64 * 2.0;
    assert!(
        (faulty as f64) >= lo && (faulty as f64) <= hi,
        "HC_first under mild faults drifted out of tolerance: clean {clean}, faulty {faulty}"
    );
}
