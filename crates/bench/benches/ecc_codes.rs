//! ECC codec benchmarks: encode/decode throughput of the §7.4 codes.

use criterion::{criterion_group, criterion_main, Criterion};
use ecc::rs::ReedSolomon;
use ecc::secded::Secded7264;
use ecc::Chipkill;

fn bench_secded(c: &mut Criterion) {
    let code = Secded7264::new();
    let data = 0xDEAD_BEEF_0123_4567u64;
    let clean = code.encode(data);
    let mut flipped = clean;
    flipped.data ^= 1 << 17;
    let mut g = c.benchmark_group("ecc/secded");
    g.bench_function("encode", |b| b.iter(|| code.encode(std::hint::black_box(data))));
    g.bench_function("decode_clean", |b| b.iter(|| code.decode(std::hint::black_box(clean))));
    g.bench_function("decode_correct1", |b| b.iter(|| code.decode(std::hint::black_box(flipped))));
    g.finish();
}

fn bench_rs(c: &mut Criterion) {
    let code = ReedSolomon::gf256(8, 7);
    let data: Vec<u8> = (0..8).collect();
    let clean = code.encode(&data);
    let mut errored = clean.clone();
    errored[1] ^= 0x5A;
    errored[6] ^= 0x11;
    errored[12] ^= 0x77;
    let mut g = c.benchmark_group("ecc/rs_8_plus_7");
    g.bench_function("encode", |b| b.iter(|| code.encode(std::hint::black_box(&data))));
    g.bench_function("decode_clean", |b| b.iter(|| code.decode(std::hint::black_box(&clean))));
    g.bench_function("decode_correct3", |b| b.iter(|| code.decode(std::hint::black_box(&errored))));
    g.finish();
}

fn bench_chipkill(c: &mut Criterion) {
    let code = Chipkill::new();
    let data = 0xA5A5_5A5A_0FF0_1234u64;
    let mut g = c.benchmark_group("ecc/chipkill");
    g.bench_function("roundtrip_one_symbol_error", |b| {
        b.iter(|| code.roundtrip_with_flips(std::hint::black_box(data), &[0, 1, 2]))
    });
    g.finish();
}

criterion_group!(benches, bench_secded, bench_rs, bench_chipkill);
criterion_main!(benches);
