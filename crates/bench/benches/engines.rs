//! TRR-engine hook micro-benchmarks: per-activation and per-refresh
//! costs of each ground-truth engine, including the batched-vs-looped
//! activation paths whose equivalence the correctness tests prove and
//! whose *speed gap* justifies the batching design.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dram_sim::{Bank, MitigationEngine, Nanos, PhysRow};
use trr::{CounterTrr, SamplerTrr, WindowTrr};

const B0: Bank = Bank::new(0);
const T0: Nanos = Nanos::ZERO;

fn bench_on_activations(c: &mut Criterion) {
    let mut g = c.benchmark_group("engines/on_activations_4k");
    g.bench_function("counter_batched", |b| {
        b.iter_batched_ref(
            || CounterTrr::a_trr1(16),
            |e| e.on_activations(B0, PhysRow::new(9), 4_096, T0),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("counter_looped", |b| {
        b.iter_batched_ref(
            || CounterTrr::a_trr1(16),
            |e| {
                for _ in 0..4_096 {
                    e.on_activations(B0, PhysRow::new(9), 1, T0);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("sampler_batched", |b| {
        b.iter_batched_ref(
            || SamplerTrr::b_trr1(16, 3),
            |e| e.on_activations(B0, PhysRow::new(9), 4_096, T0),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("window_batched", |b| {
        b.iter_batched_ref(
            || WindowTrr::c_trr1(16, 3),
            |e| e.on_activations(B0, PhysRow::new(9), 4_096, T0),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_on_refresh(c: &mut Criterion) {
    let mut g = c.benchmark_group("engines/on_refresh");
    // One drain buffer reused across iterations, mirroring how the
    // device drives the hook.
    g.bench_function("counter_full_table", |b| {
        let mut out = Vec::new();
        b.iter_batched_ref(
            || {
                let mut e = CounterTrr::a_trr1(16);
                for bank in 0..16 {
                    for i in 0..16 {
                        e.on_activations(Bank::new(bank), PhysRow::new(i * 8), 100, T0);
                    }
                }
                e
            },
            |e| {
                out.clear();
                e.on_refresh(T0, &mut out);
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("sampler", |b| {
        let mut out = Vec::new();
        b.iter_batched_ref(
            || {
                let mut e = SamplerTrr::b_trr1(16, 3);
                e.on_activations(B0, PhysRow::new(9), 2_000, T0);
                e
            },
            |e| {
                out.clear();
                e.on_refresh(T0, &mut out);
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_on_activations, bench_on_refresh);
criterion_main!(benches);
