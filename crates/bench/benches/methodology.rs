//! U-TRR methodology benchmarks: Row Scout profiling, refresh-schedule
//! learning, and a full TRR-Analyzer experiment iteration — the unit
//! costs behind the Table-1 reproduction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dram_sim::{Bank, Module, ModuleConfig};
use softmc::{HammerSpec, MemoryController};
use utrr_core::schedule::learn_refresh_schedule;
use utrr_core::{Experiment, RowGroupLayout, RowScout, ScoutConfig, TrrAnalyzer};

fn controller() -> MemoryController {
    MemoryController::new(Module::new(ModuleConfig::small_test(), 7))
}

fn bench_rowscout(c: &mut Criterion) {
    let mut g = c.benchmark_group("methodology/rowscout");
    g.sample_size(10);
    g.bench_function("scan_one_pair_group_512_rows", |b| {
        b.iter_batched_ref(
            controller,
            |mc| {
                let mut cfg =
                    ScoutConfig::new(Bank::new(0), 512, RowGroupLayout::single_aggressor_pair(), 1);
                cfg.consistency_checks = 25;
                RowScout::new(cfg).scan(mc).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_schedule_learning(c: &mut Criterion) {
    let mut g = c.benchmark_group("methodology/schedule");
    g.sample_size(10);
    g.bench_function("learn_refresh_schedule", |b| {
        b.iter_batched_ref(
            || {
                let mut mc = controller();
                let mut cfg =
                    ScoutConfig::new(Bank::new(0), 512, RowGroupLayout::single_aggressor_pair(), 1);
                cfg.consistency_checks = 25;
                let group = RowScout::new(cfg).scan(&mut mc).unwrap().remove(0);
                (mc, group)
            },
            |(mc, group)| learn_refresh_schedule(mc, group, Bank::new(0)).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_experiment(c: &mut Criterion) {
    let mut g = c.benchmark_group("methodology/experiment");
    g.bench_function("single_iteration_5k_hammers", |b| {
        b.iter_batched_ref(
            || {
                let mut mc = controller();
                let mut cfg =
                    ScoutConfig::new(Bank::new(0), 512, RowGroupLayout::single_aggressor_pair(), 1);
                cfg.consistency_checks = 25;
                let group = RowScout::new(cfg).scan(&mut mc).unwrap().remove(0);
                let exp = Experiment::on_group(Bank::new(0), &group)
                    .with_hammer(HammerSpec::single_sided(group.aggressors[0], 5_000))
                    .with_refs(1);
                (mc, exp)
            },
            |(mc, exp)| TrrAnalyzer::new().run(mc, exp).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_rowscout, bench_schedule_learning, bench_experiment);
criterion_main!(benches);
