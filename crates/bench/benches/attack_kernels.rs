//! Attack-evaluation kernel benchmarks: the per-victim-position cost of
//! each vendor's custom pattern, which bounds full-bank sweep times.

use attacks::custom;
use attacks::eval::{evaluate_position, EvalConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dram_sim::PhysRow;
use softmc::MemoryController;
use utrr_modules::by_id;

fn bench_positions(c: &mut Criterion) {
    let mut g = c.benchmark_group("attack/one_position_one_window");
    g.sample_size(10);
    for id in ["A5", "B0", "C9"] {
        let spec = by_id(id).unwrap();
        let pattern = custom::pattern_for(&spec);
        let config = EvalConfig { windows: 1, ..EvalConfig::quick(1) };
        g.bench_function(id, |b| {
            b.iter_batched_ref(
                || MemoryController::new(spec.build_scaled(2_048, 7)),
                |mc| evaluate_position(mc, pattern.as_ref(), &config, PhysRow::new(512)),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_positions);
criterion_main!(benches);
