//! Device-level micro-benchmarks: the cost of the simulator primitives
//! that dominate full-bank sweeps.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dram_sim::{Bank, DataPattern, Module, ModuleConfig, RowAddr};

fn module() -> Module {
    Module::new(ModuleConfig::small_test(), 7)
}

fn bench_hammer(c: &mut Criterion) {
    let mut g = c.benchmark_group("device/hammer");
    g.bench_function("batched_5k", |b| {
        b.iter_batched_ref(
            module,
            |m| m.hammer(Bank::new(0), RowAddr::new(500), 5_000).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("single_x100", |b| {
        b.iter_batched_ref(
            module,
            |m| {
                for _ in 0..100 {
                    m.hammer(Bank::new(0), RowAddr::new(500), 1).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("interleaved_pair_5k", |b| {
        b.iter_batched_ref(
            module,
            |m| m.hammer_pair(Bank::new(0), RowAddr::new(499), RowAddr::new(501), 5_000).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_row_io(c: &mut Criterion) {
    let mut g = c.benchmark_group("device/row_io");
    g.bench_function("write_read_roundtrip", |b| {
        b.iter_batched_ref(
            module,
            |m| {
                m.write_row(Bank::new(0), RowAddr::new(3), DataPattern::Ones).unwrap();
                m.read_row(Bank::new(0), RowAddr::new(3)).unwrap();
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_refresh(c: &mut Criterion) {
    let mut g = c.benchmark_group("device/refresh");
    g.bench_function("ref_x1024_touched_bank", |b| {
        b.iter_batched_ref(
            || {
                let mut m = module();
                for r in 0..1024 {
                    m.write_row(Bank::new(0), RowAddr::new(r), DataPattern::Ones).unwrap();
                }
                m
            },
            |m| {
                for _ in 0..1024 {
                    m.refresh();
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_hammer, bench_row_io, bench_refresh);
criterion_main!(benches);
