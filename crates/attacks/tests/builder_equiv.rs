//! The component refactor is an *equality*, not an approximation: for
//! every attack and every parameterisation, the builder-assembled
//! generator/scheduler/verdict pipeline must issue the exact same
//! device-call sequence as the frozen pre-refactor implementation in
//! [`attacks::reference`] — same flips at same positions, same dataword
//! histograms, same `ACT` counter. These properties randomise the
//! attack parameters, the TRR engine guarding the module, and the
//! module seed, and assert whole-`BankSweep` equality plus
//! command-stream equality on every draw.

use attacks::baseline::{DoubleSided, ManySided, SingleSided};
use attacks::custom::{VendorAPattern, VendorBPattern, VendorCPattern};
use attacks::eval::{sweep_bank_module, EvalConfig};
use attacks::half_double::HalfDouble;
use attacks::reference::Legacy;
use attacks::{AccessPattern, AttackBuilder, BuiltinAttack};
use dram_sim::{Bank, Module, ModuleConfig};
use obs::MetricsRegistry;
use proptest::prelude::*;
use trr::{CounterTrr, SamplerTrr, WindowTrr};

/// The engine roster a draw can guard the module with (index into
/// [`engine_module`]); `0` is the unmitigated module.
const ENGINE_COUNT: u8 = 6;

fn engine_module(engine: u8, seed: u64) -> Module {
    // Raise HC_first as the in-crate tests do, so TRR-suppressed and
    // TRR-bypassing parameterisations actually differ in outcome.
    let mut config = ModuleConfig::small_test();
    config.physics.hc_first = 4_000.0;
    let banks = config.geometry.banks;
    match engine {
        0 => Module::new(config, seed),
        1 => Module::with_engine(config, Box::new(CounterTrr::a_trr1(banks)), seed),
        2 => Module::with_engine(config, Box::new(CounterTrr::a_trr2(banks)), seed),
        3 => Module::with_engine(config, Box::new(SamplerTrr::b_trr1(banks, 9)), seed),
        4 => Module::with_engine(config, Box::new(SamplerTrr::b_trr3(banks, 9)), seed),
        _ => Module::with_engine(config, Box::new(WindowTrr::c_trr1(banks, 9)), seed),
    }
}

/// Runs the frozen and the builder-assembled implementation of the same
/// parameterisation over identical modules and asserts sweep + command
/// equality.
fn assert_equivalent<T>(attack: T, engine: u8, seed: u64) -> Result<(), TestCaseError>
where
    T: BuiltinAttack + Copy + 'static,
    Legacy<T>: AccessPattern,
{
    let positions = (0..4).map(|i| dram_sim::PhysRow::new(150 + i * 90)).collect();
    let old_registry = MetricsRegistry::shared();
    let new_registry = MetricsRegistry::shared();
    let config = EvalConfig { positions, windows: 1, bank: Bank::new(0), ..EvalConfig::quick(4) };
    let old_config = EvalConfig { registry: Some(old_registry.clone()), ..config.clone() };
    let new_config = EvalConfig { registry: Some(new_registry.clone()), ..config };

    let old = sweep_bank_module(engine_module(engine, seed), &Legacy(attack), &old_config);
    let composed = AttackBuilder::from_attack(attack).build();
    let new = sweep_bank_module(engine_module(engine, seed), &composed, &new_config);

    prop_assert_eq!(old, new, "sweep diverged (engine {}, seed {})", engine, seed);
    for counter in [
        dram_sim::metrics::CTR_ACT,
        dram_sim::metrics::CTR_ROW_READS,
        dram_sim::metrics::CTR_BIT_FLIPS,
    ] {
        prop_assert_eq!(
            old_registry.counter(counter).get(),
            new_registry.counter(counter).get(),
            "counter {} diverged (engine {}, seed {})",
            counter,
            engine,
            seed
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn single_sided_matches_reference(
        hammers in 1u64..220,
        engine in 0u8..ENGINE_COUNT,
        seed in 1u64..500,
    ) {
        assert_equivalent(SingleSided { hammers }, engine, seed)?;
    }

    #[test]
    fn double_sided_matches_reference(
        hammers_per_aggressor in 1u64..75,
        engine in 0u8..ENGINE_COUNT,
        seed in 1u64..500,
    ) {
        assert_equivalent(DoubleSided { hammers_per_aggressor }, engine, seed)?;
    }

    #[test]
    fn many_sided_matches_reference(
        sides in 2u32..13,
        hammers_per_aggressor in 1u64..16,
        engine in 0u8..ENGINE_COUNT,
        seed in 1u64..500,
    ) {
        assert_equivalent(ManySided { sides, hammers_per_aggressor }, engine, seed)?;
    }

    #[test]
    fn vendor_a_matches_reference(
        aggressor_hammers in 1u64..30,
        dummy_rows in 0usize..17,
        dummy_hammers in 1u64..9,
        engine in 0u8..ENGINE_COUNT,
        seed in 1u64..500,
    ) {
        assert_equivalent(
            VendorAPattern { aggressor_hammers, dummy_rows, dummy_hammers },
            engine,
            seed,
        )?;
    }

    #[test]
    fn vendor_b_matches_reference(
        ratio in 1u64..10,
        per_bank in 0u8..2,
        hammers_per_interval in 1u64..75,
        dummy_hammers in 1u64..160,
        engine in 0u8..ENGINE_COUNT,
        seed in 1u64..500,
    ) {
        assert_equivalent(
            VendorBPattern {
                ratio,
                per_bank_sampler: per_bank == 1,
                hammers_per_interval,
                dummy_hammers,
            },
            engine,
            seed,
        )?;
    }

    #[test]
    fn vendor_c_matches_reference(
        ratio in 1u64..10,
        dummy_acts in 0u64..450,
        hammers_per_interval in 1u64..75,
        engine in 0u8..ENGINE_COUNT,
        seed in 1u64..500,
    ) {
        assert_equivalent(
            VendorCPattern { ratio, dummy_acts, hammers_per_interval },
            engine,
            seed,
        )?;
    }

    #[test]
    fn half_double_matches_reference(
        far_pairs in 1u64..75,
        near_pairs in 0u64..10,
        engine in 0u8..ENGINE_COUNT,
        seed in 1u64..500,
    ) {
        assert_equivalent(HalfDouble { far_pairs, near_pairs }, engine, seed)?;
    }
}
