//! Baseline RowHammer patterns: single-sided, double-sided, and
//! TRRespass-style many-sided.
//!
//! Footnote 18 of the paper: "When using the conventional single- and
//! double-sided RowHammer, we do not observe RowHammer bit flips in any
//! of the 45 DDR4 modules" — the baselines exist to demonstrate exactly
//! that against the planted TRR engines, and to flip bits on
//! TRR-less modules.
//!
//! Each baseline is a [`PatternGenerator`] with a canonical scheduler
//! (via [`BuiltinAttack`]), so it runs standalone as an
//! [`crate::AccessPattern`] and slots into
//! [`crate::AttackBuilder::from_attack`] unchanged.

use softmc::MemoryController;

use crate::components::{AggressorLayout, BuiltinAttack, PatternGenerator, RowDose};
use crate::pattern::PatternTarget;
use crate::schedulers::{CascadeScheduler, InterleaveScheduler, RoundRobinScheduler};

/// Repeatedly activate one aggressor row (Fig. 2a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingleSided {
    /// Hammers per interval.
    pub hammers: u64,
}

impl SingleSided {
    /// A full-budget single-sided hammer (~149 activations/interval).
    pub fn max_rate() -> Self {
        SingleSided { hammers: 149 }
    }
}

impl PatternGenerator for SingleSided {
    fn id(&self) -> &str {
        "single-sided"
    }

    fn rate_per_ref(&self) -> f64 {
        self.hammers as f64
    }

    fn layout(&self, _mc: &MemoryController, target: &PatternTarget) -> AggressorLayout {
        AggressorLayout {
            aggressors: target
                .aggressors
                .first()
                .map(|&a| RowDose::new(a, self.hammers))
                .into_iter()
                .collect(),
            ..AggressorLayout::default()
        }
    }
}

impl BuiltinAttack for SingleSided {
    type Sched = CascadeScheduler;

    fn scheduler(&self) -> CascadeScheduler {
        CascadeScheduler
    }
}

/// Alternately activate the two aggressors around the victim (Fig. 2b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoubleSided {
    /// Hammers per aggressor per interval.
    pub hammers_per_aggressor: u64,
}

impl DoubleSided {
    /// A full-budget double-sided hammer (74 + 74 activations/interval).
    pub fn max_rate() -> Self {
        DoubleSided { hammers_per_aggressor: 74 }
    }
}

impl PatternGenerator for DoubleSided {
    fn id(&self) -> &str {
        "double-sided"
    }

    fn rate_per_ref(&self) -> f64 {
        self.hammers_per_aggressor as f64
    }

    fn layout(&self, _mc: &MemoryController, target: &PatternTarget) -> AggressorLayout {
        AggressorLayout {
            aggressors: target
                .aggressors
                .iter()
                .map(|&a| RowDose::new(a, self.hammers_per_aggressor))
                .collect(),
            ..AggressorLayout::default()
        }
    }
}

impl BuiltinAttack for DoubleSided {
    type Sched = InterleaveScheduler;

    fn scheduler(&self) -> InterleaveScheduler {
        InterleaveScheduler
    }
}

/// TRRespass-style N-sided hammering: the two victim-adjacent aggressors
/// plus additional decoy aggressors further away, all hammered in an
/// interleaved round-robin — the "many sides" aim to overflow the TRR
/// tracker (§2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManySided {
    /// Total aggressor rows (≥ 2).
    pub sides: u32,
    /// Hammers per aggressor per interval.
    pub hammers_per_aggressor: u64,
}

impl ManySided {
    /// The 9-sided variant TRRespass found most effective on several
    /// parts, scaled to the per-interval budget.
    pub fn nine_sided() -> Self {
        ManySided { sides: 9, hammers_per_aggressor: 16 }
    }
}

impl PatternGenerator for ManySided {
    fn id(&self) -> &str {
        "many-sided"
    }

    fn rate_per_ref(&self) -> f64 {
        self.hammers_per_aggressor as f64
    }

    fn layout(&self, _mc: &MemoryController, target: &PatternTarget) -> AggressorLayout {
        // Victim-adjacent aggressors first, decoys (from the dummy pool)
        // after; the round-robin scheduler interleaves them one
        // activation at a time.
        let aggressors: Vec<RowDose> = target
            .aggressors
            .iter()
            .map(|&a| RowDose::new(a, self.hammers_per_aggressor))
            .collect();
        let decoys = target
            .dummies
            .iter()
            .copied()
            .take((self.sides as usize).saturating_sub(aggressors.len()))
            .map(|d| RowDose::new(d, self.hammers_per_aggressor))
            .collect();
        AggressorLayout { aggressors, dummies: decoys, other_bank: Vec::new() }
    }
}

impl BuiltinAttack for ManySided {
    type Sched = RoundRobinScheduler;

    fn scheduler(&self) -> RoundRobinScheduler {
        RoundRobinScheduler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{sweep_bank_module, EvalConfig};
    use crate::pattern::AccessPattern;
    use dram_sim::{Bank, Module, ModuleConfig, PhysRow};
    use trr::CounterTrr;

    /// The tiny test physics has HC_first = 1000, which even a
    /// TRR-capped disturbance (≤ 18 REFs of full-rate double-sided
    /// hammering between detections) would exceed; raise it so the
    /// protected/unprotected contrast is meaningful, as on real parts.
    fn test_config() -> ModuleConfig {
        let mut config = ModuleConfig::small_test();
        config.physics.hc_first = 4_000.0;
        config
    }

    fn no_trr_module() -> Module {
        Module::new(test_config(), 21)
    }

    fn trr_module() -> Module {
        Module::with_engine(test_config(), Box::new(CounterTrr::a_trr1(2)), 21)
    }

    fn quick_eval(module: Module, pattern: &dyn AccessPattern) -> f64 {
        let positions: Vec<PhysRow> = (0..8).map(|i| PhysRow::new(200 + i * 60)).collect();
        let config =
            EvalConfig { positions, windows: 2, bank: Bank::new(0), ..EvalConfig::quick(8) };
        sweep_bank_module(module, pattern, &config).vulnerable_pct()
    }

    #[test]
    fn double_sided_defeats_unprotected_module() {
        let pct = quick_eval(no_trr_module(), &DoubleSided::max_rate());
        assert!(pct > 99.0, "no TRR → every row flips, got {pct}%");
    }

    #[test]
    fn double_sided_fails_against_counter_trr() {
        let pct = quick_eval(trr_module(), &DoubleSided::max_rate());
        assert_eq!(pct, 0.0, "footnote 18: conventional hammering yields nothing");
    }

    #[test]
    fn single_sided_fails_against_counter_trr() {
        let pct = quick_eval(trr_module(), &SingleSided::max_rate());
        assert_eq!(pct, 0.0);
    }

    #[test]
    fn many_sided_also_fails_against_16_entry_counter_table() {
        // TRRespass cannot circumvent A_TRRx ("simply increasing the
        // number of aggressor rows is not sufficient", §1): nine sides
        // do not reliably push both aggressors out of a 16-entry LRU.
        let pct = quick_eval(trr_module(), &ManySided::nine_sided());
        assert!(pct < 50.0, "many-sided must underperform the custom pattern, got {pct}%");
    }

    #[test]
    fn pattern_names_and_rates() {
        assert_eq!(SingleSided::max_rate().name(), "single-sided");
        assert_eq!(DoubleSided::max_rate().hammers_per_aggressor_per_ref(), 74.0);
        assert_eq!(ManySided::nine_sided().sides, 9);
    }
}
