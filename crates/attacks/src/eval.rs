//! The §7 evaluation harness: run a pattern over sampled victim
//! positions of one bank and report the paper's metrics.
//!
//! Scale note (DESIGN.md §3): the paper sweeps whole 32K–64K-row banks;
//! this harness samples victim positions evenly across the bank, which
//! is unbiased for the percentage metrics, and supports scaled-down bank
//! builds for quick runs. Full-bank sweeps are a matter of passing every
//! position.

use std::sync::Arc;

use dram_sim::{Bank, DataPattern, Module, PhysRow};
use obs::MetricsRegistry;
use softmc::MemoryController;
use utrr_modules::ModuleSpec;

use crate::pattern::{AccessPattern, PatternTarget};

/// Evaluation parameters.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Bank under attack.
    pub bank: Bank,
    /// Victim regular-refresh windows to run per position (the paper
    /// runs each pattern "for a fixed interval of time").
    pub windows: u32,
    /// Pattern written into the victim rows.
    pub victim_pattern: DataPattern,
    /// Explicit victim positions; when empty, `sample_count` positions
    /// are spread evenly across the bank.
    pub positions: Vec<PhysRow>,
    /// Number of sampled positions when `positions` is empty.
    pub sample_count: u32,
    /// Rows per bank for module builds from a spec (`None` = the full
    /// Table-1 geometry).
    pub scaled_rows: Option<u32>,
    /// Seed for module builds from a spec.
    pub seed: u64,
    /// Metrics registry attached to the swept module, so sweeps running
    /// on internally built modules still land in one run artifact.
    /// `None` leaves the module's private registry in place.
    pub registry: Option<Arc<MetricsRegistry>>,
    /// Fault profile installed into the sweep's controller.
    /// [`faults::FaultProfile::None`] installs nothing at all, keeping
    /// the sweep bit-identical to a build without the fault layer.
    pub fault_profile: faults::FaultProfile,
    /// Seed for the deterministic fault plan (ignored under
    /// [`faults::FaultProfile::None`]).
    pub fault_seed: u64,
}

// The registry is plumbing, not an evaluation parameter: two configs
// that differ only in instrumentation describe the same sweep.
impl PartialEq for EvalConfig {
    fn eq(&self, other: &Self) -> bool {
        self.bank == other.bank
            && self.windows == other.windows
            && self.victim_pattern == other.victim_pattern
            && self.positions == other.positions
            && self.sample_count == other.sample_count
            && self.scaled_rows == other.scaled_rows
            && self.seed == other.seed
            && self.fault_profile == other.fault_profile
            && self.fault_seed == other.fault_seed
    }
}

impl EvalConfig {
    /// A fast, statistically sampled configuration.
    pub fn quick(sample_count: u32) -> Self {
        EvalConfig {
            bank: Bank::new(0),
            windows: 2,
            victim_pattern: DataPattern::RowStripe,
            positions: Vec::new(),
            sample_count,
            scaled_rows: Some(2_048),
            seed: 77,
            registry: None,
            fault_profile: faults::FaultProfile::None,
            fault_seed: 0,
        }
    }

    /// A full-fidelity configuration at the module's Table-1 geometry.
    pub fn full(sample_count: u32) -> Self {
        EvalConfig { scaled_rows: None, ..EvalConfig::quick(sample_count) }
    }
}

/// Outcome for one victim position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PositionResult {
    /// The victim's physical position.
    pub victim: PhysRow,
    /// Total bit flips observed in the victim row.
    pub flips: u32,
    /// `(flips in dataword, number of such 8-byte datawords)` for the
    /// victim row — the Fig. 10 ingredient.
    pub dataword_hist: Vec<(u32, u32)>,
}

/// A pattern's results over a set of victim positions in one bank.
#[derive(Debug, Clone, PartialEq)]
pub struct BankSweep {
    /// Pattern identifier.
    pub pattern: String,
    /// Average hammers per aggressor per `REF` (Fig. 8 x-axis).
    pub hammers_per_aggressor_per_ref: f64,
    /// Per-position outcomes.
    pub results: Vec<PositionResult>,
}

impl BankSweep {
    /// Percentage of tested rows with at least one bit flip (Fig. 9).
    pub fn vulnerable_pct(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        let vulnerable = self.results.iter().filter(|r| r.flips > 0).count();
        100.0 * vulnerable as f64 / self.results.len() as f64
    }

    /// The highest flip count observed in any row.
    pub fn max_flips_per_row(&self) -> u32 {
        self.results.iter().map(|r| r.flips).max().unwrap_or(0)
    }

    /// Table 1's "Max. Bit Flips per Row per Hammer": the per-row flip
    /// maximum normalized by the per-aggressor hammer rate.
    pub fn max_flips_per_row_per_hammer(&self) -> f64 {
        if self.hammers_per_aggressor_per_ref == 0.0 {
            return 0.0;
        }
        self.max_flips_per_row() as f64 / self.hammers_per_aggressor_per_ref
    }

    /// Five-number summary of flips per row — the Fig. 8 box plot
    /// ingredients `(min, q1, median, q3, max)`.
    pub fn flip_quartiles(&self) -> (u32, u32, u32, u32, u32) {
        let mut flips: Vec<u32> = self.results.iter().map(|r| r.flips).collect();
        if flips.is_empty() {
            return (0, 0, 0, 0, 0);
        }
        flips.sort_unstable();
        let q = |f: f64| flips[((flips.len() - 1) as f64 * f) as usize];
        (flips[0], q(0.25), q(0.5), q(0.75), flips[flips.len() - 1])
    }

    /// Aggregated Fig. 10 histogram: how many 8-byte datawords (across
    /// all tested rows) contain exactly `k` bit flips, for `k ≥ 1`.
    pub fn dataword_histogram(&self) -> Vec<(u32, u64)> {
        let mut hist: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for r in &self.results {
            for &(k, n) in &r.dataword_hist {
                *hist.entry(k).or_default() += n as u64;
            }
        }
        hist.into_iter().collect()
    }

    /// The largest number of flips observed in a single 8-byte dataword
    /// (the paper finds up to 7 — §7.4).
    pub fn max_flips_per_dataword(&self) -> u32 {
        self.dataword_histogram().last().map(|&(k, _)| k).unwrap_or(0)
    }
}

/// Runs `pattern` against one victim position for
/// `windows × period_refs` `REF` intervals and reads the victim back.
pub fn evaluate_position(
    mc: &mut MemoryController,
    pattern: &dyn AccessPattern,
    config: &EvalConfig,
    victim_phys: PhysRow,
) -> PositionResult {
    let target = PatternTarget::for_victim(mc, config.bank, victim_phys);
    if target.aggressors.is_empty() {
        return PositionResult { victim: victim_phys, flips: 0, dataword_hist: Vec::new() };
    }
    // Initialize the victim with the evaluation pattern and the
    // pattern's declared aggressor rows with the coupling-maximizing
    // row stripe.
    mc.write_row(config.bank, target.victim, config.victim_pattern.clone())
        .expect("victim address is in range");
    for aggressor in pattern.init_rows(&target) {
        mc.write_row(config.bank, aggressor, DataPattern::RowStripe)
            .expect("aggressor address is in range");
    }

    let timings = mc.module().timings();
    let period = mc.module().config().refresh.period_refs as u64;
    let intervals = period * config.windows as u64;
    for _ in 0..intervals {
        let started = mc.now();
        let interval = mc.module().ref_count();
        pattern.run_interval(mc, &target, interval).expect("patterns stay within protocol rules");
        mc.module_mut().refresh();
        let elapsed = mc.now() - started;
        mc.module_mut().advance(timings.t_refi.saturating_sub(elapsed));
        // The interval loop drives the module directly for timing
        // control, so the environment (drift, VRT bursts) must be
        // ticked explicitly; a no-op without a fault injector.
        mc.tick_environment();
    }

    // The attack's verdict stage reads the victim back and scores it
    // (flip counting against the weak-cell ground truth by default).
    pattern.verdict().judge(mc, &target, victim_phys)
}

/// Runs a sweep over a module built from its Table-1 spec.
pub fn sweep_bank(
    spec: &ModuleSpec,
    pattern: &dyn AccessPattern,
    config: &EvalConfig,
) -> BankSweep {
    let rows = config.scaled_rows.unwrap_or_else(|| spec.rows_per_bank());
    let module = spec.build_scaled(rows, config.seed);
    sweep_bank_module(module, pattern, config)
}

/// Runs a sweep over an already-built module.
///
/// When [`EvalConfig::registry`] is set it is attached to the module
/// first, and the sweep runs under an `attacks.eval.sweep` span.
pub fn sweep_bank_module(
    mut module: Module,
    pattern: &dyn AccessPattern,
    config: &EvalConfig,
) -> BankSweep {
    if let Some(registry) = &config.registry {
        module.attach_registry(Arc::clone(registry));
    }
    let mut mc = MemoryController::new(module);
    faults::install(&mut mc, config.fault_profile, config.fault_seed);
    let positions: Vec<PhysRow> = if config.positions.is_empty() {
        sample_positions(mc.module().geometry().rows_per_bank, config.sample_count)
    } else {
        config.positions.clone()
    };
    let registry = Arc::clone(mc.registry());
    let span = obs::span!(
        registry,
        "attacks.eval.sweep",
        mc.now().as_ns(),
        positions = positions.len() as u64,
        windows = config.windows as u64
    );
    let results: Vec<PositionResult> = positions
        .into_iter()
        .map(|victim| {
            let result = evaluate_position(&mut mc, pattern, config, victim);
            // Per-position verdict citing the victim-adjacent events
            // (ACTs, TRR detections, the final read_check) as evidence.
            if registry.tracing_enabled() {
                let evidence = registry
                    .recorder()
                    .map(|r| r.evidence_for_row(victim.index(), 32))
                    .unwrap_or_default();
                registry.trace_with_evidence(
                    obs::TraceKind::Verdict,
                    mc.now().as_ns(),
                    u32::from(config.bank.index()),
                    Some(victim.index()),
                    &[("flips", u64::from(result.flips))],
                    if result.flips > 0 { "vulnerable" } else { "clean" },
                    &evidence,
                );
            }
            result
        })
        .collect();
    span.finish(mc.now().as_ns());
    BankSweep {
        pattern: pattern.name().to_string(),
        hammers_per_aggressor_per_ref: pattern.hammers_per_aggressor_per_ref(),
        results,
    }
}

/// Evenly spread `count` victim positions across the bank, away from the
/// edge rows (and alternating even/odd so paired organizations are
/// covered on both sides).
fn sample_positions(rows_per_bank: u32, count: u32) -> Vec<PhysRow> {
    let count = count.clamp(1, (rows_per_bank / 8).max(1));
    // An even stride keeps the `i % 2` term controlling the parity.
    let stride = ((rows_per_bank.saturating_sub(16) / count) & !1).max(2);
    let margin = if rows_per_bank > 16 { 8 } else { 1 };
    (0..count)
        .map(|i| PhysRow::new((margin + i * stride + (i % 2)).min(rows_per_bank - 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::DoubleSided;
    use dram_sim::ModuleConfig;

    #[test]
    fn sample_positions_spread_and_alternate_parity() {
        let p = sample_positions(2048, 16);
        assert_eq!(p.len(), 16);
        assert!(p[0].index() >= 8);
        assert!(p.last().unwrap().index() < 2048);
        assert!(p.iter().any(|r| r.index() % 2 == 0));
        assert!(p.iter().any(|r| r.index() % 2 == 1));
        for w in p.windows(2) {
            assert!(w[1].index() > w[0].index() + 8);
        }
    }

    #[test]
    fn evaluate_position_counts_flips_and_datawords() {
        let module = Module::new(ModuleConfig::small_test(), 9);
        let mut mc = MemoryController::new(module);
        let config = EvalConfig::quick(1);
        let result =
            evaluate_position(&mut mc, &DoubleSided::max_rate(), &config, PhysRow::new(400));
        assert!(result.flips > 0, "unprotected module must flip");
        let hist_total: u32 = result.dataword_hist.iter().map(|&(_, n)| n).sum();
        assert!(hist_total > 0);
        let flips_from_hist: u32 = result.dataword_hist.iter().map(|&(k, n)| k * n).sum();
        assert_eq!(flips_from_hist, result.flips, "histogram accounts for every flip");
    }

    #[test]
    fn sweep_metrics_are_consistent() {
        let module = Module::new(ModuleConfig::small_test(), 9);
        let config = EvalConfig { sample_count: 6, ..EvalConfig::quick(6) };
        let sweep = sweep_bank_module(module, &DoubleSided::max_rate(), &config);
        assert_eq!(sweep.results.len(), 6);
        assert!(sweep.vulnerable_pct() > 99.0);
        let (min, q1, median, q3, max) = sweep.flip_quartiles();
        assert!(min <= q1 && q1 <= median && median <= q3 && q3 <= max);
        assert_eq!(sweep.max_flips_per_row(), max);
        assert!(sweep.max_flips_per_dataword() >= 1);
        assert!(sweep.max_flips_per_row_per_hammer() > 0.0);
    }

    #[test]
    fn fault_profile_flows_into_the_sweep() {
        let registry = obs::MetricsRegistry::shared();
        let config = EvalConfig {
            sample_count: 4,
            registry: Some(Arc::clone(&registry)),
            fault_profile: faults::FaultProfile::Hostile,
            fault_seed: 3,
            ..EvalConfig::quick(4)
        };
        let module = Module::new(ModuleConfig::small_test(), 9);
        let sweep = sweep_bank_module(module, &DoubleSided::max_rate(), &config);
        assert_eq!(sweep.results.len(), 4);
        assert!(
            registry.counter(faults::CTR_INJECTED_TOTAL).get() > 0,
            "a hostile sweep must inject faults"
        );
    }

    #[test]
    fn empty_sweep_is_well_behaved() {
        let sweep = BankSweep {
            pattern: "none".into(),
            hammers_per_aggressor_per_ref: 0.0,
            results: Vec::new(),
        };
        assert_eq!(sweep.vulnerable_pct(), 0.0);
        assert_eq!(sweep.flip_quartiles(), (0, 0, 0, 0, 0));
        assert_eq!(sweep.max_flips_per_row_per_hammer(), 0.0);
        assert!(sweep.dataword_histogram().is_empty());
    }
}
