//! A seeded, deterministic frequency-domain TRR-bypass fuzzer.
//!
//! TRRespass showed that *searching* the pattern space finds bypasses
//! no human wrote down, and Blacksmith refined the search axes to the
//! frequency domain: how often a row is hammered, at what phase
//! relative to the `REF` cadence, and with what intensity
//! distribution. This module samples exactly those axes over the
//! component pipeline ([`crate::components`]) — a [`FuzzParams`] point
//! describes a [`FuzzPattern`] generator plus a [`FuzzScheduler`] —
//! scores each candidate by bit flips induced against ground-truth TRR
//! engines, and refines promising candidates with per-engine elitist
//! mutation rounds, re-deriving §7.1-class bypass patterns from search
//! rather than from the paper.
//!
//! Determinism contract: candidate generation and mutation draw from
//! SplitMix64 streams keyed by `(seed, round, slot)` via
//! [`par::task_seed`], so [`run_fuzz`] is byte-identical at any
//! `--threads N` — the same contract as every repro binary.

use dram_sim::rng::{derive_seed, SplitMix64};
use obs::jsonl::JsonValue;
use softmc::MemoryController;
use utrr_modules::{by_version, ModuleSpec};

use crate::components::{
    AggressorLayout, AttackBuilder, BuiltinAttack, PatternGenerator, RowDose, Scheduler, Slot,
    INTERVAL_BUDGET,
};
use crate::eval::{sweep_bank, EvalConfig};
use crate::pattern::PatternTarget;

/// Schema identifier of the fuzz run artifact.
pub const FUZZ_SCHEMA: &str = "utrr-fuzz/1";

/// Candidates evaluated (one per sampled or mutated parameter point).
pub const CTR_FUZZ_CANDIDATES: &str = "attacks.fuzz.candidates";
/// Candidate × engine sweep evaluations.
pub const CTR_FUZZ_EVALS: &str = "attacks.fuzz.evals";
/// Candidate × engine evaluations that induced at least one bit flip.
pub const CTR_FUZZ_BYPASSES: &str = "attacks.fuzz.bypasses";
/// Candidates produced by mutating an elite (vs fresh samples).
pub const CTR_FUZZ_MUTATIONS: &str = "attacks.fuzz.mutations";

/// Longest pattern repetition period, in `tREFI` intervals (covers the
/// largest TRR-to-REF ratio in the catalog, 17, with headroom).
pub const MAX_PERIOD: u64 = 18;
/// Heaviest per-aggressor dose per hammering interval (the pair budget).
pub const MAX_AGGRESSOR_ACTS: u64 = 74;
/// Largest window-opening dummy dose (three full intervals).
pub const MAX_LEAD_DUMMY_ACTS: u64 = 3 * INTERVAL_BUDGET;
/// Dummy-row pool size (the vendor-A counter table size).
pub const MAX_TAIL_DUMMY_ROWS: u64 = 16;
/// Heaviest per-row tail dummy dose.
pub const MAX_TAIL_DUMMY_ACTS: u64 = 8;
/// Other-bank diversion dose per dummy row (the §7.1 vendor-B figure).
const OTHER_BANK_DIVERT_ACTS: u64 = 156;

/// One point of the frequency-domain search space.
///
/// The axes map onto the §7.1 bypass classes: `tail_dummy_rows` ×
/// `tail_dummy_acts` is vendor A's counter-table eviction,
/// `divert_intervals` + `divert_other_banks` is vendor B's sampler
/// stealing, `lead_dummy_acts` is vendor C's window exhaustion, and
/// `period`/`phase` place all of it against the TRR-capable-`REF`
/// cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzParams {
    /// Pattern repetition period in `tREFI` intervals (≥ 1).
    pub period: u64,
    /// Phase offset of the pattern against the device `REF` counter
    /// (`0..period`).
    pub phase: u64,
    /// Trailing intervals of each period spent entirely on dummy rows
    /// (`0..period`).
    pub divert_intervals: u64,
    /// Whether diversion intervals hammer dummies in other banks
    /// (chip-wide sampler stealing) instead of the target bank.
    pub divert_other_banks: bool,
    /// Dummy activations opening each period, spilling across intervals
    /// (window exhaustion); 0 disables.
    pub lead_dummy_acts: u64,
    /// Activations per aggressor per hammering interval (amplitude).
    pub aggressor_acts: u64,
    /// Pair-interleave the two aggressors instead of cascading them.
    pub interleave: bool,
    /// Dummy rows hammered after the aggressors in each hammering
    /// interval (tracker eviction); 0 disables.
    pub tail_dummy_rows: u64,
    /// Activations per tail dummy row.
    pub tail_dummy_acts: u64,
}

impl FuzzParams {
    /// Draws a fresh parameter point from `rng`.
    pub fn sample(rng: &mut SplitMix64) -> Self {
        let period = 1 + rng.next_below(MAX_PERIOD);
        let phase = rng.next_below(period);
        let divert_intervals =
            if period > 1 && rng.next_bool(0.5) { 1 + rng.next_below(period - 1) } else { 0 };
        FuzzParams {
            period,
            phase,
            divert_intervals,
            divert_other_banks: rng.next_bool(0.5),
            lead_dummy_acts: if rng.next_bool(0.35) {
                1 + rng.next_below(MAX_LEAD_DUMMY_ACTS)
            } else {
                0
            },
            aggressor_acts: 1 + rng.next_below(MAX_AGGRESSOR_ACTS),
            interleave: rng.next_bool(0.5),
            tail_dummy_rows: rng.next_below(MAX_TAIL_DUMMY_ROWS + 1),
            tail_dummy_acts: 1 + rng.next_below(MAX_TAIL_DUMMY_ACTS),
        }
    }

    /// Returns a mutated copy: one or two axes re-drawn, invariants
    /// restored. Deterministic in `rng`.
    pub fn mutated(&self, rng: &mut SplitMix64) -> Self {
        let mut p = *self;
        let tweaks = 1 + rng.next_below(2);
        for _ in 0..tweaks {
            match rng.next_below(9) {
                0 => p.period = 1 + rng.next_below(MAX_PERIOD),
                1 => p.phase = rng.next_below(p.period.max(1)),
                2 => {
                    p.divert_intervals = if p.period > 1 { rng.next_below(p.period) } else { 0 };
                }
                3 => p.divert_other_banks = !p.divert_other_banks,
                4 => {
                    p.lead_dummy_acts = if rng.next_bool(0.5) {
                        1 + rng.next_below(MAX_LEAD_DUMMY_ACTS)
                    } else {
                        0
                    };
                }
                5 => p.aggressor_acts = 1 + rng.next_below(MAX_AGGRESSOR_ACTS),
                6 => p.interleave = !p.interleave,
                7 => p.tail_dummy_rows = rng.next_below(MAX_TAIL_DUMMY_ROWS + 1),
                _ => p.tail_dummy_acts = 1 + rng.next_below(MAX_TAIL_DUMMY_ACTS),
            }
        }
        p.normalised()
    }

    /// Restores cross-field invariants (`phase < period`,
    /// `divert_intervals < period`).
    pub fn normalised(mut self) -> Self {
        self.period = self.period.max(1);
        self.phase %= self.period;
        self.divert_intervals = self.divert_intervals.min(self.period - 1);
        self
    }

    /// Fixed-key-order JSON object for the `utrr-fuzz/1` artifact.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"period\":{},\"phase\":{},\"divert_intervals\":{},\"divert_other_banks\":{},\
             \"lead_dummy_acts\":{},\"aggressor_acts\":{},\"interleave\":{},\
             \"tail_dummy_rows\":{},\"tail_dummy_acts\":{}}}",
            self.period,
            self.phase,
            self.divert_intervals,
            self.divert_other_banks,
            self.lead_dummy_acts,
            self.aggressor_acts,
            self.interleave,
            self.tail_dummy_rows,
            self.tail_dummy_acts,
        )
    }

    /// Parses the object written by [`FuzzParams::to_json`].
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let num = |key: &str| {
            value.get(key).and_then(JsonValue::as_u64).ok_or_else(|| format!("params.{key}"))
        };
        let flag = |key: &str| match value.get(key) {
            Some(JsonValue::Bool(b)) => Ok(*b),
            _ => Err(format!("params.{key}")),
        };
        Ok(FuzzParams {
            period: num("period")?,
            phase: num("phase")?,
            divert_intervals: num("divert_intervals")?,
            divert_other_banks: flag("divert_other_banks")?,
            lead_dummy_acts: num("lead_dummy_acts")?,
            aggressor_acts: num("aggressor_acts")?,
            interleave: flag("interleave")?,
            tail_dummy_rows: num("tail_dummy_rows")?,
            tail_dummy_acts: num("tail_dummy_acts")?,
        }
        .normalised())
    }

    /// Compact human-readable rendering for reports.
    pub fn describe(&self) -> String {
        format!(
            "period={} phase={} divert={}{} lead={} amp={} {} tail={}x{}",
            self.period,
            self.phase,
            self.divert_intervals,
            if self.divert_other_banks { "(other-bank)" } else { "(same-bank)" },
            self.lead_dummy_acts,
            self.aggressor_acts,
            if self.interleave { "interleave" } else { "cascade" },
            self.tail_dummy_rows,
            self.tail_dummy_acts,
        )
    }
}

/// The generator half of a fuzz candidate: aggressors at the sampled
/// amplitude, the full 16-row dummy pool at the tail dose, and up to
/// four other-bank dummies for diversions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzPattern {
    /// The sampled parameter point.
    pub params: FuzzParams,
}

impl PatternGenerator for FuzzPattern {
    fn id(&self) -> &str {
        "fuzz"
    }

    fn rate_per_ref(&self) -> f64 {
        let p = &self.params;
        let hammering = p.period.saturating_sub(p.divert_intervals) as f64;
        p.aggressor_acts as f64 * hammering / p.period.max(1) as f64
    }

    fn layout(&self, _mc: &MemoryController, target: &PatternTarget) -> AggressorLayout {
        AggressorLayout {
            aggressors: target
                .aggressors
                .iter()
                .map(|&a| RowDose::new(a, self.params.aggressor_acts))
                .collect(),
            dummies: target
                .dummies
                .iter()
                .map(|&d| RowDose::new(d, self.params.tail_dummy_acts))
                .collect(),
            other_bank: target
                .other_bank_dummies
                .iter()
                .take(4)
                .map(|&(bank, d)| (bank, RowDose::new(d, OTHER_BANK_DIVERT_ACTS)))
                .collect(),
        }
    }
}

impl BuiltinAttack for FuzzPattern {
    type Sched = FuzzScheduler;

    fn scheduler(&self) -> FuzzScheduler {
        FuzzScheduler { params: self.params }
    }
}

/// The scheduler half of a fuzz candidate: REF-synchronised phasing
/// with diversion tails, window-opening dummy spills, interleaved or
/// cascaded aggressors, and tail dummy eviction — all capped at the
/// per-interval activation budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzScheduler {
    /// The sampled parameter point.
    pub params: FuzzParams,
}

impl Scheduler for FuzzScheduler {
    fn id(&self) -> &str {
        "fuzz-phased"
    }

    fn schedule(&self, layout: &AggressorLayout, interval: u64, slots: &mut Vec<Slot>) {
        let p = &self.params;
        let period = p.period.max(1);
        let pos = (interval + p.phase) % period;
        let hammering = period - p.divert_intervals.min(period - 1);
        if pos >= hammering {
            // Diversion interval: dummies only, stealing whatever the
            // engine samples next.
            if p.divert_other_banks {
                for &(bank, d) in layout.other_bank.iter().take(4) {
                    slots.push(Slot::OtherBank { bank, row: d.row, acts: d.acts });
                }
            } else if let Some(d) = layout.dummies.first() {
                slots.push(Slot::Burst { row: d.row, acts: INTERVAL_BUDGET });
            }
            return;
        }
        let mut budget = INTERVAL_BUDGET;
        // Window-opening dummies, spilling across the period's first
        // intervals (vendor-C-class exhaustion).
        let consumed = pos * INTERVAL_BUDGET;
        let lead = p.lead_dummy_acts.saturating_sub(consumed).min(budget);
        if lead > 0 {
            if let Some(d) = layout.dummies.first() {
                slots.push(Slot::Burst { row: d.row, acts: lead });
            }
            budget -= lead; // interval time passes with or without a dummy row
        }
        // Aggressors at the sampled amplitude.
        if p.interleave && layout.aggressors.len() == 2 {
            let pairs = (budget / 2).min(layout.aggressors[0].acts);
            slots.push(Slot::Pair {
                first: layout.aggressors[0].row,
                second: layout.aggressors[1].row,
                pairs,
            });
            budget -= 2 * pairs;
        } else {
            for a in &layout.aggressors {
                let acts = a.acts.min(budget);
                if acts > 0 {
                    slots.push(Slot::Burst { row: a.row, acts });
                    budget -= acts;
                }
            }
        }
        // Tail dummies (vendor-A-class tracker eviction).
        for d in layout.dummies.iter().take(p.tail_dummy_rows as usize) {
            if budget == 0 {
                break;
            }
            let acts = d.acts.min(budget);
            slots.push(Slot::Burst { row: d.row, acts });
            budget -= acts;
        }
    }
}

/// One scored candidate × engine outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineScore {
    /// Total bit flips across the sweep's victim positions.
    pub flips: u64,
    /// Victim positions with at least one flip.
    pub vulnerable: u32,
}

/// One evaluated candidate: where it came from, its parameters, and
/// its per-engine scores (parallel to [`FuzzConfig::engines`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Mutation round that produced it.
    pub round: u32,
    /// Slot within the round.
    pub index: u32,
    /// The parameter point.
    pub params: FuzzParams,
    /// Per-engine scores, in engine order.
    pub scores: Vec<EngineScore>,
}

/// Fuzzer configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed of the candidate streams.
    pub seed: u64,
    /// Mutation rounds (round 0 is all fresh samples).
    pub rounds: u32,
    /// Candidates per round.
    pub candidates: u32,
    /// Elites kept per engine for the next round's mutations.
    pub elites: u32,
    /// Ground-truth TRR engine versions to attack (`"A_TRR1"`…).
    pub engines: Vec<String>,
    /// Shared sweep parameters (rows, samples, windows, seed, faults,
    /// registry) — identical for every candidate so scores compare.
    pub eval: EvalConfig,
}

impl FuzzConfig {
    /// A small smoke configuration against one engine.
    pub fn smoke(seed: u64, engine: &str) -> Self {
        FuzzConfig {
            seed,
            rounds: 2,
            candidates: 8,
            elites: 2,
            engines: vec![engine.to_string()],
            eval: EvalConfig { sample_count: 4, windows: 1, ..EvalConfig::quick(4) },
        }
    }
}

/// A finished fuzz run: every candidate plus the best-per-engine
/// leaderboard.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzOutcome {
    /// Engine versions attacked, in score order.
    pub engines: Vec<String>,
    /// The representative module spec id evaluated per engine.
    pub specs: Vec<String>,
    /// All evaluated candidates, in (round, index) order.
    pub candidates: Vec<Candidate>,
    /// Best candidate per engine (highest flips; ties to the earliest
    /// round/index). Empty only when no candidates ran.
    pub leaders: Vec<Candidate>,
}

impl FuzzOutcome {
    /// Whether the fuzzer found a bypass (≥ 1 flip) for engine `e`.
    pub fn bypassed(&self, e: usize) -> bool {
        self.leaders.get(e).is_some_and(|c| c.scores[e].flips > 0)
    }
}

/// The representative module spec for a TRR engine version: the
/// catalog module of that version with the lowest `HC_first` (most
/// flip-prone, so search signal appears at small sweep sizes).
pub fn engine_spec(version: &str) -> Option<ModuleSpec> {
    by_version(version).into_iter().min_by_key(|s| s.hc_first)
}

/// The best candidate for an engine: maximum flips, ties broken toward
/// the earliest (round, index) — so a re-run at another thread count
/// or a parsed artifact reproduces the same leaderboard.
pub fn best_for_engine(candidates: &[Candidate], engine: usize) -> Option<&Candidate> {
    candidates.iter().min_by_key(|c| (std::cmp::Reverse(c.scores[engine].flips), c.round, c.index))
}

/// Parent assignment for a round: `None` → fresh sample, `Some(p)` →
/// mutate `p`. Round 0 is all fresh; later rounds cycle each engine's
/// elite board across the slots, keeping every fourth slot fresh so
/// the search never collapses onto early winners.
fn assign_parents(round: u32, all: &[Candidate], config: &FuzzConfig) -> Vec<Option<FuzzParams>> {
    let n = config.candidates as usize;
    if round == 0 || all.is_empty() {
        return vec![None; n];
    }
    let engines = config.engines.len().max(1);
    let boards: Vec<Vec<&Candidate>> = (0..engines)
        .map(|e| {
            let mut hits: Vec<&Candidate> = all.iter().filter(|c| c.scores[e].flips > 0).collect();
            hits.sort_by_key(|c| (std::cmp::Reverse(c.scores[e].flips), c.round, c.index));
            hits.truncate(config.elites.max(1) as usize);
            hits
        })
        .collect();
    (0..n)
        .map(|i| {
            if i % 4 == 3 {
                return None; // exploration slot
            }
            let board = &boards[i % engines];
            if board.is_empty() {
                None
            } else {
                Some(board[(i / engines) % board.len()].params)
            }
        })
        .collect()
}

/// Runs the fuzzer: `rounds × candidates` parameter points, each
/// swept against every engine's representative module, with elitist
/// mutation between rounds. Byte-identical at any worker count.
///
/// # Errors
///
/// Returns an error for unknown engine versions or empty engine lists.
pub fn run_fuzz(config: &FuzzConfig, pool: &par::ParConfig) -> Result<FuzzOutcome, String> {
    if config.engines.is_empty() {
        return Err("no TRR engines selected".to_string());
    }
    let specs: Vec<ModuleSpec> = config
        .engines
        .iter()
        .map(|v| engine_spec(v).ok_or_else(|| format!("unknown TRR engine version: {v}")))
        .collect::<Result<_, _>>()?;
    let registry = config.eval.registry.clone();
    let mut all: Vec<Candidate> = Vec::new();
    for round in 0..config.rounds {
        let parents = assign_parents(round, &all, config);
        let span = registry.as_ref().map(|r| {
            obs::span!(
                std::sync::Arc::clone(r),
                "attacks.fuzz.round",
                0,
                round = round,
                slots = parents.len() as u64
            )
        });
        let produced: Vec<Candidate> = par::par_map_seeded(
            pool,
            derive_seed(config.seed, round as u64),
            &parents,
            |i, seed, parent| {
                let mut rng = SplitMix64::new(seed);
                let params = match parent {
                    None => FuzzParams::sample(&mut rng),
                    Some(p) => p.mutated(&mut rng),
                };
                let scores = specs
                    .iter()
                    .map(|spec| {
                        let attack = AttackBuilder::from_attack(FuzzPattern { params }).build();
                        let sweep = sweep_bank(spec, &attack, &config.eval);
                        EngineScore {
                            flips: sweep.results.iter().map(|r| u64::from(r.flips)).sum(),
                            vulnerable: sweep.results.iter().filter(|r| r.flips > 0).count() as u32,
                        }
                    })
                    .collect();
                Candidate { round, index: i as u32, params, scores }
            },
        );
        if let Some(r) = &registry {
            r.counter(CTR_FUZZ_CANDIDATES).add(produced.len() as u64);
            r.counter(CTR_FUZZ_EVALS).add((produced.len() * specs.len()) as u64);
            let bypasses =
                produced.iter().flat_map(|c| &c.scores).filter(|s| s.flips > 0).count() as u64;
            r.counter(CTR_FUZZ_BYPASSES).add(bypasses);
            let mutations = parents.iter().filter(|p| p.is_some()).count() as u64;
            r.counter(CTR_FUZZ_MUTATIONS).add(mutations);
        }
        if let Some(s) = span {
            s.finish(0);
        }
        all.extend(produced);
    }
    let leaders =
        (0..config.engines.len()).filter_map(|e| best_for_engine(&all, e).cloned()).collect();
    Ok(FuzzOutcome {
        engines: config.engines.clone(),
        specs: specs.into_iter().map(|s| s.id).collect(),
        candidates: all,
        leaders,
    })
}

fn scores_json(engines: &[String], scores: &[EngineScore]) -> String {
    let entries: Vec<String> = engines
        .iter()
        .zip(scores)
        .map(|(engine, s)| {
            format!(
                "{{\"engine\":\"{engine}\",\"flips\":{},\"vulnerable\":{}}}",
                s.flips, s.vulnerable
            )
        })
        .collect();
    format!("[{}]", entries.join(","))
}

/// Renders a run as the `utrr-fuzz/1` JSONL artifact: a meta line,
/// one `candidate` record per evaluated point, and one `leader` record
/// per engine.
pub fn render_fuzz_jsonl(config: &FuzzConfig, outcome: &FuzzOutcome) -> String {
    let mut out = String::new();
    let engines: Vec<String> = outcome.engines.iter().map(|e| format!("\"{e}\"")).collect();
    let specs: Vec<String> = outcome.specs.iter().map(|s| format!("\"{s}\"")).collect();
    out.push_str(&format!(
        "{{\"schema\":\"{FUZZ_SCHEMA}\",\"seed\":{},\"rounds\":{},\"candidates_per_round\":{},\
         \"elites\":{},\"engines\":[{}],\"specs\":[{}],\"rows\":{},\"samples\":{},\
         \"windows\":{},\"eval_seed\":{}}}\n",
        config.seed,
        config.rounds,
        config.candidates,
        config.elites,
        engines.join(","),
        specs.join(","),
        config.eval.scaled_rows.unwrap_or(0),
        config.eval.sample_count,
        config.eval.windows,
        config.eval.seed,
    ));
    for c in &outcome.candidates {
        out.push_str(&format!(
            "{{\"record\":\"candidate\",\"round\":{},\"index\":{},\"params\":{},\"scores\":{}}}\n",
            c.round,
            c.index,
            c.params.to_json(),
            scores_json(&outcome.engines, &c.scores),
        ));
    }
    for (e, leader) in outcome.leaders.iter().enumerate() {
        let s = leader.scores[e];
        out.push_str(&format!(
            "{{\"record\":\"leader\",\"engine\":\"{}\",\"bypass\":{},\"round\":{},\"index\":{},\
             \"flips\":{},\"vulnerable\":{},\"params\":{}}}\n",
            outcome.engines[e],
            s.flips > 0,
            leader.round,
            leader.index,
            s.flips,
            s.vulnerable,
            leader.params.to_json(),
        ));
    }
    out
}

/// A leader record parsed back from a `utrr-fuzz/1` artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaderRecord {
    /// Engine version.
    pub engine: String,
    /// Whether the leader induces flips.
    pub bypass: bool,
    /// Round of the leading candidate.
    pub round: u32,
    /// Index of the leading candidate.
    pub index: u32,
    /// Its flips against this engine.
    pub flips: u64,
    /// Its vulnerable position count against this engine.
    pub vulnerable: u32,
    /// Its parameters.
    pub params: FuzzParams,
}

/// A parsed `utrr-fuzz/1` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzArtifact {
    /// Master seed recorded in the meta line.
    pub seed: u64,
    /// Rounds recorded in the meta line.
    pub rounds: u32,
    /// Candidates per round recorded in the meta line.
    pub candidates_per_round: u32,
    /// Engine versions, in score order.
    pub engines: Vec<String>,
    /// Every candidate record.
    pub candidates: Vec<Candidate>,
    /// Every leader record.
    pub leaders: Vec<LeaderRecord>,
}

/// Parses a `utrr-fuzz/1` artifact (round-trip of
/// [`render_fuzz_jsonl`]).
///
/// # Errors
///
/// Returns a description of the first malformed line or field.
pub fn parse_fuzz_jsonl(input: &str) -> Result<FuzzArtifact, String> {
    let values = obs::jsonl::parse_jsonl(input).map_err(|e| e.to_string())?;
    let meta = values.first().ok_or("empty artifact")?;
    if meta.get("schema").and_then(JsonValue::as_str) != Some(FUZZ_SCHEMA) {
        return Err(format!("missing schema {FUZZ_SCHEMA}"));
    }
    let meta_num =
        |key: &str| meta.get(key).and_then(JsonValue::as_u64).ok_or_else(|| format!("meta.{key}"));
    let engines: Vec<String> = meta
        .get("engines")
        .and_then(JsonValue::as_array)
        .ok_or("meta.engines")?
        .iter()
        .filter_map(|v| v.as_str().map(str::to_string))
        .collect();
    let mut artifact = FuzzArtifact {
        seed: meta_num("seed")?,
        rounds: meta_num("rounds")? as u32,
        candidates_per_round: meta_num("candidates_per_round")? as u32,
        engines,
        candidates: Vec::new(),
        leaders: Vec::new(),
    };
    for value in &values[1..] {
        let num = |key: &str| {
            value.get(key).and_then(JsonValue::as_u64).ok_or_else(|| format!("record.{key}"))
        };
        match value.get("record").and_then(JsonValue::as_str) {
            Some("candidate") => {
                let scores = value
                    .get("scores")
                    .and_then(JsonValue::as_array)
                    .ok_or("candidate.scores")?
                    .iter()
                    .map(|s| {
                        Ok(EngineScore {
                            flips: s.get("flips").and_then(JsonValue::as_u64).ok_or("flips")?,
                            vulnerable: s
                                .get("vulnerable")
                                .and_then(JsonValue::as_u64)
                                .ok_or("vulnerable")?
                                as u32,
                        })
                    })
                    .collect::<Result<Vec<_>, &str>>()
                    .map_err(|e| format!("candidate.scores.{e}"))?;
                artifact.candidates.push(Candidate {
                    round: num("round")? as u32,
                    index: num("index")? as u32,
                    params: FuzzParams::from_json(value.get("params").ok_or("candidate.params")?)?,
                    scores,
                });
            }
            Some("leader") => {
                let bypass = match value.get("bypass") {
                    Some(JsonValue::Bool(b)) => *b,
                    _ => return Err("leader.bypass".to_string()),
                };
                artifact.leaders.push(LeaderRecord {
                    engine: value
                        .get("engine")
                        .and_then(JsonValue::as_str)
                        .ok_or("leader.engine")?
                        .to_string(),
                    bypass,
                    round: num("round")? as u32,
                    index: num("index")? as u32,
                    flips: num("flips")?,
                    vulnerable: num("vulnerable")? as u32,
                    params: FuzzParams::from_json(value.get("params").ok_or("leader.params")?)?,
                });
            }
            _ => return Err("record without a known type".to_string()),
        }
    }
    Ok(artifact)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params_fixture(k: u64) -> FuzzParams {
        FuzzParams::sample(&mut SplitMix64::new(1000 + k))
    }

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        for seed in 0..64 {
            let a = FuzzParams::sample(&mut SplitMix64::new(seed));
            let b = FuzzParams::sample(&mut SplitMix64::new(seed));
            assert_eq!(a, b);
            assert!((1..=MAX_PERIOD).contains(&a.period));
            assert!(a.phase < a.period);
            assert!(a.divert_intervals < a.period);
            assert!((1..=MAX_AGGRESSOR_ACTS).contains(&a.aggressor_acts));
            assert!(a.tail_dummy_rows <= MAX_TAIL_DUMMY_ROWS);
        }
        let a = FuzzParams::sample(&mut SplitMix64::new(1));
        let b = FuzzParams::sample(&mut SplitMix64::new(2));
        assert_ne!(a, b, "distinct streams draw distinct points");
    }

    #[test]
    fn mutation_is_deterministic_and_preserves_invariants() {
        for seed in 0..64 {
            let parent = params_fixture(seed);
            let a = parent.mutated(&mut SplitMix64::new(seed * 31));
            let b = parent.mutated(&mut SplitMix64::new(seed * 31));
            assert_eq!(a, b);
            assert!(a.phase < a.period);
            assert!(a.divert_intervals < a.period);
            assert!(a.period >= 1 && a.aggressor_acts >= 1);
        }
    }

    #[test]
    fn scheduler_respects_the_interval_budget() {
        for seed in 0..128 {
            let params = params_fixture(seed);
            let scheduler = FuzzScheduler { params };
            let layout = AggressorLayout {
                aggressors: vec![
                    RowDose::new(dram_sim::RowAddr::new(10), params.aggressor_acts),
                    RowDose::new(dram_sim::RowAddr::new(12), params.aggressor_acts),
                ],
                dummies: (0..16)
                    .map(|i| {
                        RowDose::new(dram_sim::RowAddr::new(500 + i * 10), params.tail_dummy_acts)
                    })
                    .collect(),
                other_bank: vec![(
                    dram_sim::Bank::new(1),
                    RowDose::new(dram_sim::RowAddr::new(300), OTHER_BANK_DIVERT_ACTS),
                )],
            };
            for interval in 0..(2 * MAX_PERIOD) {
                let mut slots = Vec::new();
                scheduler.schedule(&layout, interval, &mut slots);
                let same_bank: u64 = slots
                    .iter()
                    .map(|s| match *s {
                        Slot::Burst { acts, .. } => acts,
                        Slot::Pair { pairs, .. } => 2 * pairs,
                        Slot::OtherBank { .. } => 0,
                    })
                    .sum();
                assert!(
                    same_bank <= INTERVAL_BUDGET,
                    "seed {seed} interval {interval}: {same_bank} ACTs"
                );
            }
        }
    }

    #[test]
    fn leaderboard_prefers_flips_then_earliest() {
        let mk = |round, index, flips| Candidate {
            round,
            index,
            params: params_fixture(0),
            scores: vec![EngineScore { flips, vulnerable: (flips > 0) as u32 }],
        };
        let candidates = vec![mk(0, 0, 4), mk(0, 1, 9), mk(1, 0, 9), mk(1, 1, 2)];
        let best = best_for_engine(&candidates, 0).unwrap();
        assert_eq!((best.round, best.index, best.scores[0].flips), (0, 1, 9));
        // All-zero scores: the earliest candidate leads (bypass=false).
        let zeroes = vec![mk(0, 1, 0), mk(0, 0, 0)];
        let best = best_for_engine(&zeroes, 0).unwrap();
        assert_eq!((best.round, best.index), (0, 0));
        assert!(best_for_engine(&[], 0).is_none());
    }

    #[test]
    fn jsonl_round_trips() {
        let engines = vec!["A_TRR1".to_string(), "B_TRR1".to_string()];
        let candidates: Vec<Candidate> = (0..6)
            .map(|i| Candidate {
                round: i / 3,
                index: i % 3,
                params: params_fixture(i as u64),
                scores: vec![
                    EngineScore { flips: (i * 7) as u64 % 13, vulnerable: i % 3 },
                    EngineScore { flips: (i * 5) as u64 % 11, vulnerable: i % 2 },
                ],
            })
            .collect();
        let leaders: Vec<Candidate> =
            (0..2).map(|e| best_for_engine(&candidates, e).unwrap().clone()).collect();
        let outcome = FuzzOutcome {
            engines: engines.clone(),
            specs: vec!["A13".to_string(), "B13".to_string()],
            candidates,
            leaders,
        };
        let config = FuzzConfig {
            seed: 9,
            rounds: 2,
            candidates: 3,
            elites: 2,
            engines,
            eval: EvalConfig::quick(4),
        };
        let rendered = render_fuzz_jsonl(&config, &outcome);
        let parsed = parse_fuzz_jsonl(&rendered).unwrap();
        assert_eq!(parsed.seed, 9);
        assert_eq!(parsed.rounds, 2);
        assert_eq!(parsed.candidates_per_round, 3);
        assert_eq!(parsed.engines, outcome.engines);
        assert_eq!(parsed.candidates, outcome.candidates);
        assert_eq!(parsed.leaders.len(), 2);
        assert_eq!(parsed.leaders[0].params, outcome.leaders[0].params);
        assert_eq!(parsed.leaders[0].flips, outcome.leaders[0].scores[0].flips);
    }

    #[test]
    fn run_fuzz_is_byte_identical_across_worker_counts() {
        let config = FuzzConfig {
            rounds: 2,
            candidates: 3,
            eval: EvalConfig {
                sample_count: 2,
                windows: 1,
                scaled_rows: Some(512),
                ..EvalConfig::quick(2)
            },
            ..FuzzConfig::smoke(5, "A_TRR1")
        };
        let seq = run_fuzz(&config, &par::ParConfig::sequential()).unwrap();
        let par2 = run_fuzz(&config, &par::ParConfig { threads: 2, registry: None }).unwrap();
        assert_eq!(seq, par2);
        assert_eq!(render_fuzz_jsonl(&config, &seq), render_fuzz_jsonl(&config, &par2));
        assert_eq!(seq.candidates.len(), 6);
        // Round 1 contains at least one mutation of a round-0 parent
        // whenever round 0 produced a bypass; either way every record
        // scored exactly one engine.
        assert!(seq.candidates.iter().all(|c| c.scores.len() == 1));
    }

    #[test]
    fn run_fuzz_rejects_bad_engine_lists() {
        let pool = par::ParConfig::sequential();
        let mut config = FuzzConfig::smoke(1, "Z_TRR9");
        assert!(run_fuzz(&config, &pool).is_err());
        config.engines.clear();
        assert!(run_fuzz(&config, &pool).is_err());
    }

    #[test]
    fn engine_spec_picks_the_most_flip_prone_module() {
        let spec = engine_spec("A_TRR1").unwrap();
        assert_eq!(spec.trr_version, "A_TRR1");
        for other in by_version("A_TRR1") {
            assert!(spec.hc_first <= other.hc_first);
        }
        assert!(engine_spec("Z_TRR9").is_none());
    }
}
