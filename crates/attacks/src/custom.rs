//! The §7.1 custom RowHammer access patterns, crafted from the U-TRR
//! findings to keep TRR from refreshing the aggressors' victims.

use dram_sim::DramError;
use softmc::MemoryController;
use utrr_modules::{ModuleSpec, Vendor};

use crate::pattern::{AccessPattern, PatternTarget};

/// Single-bank activation budget between two `REF`s (footnote 10).
const INTERVAL_BUDGET: u64 = 149;

/// Vendor A: hammer the two aggressors right after a `REF`, then insert
/// 16 dummy rows to push the aggressors out of the per-bank 16-entry
/// counter table before the TRR-capable `REF` arrives. "The particular
/// access pattern that leads to the largest number of bit flips is
/// hammering A0 and A1 24 times each, followed by hammering 16 dummy
/// rows 6 times each."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VendorAPattern {
    /// Back-to-back hammers per aggressor per interval (paper optimum:
    /// 24–26).
    pub aggressor_hammers: u64,
    /// Dummy rows inserted after the aggressors (16 = the table size).
    pub dummy_rows: usize,
    /// Hammers per dummy row (enough to fit the remaining budget).
    pub dummy_hammers: u64,
}

impl VendorAPattern {
    /// The paper's best configuration: 24 + 24 aggressor hammers, 16
    /// dummies × 6.
    pub fn paper_optimum() -> Self {
        VendorAPattern { aggressor_hammers: 24, dummy_rows: 16, dummy_hammers: 6 }
    }

    /// A configuration with a different aggressor hammer count, dummy
    /// rows and hammers adjusted to the remaining interval budget (the
    /// Fig. 8 sweep). Beyond ~66 hammers per aggressor the budget no
    /// longer fits 16 dummy insertions and the attack collapses — the
    /// over-hammering decline of Fig. 8.
    pub fn with_aggressor_hammers(hammers: u64) -> Self {
        let remaining = INTERVAL_BUDGET.saturating_sub(2 * hammers);
        let dummy_rows = remaining.min(16) as usize;
        VendorAPattern {
            aggressor_hammers: hammers,
            dummy_rows,
            dummy_hammers: if dummy_rows == 0 { 0 } else { (remaining / dummy_rows as u64).max(1) },
        }
    }
}

impl AccessPattern for VendorAPattern {
    fn name(&self) -> &str {
        "custom-vendor-A"
    }

    fn hammers_per_aggressor_per_ref(&self) -> f64 {
        self.aggressor_hammers as f64
    }

    fn run_interval(
        &self,
        mc: &mut MemoryController,
        target: &PatternTarget,
        _interval: u64,
    ) -> Result<(), DramError> {
        // Cascaded aggressor hammering: interleaving two non-resident
        // rows would let each insertion evict the other from the LRU
        // table (§5.2: "cascaded hammering is more effective at evading
        // the TRR mechanism").
        for &aggressor in &target.aggressors {
            mc.module_mut().hammer(target.bank, aggressor, self.aggressor_hammers)?;
        }
        for &dummy in target.dummies.iter().take(self.dummy_rows) {
            mc.module_mut().hammer(target.bank, dummy, self.dummy_hammers)?;
        }
        Ok(())
    }
}

/// Vendor B: hammer the aggressors at full rate in the intervals after a
/// TRR-capable `REF`, then spend the final interval before the next
/// TRR-capable `REF` hammering dummy rows (in four other banks for the
/// chip-wide sampler of B_TRR1/2; in the aggressor bank for the per-bank
/// sampler of B_TRR3 — footnote 13) so the sampler's register holds a
/// dummy when TRR fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VendorBPattern {
    /// TRR-to-REF ratio of the target module (4, 9, or 2).
    pub ratio: u64,
    /// Whether the module samples per bank (B_TRR3).
    pub per_bank_sampler: bool,
    /// Aggressor hammers per aggressor per *hammering* interval.
    pub hammers_per_interval: u64,
    /// Dummy activations per dummy row in the diversion interval.
    pub dummy_hammers: u64,
}

impl VendorBPattern {
    /// The paper's configuration for a module: full-budget aggressor
    /// intervals (≈ 220 hammers per aggressor per 4-REF window on
    /// B_TRR1) and 156 hammers per dummy row in the diversion interval.
    pub fn for_module(spec: &ModuleSpec) -> Self {
        VendorBPattern {
            ratio: spec.trr_to_ref_ratio,
            per_bank_sampler: spec.per_bank_trr,
            hammers_per_interval: INTERVAL_BUDGET / 2,
            dummy_hammers: 156,
        }
    }

    /// Scales the aggressor rate for the Fig. 8 sweep. `hammers` is the
    /// average per-aggressor hammer count per REF; the diversion
    /// interval keeps its dummy budget.
    pub fn with_hammers_per_ref(spec: &ModuleSpec, hammers: f64) -> Self {
        let ratio = spec.trr_to_ref_ratio;
        let per_interval = (hammers * ratio as f64 / (ratio - 1).max(1) as f64) as u64;
        VendorBPattern {
            ratio,
            per_bank_sampler: spec.per_bank_trr,
            hammers_per_interval: per_interval.min(INTERVAL_BUDGET / 2),
            dummy_hammers: 156,
        }
    }
}

impl AccessPattern for VendorBPattern {
    fn name(&self) -> &str {
        "custom-vendor-B"
    }

    fn hammers_per_aggressor_per_ref(&self) -> f64 {
        self.hammers_per_interval as f64 * (self.ratio - 1).max(1) as f64 / self.ratio as f64
    }

    fn run_interval(
        &self,
        mc: &mut MemoryController,
        target: &PatternTarget,
        interval: u64,
    ) -> Result<(), DramError> {
        // The REF ending this interval is TRR-capable iff the engine's
        // post-increment count is a ratio multiple.
        let trr_ref_next = (interval + 1).is_multiple_of(self.ratio);
        if trr_ref_next && self.ratio > 1 {
            // Diversion interval: steal the sampler with dummy rows.
            if self.per_bank_sampler {
                let Some(&dummy) = target.dummies.first() else {
                    return Ok(()); // bank too small for a safe dummy
                };
                mc.module_mut().hammer(target.bank, dummy, INTERVAL_BUDGET)?;
            } else {
                for &(bank, dummy) in target.other_bank_dummies.iter().take(4) {
                    mc.module_mut().hammer_overlapped(bank, dummy, self.dummy_hammers)?;
                }
            }
        } else {
            match target.aggressors[..] {
                [a] => mc.module_mut().hammer(target.bank, a, self.hammers_per_interval)?,
                [a, b] => {
                    mc.module_mut().hammer_pair(target.bank, a, b, self.hammers_per_interval)?;
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// Vendor C: right after a TRR-induced refresh, fill the detector's
/// capture horizon with dummy activations, then hammer the aggressors
/// for the rest of the window ("it is critical to synchronize the dummy
/// and aggressor row hammers with TRR-enabled REF commands").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VendorCPattern {
    /// TRR-to-REF ratio of the target module (17, 9, or 8).
    pub ratio: u64,
    /// Dummy activations at the start of each TRR window (paper: ≥ 252).
    pub dummy_acts: u64,
    /// Hammers per aggressor per hammering interval.
    pub hammers_per_interval: u64,
}

impl VendorCPattern {
    /// A robust configuration: 320 window-opening dummy activations,
    /// full-budget aggressor hammering afterwards.
    pub fn for_module(spec: &ModuleSpec) -> Self {
        VendorCPattern {
            ratio: spec.trr_to_ref_ratio,
            dummy_acts: 320,
            hammers_per_interval: INTERVAL_BUDGET / 2,
        }
    }

    /// Scales the aggressor rate for the Fig. 8 sweep (dummy budget
    /// fixed).
    pub fn with_hammers_per_ref(spec: &ModuleSpec, hammers: f64) -> Self {
        let ratio = spec.trr_to_ref_ratio;
        let dummy_intervals = (320.0 / INTERVAL_BUDGET as f64).ceil();
        let hammer_intervals = (ratio as f64 - dummy_intervals).max(1.0);
        VendorCPattern {
            ratio,
            dummy_acts: 320,
            hammers_per_interval: ((hammers * ratio as f64 / hammer_intervals) as u64)
                .min(INTERVAL_BUDGET / 2),
        }
    }
}

impl AccessPattern for VendorCPattern {
    fn name(&self) -> &str {
        "custom-vendor-C"
    }

    fn hammers_per_aggressor_per_ref(&self) -> f64 {
        let dummy_intervals = (self.dummy_acts as f64 / INTERVAL_BUDGET as f64).ceil();
        self.hammers_per_interval as f64 * (self.ratio as f64 - dummy_intervals).max(0.0)
            / self.ratio as f64
    }

    fn run_interval(
        &self,
        mc: &mut MemoryController,
        target: &PatternTarget,
        interval: u64,
    ) -> Result<(), DramError> {
        // Position inside the TRR window: TRR-capable REFs end the
        // intervals where (interval + 1) is a ratio multiple, so
        // `interval % ratio` counts intervals since the last one.
        let pos = interval % self.ratio;
        let consumed = pos * INTERVAL_BUDGET;
        let dummy_now = self.dummy_acts.saturating_sub(consumed).min(INTERVAL_BUDGET);
        if dummy_now > 0 {
            let Some(&dummy) = target.dummies.first() else {
                return Ok(()); // bank too small for a safe dummy
            };
            mc.module_mut().hammer(target.bank, dummy, dummy_now)?;
        }
        let budget = INTERVAL_BUDGET - dummy_now;
        if budget == 0 {
            return Ok(());
        }
        match target.aggressors[..] {
            [a] => {
                mc.module_mut().hammer(target.bank, a, budget.min(self.hammers_per_interval * 2))?
            }
            [a, b] => {
                let pairs = (budget / 2).min(self.hammers_per_interval);
                mc.module_mut().hammer_pair(target.bank, a, b, pairs)?;
            }
            _ => {}
        }
        Ok(())
    }
}

/// Builds the paper's custom pattern for a Table-1 module.
pub fn pattern_for(spec: &ModuleSpec) -> Box<dyn AccessPattern> {
    match spec.vendor {
        Vendor::A => Box::new(VendorAPattern::paper_optimum()),
        Vendor::B => Box::new(VendorBPattern::for_module(spec)),
        Vendor::C => Box::new(VendorCPattern::for_module(spec)),
    }
}

/// Builds a pattern with a swept per-aggressor hammer rate (Fig. 8).
pub fn pattern_with_hammers(spec: &ModuleSpec, hammers_per_ref: f64) -> Box<dyn AccessPattern> {
    match spec.vendor {
        Vendor::A => Box::new(VendorAPattern::with_aggressor_hammers(hammers_per_ref as u64)),
        Vendor::B => Box::new(VendorBPattern::with_hammers_per_ref(spec, hammers_per_ref)),
        Vendor::C => Box::new(VendorCPattern::with_hammers_per_ref(spec, hammers_per_ref)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utrr_modules::by_id;

    #[test]
    fn paper_optimum_fits_the_interval_budget() {
        let p = VendorAPattern::paper_optimum();
        assert!(2 * p.aggressor_hammers + p.dummy_rows as u64 * p.dummy_hammers <= INTERVAL_BUDGET);
        assert_eq!(p.hammers_per_aggressor_per_ref(), 24.0);
    }

    #[test]
    fn vendor_a_sweep_scales_dummies() {
        let p = VendorAPattern::with_aggressor_hammers(60);
        assert_eq!(p.aggressor_hammers, 60);
        assert_eq!(p.dummy_hammers, (149 - 120) / 16);
    }

    #[test]
    fn vendor_b_matches_paper_arithmetic() {
        // B_TRR1: three 74-pair intervals per 4-REF window ≈ 220 hammers
        // per aggressor per window ≈ 55 per REF.
        let p = VendorBPattern::for_module(&by_id("B0").unwrap());
        assert_eq!(p.ratio, 4);
        assert!(!p.per_bank_sampler);
        let per_ref = p.hammers_per_aggressor_per_ref();
        assert!((54.0..57.0).contains(&per_ref), "got {per_ref}");
    }

    #[test]
    fn vendor_b_trr3_uses_own_bank_dummy() {
        let p = VendorBPattern::for_module(&by_id("B13").unwrap());
        assert!(p.per_bank_sampler);
        assert_eq!(p.ratio, 2);
    }

    #[test]
    fn vendor_c_window_arithmetic() {
        let p = VendorCPattern::for_module(&by_id("C7").unwrap());
        assert_eq!(p.ratio, 17);
        // ~3 dummy intervals out of 17, the rest hammering at 74/aggr.
        let per_ref = p.hammers_per_aggressor_per_ref();
        assert!((60.0..70.0).contains(&per_ref), "got {per_ref}");
    }

    #[test]
    fn factory_dispatches_by_vendor() {
        assert_eq!(pattern_for(&by_id("A3").unwrap()).name(), "custom-vendor-A");
        assert_eq!(pattern_for(&by_id("B9").unwrap()).name(), "custom-vendor-B");
        assert_eq!(pattern_for(&by_id("C13").unwrap()).name(), "custom-vendor-C");
    }
}
