//! The §7.1 custom RowHammer access patterns, crafted from the U-TRR
//! findings to keep TRR from refreshing the aggressors' victims.
//!
//! Each vendor pattern is a [`PatternGenerator`] paired with its
//! REF-synchronised scheduler; the [`pattern_for`] /
//! [`pattern_with_hammers`] factories assemble them through
//! [`AttackBuilder`], which is also how downstream code (the Fig. 8
//! sweep, the fuzzer's seeds) composes variants.

use softmc::MemoryController;
use utrr_modules::{ModuleSpec, Vendor};

use crate::components::{
    AggressorLayout, AttackBuilder, BuiltinAttack, PatternGenerator, RowDose, INTERVAL_BUDGET,
};
use crate::pattern::{AccessPattern, PatternTarget};
use crate::schedulers::{CascadeScheduler, RefSyncScheduler, WindowSyncScheduler};

/// Vendor A: hammer the two aggressors right after a `REF`, then insert
/// 16 dummy rows to push the aggressors out of the per-bank 16-entry
/// counter table before the TRR-capable `REF` arrives. "The particular
/// access pattern that leads to the largest number of bit flips is
/// hammering A0 and A1 24 times each, followed by hammering 16 dummy
/// rows 6 times each."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VendorAPattern {
    /// Back-to-back hammers per aggressor per interval (paper optimum:
    /// 24–26).
    pub aggressor_hammers: u64,
    /// Dummy rows inserted after the aggressors (16 = the table size).
    pub dummy_rows: usize,
    /// Hammers per dummy row (enough to fit the remaining budget).
    pub dummy_hammers: u64,
}

impl VendorAPattern {
    /// The paper's best configuration: 24 + 24 aggressor hammers, 16
    /// dummies × 6.
    pub fn paper_optimum() -> Self {
        VendorAPattern { aggressor_hammers: 24, dummy_rows: 16, dummy_hammers: 6 }
    }

    /// A configuration with a different aggressor hammer count, dummy
    /// rows and hammers adjusted to the remaining interval budget (the
    /// Fig. 8 sweep). Beyond ~66 hammers per aggressor the budget no
    /// longer fits 16 dummy insertions and the attack collapses — the
    /// over-hammering decline of Fig. 8.
    pub fn with_aggressor_hammers(hammers: u64) -> Self {
        let remaining = INTERVAL_BUDGET.saturating_sub(2 * hammers);
        let dummy_rows = remaining.min(16) as usize;
        VendorAPattern {
            aggressor_hammers: hammers,
            dummy_rows,
            dummy_hammers: if dummy_rows == 0 { 0 } else { (remaining / dummy_rows as u64).max(1) },
        }
    }
}

impl PatternGenerator for VendorAPattern {
    fn id(&self) -> &str {
        "custom-vendor-A"
    }

    fn rate_per_ref(&self) -> f64 {
        self.aggressor_hammers as f64
    }

    fn layout(&self, _mc: &MemoryController, target: &PatternTarget) -> AggressorLayout {
        // Cascaded aggressor hammering: interleaving two non-resident
        // rows would let each insertion evict the other from the LRU
        // table (§5.2: "cascaded hammering is more effective at evading
        // the TRR mechanism") — hence the cascade scheduler.
        AggressorLayout {
            aggressors: target
                .aggressors
                .iter()
                .map(|&a| RowDose::new(a, self.aggressor_hammers))
                .collect(),
            dummies: target
                .dummies
                .iter()
                .take(self.dummy_rows)
                .map(|&d| RowDose::new(d, self.dummy_hammers))
                .collect(),
            other_bank: Vec::new(),
        }
    }
}

impl BuiltinAttack for VendorAPattern {
    type Sched = CascadeScheduler;

    fn scheduler(&self) -> CascadeScheduler {
        CascadeScheduler
    }
}

/// Vendor B: hammer the aggressors at full rate in the intervals after a
/// TRR-capable `REF`, then spend the final interval before the next
/// TRR-capable `REF` hammering dummy rows (in four other banks for the
/// chip-wide sampler of B_TRR1/2; in the aggressor bank for the per-bank
/// sampler of B_TRR3 — footnote 13) so the sampler's register holds a
/// dummy when TRR fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VendorBPattern {
    /// TRR-to-REF ratio of the target module (4, 9, or 2).
    pub ratio: u64,
    /// Whether the module samples per bank (B_TRR3).
    pub per_bank_sampler: bool,
    /// Aggressor hammers per aggressor per *hammering* interval.
    pub hammers_per_interval: u64,
    /// Dummy activations per dummy row in the diversion interval.
    pub dummy_hammers: u64,
}

impl VendorBPattern {
    /// The paper's configuration for a module: full-budget aggressor
    /// intervals (≈ 220 hammers per aggressor per 4-REF window on
    /// B_TRR1) and 156 hammers per dummy row in the diversion interval.
    pub fn for_module(spec: &ModuleSpec) -> Self {
        VendorBPattern {
            ratio: spec.trr_to_ref_ratio,
            per_bank_sampler: spec.per_bank_trr,
            hammers_per_interval: INTERVAL_BUDGET / 2,
            dummy_hammers: 156,
        }
    }

    /// Scales the aggressor rate for the Fig. 8 sweep. `hammers` is the
    /// average per-aggressor hammer count per REF; the diversion
    /// interval keeps its dummy budget.
    pub fn with_hammers_per_ref(spec: &ModuleSpec, hammers: f64) -> Self {
        let ratio = spec.trr_to_ref_ratio;
        let per_interval = (hammers * ratio as f64 / (ratio - 1).max(1) as f64) as u64;
        VendorBPattern {
            ratio,
            per_bank_sampler: spec.per_bank_trr,
            hammers_per_interval: per_interval.min(INTERVAL_BUDGET / 2),
            dummy_hammers: 156,
        }
    }
}

impl PatternGenerator for VendorBPattern {
    fn id(&self) -> &str {
        "custom-vendor-B"
    }

    fn rate_per_ref(&self) -> f64 {
        self.hammers_per_interval as f64 * (self.ratio - 1).max(1) as f64 / self.ratio as f64
    }

    fn layout(&self, _mc: &MemoryController, target: &PatternTarget) -> AggressorLayout {
        let (dummies, other_bank) = if self.per_bank_sampler {
            // The per-bank sampler only sees its own bank: divert with a
            // full-budget burst on one same-bank dummy (when the bank is
            // big enough to offer one).
            let dummies = target
                .dummies
                .first()
                .map(|&d| RowDose::new(d, INTERVAL_BUDGET))
                .into_iter()
                .collect();
            (dummies, Vec::new())
        } else {
            let other_bank = target
                .other_bank_dummies
                .iter()
                .take(4)
                .map(|&(bank, d)| (bank, RowDose::new(d, self.dummy_hammers)))
                .collect();
            (Vec::new(), other_bank)
        };
        AggressorLayout {
            aggressors: target
                .aggressors
                .iter()
                .map(|&a| RowDose::new(a, self.hammers_per_interval))
                .collect(),
            dummies,
            other_bank,
        }
    }
}

impl BuiltinAttack for VendorBPattern {
    type Sched = RefSyncScheduler;

    fn scheduler(&self) -> RefSyncScheduler {
        RefSyncScheduler { ratio: self.ratio }
    }
}

/// Vendor C: right after a TRR-induced refresh, fill the detector's
/// capture horizon with dummy activations, then hammer the aggressors
/// for the rest of the window ("it is critical to synchronize the dummy
/// and aggressor row hammers with TRR-enabled REF commands").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VendorCPattern {
    /// TRR-to-REF ratio of the target module (17, 9, or 8).
    pub ratio: u64,
    /// Dummy activations at the start of each TRR window (paper: ≥ 252).
    pub dummy_acts: u64,
    /// Hammers per aggressor per hammering interval.
    pub hammers_per_interval: u64,
}

impl VendorCPattern {
    /// A robust configuration: 320 window-opening dummy activations,
    /// full-budget aggressor hammering afterwards.
    pub fn for_module(spec: &ModuleSpec) -> Self {
        VendorCPattern {
            ratio: spec.trr_to_ref_ratio,
            dummy_acts: 320,
            hammers_per_interval: INTERVAL_BUDGET / 2,
        }
    }

    /// Scales the aggressor rate for the Fig. 8 sweep (dummy budget
    /// fixed).
    pub fn with_hammers_per_ref(spec: &ModuleSpec, hammers: f64) -> Self {
        let ratio = spec.trr_to_ref_ratio;
        let dummy_intervals = (320.0 / INTERVAL_BUDGET as f64).ceil();
        let hammer_intervals = (ratio as f64 - dummy_intervals).max(1.0);
        VendorCPattern {
            ratio,
            dummy_acts: 320,
            hammers_per_interval: ((hammers * ratio as f64 / hammer_intervals) as u64)
                .min(INTERVAL_BUDGET / 2),
        }
    }
}

impl PatternGenerator for VendorCPattern {
    fn id(&self) -> &str {
        "custom-vendor-C"
    }

    fn rate_per_ref(&self) -> f64 {
        let dummy_intervals = (self.dummy_acts as f64 / INTERVAL_BUDGET as f64).ceil();
        self.hammers_per_interval as f64 * (self.ratio as f64 - dummy_intervals).max(0.0)
            / self.ratio as f64
    }

    fn layout(&self, _mc: &MemoryController, target: &PatternTarget) -> AggressorLayout {
        AggressorLayout {
            aggressors: target
                .aggressors
                .iter()
                .map(|&a| RowDose::new(a, self.hammers_per_interval))
                .collect(),
            // The window-opening dummy burst; the scheduler portions the
            // total `dummy_acts` dose across the window's intervals.
            dummies: target
                .dummies
                .first()
                .map(|&d| RowDose::new(d, self.dummy_acts))
                .into_iter()
                .collect(),
            other_bank: Vec::new(),
        }
    }
}

impl BuiltinAttack for VendorCPattern {
    type Sched = WindowSyncScheduler;

    fn scheduler(&self) -> WindowSyncScheduler {
        WindowSyncScheduler { ratio: self.ratio, dummy_acts: self.dummy_acts }
    }
}

/// Builds the paper's custom pattern for a Table-1 module.
pub fn pattern_for(spec: &ModuleSpec) -> Box<dyn AccessPattern> {
    match spec.vendor {
        Vendor::A => Box::new(AttackBuilder::from_attack(VendorAPattern::paper_optimum()).build()),
        Vendor::B => Box::new(AttackBuilder::from_attack(VendorBPattern::for_module(spec)).build()),
        Vendor::C => Box::new(AttackBuilder::from_attack(VendorCPattern::for_module(spec)).build()),
    }
}

/// Builds a pattern with a swept per-aggressor hammer rate (Fig. 8).
pub fn pattern_with_hammers(spec: &ModuleSpec, hammers_per_ref: f64) -> Box<dyn AccessPattern> {
    match spec.vendor {
        Vendor::A => Box::new(
            AttackBuilder::from_attack(VendorAPattern::with_aggressor_hammers(
                hammers_per_ref as u64,
            ))
            .build(),
        ),
        Vendor::B => Box::new(
            AttackBuilder::from_attack(VendorBPattern::with_hammers_per_ref(spec, hammers_per_ref))
                .build(),
        ),
        Vendor::C => Box::new(
            AttackBuilder::from_attack(VendorCPattern::with_hammers_per_ref(spec, hammers_per_ref))
                .build(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utrr_modules::by_id;

    #[test]
    fn paper_optimum_fits_the_interval_budget() {
        let p = VendorAPattern::paper_optimum();
        assert!(2 * p.aggressor_hammers + p.dummy_rows as u64 * p.dummy_hammers <= INTERVAL_BUDGET);
        assert_eq!(p.hammers_per_aggressor_per_ref(), 24.0);
    }

    #[test]
    fn vendor_a_sweep_scales_dummies() {
        let p = VendorAPattern::with_aggressor_hammers(60);
        assert_eq!(p.aggressor_hammers, 60);
        assert_eq!(p.dummy_hammers, (149 - 120) / 16);
    }

    #[test]
    fn vendor_b_matches_paper_arithmetic() {
        // B_TRR1: three 74-pair intervals per 4-REF window ≈ 220 hammers
        // per aggressor per window ≈ 55 per REF.
        let p = VendorBPattern::for_module(&by_id("B0").unwrap());
        assert_eq!(p.ratio, 4);
        assert!(!p.per_bank_sampler);
        let per_ref = p.hammers_per_aggressor_per_ref();
        assert!((54.0..57.0).contains(&per_ref), "got {per_ref}");
    }

    #[test]
    fn vendor_b_trr3_uses_own_bank_dummy() {
        let p = VendorBPattern::for_module(&by_id("B13").unwrap());
        assert!(p.per_bank_sampler);
        assert_eq!(p.ratio, 2);
    }

    #[test]
    fn vendor_c_window_arithmetic() {
        let p = VendorCPattern::for_module(&by_id("C7").unwrap());
        assert_eq!(p.ratio, 17);
        // ~3 dummy intervals out of 17, the rest hammering at 74/aggr.
        let per_ref = p.hammers_per_aggressor_per_ref();
        assert!((60.0..70.0).contains(&per_ref), "got {per_ref}");
    }

    #[test]
    fn factory_dispatches_by_vendor() {
        assert_eq!(pattern_for(&by_id("A3").unwrap()).name(), "custom-vendor-A");
        assert_eq!(pattern_for(&by_id("B9").unwrap()).name(), "custom-vendor-B");
        assert_eq!(pattern_for(&by_id("C13").unwrap()).name(), "custom-vendor-C");
    }

    #[test]
    fn factories_assemble_the_canonical_schedulers() {
        let spec_a = by_id("A3").unwrap();
        let a = AttackBuilder::from_attack(VendorAPattern::paper_optimum()).build();
        assert_eq!(a.scheduler_id(), "cascade");
        let b =
            AttackBuilder::from_attack(VendorBPattern::for_module(&by_id("B9").unwrap())).build();
        assert_eq!(b.scheduler_id(), "ref-sync");
        let c =
            AttackBuilder::from_attack(VendorCPattern::for_module(&by_id("C13").unwrap())).build();
        assert_eq!(c.scheduler_id(), "window-sync");
        assert_eq!(pattern_for(&spec_a).hammers_per_aggressor_per_ref(), 24.0);
    }
}
