//! Frozen pre-refactor pattern implementations, kept as an equivalence
//! oracle.
//!
//! Before the component refactor ([`crate::components`]), every attack
//! hand-wrote its `run_interval` against the device API. Those bodies
//! are preserved here verbatim, wrapped in [`Legacy`], so property
//! tests can assert that the generator/scheduler decomposition issues
//! the *exact same device-call sequence* — same flips, same counters —
//! for every parameterisation (the precedent is `dram-sim`'s
//! `refresh_naive` reference for the event-driven refresh path).
//!
//! Nothing in the production path uses this module.

use dram_sim::DramError;
use softmc::MemoryController;

use crate::baseline::{DoubleSided, ManySided, SingleSided};
use crate::components::{PatternGenerator, INTERVAL_BUDGET};
use crate::custom::{VendorAPattern, VendorBPattern, VendorCPattern};
use crate::half_double::HalfDouble;
use crate::pattern::{AccessPattern, PatternTarget};

/// Wraps an attack's parameter struct with the frozen pre-refactor
/// interval body. Reports the same name/rate/init rows as the modern
/// implementation so whole [`crate::BankSweep`]s compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Legacy<T>(pub T);

macro_rules! legacy_pattern {
    ($ty:ty, $body:expr) => {
        impl AccessPattern for Legacy<$ty> {
            fn name(&self) -> &str {
                self.0.id()
            }

            fn hammers_per_aggressor_per_ref(&self) -> f64 {
                self.0.rate_per_ref()
            }

            fn init_rows(&self, target: &PatternTarget) -> Vec<dram_sim::RowAddr> {
                self.0.seed_rows(target)
            }

            fn run_interval(
                &self,
                mc: &mut MemoryController,
                target: &PatternTarget,
                interval: u64,
            ) -> Result<(), DramError> {
                #[allow(clippy::redundant_closure_call)]
                ($body)(&self.0, mc, target, interval)
            }
        }
    };
}

legacy_pattern!(SingleSided, |p: &SingleSided,
                              mc: &mut MemoryController,
                              target: &PatternTarget,
                              _interval: u64| {
    mc.module_mut().hammer(target.bank, target.aggressors[0], p.hammers)
});

legacy_pattern!(DoubleSided, |p: &DoubleSided,
                              mc: &mut MemoryController,
                              target: &PatternTarget,
                              _interval: u64| {
    match target.aggressors[..] {
        [a] => mc.module_mut().hammer(target.bank, a, p.hammers_per_aggressor),
        [a, b] => mc.module_mut().hammer_pair(target.bank, a, b, p.hammers_per_aggressor),
        _ => Ok(()),
    }
});

legacy_pattern!(ManySided, |p: &ManySided,
                            mc: &mut MemoryController,
                            target: &PatternTarget,
                            _interval: u64| {
    let mut rows = target.aggressors.clone();
    rows.extend(target.dummies.iter().copied().take((p.sides as usize).saturating_sub(rows.len())));
    for _ in 0..p.hammers_per_aggressor {
        for &row in &rows {
            mc.module_mut().hammer(target.bank, row, 1)?;
        }
    }
    Ok(())
});

legacy_pattern!(VendorAPattern, |p: &VendorAPattern,
                                 mc: &mut MemoryController,
                                 target: &PatternTarget,
                                 _interval: u64| {
    for &aggressor in &target.aggressors {
        mc.module_mut().hammer(target.bank, aggressor, p.aggressor_hammers)?;
    }
    for &dummy in target.dummies.iter().take(p.dummy_rows) {
        mc.module_mut().hammer(target.bank, dummy, p.dummy_hammers)?;
    }
    Ok(())
});

legacy_pattern!(VendorBPattern, |p: &VendorBPattern,
                                 mc: &mut MemoryController,
                                 target: &PatternTarget,
                                 interval: u64| {
    let trr_ref_next = (interval + 1).is_multiple_of(p.ratio);
    if trr_ref_next && p.ratio > 1 {
        if p.per_bank_sampler {
            let Some(&dummy) = target.dummies.first() else {
                return Ok(());
            };
            mc.module_mut().hammer(target.bank, dummy, INTERVAL_BUDGET)?;
        } else {
            for &(bank, dummy) in target.other_bank_dummies.iter().take(4) {
                mc.module_mut().hammer_overlapped(bank, dummy, p.dummy_hammers)?;
            }
        }
    } else {
        match target.aggressors[..] {
            [a] => mc.module_mut().hammer(target.bank, a, p.hammers_per_interval)?,
            [a, b] => {
                mc.module_mut().hammer_pair(target.bank, a, b, p.hammers_per_interval)?;
            }
            _ => {}
        }
    }
    Ok(())
});

legacy_pattern!(VendorCPattern, |p: &VendorCPattern,
                                 mc: &mut MemoryController,
                                 target: &PatternTarget,
                                 interval: u64| {
    let pos = interval % p.ratio;
    let consumed = pos * INTERVAL_BUDGET;
    let dummy_now = p.dummy_acts.saturating_sub(consumed).min(INTERVAL_BUDGET);
    if dummy_now > 0 {
        let Some(&dummy) = target.dummies.first() else {
            return Ok(());
        };
        mc.module_mut().hammer(target.bank, dummy, dummy_now)?;
    }
    let budget = INTERVAL_BUDGET - dummy_now;
    if budget == 0 {
        return Ok(());
    }
    match target.aggressors[..] {
        [a] => {
            mc.module_mut().hammer(target.bank, a, budget.min(p.hammers_per_interval * 2))?;
        }
        [a, b] => {
            let pairs = (budget / 2).min(p.hammers_per_interval);
            mc.module_mut().hammer_pair(target.bank, a, b, pairs)?;
        }
        _ => {}
    }
    Ok(())
});

legacy_pattern!(HalfDouble, |p: &HalfDouble,
                             mc: &mut MemoryController,
                             target: &PatternTarget,
                             _interval: u64| {
    let module = mc.module();
    let victim_phys = module.phys_of(target.victim).index();
    let rows = module.geometry().rows_per_bank;
    let (Some(far_up), far_down) = (victim_phys.checked_sub(2), victim_phys + 2) else {
        return Ok(());
    };
    if far_down >= rows {
        return Ok(());
    }
    let far_up = module.logical_of(dram_sim::PhysRow::new(far_up));
    let far_down = module.logical_of(dram_sim::PhysRow::new(far_down));
    mc.module_mut().hammer_pair(target.bank, far_up, far_down, p.far_pairs)?;
    if let [near_up, near_down] = target.aggressors[..] {
        mc.module_mut().hammer_pair(target.bank, near_up, near_down, p.near_pairs)?;
    }
    Ok(())
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{sweep_bank_module, EvalConfig};
    use dram_sim::{Module, ModuleConfig};

    #[test]
    fn legacy_reports_the_modern_identity() {
        let legacy = Legacy(DoubleSided::max_rate());
        assert_eq!(legacy.name(), "double-sided");
        assert_eq!(legacy.hammers_per_aggressor_per_ref(), 74.0);
    }

    #[test]
    fn legacy_and_modern_agree_on_a_smoke_sweep() {
        let config = EvalConfig { sample_count: 4, ..EvalConfig::quick(4) };
        let old = sweep_bank_module(
            Module::new(ModuleConfig::small_test(), 9),
            &Legacy(DoubleSided::max_rate()),
            &config,
        );
        let new = sweep_bank_module(
            Module::new(ModuleConfig::small_test(), 9),
            &DoubleSided::max_rate(),
            &config,
        );
        assert_eq!(old, new);
    }
}
