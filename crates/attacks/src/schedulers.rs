//! The scheduler library: how the §7 attacks order their activations
//! within and across `tREFI` intervals.
//!
//! Free-running schedulers ([`CascadeScheduler`], [`InterleaveScheduler`],
//! [`RoundRobinScheduler`]) issue the same slots every interval;
//! REF-synchronised ones ([`RefSyncScheduler`], [`WindowSyncScheduler`])
//! phase their work against the TRR-capable-`REF` cadence the way the
//! paper's attacker does via SMASH-style timing channels (§7.1).

use crate::components::{AggressorLayout, RowDose, Scheduler, Slot, INTERVAL_BUDGET};

/// Emits the standard aggressor interleave: consecutive aggressors are
/// paired into alternating [`Slot::Pair`]s (the dose of the pair's
/// first row sets the pair count); a trailing unpaired aggressor gets a
/// back-to-back [`Slot::Burst`]. With the usual one- or two-aggressor
/// targets this reproduces `hammer` / `hammer_pair` exactly; Half-Double
/// hands it two pairs (far then near).
fn interleave_aggressors(aggressors: &[RowDose], slots: &mut Vec<Slot>) {
    for chunk in aggressors.chunks(2) {
        match *chunk {
            [a] => slots.push(Slot::Burst { row: a.row, acts: a.acts }),
            [a, b] => slots.push(Slot::Pair { first: a.row, second: b.row, pairs: a.acts }),
            _ => unreachable!("chunks(2) yields 1- or 2-element chunks"),
        }
    }
}

/// Cascaded hammering, every interval alike: each aggressor back-to-back
/// in layout order, then each same-bank dummy, then the other-bank
/// dummies. The vendor-A eviction pattern depends on exactly this order
/// (§5.2: "cascaded hammering is more effective at evading the TRR
/// mechanism" — interleaving two non-resident rows would let each
/// insertion evict the other from the counter table).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CascadeScheduler;

impl Scheduler for CascadeScheduler {
    fn id(&self) -> &str {
        "cascade"
    }

    fn schedule(&self, layout: &AggressorLayout, _interval: u64, slots: &mut Vec<Slot>) {
        for a in &layout.aggressors {
            slots.push(Slot::Burst { row: a.row, acts: a.acts });
        }
        for d in &layout.dummies {
            slots.push(Slot::Burst { row: d.row, acts: d.acts });
        }
        for &(bank, d) in &layout.other_bank {
            slots.push(Slot::OtherBank { bank, row: d.row, acts: d.acts });
        }
    }
}

/// Pair-interleaved hammering, every interval alike: the aggressors go
/// through [`interleave_aggressors`]; dummies and other-bank rows follow
/// as bursts. The double-sided and Half-Double shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterleaveScheduler;

impl Scheduler for InterleaveScheduler {
    fn id(&self) -> &str {
        "interleave"
    }

    fn schedule(&self, layout: &AggressorLayout, _interval: u64, slots: &mut Vec<Slot>) {
        interleave_aggressors(&layout.aggressors, slots);
        for d in &layout.dummies {
            slots.push(Slot::Burst { row: d.row, acts: d.acts });
        }
        for &(bank, d) in &layout.other_bank {
            slots.push(Slot::OtherBank { bank, row: d.row, acts: d.acts });
        }
    }
}

/// TRRespass-style round robin: one activation per row per turn, rows in
/// layout order (aggressors then dummies), until every row has received
/// its dose — "the many sides aim to overflow the TRR tracker" (§2.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobinScheduler;

impl Scheduler for RoundRobinScheduler {
    fn id(&self) -> &str {
        "round-robin"
    }

    fn schedule(&self, layout: &AggressorLayout, _interval: u64, slots: &mut Vec<Slot>) {
        let rows = layout.aggressors.iter().chain(&layout.dummies);
        let turns = rows.clone().map(|r| r.acts).max().unwrap_or(0);
        for turn in 0..turns {
            for r in rows.clone() {
                if r.acts > turn {
                    slots.push(Slot::Burst { row: r.row, acts: 1 });
                }
            }
        }
    }
}

/// The vendor-B sampler-stealing cadence: hammer the aggressors at full
/// rate in the intervals after a TRR-capable `REF`, then spend the final
/// interval before the next one on dummy rows, so the sampler's register
/// holds a dummy when TRR fires. Same-bank dummies burst in the target
/// bank (the per-bank sampler of B_TRR3 — footnote 13); other-bank
/// dummies run overlapped (the chip-wide sampler of B_TRR1/2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefSyncScheduler {
    /// TRR-to-REF ratio of the target module (4, 9, or 2).
    pub ratio: u64,
}

impl Scheduler for RefSyncScheduler {
    fn id(&self) -> &str {
        "ref-sync"
    }

    fn schedule(&self, layout: &AggressorLayout, interval: u64, slots: &mut Vec<Slot>) {
        // The REF ending this interval is TRR-capable iff the engine's
        // post-increment count is a ratio multiple.
        let trr_ref_next = (interval + 1).is_multiple_of(self.ratio);
        if trr_ref_next && self.ratio > 1 {
            // Diversion interval: steal the sampler with dummy rows.
            for d in &layout.dummies {
                slots.push(Slot::Burst { row: d.row, acts: d.acts });
            }
            for &(bank, d) in &layout.other_bank {
                slots.push(Slot::OtherBank { bank, row: d.row, acts: d.acts });
            }
        } else {
            interleave_aggressors(&layout.aggressors, slots);
        }
    }
}

/// The vendor-C window-exhaustion cadence: right after a TRR-induced
/// refresh, fill the detector's capture horizon with `dummy_acts` dummy
/// activations (spilling across intervals as needed), then hammer the
/// aggressors with whatever budget remains ("it is critical to
/// synchronize the dummy and aggressor row hammers with TRR-enabled REF
/// commands").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSyncScheduler {
    /// TRR-to-REF ratio of the target module (17, 9, or 8).
    pub ratio: u64,
    /// Dummy activations at the start of each TRR window (paper: ≥ 252).
    pub dummy_acts: u64,
}

impl Scheduler for WindowSyncScheduler {
    fn id(&self) -> &str {
        "window-sync"
    }

    fn schedule(&self, layout: &AggressorLayout, interval: u64, slots: &mut Vec<Slot>) {
        // Position inside the TRR window: TRR-capable REFs end the
        // intervals where (interval + 1) is a ratio multiple, so
        // `interval % ratio` counts intervals since the last one.
        let pos = interval % self.ratio;
        let consumed = pos * INTERVAL_BUDGET;
        let dummy_now = self.dummy_acts.saturating_sub(consumed).min(INTERVAL_BUDGET);
        if dummy_now > 0 {
            let Some(d) = layout.dummies.first() else {
                return; // bank too small for a safe dummy
            };
            slots.push(Slot::Burst { row: d.row, acts: dummy_now });
        }
        let budget = INTERVAL_BUDGET - dummy_now;
        if budget == 0 {
            return;
        }
        match layout.aggressors[..] {
            [a] => slots.push(Slot::Burst { row: a.row, acts: budget.min(a.acts * 2) }),
            [a, b] => slots.push(Slot::Pair {
                first: a.row,
                second: b.row,
                pairs: (budget / 2).min(a.acts),
            }),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{Bank, RowAddr};

    fn dose(row: u32, acts: u64) -> RowDose {
        RowDose::new(RowAddr::new(row), acts)
    }

    fn two_sided_layout() -> AggressorLayout {
        AggressorLayout {
            aggressors: vec![dose(10, 24), dose(12, 24)],
            dummies: (0..16).map(|i| dose(500 + i * 10, 6)).collect(),
            other_bank: vec![(Bank::new(1), dose(300, 156))],
        }
    }

    #[test]
    fn cascade_orders_aggressors_then_dummies() {
        let mut slots = Vec::new();
        CascadeScheduler.schedule(&two_sided_layout(), 0, &mut slots);
        assert_eq!(slots.len(), 2 + 16 + 1);
        assert_eq!(slots[0], Slot::Burst { row: RowAddr::new(10), acts: 24 });
        assert_eq!(slots[1], Slot::Burst { row: RowAddr::new(12), acts: 24 });
        assert_eq!(slots[2], Slot::Burst { row: RowAddr::new(500), acts: 6 });
        assert!(matches!(slots[18], Slot::OtherBank { .. }));
    }

    #[test]
    fn interleave_pairs_consecutive_aggressors() {
        let mut slots = Vec::new();
        let layout = AggressorLayout {
            aggressors: vec![dose(10, 70), dose(14, 70), dose(11, 3)],
            ..AggressorLayout::default()
        };
        InterleaveScheduler.schedule(&layout, 7, &mut slots);
        assert_eq!(
            slots,
            vec![
                Slot::Pair { first: RowAddr::new(10), second: RowAddr::new(14), pairs: 70 },
                Slot::Burst { row: RowAddr::new(11), acts: 3 },
            ]
        );
    }

    #[test]
    fn round_robin_one_act_per_turn() {
        let mut slots = Vec::new();
        let layout = AggressorLayout {
            aggressors: vec![dose(10, 2), dose(12, 2)],
            dummies: vec![dose(700, 2)],
            ..AggressorLayout::default()
        };
        RoundRobinScheduler.schedule(&layout, 0, &mut slots);
        assert_eq!(slots.len(), 6);
        assert!(slots.iter().all(|s| matches!(s, Slot::Burst { acts: 1, .. })));
        assert_eq!(slots[0], Slot::Burst { row: RowAddr::new(10), acts: 1 });
        assert_eq!(slots[2], Slot::Burst { row: RowAddr::new(700), acts: 1 });
    }

    #[test]
    fn ref_sync_diverts_only_before_trr_capable_refs() {
        let sched = RefSyncScheduler { ratio: 4 };
        let layout = two_sided_layout();
        // Intervals 0..2 hammer (REF counts 1..3 are not multiples of 4).
        for interval in 0..3 {
            let mut slots = Vec::new();
            sched.schedule(&layout, interval, &mut slots);
            assert_eq!(slots.len(), 1, "interval {interval} must hammer");
            assert!(matches!(slots[0], Slot::Pair { .. }));
        }
        // Interval 3 ends with the TRR-capable 4th REF: diversion.
        let mut slots = Vec::new();
        sched.schedule(&layout, 3, &mut slots);
        assert_eq!(slots.len(), 17);
        assert!(slots.iter().take(16).all(|s| matches!(s, Slot::Burst { .. })));
        assert!(matches!(slots[16], Slot::OtherBank { .. }));
    }

    #[test]
    fn window_sync_spills_dummies_then_hammers() {
        let sched = WindowSyncScheduler { ratio: 17, dummy_acts: 320 };
        let layout = two_sided_layout();
        // Interval 0: all budget on dummies (320 > 149).
        let mut slots = Vec::new();
        sched.schedule(&layout, 0, &mut slots);
        assert_eq!(slots, vec![Slot::Burst { row: RowAddr::new(500), acts: 149 }]);
        // Interval 2: 320 - 2*149 = 22 dummies, the rest on aggressors.
        let mut slots = Vec::new();
        sched.schedule(&layout, 2, &mut slots);
        assert_eq!(slots[0], Slot::Burst { row: RowAddr::new(500), acts: 22 });
        assert_eq!(
            slots[1],
            Slot::Pair { first: RowAddr::new(10), second: RowAddr::new(12), pairs: 24 }
        );
        // Interval 3 onward: full hammering budget.
        let mut slots = Vec::new();
        sched.schedule(&layout, 3, &mut slots);
        assert_eq!(slots.len(), 1);
        assert!(matches!(slots[0], Slot::Pair { pairs: 24, .. }));
    }

    #[test]
    fn window_sync_without_dummy_rows_skips_the_interval() {
        let sched = WindowSyncScheduler { ratio: 17, dummy_acts: 320 };
        let layout =
            AggressorLayout { aggressors: vec![dose(10, 74)], ..AggressorLayout::default() };
        let mut slots = Vec::new();
        sched.schedule(&layout, 0, &mut slots);
        assert!(slots.is_empty(), "a pending dummy dose with no dummy row skips everything");
    }
}
