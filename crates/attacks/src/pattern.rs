//! The access-pattern abstraction shared by baselines and custom
//! patterns.
//!
//! A pattern describes what the attacker does *between two `REF`
//! commands* (one `tREFI` interval); the evaluation harness issues the
//! `REF`s at the vendor-mandated rate and paces simulated time, exactly
//! like the paper's SoftMC programs, which "execute each custom access
//! pattern for a fixed interval of time, while also issuing REF commands
//! once every 7.8 µs to comply with the vendor-specified default refresh
//! rate" (§7.2).

use dram_sim::{Bank, DramError, PhysRow, RowAddr, Topology};
use softmc::MemoryController;

/// Everything a pattern needs to know about one victim position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternTarget {
    /// Bank under attack.
    pub bank: Bank,
    /// The victim row whose bit flips the evaluation counts.
    pub victim: RowAddr,
    /// Aggressor rows (logical addresses physically adjacent to the
    /// victim; a single row on paired-topology parts).
    pub aggressors: Vec<RowAddr>,
    /// Same-bank dummy rows, far from the victim.
    pub dummies: Vec<RowAddr>,
    /// Dummy rows in other banks (for sampler-stealing patterns).
    pub other_bank_dummies: Vec<(Bank, RowAddr)>,
}

impl PatternTarget {
    /// Builds the target for a victim position: aggressors are the
    /// victim's physical neighbours under the module's mapping and
    /// topology, same-bank dummies keep a safety distance of 100 rows,
    /// and one dummy row is picked in each of up to four other banks.
    pub fn for_victim(mc: &MemoryController, bank: Bank, victim_phys: PhysRow) -> Self {
        let module = mc.module();
        let geometry = module.geometry();
        let victim = module.logical_of(victim_phys);
        let aggressors = match module.config().topology {
            Topology::Paired => {
                let pair = victim_phys.index() ^ 1;
                if pair < geometry.rows_per_bank {
                    vec![module.logical_of(PhysRow::new(pair))]
                } else {
                    vec![]
                }
            }
            Topology::Linear => {
                let v = victim_phys.index();
                [v.checked_sub(1), (v + 1 < geometry.rows_per_bank).then_some(v + 1)]
                    .into_iter()
                    .flatten()
                    .map(|p| module.logical_of(PhysRow::new(p)))
                    .collect()
            }
        };
        let mut avoid = vec![victim];
        avoid.extend(aggressors.iter().copied());
        let dummies = mc.pick_dummy_rows(&avoid, 100, 16);
        let other_bank_dummies = (0..geometry.banks)
            .filter(|&b| b != bank.index())
            .take(4)
            .map(|b| (Bank::new(b), RowAddr::new(geometry.rows_per_bank / 2)))
            .collect();
        PatternTarget { bank, victim, aggressors, dummies, other_bank_dummies }
    }
}

/// One RowHammer access pattern.
///
/// Implementations must stay within one bank's activation budget per
/// interval (~149 activations for standard DDR4 timings) on the target
/// bank; concurrent other-bank activity goes through
/// [`dram_sim::Module::hammer_overlapped`].
pub trait AccessPattern {
    /// A short identifier used in reports.
    fn name(&self) -> &str;

    /// Average hammers issued to a single aggressor row between two
    /// `REF`s — the x-axis of the paper's Fig. 8.
    fn hammers_per_aggressor_per_ref(&self) -> f64;

    /// Rows the evaluation harness should initialize with the
    /// coupling-maximizing pattern before the run — by default the
    /// victim-adjacent aggressors. Patterns whose true aggressors sit
    /// elsewhere (Half-Double's distance-2 rows) override this: even a
    /// single stray activation of a non-aggressor row plants it in
    /// persistent trackers (Observation A7), whose pointer walk would
    /// then refresh the victim as that row's neighbour.
    fn init_rows(&self, target: &PatternTarget) -> Vec<RowAddr> {
        target.aggressors.clone()
    }

    /// Executes one `tREFI` interval's accesses. `interval` counts
    /// intervals since power-on (equal to the device's `REF` count), so
    /// patterns can synchronize with the TRR-capable-`REF` cadence the
    /// way the paper's attacker does via SMASH-style timing channels.
    ///
    /// # Errors
    ///
    /// Propagates device protocol errors.
    fn run_interval(
        &self,
        mc: &mut MemoryController,
        target: &PatternTarget,
        interval: u64,
    ) -> Result<(), DramError>;

    /// The verdict stage scoring each victim position once the
    /// hammering windows complete — flip counting by default; builder
    /// assemblies ([`crate::AttackBuilder::verdict`]) can override it.
    fn verdict(&self) -> &dyn crate::verdict::Verdict {
        &crate::verdict::FlipCountVerdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{Module, ModuleConfig};

    #[test]
    fn target_builder_linear() {
        let mc = MemoryController::new(Module::new(ModuleConfig::small_test(), 5));
        let t = PatternTarget::for_victim(&mc, Bank::new(0), PhysRow::new(500));
        assert_eq!(t.victim, RowAddr::new(500));
        assert_eq!(t.aggressors, vec![RowAddr::new(499), RowAddr::new(501)]);
        assert_eq!(t.dummies.len(), 16);
        for d in &t.dummies {
            assert!(d.index().abs_diff(500) >= 100);
        }
        assert_eq!(t.other_bank_dummies.len(), 1); // tiny module: 2 banks
        assert_eq!(t.other_bank_dummies[0].0, Bank::new(1));
    }

    #[test]
    fn target_builder_paired() {
        let mut config = ModuleConfig::small_test();
        config.topology = Topology::Paired;
        let mc = MemoryController::new(Module::new(config, 5));
        let t = PatternTarget::for_victim(&mc, Bank::new(0), PhysRow::new(500));
        assert_eq!(t.aggressors, vec![RowAddr::new(501)]);
        let t = PatternTarget::for_victim(&mc, Bank::new(0), PhysRow::new(501));
        assert_eq!(t.aggressors, vec![RowAddr::new(500)]);
    }

    #[test]
    fn target_builder_edge_rows() {
        let mc = MemoryController::new(Module::new(ModuleConfig::small_test(), 5));
        let t = PatternTarget::for_victim(&mc, Bank::new(0), PhysRow::new(0));
        assert_eq!(t.aggressors, vec![RowAddr::new(1)]);
        let last = mc.module().geometry().rows_per_bank - 1;
        let t = PatternTarget::for_victim(&mc, Bank::new(0), PhysRow::new(last));
        assert_eq!(t.aggressors, vec![RowAddr::new(last - 1)]);
    }

    #[test]
    fn target_respects_scrambled_mapping() {
        let mut config = ModuleConfig::small_test();
        config.mapping = dram_sim::RowMapping::block_mirror(3);
        let mc = MemoryController::new(Module::new(config, 5));
        // Physical 100's neighbours are physical 99 and 101; their
        // logical images under the mirror.
        let t = PatternTarget::for_victim(&mc, Bank::new(0), PhysRow::new(100));
        let m = mc.module();
        assert_eq!(
            t.aggressors,
            vec![m.logical_of(PhysRow::new(99)), m.logical_of(PhysRow::new(101))]
        );
    }
}
