//! The Half-Double access pattern (Google Project Zero, 2021 — cited in
//! the paper’s related work as reference 97).
//!
//! Half-Double hammers rows at physical distance *two* from the victim,
//! heavily, plus a light "assist" dose on the distance-one rows. A TRR
//! that refreshes only the immediate (±1) neighbours of whatever it
//! detects then works *for* the attacker: detecting the far aggressors
//! refreshes the near rows, and each of those refreshes internally
//! activates a near row — disturbing the victim. The victim itself is
//! never adjacent to a detected aggressor, so it is never refreshed.
//!
//! This makes Half-Double a sharp differentiator for the paper's
//! Observation A2: vendor A's A_TRR1 refreshes ±1 *and* ±2 around a
//! detected aggressor — which reaches the Half-Double victim and blocks
//! the attack — while its newer A_TRR2 (±1 only) and the vendor-B
//! samplers fall to it with **no dummy-row diversion at all**. The test
//! suite pins exactly that contrast.

use softmc::MemoryController;

use crate::components::{AggressorLayout, BuiltinAttack, PatternGenerator, RowDose};
use crate::pattern::PatternTarget;
use crate::schedulers::InterleaveScheduler;

/// The Half-Double pattern: heavy far (distance-2) hammering with a
/// light near (distance-1) assist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HalfDouble {
    /// Interleaved pairs on the distance-2 rows per interval.
    pub far_pairs: u64,
    /// Interleaved pairs on the distance-1 rows per interval.
    pub near_pairs: u64,
}

impl HalfDouble {
    /// The standard configuration: the whole interval on the far rows.
    /// Direct near-row hammering is left at zero — against trackers with
    /// a pointer walk (vendor A's TREF_b), hammered near rows enter the
    /// table and their eventual detection refreshes ±1 of *them*, i.e.
    /// the victim. The near rows still get activated, by the TRR
    /// mechanism itself: every detection of a far aggressor refreshes
    /// (internally activates) the near rows, which is the Half-Double
    /// amplification loop.
    pub fn standard() -> Self {
        HalfDouble { far_pairs: 70, near_pairs: 0 }
    }
}

impl PatternGenerator for HalfDouble {
    fn id(&self) -> &str {
        "half-double"
    }

    fn rate_per_ref(&self) -> f64 {
        self.far_pairs as f64
    }

    fn seed_rows(&self, target: &PatternTarget) -> Vec<dram_sim::RowAddr> {
        // The far rows are the real aggressors; touching the near rows
        // even once would plant them in persistent trackers whose
        // pointer walk then refreshes the victim as their neighbour.
        target
            .aggressors
            .iter()
            .flat_map(|&a| [a.index().checked_sub(1).map(dram_sim::RowAddr::new), Some(a.plus(1))])
            .flatten()
            .filter(|r| r.index().abs_diff(target.victim.index()) == 2)
            .collect()
    }

    fn layout(&self, mc: &MemoryController, target: &PatternTarget) -> AggressorLayout {
        // Far rows: the victim's ±2 neighbours, derived from the near
        // aggressors the target builder found (±1 of the victim). Both
        // pairs go to the interleave scheduler: the far pair first, the
        // near assist pair after. A victim too close to the bank edge
        // for a far pair yields an empty layout (no hammering at all).
        let module = mc.module();
        let victim_phys = module.phys_of(target.victim).index();
        let rows = module.geometry().rows_per_bank;
        let (Some(far_up), far_down) = (victim_phys.checked_sub(2), victim_phys + 2) else {
            return AggressorLayout::default();
        };
        if far_down >= rows {
            return AggressorLayout::default();
        }
        let far_up = module.logical_of(dram_sim::PhysRow::new(far_up));
        let far_down = module.logical_of(dram_sim::PhysRow::new(far_down));
        let mut aggressors =
            vec![RowDose::new(far_up, self.far_pairs), RowDose::new(far_down, self.far_pairs)];
        if let [near_up, near_down] = target.aggressors[..] {
            aggressors.push(RowDose::new(near_up, self.near_pairs));
            aggressors.push(RowDose::new(near_down, self.near_pairs));
        }
        AggressorLayout { aggressors, ..AggressorLayout::default() }
    }
}

impl BuiltinAttack for HalfDouble {
    type Sched = InterleaveScheduler;

    fn scheduler(&self) -> InterleaveScheduler {
        InterleaveScheduler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{sweep_bank_module, EvalConfig};
    use crate::pattern::AccessPattern;
    use dram_sim::Module;
    use trr::{CounterTrr, SamplerTrr};
    use utrr_modules::by_id;

    fn vulnerable_pct(module: Module) -> f64 {
        let config = EvalConfig { sample_count: 16, windows: 2, ..EvalConfig::quick(16) };
        sweep_bank_module(module, &HalfDouble::standard(), &config).vulnerable_pct()
    }

    #[test]
    fn half_double_defeats_plus_minus_one_trr() {
        // A_TRR2 refreshes only ±1: the far aggressors' detections
        // refresh the near rows, never the victim.
        let spec = by_id("A13").unwrap();
        let config = spec.build_scaled(2_048, 5).config().clone();
        let module = Module::with_engine(config, Box::new(CounterTrr::a_trr2(spec.banks)), 5);
        let pct = vulnerable_pct(module);
        assert!(pct > 60.0, "±1 TRR must fall to Half-Double, got {pct}%");
    }

    #[test]
    fn half_double_is_blocked_by_plus_minus_two_trr() {
        // A_TRR1 refreshes ±2 as well — reaching the Half-Double victim.
        // The paper conjectures this protects "against the probability
        // that RowHammer bit flips can occur in victim rows that are two
        // rows apart from the aggressor rows" (Obs. A2).
        let spec = by_id("A13").unwrap();
        let config = spec.build_scaled(2_048, 5).config().clone();
        let module = Module::with_engine(config, Box::new(CounterTrr::a_trr1(spec.banks)), 5);
        let pct = vulnerable_pct(module);
        assert_eq!(pct, 0.0, "±2 TRR must block Half-Double, got {pct}%");
    }

    #[test]
    fn half_double_defeats_the_sampler() {
        // B_TRR1 refreshes ±1 of the sampled row: the heavily hammered
        // far rows dominate the register; the victim is never refreshed.
        let spec = by_id("B13").unwrap(); // low HC_first keeps the test fast
        let config = spec.build_scaled(2_048, 5).config().clone();
        let module = Module::with_engine(config, Box::new(SamplerTrr::b_trr1(spec.banks, 9)), 5);
        let pct = vulnerable_pct(module);
        assert!(pct > 60.0, "±1 sampler TRR must fall to Half-Double, got {pct}%");
    }

    #[test]
    fn standard_budget_fits_the_interval() {
        let p = HalfDouble::standard();
        assert!(2 * p.far_pairs + 2 * p.near_pairs <= 149);
        assert_eq!(p.name(), "half-double");
        assert_eq!(p.hammers_per_aggressor_per_ref(), 70.0);
    }
}
