//! The verdict stage: what counts as attack success once the hammering
//! stops.
//!
//! The evaluation harness runs the pattern for its configured windows,
//! then hands the controller to the attack's verdict, which reads the
//! victim back and scores it. The default [`FlipCountVerdict`] counts
//! bit flips against the module's `WeakCells` ground truth (every flip
//! the readout reports comes from the device's weak-cell physics) and
//! builds the Fig. 10 per-dataword histogram; alternative verdicts can
//! be slotted in via [`crate::AttackBuilder::verdict`].

use dram_sim::PhysRow;
use softmc::MemoryController;

use crate::eval::PositionResult;
use crate::pattern::PatternTarget;

/// Scores one victim position after the hammering windows complete.
pub trait Verdict: Send + Sync {
    /// Short identifier for reports and artifacts.
    fn id(&self) -> &str;

    /// Reads the victim back and produces the position's result. Also
    /// responsible for emitting the `read_check` trace event so flight
    /// recordings keep their provenance chain.
    fn judge(
        &self,
        mc: &mut MemoryController,
        target: &PatternTarget,
        victim_phys: PhysRow,
    ) -> PositionResult;
}

/// The standard verdict: count bit flips in the victim row and build
/// the per-8-byte-dataword flip histogram (§7.2–§7.4 metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlipCountVerdict;

impl Verdict for FlipCountVerdict {
    fn id(&self) -> &str {
        "flip-count"
    }

    fn judge(
        &self,
        mc: &mut MemoryController,
        target: &PatternTarget,
        victim_phys: PhysRow,
    ) -> PositionResult {
        let readout = mc.read_row(target.bank, target.victim).expect("victim address is in range");
        mc.registry().trace(
            obs::TraceKind::ReadCheck,
            mc.now().as_ns(),
            u32::from(target.bank.index()),
            Some(victim_phys.index()),
            &[("flips", readout.flip_count() as u64)],
            if readout.is_clean() { "clean" } else { "flipped" },
        );
        let mut hist: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
        for (_, k) in readout.flips_per_dataword() {
            *hist.entry(k).or_default() += 1;
        }
        PositionResult {
            victim: victim_phys,
            flips: readout.flip_count() as u32,
            dataword_hist: hist.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::DoubleSided;
    use crate::eval::{evaluate_position, EvalConfig};
    use crate::pattern::AccessPattern;
    use dram_sim::{Module, ModuleConfig};

    #[test]
    fn default_verdict_is_flip_count() {
        let pattern = DoubleSided::max_rate();
        assert_eq!(AccessPattern::verdict(&pattern).id(), "flip-count");
    }

    #[test]
    fn flip_count_histogram_accounts_for_every_flip() {
        let module = Module::new(ModuleConfig::small_test(), 9);
        let mut mc = MemoryController::new(module);
        let config = EvalConfig::quick(1);
        let result =
            evaluate_position(&mut mc, &DoubleSided::max_rate(), &config, PhysRow::new(400));
        assert!(result.flips > 0);
        let from_hist: u32 = result.dataword_hist.iter().map(|&(k, n)| k * n).sum();
        assert_eq!(from_hist, result.flips);
    }
}
