//! Baseline and U-TRR-derived custom RowHammer access patterns, plus the
//! §7 evaluation harness.
//!
//! * [`baseline`] — single-sided, double-sided (Fig. 2) and
//!   TRRespass-style many-sided patterns, which all fail against TRR
//!   (footnote 18 of the paper);
//! * [`custom`] — the §7.1 patterns crafted from the U-TRR findings:
//!   counter-table eviction (vendor A), sampler stealing (vendor B), and
//!   window exhaustion (vendor C);
//! * [`half_double`] — the distance-2 technique from the paper's related
//!   work, which turns a ±1-refreshing TRR into the attacker's
//!   accomplice and which vendor A's ±2 span (Observation A2) blocks;
//! * [`eval`] — runs a pattern over sampled victim positions of a bank
//!   for a number of refresh windows and reports the §7.2–§7.4 metrics
//!   (bit flips per row, % vulnerable rows, flips per 8-byte dataword).
//!
//! Every attack decomposes into composable components ([`components`]):
//! a [`PatternGenerator`] (which rows, what dose), a [`Scheduler`]
//! (when, relative to the REF cadence — [`schedulers`]), and a
//! [`verdict::Verdict`] stage (what counts as success), assembled by
//! [`AttackBuilder`]. The [`fuzz`] module searches that component space
//! with a seeded frequency-domain fuzzer and re-derives §7.1-class
//! bypasses against the ground-truth TRR engines; [`reference`] keeps
//! the frozen pre-refactor implementations as an equivalence oracle.
//!
//! # Example
//!
//! ```no_run
//! use attacks::{custom, eval};
//! use utrr_modules::by_id;
//!
//! let spec = by_id("A5").unwrap();
//! let pattern = custom::pattern_for(&spec);
//! let sweep = eval::sweep_bank(&spec, pattern.as_ref(), &eval::EvalConfig::quick(64));
//! println!("{}: {:.1}% rows vulnerable", spec.id, sweep.vulnerable_pct());
//! ```

pub mod baseline;
pub mod components;
pub mod custom;
pub mod eval;
pub mod fuzz;
pub mod half_double;
pub mod pattern;
pub mod reference;
pub mod schedulers;
pub mod verdict;

pub use components::{
    AggressorLayout, AttackBuilder, BuiltinAttack, ComposedAttack, PatternGenerator, RowDose,
    Scheduler, Slot, INTERVAL_BUDGET,
};
pub use eval::{BankSweep, EvalConfig, PositionResult};
pub use pattern::{AccessPattern, PatternTarget};
pub use verdict::{FlipCountVerdict, Verdict};
