//! The composable attack pipeline: pattern generators, schedulers, and
//! the builder that assembles them into [`AccessPattern`]s.
//!
//! The §7.1 custom patterns all decompose into the same three concerns,
//! and the decomposition is what makes a pattern *searchable* (the
//! [`crate::fuzz`] module samples each axis independently):
//!
//! * a [`PatternGenerator`] decides **which rows** carry the attack and
//!   the per-row activation dose — the aggressor layout;
//! * a [`Scheduler`] decides **when** those activations are issued
//!   within and across `tREFI` intervals: ordering, pair interleaving
//!   vs. cascading, and phase relative to the TRR-capable-`REF` cadence
//!   (REF-synchronised schedulers) or none at all (free-running ones);
//! * a [`crate::verdict::Verdict`] stage decides **what counts as
//!   success** once the hammering stops — by default flip counting
//!   against the module's `WeakCells` ground truth.
//!
//! [`AttackBuilder`] assembles the three into a [`ComposedAttack`]; the
//! pre-existing baseline/custom/half-double structs are themselves
//! generators (each with a canonical scheduler via [`BuiltinAttack`]),
//! so `AttackBuilder::from_attack(VendorAPattern::paper_optimum())`
//! reproduces the hand-written §7.1 pattern byte-for-byte.

use dram_sim::{Bank, DramError, RowAddr};
use softmc::MemoryController;

use crate::pattern::{AccessPattern, PatternTarget};
use crate::verdict::Verdict;

/// Single-bank activation budget between two `REF`s (footnote 10).
pub const INTERVAL_BUDGET: u64 = 149;

/// One row of the attack layout together with its per-interval
/// activation dose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowDose {
    /// Logical row address.
    pub row: RowAddr,
    /// Activations this row receives per scheduled interval.
    pub acts: u64,
}

impl RowDose {
    /// Convenience constructor.
    pub fn new(row: RowAddr, acts: u64) -> Self {
        RowDose { row, acts }
    }
}

/// A generator's answer for one victim position: which rows to drive
/// and how hard. The scheduler turns this into per-interval [`Slot`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AggressorLayout {
    /// True aggressors, in hammering order.
    pub aggressors: Vec<RowDose>,
    /// Same-bank dummy rows (tracker eviction, sampler stealing, window
    /// exhaustion), in hammering order.
    pub dummies: Vec<RowDose>,
    /// Dummy rows in other banks, for sampler-stealing diversions that
    /// overlap the target bank's timing.
    pub other_bank: Vec<(Bank, RowDose)>,
}

/// One scheduled unit of work inside a `tREFI` interval. Executing a
/// slot with a zero dose is a strict no-op on the device (no state, no
/// metrics, no clock), so schedulers may emit them freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Back-to-back activations of one row.
    Burst {
        /// Row to activate.
        row: RowAddr,
        /// Activation count.
        acts: u64,
    },
    /// Alternating activations of two rows (`first`, `second`, `first`,
    /// …) — `pairs` activations of each.
    Pair {
        /// First row of the pair.
        first: RowAddr,
        /// Second row of the pair.
        second: RowAddr,
        /// Activations per row.
        pairs: u64,
    },
    /// Activations in another bank, overlapped with the target bank's
    /// interval (they do not consume the target bank's budget).
    OtherBank {
        /// The other bank.
        bank: Bank,
        /// Row to activate there.
        row: RowAddr,
        /// Activation count.
        acts: u64,
    },
}

/// Produces the aggressor layout for a victim position.
///
/// Method names deliberately differ from [`AccessPattern`]'s so a type
/// can implement both without call-site ambiguity (the blanket impl for
/// [`BuiltinAttack`] bridges them).
pub trait PatternGenerator: Send + Sync {
    /// Short identifier used in reports ([`AccessPattern::name`]).
    fn id(&self) -> &str;

    /// Average hammers per single aggressor row per `REF` — the Fig. 8
    /// x-axis ([`AccessPattern::hammers_per_aggressor_per_ref`]).
    fn rate_per_ref(&self) -> f64;

    /// The rows this generator drives for `target`, with per-interval
    /// doses. Needs the controller for physical-to-logical mapping
    /// (Half-Double derives its distance-2 rows here).
    fn layout(&self, mc: &MemoryController, target: &PatternTarget) -> AggressorLayout;

    /// Rows the evaluation harness should initialize with the
    /// coupling-maximizing stripe ([`AccessPattern::init_rows`]).
    fn seed_rows(&self, target: &PatternTarget) -> Vec<RowAddr> {
        target.aggressors.clone()
    }
}

/// Orders a layout's activations within one `tREFI` interval.
///
/// `interval` counts `REF`s since power-on, so REF-synchronised
/// schedulers can phase their work against the TRR-capable-`REF`
/// cadence; free-running schedulers ignore it.
pub trait Scheduler: Send + Sync {
    /// Short identifier for reports and artifacts.
    fn id(&self) -> &str;

    /// Appends this interval's slots to `slots` (cleared by the
    /// caller).
    fn schedule(&self, layout: &AggressorLayout, interval: u64, slots: &mut Vec<Slot>);
}

/// Issues scheduled slots to the device, in order.
///
/// # Errors
///
/// Propagates device protocol errors.
pub fn execute_slots(
    mc: &mut MemoryController,
    bank: Bank,
    slots: &[Slot],
) -> Result<(), DramError> {
    for slot in slots {
        match *slot {
            Slot::Burst { row, acts } => mc.module_mut().hammer(bank, row, acts)?,
            Slot::Pair { first, second, pairs } => {
                mc.module_mut().hammer_pair(bank, first, second, pairs)?;
            }
            Slot::OtherBank { bank: other, row, acts } => {
                mc.module_mut().hammer_overlapped(other, row, acts)?;
            }
        }
    }
    Ok(())
}

/// Runs one interval of a generator/scheduler pair: layout → slots →
/// device.
///
/// # Errors
///
/// Propagates device protocol errors.
pub fn run_composed(
    generator: &dyn PatternGenerator,
    scheduler: &dyn Scheduler,
    mc: &mut MemoryController,
    target: &PatternTarget,
    interval: u64,
) -> Result<(), DramError> {
    let layout = generator.layout(mc, target);
    let mut slots = Vec::with_capacity(
        layout.aggressors.len() + layout.dummies.len() + layout.other_bank.len(),
    );
    scheduler.schedule(&layout, interval, &mut slots);
    execute_slots(mc, target.bank, &slots)
}

/// A generator with a canonical scheduler — what the hand-written
/// attack structs implement so they run standalone *and* slot into the
/// builder. The blanket impl below gives every `BuiltinAttack` an
/// [`AccessPattern`] that is byte-identical to
/// `AttackBuilder::from_attack(it).build()`.
pub trait BuiltinAttack: PatternGenerator {
    /// The scheduler this attack was designed around.
    type Sched: Scheduler + Send + Sync + 'static;

    /// Builds the canonical scheduler instance (usually `Copy` data
    /// derived from the attack's own parameters).
    fn scheduler(&self) -> Self::Sched;
}

impl<T: BuiltinAttack> AccessPattern for T {
    fn name(&self) -> &str {
        self.id()
    }

    fn hammers_per_aggressor_per_ref(&self) -> f64 {
        self.rate_per_ref()
    }

    fn init_rows(&self, target: &PatternTarget) -> Vec<RowAddr> {
        self.seed_rows(target)
    }

    fn run_interval(
        &self,
        mc: &mut MemoryController,
        target: &PatternTarget,
        interval: u64,
    ) -> Result<(), DramError> {
        run_composed(self, &self.scheduler(), mc, target, interval)
    }
}

/// A builder-assembled attack: generator + scheduler + verdict behind
/// one [`AccessPattern`].
pub struct ComposedAttack {
    name: Option<String>,
    generator: Box<dyn PatternGenerator>,
    scheduler: Box<dyn Scheduler>,
    verdict: Box<dyn Verdict>,
}

impl ComposedAttack {
    /// The scheduler's identifier (for reports).
    pub fn scheduler_id(&self) -> &str {
        self.scheduler.id()
    }
}

impl std::fmt::Debug for ComposedAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComposedAttack")
            .field("name", &self.name())
            .field("scheduler", &self.scheduler.id())
            .field("verdict", &self.verdict.id())
            .finish()
    }
}

impl AccessPattern for ComposedAttack {
    fn name(&self) -> &str {
        self.name.as_deref().unwrap_or_else(|| self.generator.id())
    }

    fn hammers_per_aggressor_per_ref(&self) -> f64 {
        self.generator.rate_per_ref()
    }

    fn init_rows(&self, target: &PatternTarget) -> Vec<RowAddr> {
        self.generator.seed_rows(target)
    }

    fn run_interval(
        &self,
        mc: &mut MemoryController,
        target: &PatternTarget,
        interval: u64,
    ) -> Result<(), DramError> {
        run_composed(self.generator.as_ref(), self.scheduler.as_ref(), mc, target, interval)
    }

    fn verdict(&self) -> &dyn Verdict {
        self.verdict.as_ref()
    }
}

/// Assembles a [`ComposedAttack`] from components.
///
/// Defaults: the generator's canonical name, a
/// [`crate::schedulers::CascadeScheduler`], and a
/// [`crate::verdict::FlipCountVerdict`].
pub struct AttackBuilder {
    name: Option<String>,
    generator: Box<dyn PatternGenerator>,
    scheduler: Box<dyn Scheduler>,
    verdict: Box<dyn Verdict>,
}

impl AttackBuilder {
    /// Starts a builder from a generator.
    pub fn new(generator: impl PatternGenerator + 'static) -> Self {
        AttackBuilder {
            name: None,
            generator: Box::new(generator),
            scheduler: Box::new(crate::schedulers::CascadeScheduler),
            verdict: Box::new(crate::verdict::FlipCountVerdict),
        }
    }

    /// Starts a builder from a [`BuiltinAttack`] with its canonical
    /// scheduler pre-selected — `build()` then reproduces the
    /// hand-written attack byte-for-byte.
    pub fn from_attack<T>(attack: T) -> Self
    where
        T: BuiltinAttack + 'static,
    {
        let scheduler = attack.scheduler();
        AttackBuilder::new(attack).scheduler(scheduler)
    }

    /// Overrides the reported pattern name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Sets the scheduler.
    pub fn scheduler(mut self, scheduler: impl Scheduler + 'static) -> Self {
        self.scheduler = Box::new(scheduler);
        self
    }

    /// Sets the verdict stage.
    pub fn verdict(mut self, verdict: impl Verdict + 'static) -> Self {
        self.verdict = Box::new(verdict);
        self
    }

    /// Finishes the assembly.
    pub fn build(self) -> ComposedAttack {
        ComposedAttack {
            name: self.name,
            generator: self.generator,
            scheduler: self.scheduler,
            verdict: self.verdict,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::DoubleSided;
    use dram_sim::{Module, ModuleConfig, PhysRow};

    #[test]
    fn zero_dose_slots_are_device_noops() {
        let mut mc = MemoryController::new(Module::new(ModuleConfig::small_test(), 3));
        let before = mc.module().ref_count();
        let acts_before = mc.registry().counter(dram_sim::metrics::CTR_ACT).get();
        let slots = [
            Slot::Burst { row: RowAddr::new(10), acts: 0 },
            Slot::Pair { first: RowAddr::new(10), second: RowAddr::new(12), pairs: 0 },
            Slot::OtherBank { bank: Bank::new(1), row: RowAddr::new(10), acts: 0 },
        ];
        execute_slots(&mut mc, Bank::new(0), &slots).unwrap();
        assert_eq!(mc.module().ref_count(), before);
        assert_eq!(mc.registry().counter(dram_sim::metrics::CTR_ACT).get(), acts_before);
    }

    #[test]
    fn builder_preserves_generator_identity() {
        let composed = AttackBuilder::from_attack(DoubleSided::max_rate()).build();
        assert_eq!(composed.name(), "double-sided");
        assert_eq!(composed.hammers_per_aggressor_per_ref(), 74.0);
        assert_eq!(composed.scheduler_id(), "interleave");
        assert_eq!(composed.verdict().id(), "flip-count");
        let renamed = AttackBuilder::from_attack(DoubleSided::max_rate()).named("ds-74").build();
        assert_eq!(renamed.name(), "ds-74");
    }

    #[test]
    fn composed_attack_matches_builtin_on_a_position() {
        let config = ModuleConfig::small_test();
        let builtin = DoubleSided::max_rate();
        let composed = AttackBuilder::from_attack(builtin).build();
        let eval = crate::eval::EvalConfig {
            positions: vec![PhysRow::new(400)],
            ..crate::eval::EvalConfig::quick(1)
        };
        let a = crate::eval::sweep_bank_module(Module::new(config.clone(), 9), &builtin, &eval);
        let b = crate::eval::sweep_bank_module(Module::new(config, 9), &composed, &eval);
        assert_eq!(a, b);
    }
}
