//! Property tests for the TRR engines' batched activation hooks: the
//! batched paths must be *exactly* equivalent to replaying single
//! activations (the `MitigationEngine` contract), for the deterministic
//! engines, under arbitrary interleavings of rows, counts, and
//! refreshes.

use dram_sim::{Bank, MitigationEngine, MitigationEngineExt, Nanos, PhysRow};
use proptest::prelude::*;
use trr::{CounterTrr, CounterTrrConfig, WindowTrr, WindowTrrConfig};

const T0: Nanos = Nanos::ZERO;

/// A step of a random engine workload.
#[derive(Debug, Clone)]
enum Step {
    Act { bank: u8, row: u32, count: u64 },
    Pair { bank: u8, first: u32, second: u32, pairs: u64 },
    Refresh,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..2, 0u32..64, 1u64..48).prop_map(|(bank, row, count)| Step::Act { bank, row, count }),
        (0u8..2, 0u32..64, 0u32..64, 1u64..24)
            .prop_map(|(bank, first, second, pairs)| { Step::Pair { bank, first, second, pairs } }),
        Just(Step::Refresh),
    ]
}

fn drive(engine: &mut dyn MitigationEngine, steps: &[Step], batched: bool) -> Vec<(u8, u32)> {
    let mut detections = Vec::new();
    for step in steps {
        match *step {
            Step::Act { bank, row, count } => {
                if batched {
                    engine.on_activations(Bank::new(bank), PhysRow::new(row), count, T0);
                } else {
                    for _ in 0..count {
                        engine.on_activations(Bank::new(bank), PhysRow::new(row), 1, T0);
                    }
                }
            }
            Step::Pair { bank, first, second, pairs } => {
                if batched {
                    engine.on_interleaved_pair(
                        Bank::new(bank),
                        PhysRow::new(first),
                        PhysRow::new(second),
                        pairs,
                        T0,
                    );
                } else {
                    for _ in 0..pairs {
                        engine.on_activations(Bank::new(bank), PhysRow::new(first), 1, T0);
                        engine.on_activations(Bank::new(bank), PhysRow::new(second), 1, T0);
                    }
                }
            }
            Step::Refresh => {
                for d in engine.refresh_detections(T0) {
                    detections.push((d.bank.index(), d.aggressor.index()));
                }
            }
        }
    }
    detections
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Counter engine: batched and looped activations yield identical
    /// tables and identical detection streams.
    #[test]
    fn counter_batched_equals_looped(
        steps in prop::collection::vec(step_strategy(), 1..60),
        table_size in 2usize..8,
    ) {
        let config = CounterTrrConfig { table_size, ..CounterTrrConfig::a_trr1() };
        let mut batched = CounterTrr::new(config, "p", 2);
        let mut looped = CounterTrr::new(config, "p", 2);
        let d1 = drive(&mut batched, &steps, true);
        let d2 = drive(&mut looped, &steps, false);
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(batched.table(Bank::new(0)), looped.table(Bank::new(0)));
        prop_assert_eq!(batched.table(Bank::new(1)), looped.table(Bank::new(1)));
    }

    /// Window engine: the predrawn capture target makes batch/loop
    /// equivalence exact, not just statistical.
    #[test]
    fn window_batched_equals_looped(
        steps in prop::collection::vec(step_strategy(), 1..60),
        seed in 0u64..1_000,
    ) {
        let config = WindowTrrConfig { window: 256, ..WindowTrrConfig::c_trr2() };
        let mut batched = WindowTrr::new(config, "p", 2, seed);
        let mut looped = WindowTrr::new(config, "p", 2, seed);
        let d1 = drive(&mut batched, &steps, true);
        let d2 = drive(&mut looped, &steps, false);
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(batched.candidates(), looped.candidates());
    }

    /// Counter engine invariants: the table never exceeds its capacity
    /// and reset really clears it.
    #[test]
    fn counter_capacity_and_reset_invariants(
        steps in prop::collection::vec(step_strategy(), 1..80),
    ) {
        let mut engine = CounterTrr::a_trr1(2);
        let _ = drive(&mut engine, &steps, true);
        prop_assert!(engine.table(Bank::new(0)).len() <= 16);
        prop_assert!(engine.table(Bank::new(1)).len() <= 16);
        engine.reset();
        prop_assert!(engine.table(Bank::new(0)).is_empty());
        let idle: Vec<_> = (0..32).flat_map(|_| engine.refresh_detections(T0)).collect();
        prop_assert!(idle.is_empty());
    }
}
