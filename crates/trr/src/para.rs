//! PARA — Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).
//!
//! The original, stateless RowHammer mitigation the paper's related-work
//! section contrasts TRR against: on *every* activation, with a small
//! probability `p`, the row's neighbours are refreshed immediately. No
//! tables, no samples — nothing for an attacker to evict, overflow, or
//! divert. Its guarantee is probabilistic: an aggressor evades refresh
//! for `n` activations with probability `(1 - p)^n`, which for
//! `p = 0.001` and `HC_first ≥ 10K` is astronomically small.
//!
//! Implemented here as an ACT-synchronous [`MitigationEngine`] using the
//! inline-detection hook, so the paper's custom patterns can be run
//! against it (`repro` binary `secure-mitigations`): the U-TRR-derived
//! patterns that defeat every in-DRAM TRR achieve nothing against PARA
//! with an adequate `p`.

use std::fmt;

use dram_sim::rng::SplitMix64;
use dram_sim::{Bank, MitigationEngine, Nanos, NeighborSpan, PhysRow, TrrDetection};

/// The PARA engine.
///
/// # Example
///
/// ```
/// use dram_sim::{MitigationEngine, MitigationEngineExt, Bank, PhysRow, Nanos};
/// use trr::Para;
///
/// let mut e = Para::new(0.01, 7);
/// e.on_activations(Bank::new(0), PhysRow::new(5), 10_000, Nanos::ZERO);
/// // With p = 1% over 10K activations, a refresh is all but certain.
/// assert!(!e.inline_detections().is_empty());
/// ```
pub struct Para {
    /// Per-activation refresh probability.
    prob: f64,
    rng: SplitMix64,
    seed: u64,
    pending: Vec<TrrDetection>,
    /// `trr.PARA.detections` — present once a registry is attached.
    det_ctr: Option<obs::Counter>,
}

impl Para {
    /// Creates a PARA engine with refresh probability `prob` per
    /// activation.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < prob <= 1`.
    pub fn new(prob: f64, seed: u64) -> Self {
        assert!(prob > 0.0 && prob <= 1.0, "probability must be in (0, 1]");
        Para { prob, rng: SplitMix64::new(seed), seed, pending: Vec::new(), det_ctr: None }
    }

    /// The configured probability.
    pub fn prob(&self) -> f64 {
        self.prob
    }

    /// Queues a detection for `row` if any of `count` activations is
    /// sampled.
    fn maybe_detect(&mut self, bank: Bank, row: PhysRow, count: u64) {
        let any = 1.0 - (1.0 - self.prob).powi(count.min(i32::MAX as u64) as i32);
        if self.rng.next_f64() < any {
            self.pending.push(TrrDetection { bank, aggressor: row, span: NeighborSpan::One });
            if let Some(c) = &self.det_ctr {
                c.inc();
            }
        }
    }
}

impl fmt::Debug for Para {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Para").field("prob", &self.prob).finish_non_exhaustive()
    }
}

impl MitigationEngine for Para {
    fn on_activations(&mut self, bank: Bank, row: PhysRow, count: u64, _now: Nanos) {
        if count == 0 {
            return;
        }
        self.maybe_detect(bank, row, count);
    }

    fn on_interleaved_pair(
        &mut self,
        bank: Bank,
        first: PhysRow,
        second: PhysRow,
        pairs: u64,
        _now: Nanos,
    ) {
        if pairs == 0 {
            return;
        }
        // Each row sees `pairs` activations; sampling is independent.
        self.maybe_detect(bank, first, pairs);
        self.maybe_detect(bank, second, pairs);
    }

    fn on_refresh(&mut self, _now: Nanos, _out: &mut Vec<TrrDetection>) {}

    fn take_inline_detections(&mut self, out: &mut Vec<TrrDetection>) {
        out.append(&mut self.pending);
    }

    fn attach_metrics(&mut self, registry: &std::sync::Arc<obs::MetricsRegistry>) {
        self.det_ctr = Some(registry.counter("trr.PARA.detections"));
    }

    fn reset(&mut self) {
        self.rng = SplitMix64::new(self.seed);
        self.pending.clear();
    }

    fn name(&self) -> &str {
        "PARA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::MitigationEngineExt;

    const B0: Bank = Bank::new(0);
    const T0: Nanos = Nanos::ZERO;

    #[test]
    fn sampling_rate_matches_probability() {
        let mut e = Para::new(0.002, 3);
        let mut hits = 0;
        for i in 0..20_000u32 {
            e.on_activations(B0, PhysRow::new(i % 64), 1, T0);
            hits += e.inline_detections().len();
        }
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.002).abs() < 0.001, "observed {rate}");
    }

    #[test]
    fn batches_detect_with_the_closed_form_probability() {
        let mut misses = 0;
        for seed in 0..200 {
            let mut e = Para::new(0.001, seed);
            e.on_activations(B0, PhysRow::new(1), 10_000, T0);
            if e.inline_detections().is_empty() {
                misses += 1;
            }
        }
        // (1 - 0.001)^10000 ≈ 4.5e-5: essentially never missed.
        assert_eq!(misses, 0);
    }

    #[test]
    fn detections_are_drained_once() {
        let mut e = Para::new(1.0, 3);
        e.on_activations(B0, PhysRow::new(1), 1, T0);
        assert_eq!(e.inline_detections().len(), 1);
        assert!(e.inline_detections().is_empty());
    }

    #[test]
    fn refresh_path_is_inert() {
        let mut e = Para::new(0.5, 3);
        assert!(e.refresh_detections(T0).is_empty());
        e.reset();
        assert_eq!(e.name(), "PARA");
    }

    #[test]
    #[should_panic(expected = "probability must be in")]
    fn rejects_zero_probability() {
        let _ = Para::new(0.0, 1);
    }
}
