//! Vendor C's activation-window TRR (§6.3 of the paper).
//!
//! Reverse-engineered behaviour reproduced here, by observation number:
//!
//! * **C1** — every 17th (C_TRR1), 9th (C_TRR2), or 8th (C_TRR3) `REF`
//!   normally performs a TRR-induced refresh; when no aggressor candidate
//!   has been captured yet, the TRR slot is *deferred* to a later `REF`.
//! * **C2** — aggressors are detected only among the first ~2K `ACT`
//!   commands per bank following a TRR-induced refresh (1K for C_TRR3),
//!   and rows activated *earlier* in the window are more likely to be
//!   detected. We realize this with a geometrically distributed capture
//!   position drawn at window open: the first activation is the most
//!   likely to be captured, and positions beyond the window are never
//!   captured.
//! * **C3** — C_TRR1 modules pair rows physically; the victim expansion
//!   for that organization is the device's [`dram_sim::Topology::Paired`],
//!   not the engine's concern.
//!
//! One liberty beyond the paper: if a window fills completely without
//! capturing any candidate (possible but rare under the geometric draw),
//! the engine reopens the window instead of deferring forever — the paper
//! never observes a module that stops issuing TRR refreshes permanently.

use std::fmt;

use dram_sim::rng::SplitMix64;
use dram_sim::{Bank, MitigationEngine, Nanos, NeighborSpan, PhysRow, TrrDetection};

/// Configuration of a [`WindowTrr`] engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowTrrConfig {
    /// Every `trr_ref_interval`-th `REF` arms a TRR-induced refresh
    /// (Observation C1).
    pub trr_ref_interval: u64,
    /// Activations tracked per bank after a TRR-induced refresh
    /// (Observation C2: 2K, or 1K for C_TRR3).
    pub window: u64,
    /// Success probability of the geometric capture-position draw.
    /// The §7.2 attack arithmetic pins this to a strongly front-loaded
    /// bias (scale of tens of activations): the paper finds ~252 dummy
    /// activations right after a TRR-capable `REF` are enough to divert
    /// detection for the rest of a 17-REF window, and the near-perfect
    /// vulnerability of C_TRR2 parts requires the aggressors (hammered
    /// *after* the dummies) to be captured in well under 1% of windows.
    pub capture_prob: f64,
    /// Neighbours refreshed per detection.
    pub span: NeighborSpan,
}

impl WindowTrrConfig {
    /// C_TRR1: every 17th REF, 2K-activation window.
    pub const fn c_trr1() -> Self {
        WindowTrrConfig {
            trr_ref_interval: 17,
            window: 2_048,
            capture_prob: 1.0 / 45.0,
            span: NeighborSpan::One,
        }
    }

    /// C_TRR2: every 9th REF, 2K-activation window.
    pub const fn c_trr2() -> Self {
        WindowTrrConfig { trr_ref_interval: 9, ..WindowTrrConfig::c_trr1() }
    }

    /// C_TRR3: every 8th REF, 1K-activation window.
    pub const fn c_trr3() -> Self {
        WindowTrrConfig {
            trr_ref_interval: 8,
            window: 1_024,
            capture_prob: 1.0 / 30.0,
            span: NeighborSpan::One,
        }
    }
}

/// Per-bank window state.
#[derive(Debug, Clone)]
struct BankWindow {
    /// Activations seen since the window opened.
    position: u64,
    /// Predrawn geometric capture position.
    target: u64,
    /// The captured candidate, if the target position has been reached.
    candidate: Option<PhysRow>,
    /// Whether a TRR slot is armed and waiting for a candidate.
    pending: bool,
}

/// Vendor C's window-based TRR engine. See the [module docs](self).
///
/// # Example
///
/// ```
/// use dram_sim::{MitigationEngine, MitigationEngineExt, Bank, PhysRow, Nanos};
/// use trr::WindowTrr;
///
/// let mut e = WindowTrr::c_trr2(8, 11);
/// e.on_activations(Bank::new(0), PhysRow::new(77), 2_048, Nanos::ZERO);
/// let det: Vec<_> = (0..9).flat_map(|_| e.refresh_detections(Nanos::ZERO)).collect();
/// assert_eq!(det[0].aggressor, PhysRow::new(77));
/// ```
pub struct WindowTrr {
    config: WindowTrrConfig,
    name: &'static str,
    banks: Vec<BankWindow>,
    ref_count: u64,
    rng: SplitMix64,
    seed: u64,
    /// `trr.<name>.detections` — present once a registry is attached.
    det_ctr: Option<obs::Counter>,
}

impl WindowTrr {
    /// Builds an engine with an explicit configuration.
    pub fn new(config: WindowTrrConfig, name: &'static str, banks: u8, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let banks = (0..banks)
            .map(|_| BankWindow {
                position: 0,
                target: draw_geometric(&mut rng, config.capture_prob),
                candidate: None,
                pending: false,
            })
            .collect();
        WindowTrr { config, name, banks, ref_count: 0, rng, seed, det_ctr: None }
    }

    /// The C_TRR1 mechanism (modules C0–C8 of Table 1).
    pub fn c_trr1(banks: u8, seed: u64) -> Self {
        WindowTrr::new(WindowTrrConfig::c_trr1(), "C_TRR1", banks, seed)
    }

    /// The C_TRR2 mechanism (modules C9–C11 of Table 1).
    pub fn c_trr2(banks: u8, seed: u64) -> Self {
        WindowTrr::new(WindowTrrConfig::c_trr2(), "C_TRR2", banks, seed)
    }

    /// The C_TRR3 mechanism (modules C12–C14 of Table 1).
    pub fn c_trr3(banks: u8, seed: u64) -> Self {
        WindowTrr::new(WindowTrrConfig::c_trr3(), "C_TRR3", banks, seed)
    }

    /// The engine configuration.
    pub fn config(&self) -> WindowTrrConfig {
        self.config
    }

    /// Current candidate per bank — test support only.
    pub fn candidates(&self) -> Vec<Option<PhysRow>> {
        self.banks.iter().map(|b| b.candidate).collect()
    }

    /// Observes `count` activations covering window positions
    /// `[start, start + count)`; captures `row` if the predrawn target
    /// falls inside and no candidate exists yet.
    fn observe(&mut self, bank: Bank, row: PhysRow, count: u64) {
        let cfg_window = self.config.window;
        let w = &mut self.banks[bank.index() as usize];
        let start = w.position;
        w.position = w.position.saturating_add(count);
        if w.candidate.is_none()
            && w.target < cfg_window
            && w.target >= start
            && w.target < start.saturating_add(count)
        {
            w.candidate = Some(row);
        }
    }
}

/// Draws a geometric random variate (number of failures before the first
/// success) with success probability `p`.
fn draw_geometric(rng: &mut SplitMix64, p: f64) -> u64 {
    // Inverse CDF: floor(ln(u) / ln(1-p)).
    let u = 1.0 - rng.next_f64();
    (u.ln() / (1.0 - p).ln()) as u64
}

impl fmt::Debug for WindowTrr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WindowTrr")
            .field("name", &self.name)
            .field("config", &self.config)
            .field("ref_count", &self.ref_count)
            .finish_non_exhaustive()
    }
}

impl MitigationEngine for WindowTrr {
    fn on_activations(&mut self, bank: Bank, row: PhysRow, count: u64, _now: Nanos) {
        if count == 0 {
            return;
        }
        self.observe(bank, row, count);
    }

    fn on_interleaved_pair(
        &mut self,
        bank: Bank,
        first: PhysRow,
        second: PhysRow,
        pairs: u64,
        _now: Nanos,
    ) {
        if pairs == 0 {
            return;
        }
        // The alternating sequence occupies 2*pairs positions starting at
        // the current one; if the target lands inside, its parity decides
        // which of the two rows is captured.
        let cfg_window = self.config.window;
        let w = &mut self.banks[bank.index() as usize];
        let start = w.position;
        let len = 2 * pairs;
        w.position = w.position.saturating_add(len);
        if w.candidate.is_none()
            && w.target < cfg_window
            && w.target >= start
            && w.target < start.saturating_add(len)
        {
            let offset = w.target - start;
            w.candidate = Some(if offset.is_multiple_of(2) { first } else { second });
        }
    }

    fn on_refresh(&mut self, _now: Nanos, out: &mut Vec<TrrDetection>) {
        self.ref_count += 1;
        let armed = self.ref_count.is_multiple_of(self.config.trr_ref_interval);
        let span = self.config.span;
        let capture_prob = self.config.capture_prob;
        let window = self.config.window;
        let before = out.len();
        for (idx, w) in self.banks.iter_mut().enumerate() {
            if armed {
                w.pending = true;
            }
            if !w.pending {
                continue;
            }
            match w.candidate {
                Some(row) => {
                    out.push(TrrDetection { bank: Bank::new(idx as u8), aggressor: row, span });
                    // The TRR-induced refresh closes this bank's window.
                    w.pending = false;
                    w.candidate = None;
                    w.position = 0;
                    w.target = draw_geometric(&mut self.rng, capture_prob);
                }
                None if w.position >= window => {
                    // Exhausted window with no capture: reopen (see the
                    // module docs for this liberty).
                    w.position = 0;
                    w.target = draw_geometric(&mut self.rng, capture_prob);
                }
                None => {}
            }
        }
        let detected = (out.len() - before) as u64;
        if detected > 0 {
            if let Some(c) = &self.det_ctr {
                c.add(detected);
            }
        }
    }

    fn attach_metrics(&mut self, registry: &std::sync::Arc<obs::MetricsRegistry>) {
        self.det_ctr = Some(registry.counter(&format!("trr.{}.detections", self.name)));
    }

    fn detects_inline(&self) -> bool {
        // Window-based TRR empties its candidate slots at `REF` only.
        false
    }

    fn reset(&mut self) {
        let capture_prob = self.config.capture_prob;
        self.rng = SplitMix64::new(self.seed);
        for w in &mut self.banks {
            w.position = 0;
            w.candidate = None;
            w.pending = false;
            w.target = draw_geometric(&mut self.rng, capture_prob);
        }
        self.ref_count = 0;
    }

    fn name(&self) -> &str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::MitigationEngineExt;

    const B0: Bank = Bank::new(0);
    const T0: Nanos = Nanos::ZERO;

    #[test]
    fn trr_interval_is_respected_when_candidate_ready() {
        let mut e = WindowTrr::c_trr1(1, 5);
        e.on_activations(B0, PhysRow::new(3), 2_048, T0);
        for i in 1..=17u64 {
            let det = e.refresh_detections(T0);
            assert_eq!(!det.is_empty(), i % 17 == 0, "REF {i}");
        }
    }

    #[test]
    fn trr_defers_until_a_candidate_appears() {
        let mut e = WindowTrr::c_trr1(1, 5);
        // Arm the TRR slot with no activations at all.
        for _ in 0..17 {
            assert!(e.refresh_detections(T0).is_empty());
        }
        // Now activate enough to guarantee a capture: the next REF fires
        // immediately even though it is not the 17th.
        e.on_activations(B0, PhysRow::new(3), 2_048, T0);
        let det = e.refresh_detections(T0);
        assert_eq!(det.len(), 1, "deferred TRR fires at the next REF (Obs C1)");
        assert_eq!(det[0].aggressor, PhysRow::new(3));
    }

    #[test]
    fn earlier_activations_are_more_likely_detected() {
        let mut early = 0;
        let mut late = 0;
        for seed in 0..2_000 {
            let mut e = WindowTrr::c_trr1(1, seed);
            e.on_activations(B0, PhysRow::new(1), 512, T0);
            e.on_activations(B0, PhysRow::new(2), 512, T0);
            match e.candidates()[0] {
                Some(r) if r == PhysRow::new(1) => early += 1,
                Some(r) if r == PhysRow::new(2) => late += 1,
                _ => {}
            }
        }
        assert!(early > late * 2, "early {early} vs late {late} (Obs C2)");
    }

    #[test]
    fn activations_beyond_the_window_are_never_detected() {
        for seed in 0..200 {
            let mut e = WindowTrr::c_trr1(1, seed);
            // Fill the whole window with a dummy row, then hammer the
            // aggressor far more.
            e.on_activations(B0, PhysRow::new(900), 2_048, T0);
            e.on_activations(B0, PhysRow::new(5), 50_000, T0);
            if let Some(r) = e.candidates()[0] {
                assert_eq!(r, PhysRow::new(900), "seed {seed}: only window rows detectable");
            }
        }
    }

    #[test]
    fn window_resets_after_trr_refresh() {
        let mut e = WindowTrr::c_trr1(1, 5);
        e.on_activations(B0, PhysRow::new(3), 2_048, T0);
        let det: Vec<_> = (0..17).flat_map(|_| e.refresh_detections(T0)).collect();
        assert_eq!(det.len(), 1);
        // A fresh window: a new early row becomes the likely candidate.
        e.on_activations(B0, PhysRow::new(44), 2_048, T0);
        let det: Vec<_> = (0..17).flat_map(|_| e.refresh_detections(T0)).collect();
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].aggressor, PhysRow::new(44));
    }

    #[test]
    fn banks_have_independent_windows() {
        let mut e = WindowTrr::c_trr2(2, 5);
        e.on_activations(Bank::new(0), PhysRow::new(3), 2_048, T0);
        e.on_activations(Bank::new(1), PhysRow::new(7), 2_048, T0);
        let det: Vec<_> = (0..9).flat_map(|_| e.refresh_detections(T0)).collect();
        assert_eq!(det.len(), 2);
        let rows: Vec<u32> = det.iter().map(|d| d.aggressor.index()).collect();
        assert!(rows.contains(&3) && rows.contains(&7));
    }

    #[test]
    fn interleaved_pair_captures_either_row() {
        let mut seen_first = false;
        let mut seen_second = false;
        for seed in 0..500 {
            let mut e = WindowTrr::c_trr1(1, seed);
            e.on_interleaved_pair(B0, PhysRow::new(1), PhysRow::new(2), 1_024, T0);
            match e.candidates()[0] {
                Some(r) if r == PhysRow::new(1) => seen_first = true,
                Some(r) if r == PhysRow::new(2) => seen_second = true,
                _ => {}
            }
        }
        assert!(seen_first && seen_second);
    }

    #[test]
    fn exhausted_window_reopens_instead_of_deadlocking() {
        // Find a seed whose first target is beyond a tiny window.
        let config = WindowTrrConfig {
            trr_ref_interval: 4,
            window: 4,
            capture_prob: 1.0 / 1_000.0,
            span: NeighborSpan::One,
        };
        let mut e = WindowTrr::new(config, "tiny", 1, 0);
        // Exhaust windows repeatedly; eventually a short target is drawn
        // and a detection happens.
        let mut detected = false;
        for _ in 0..20_000 {
            e.on_activations(B0, PhysRow::new(9), 4, T0);
            if !e.refresh_detections(T0).is_empty() {
                detected = true;
                break;
            }
        }
        assert!(detected, "windows must reopen until a capture succeeds");
    }

    #[test]
    fn reset_is_deterministic() {
        let mut a = WindowTrr::c_trr1(4, 9);
        a.on_activations(B0, PhysRow::new(3), 2_048, T0);
        a.refresh_detections(T0);
        a.reset();
        let b = WindowTrr::c_trr1(4, 9);
        assert_eq!(a.candidates(), b.candidates());
        assert_eq!(a.ref_count, b.ref_count);
    }
}
