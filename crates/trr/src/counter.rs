//! Vendor A's counter-based TRR (§6.1 of the paper).
//!
//! Reverse-engineered behaviour reproduced here, by observation number:
//!
//! * **A1** — only every 9th `REF` performs a TRR-induced refresh.
//! * **A2** — A_TRR1 refreshes the four physically closest rows (±1, ±2);
//!   A_TRR2 refreshes two (±1).
//! * **A3** — two alternating TRR refresh types: `TREF_a` detects the
//!   table entry with the highest counter value; `TREF_b` walks the table
//!   slots with a pointer, detecting one entry per instance.
//! * **A4** — a per-bank table tracks activation counts for 16 rows.
//! * **A5** — inserting a new row evicts an existing entry. The paper
//!   infers "the entry with the smallest counter value" from an
//!   experiment in which one row is hammered 50 times *first* and 16
//!   rows 100 times each *afterwards* — an experiment that cannot
//!   distinguish smallest-count from least-recently-used eviction,
//!   because the low-count row is also the least recent. We implement
//!   **LRU eviction with per-entry activation counters**, which is the
//!   only policy also consistent with the §7.1 attack: hammering 16
//!   dummy rows after the aggressors flushes a 16-slot LRU regardless of
//!   the aggressors' counter values, and the Fig. 8 optimum of ~26
//!   hammers per aggressor falls out of the REF-interval budget
//!   arithmetic ((149 − 16·6) / 2 = 26). Under smallest-count eviction
//!   the 6-hammer dummies could never displace 24-hammer aggressors and
//!   the paper's attack could not work.
//! * **A6** — detection resets the detected entry's counter to zero.
//! * **A7** — entries persist until evicted; `TREF_b` keeps re-detecting
//!   a stale entry every 16th instance because slots are stable.

use std::fmt;

use dram_sim::{Bank, MitigationEngine, Nanos, NeighborSpan, PhysRow, TrrDetection};

/// Configuration of a [`CounterTrr`] engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterTrrConfig {
    /// Counter-table entries per bank (Observation A4: 16).
    pub table_size: usize,
    /// Every `trr_ref_interval`-th `REF` is TRR-capable (Observation A1: 9).
    pub trr_ref_interval: u64,
    /// Neighbours refreshed per detection (Observation A2).
    pub span: NeighborSpan,
}

impl CounterTrrConfig {
    /// A_TRR1: 16 entries, every 9th REF, ±1 and ±2 victims.
    pub const fn a_trr1() -> Self {
        CounterTrrConfig { table_size: 16, trr_ref_interval: 9, span: NeighborSpan::Two }
    }

    /// A_TRR2: like A_TRR1 but only the immediate neighbours (±1).
    pub const fn a_trr2() -> Self {
        CounterTrrConfig { table_size: 16, trr_ref_interval: 9, span: NeighborSpan::One }
    }
}

/// One counter-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    row: PhysRow,
    count: u64,
    /// Activation sequence number of the row's most recent activation,
    /// for LRU eviction.
    last_used: u64,
}

/// Per-bank table state: fixed slots so the `TREF_b` pointer walk is
/// stable under replacement.
#[derive(Debug, Clone, Default)]
struct BankTable {
    slots: Vec<Option<Entry>>,
    /// `TREF_b` walk pointer (slot index).
    pointer: usize,
    /// Per-bank activation sequence counter.
    seq: u64,
}

impl BankTable {
    fn with_capacity(capacity: usize) -> Self {
        BankTable { slots: vec![None; capacity], pointer: 0, seq: 0 }
    }

    fn position(&self, row: PhysRow) -> Option<usize> {
        self.slots.iter().position(|s| s.map(|e| e.row) == Some(row))
    }

    /// Records `count` back-to-back activations of `row`: exactly
    /// equivalent to `count` single activations (the first may insert by
    /// LRU eviction; the rest increment). Returns the entry the
    /// insertion displaced, if any.
    fn add(&mut self, row: PhysRow, count: u64) -> Option<PhysRow> {
        if count == 0 {
            return None;
        }
        self.seq += count;
        let seq = self.seq;
        if let Some(i) = self.position(row) {
            let entry = self.slots[i].as_mut().expect("position() found it");
            entry.count += count;
            entry.last_used = seq;
            return None;
        }
        let slot = self.free_or_lru_slot();
        let evicted = self.slots[slot].map(|e| e.row);
        self.slots[slot] = Some(Entry { row, count, last_used: seq });
        evicted
    }

    /// First empty slot, or the slot holding the least-recently-used
    /// entry.
    fn free_or_lru_slot(&self) -> usize {
        if let Some(i) = self.slots.iter().position(Option::is_none) {
            return i;
        }
        self.slots
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.map(|e| e.last_used))
            .map(|(i, _)| i)
            .expect("table has at least one slot")
    }

    /// `TREF_a`: the highest-count entry, if any activity is recorded.
    fn detect_max(&mut self) -> Option<PhysRow> {
        let (idx, entry) = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|e| (i, e)))
            .max_by_key(|(_, e)| e.count)?;
        if entry.count == 0 {
            return None;
        }
        self.slots[idx].as_mut().expect("occupied").count = 0;
        Some(entry.row)
    }

    /// `TREF_b`: the next occupied slot at or after the pointer (detected
    /// even with a zero counter — Observation A7), then advance the
    /// pointer.
    fn detect_pointer(&mut self) -> Option<PhysRow> {
        let size = self.slots.len();
        for probe in 0..size {
            let idx = (self.pointer + probe) % size;
            if let Some(entry) = &mut self.slots[idx] {
                let row = entry.row;
                entry.count = 0;
                self.pointer = (idx + 1) % size;
                return Some(row);
            }
        }
        None
    }
}

/// Vendor A's counter-based TRR engine. See the [module docs](self).
///
/// # Example
///
/// ```
/// use dram_sim::{MitigationEngine, MitigationEngineExt, Bank, PhysRow, Nanos};
/// use trr::CounterTrr;
///
/// let mut e = CounterTrr::a_trr2(2);
/// e.on_activations(Bank::new(1), PhysRow::new(7), 1_000, Nanos::ZERO);
/// let detections: Vec<_> = (0..9).flat_map(|_| e.refresh_detections(Nanos::ZERO)).collect();
/// assert_eq!(detections.len(), 1);
/// assert_eq!(detections[0].bank, Bank::new(1));
/// ```
pub struct CounterTrr {
    config: CounterTrrConfig,
    name: &'static str,
    banks: Vec<BankTable>,
    ref_count: u64,
    /// Alternates TREF_a / TREF_b on successive TRR-capable REFs.
    next_is_tref_a: bool,
    /// `trr.<name>.detections` — present once a registry is attached.
    det_ctr: Option<obs::Counter>,
    /// `trr.<name>.evictions` — table entries displaced by LRU insertion.
    evict_ctr: Option<obs::Counter>,
    /// The attached registry, for flight-recorder eviction events.
    registry: Option<std::sync::Arc<obs::MetricsRegistry>>,
}

impl CounterTrr {
    /// Builds an engine with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `table_size < 2` (the batched interleaved-pair path
    /// relies on both rows fitting in the table simultaneously).
    pub fn new(config: CounterTrrConfig, name: &'static str, banks: u8) -> Self {
        assert!(config.table_size >= 2, "counter table needs at least two entries");
        CounterTrr {
            config,
            name,
            banks: (0..banks).map(|_| BankTable::with_capacity(config.table_size)).collect(),
            ref_count: 0,
            next_is_tref_a: true,
            det_ctr: None,
            evict_ctr: None,
            registry: None,
        }
    }

    /// Flight-recorder event for one LRU eviction: `evicted` lost its
    /// slot to `inserted`.
    fn trace_eviction(&self, bank: Bank, evicted: PhysRow, inserted: PhysRow, now: Nanos) {
        if let Some(registry) = &self.registry {
            registry.trace(
                obs::TraceKind::TrrEvict,
                now.as_ns(),
                bank.index() as u32,
                Some(evicted.index()),
                &[("inserted", inserted.index() as u64)],
                "",
            );
        }
    }

    /// The A_TRR1 mechanism (modules A0–A12 of Table 1).
    pub fn a_trr1(banks: u8) -> Self {
        CounterTrr::new(CounterTrrConfig::a_trr1(), "A_TRR1", banks)
    }

    /// The A_TRR2 mechanism (modules A13–A14 of Table 1).
    pub fn a_trr2(banks: u8) -> Self {
        CounterTrr::new(CounterTrrConfig::a_trr2(), "A_TRR2", banks)
    }

    /// The engine configuration.
    pub fn config(&self) -> CounterTrrConfig {
        self.config
    }

    /// Ground-truth inspection of a bank's occupied entries as
    /// `(row, count)` pairs — test support only.
    pub fn table(&self, bank: Bank) -> Vec<(PhysRow, u64)> {
        self.banks[bank.index() as usize].slots.iter().flatten().map(|e| (e.row, e.count)).collect()
    }
}

impl fmt::Debug for CounterTrr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CounterTrr")
            .field("name", &self.name)
            .field("config", &self.config)
            .field("ref_count", &self.ref_count)
            .finish_non_exhaustive()
    }
}

impl MitigationEngine for CounterTrr {
    fn on_activations(&mut self, bank: Bank, row: PhysRow, count: u64, now: Nanos) {
        if let Some(evicted) = self.banks[bank.index() as usize].add(row, count) {
            if let Some(c) = &self.evict_ctr {
                c.inc();
            }
            self.trace_eviction(bank, evicted, row, now);
        }
    }

    fn on_interleaved_pair(
        &mut self,
        bank: Bank,
        first: PhysRow,
        second: PhysRow,
        pairs: u64,
        now: Nanos,
    ) {
        if pairs == 0 {
            return;
        }
        // Equivalent to the alternating loop: after the first pair both
        // rows are resident (LRU eviction cannot evict the row inserted
        // by the immediately preceding activation while older entries
        // exist — and with table size ≥ 2 one always does), so the
        // remaining activations are pure increments; only the final
        // recency order matters, with `second` activated last.
        let table = &mut self.banks[bank.index() as usize];
        let mut evicted = [None, None, None, None];
        evicted[0] = table.add(first, 1);
        evicted[1] = table.add(second, 1);
        if pairs > 1 {
            evicted[2] = table.add(first, pairs - 1);
            evicted[3] = table.add(second, pairs - 1);
        }
        let evictions = evicted.iter().flatten().count() as u64;
        if evictions > 0 {
            if let Some(c) = &self.evict_ctr {
                c.add(evictions);
            }
            for (i, row) in evicted.iter().enumerate() {
                if let Some(row) = row {
                    let inserted = if i % 2 == 0 { first } else { second };
                    self.trace_eviction(bank, *row, inserted, now);
                }
            }
        }
    }

    fn on_refresh(&mut self, _now: Nanos, out: &mut Vec<TrrDetection>) {
        self.ref_count += 1;
        if !self.ref_count.is_multiple_of(self.config.trr_ref_interval) {
            return;
        }
        let tref_a = self.next_is_tref_a;
        self.next_is_tref_a = !tref_a;
        let span = self.config.span;
        let before = out.len();
        for (idx, table) in self.banks.iter_mut().enumerate() {
            let detected = if tref_a { table.detect_max() } else { table.detect_pointer() };
            if let Some(row) = detected {
                out.push(TrrDetection { bank: Bank::new(idx as u8), aggressor: row, span });
            }
        }
        let detected = (out.len() - before) as u64;
        if detected > 0 {
            if let Some(c) = &self.det_ctr {
                c.add(detected);
            }
        }
    }

    fn attach_metrics(&mut self, registry: &std::sync::Arc<obs::MetricsRegistry>) {
        self.det_ctr = Some(registry.counter(&format!("trr.{}.detections", self.name)));
        self.evict_ctr = Some(registry.counter(&format!("trr.{}.evictions", self.name)));
        self.registry = Some(std::sync::Arc::clone(registry));
    }

    fn detects_inline(&self) -> bool {
        // Counter-based TRR only acts at `REF` (tREFab/tREFsb piggyback).
        false
    }

    fn reset(&mut self) {
        let capacity = self.config.table_size;
        for table in &mut self.banks {
            *table = BankTable::with_capacity(capacity);
        }
        self.ref_count = 0;
        self.next_is_tref_a = true;
    }

    fn name(&self) -> &str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::MitigationEngineExt;

    const B0: Bank = Bank::new(0);
    const T0: Nanos = Nanos::ZERO;

    fn drain_refs(e: &mut CounterTrr, refs: u64) -> Vec<(u64, TrrDetection)> {
        let mut out = Vec::new();
        for i in 0..refs {
            for d in e.refresh_detections(T0) {
                out.push((i + 1, d));
            }
        }
        out
    }

    #[test]
    fn attached_registry_counts_detections_and_evictions() {
        let registry = std::sync::Arc::new(obs::MetricsRegistry::new());
        let mut e = CounterTrr::a_trr1(1);
        e.attach_metrics(&registry);
        // 20 distinct rows through a 16-slot table: exactly 4 evictions.
        for i in 0..20 {
            e.on_activations(B0, PhysRow::new(i), 100, T0);
        }
        let hits = drain_refs(&mut e, 9);
        assert_eq!(registry.counter("trr.A_TRR1.evictions").get(), 4);
        assert_eq!(registry.counter("trr.A_TRR1.detections").get(), hits.len() as u64);
        assert!(!hits.is_empty());
    }

    #[test]
    fn only_every_ninth_ref_detects() {
        let mut e = CounterTrr::a_trr1(1);
        e.on_activations(B0, PhysRow::new(10), 5_000, T0);
        let hits = drain_refs(&mut e, 36);
        assert!(!hits.is_empty());
        for (ref_idx, _) in &hits {
            assert_eq!(ref_idx % 9, 0, "TRR only on every 9th REF, got {ref_idx}");
        }
    }

    #[test]
    fn tref_a_detects_highest_count() {
        let mut e = CounterTrr::a_trr1(1);
        e.on_activations(B0, PhysRow::new(10), 50, T0);
        e.on_activations(B0, PhysRow::new(20), 5_000, T0);
        let hits = drain_refs(&mut e, 9);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1.aggressor, PhysRow::new(20));
    }

    #[test]
    fn detection_resets_counter_and_alternation_continues() {
        let mut e = CounterTrr::a_trr1(1);
        // Observation A6's experiment: H0 = 2K and H1 = 3K per 9 REFs.
        // The higher-count row is caught first; once reset, the other
        // row's accumulated count wins next time.
        let (r0, r1) = (PhysRow::new(10), PhysRow::new(20));
        let mut caught = Vec::new();
        for _ in 0..8 {
            for _ in 0..9 {
                e.on_activations(B0, r0, 2_000, T0);
                e.on_activations(B0, r1, 3_000, T0);
                for d in e.refresh_detections(T0) {
                    caught.push(d.aggressor);
                }
            }
        }
        assert!(caught.contains(&r0), "reset counters let the slower row win eventually");
        assert!(caught.contains(&r1));
    }

    #[test]
    fn tref_b_walks_the_table_cyclically() {
        let mut e = CounterTrr::a_trr1(1);
        // Fill the table with 16 rows, then stop hammering entirely.
        for i in 0..16 {
            e.on_activations(B0, PhysRow::new(100 + i), 100, T0);
        }
        // TREF_b instances (every other TRR REF) keep detecting entries
        // even long after every counter has been reset (Observation A7).
        let hits = drain_refs(&mut e, 9 * 64);
        let late_hits: Vec<_> = hits.iter().filter(|(r, _)| *r > 9 * 32).collect();
        assert!(!late_hits.is_empty(), "TREF_b keeps detecting stale entries indefinitely");
        // The pointer walk revisits the same row every 16 TREF_b
        // instances: late detections cycle through all 16 rows.
        let mut late_rows: Vec<u32> = late_hits.iter().map(|(_, d)| d.aggressor.index()).collect();
        late_rows.sort_unstable();
        late_rows.dedup();
        assert_eq!(late_rows.len(), 16, "the walk covers the whole table");
    }

    #[test]
    fn eviction_drops_the_first_hammered_row() {
        // Observation A5's experiment: one row hammered 50 times, then 16
        // rows hammered 100 times each. The first row must be evicted and
        // never detected.
        let mut e = CounterTrr::a_trr1(1);
        let weak = PhysRow::new(5);
        e.on_activations(B0, weak, 50, T0);
        for i in 0..16 {
            e.on_activations(B0, PhysRow::new(100 + i), 100, T0);
        }
        let hits = drain_refs(&mut e, 9 * 40);
        assert!(
            hits.iter().all(|(_, d)| d.aggressor != weak),
            "the first-inserted row must have been evicted"
        );
    }

    #[test]
    fn table_capacity_is_sixteen() {
        let mut e = CounterTrr::a_trr1(1);
        for i in 0..16 {
            e.on_activations(B0, PhysRow::new(i), 10, T0);
        }
        assert_eq!(e.table(B0).len(), 16);
        // A 17th row enters by evicting the least recently used entry
        // (row 0 here).
        e.on_activations(B0, PhysRow::new(16), 1, T0);
        let table = e.table(B0);
        assert_eq!(table.len(), 16);
        assert!(table.iter().any(|&(row, count)| row == PhysRow::new(16) && count == 1));
        assert!(table.iter().all(|&(row, _)| row != PhysRow::new(0)));
    }

    #[test]
    fn per_bank_tables_are_independent() {
        let mut e = CounterTrr::a_trr1(2);
        e.on_activations(Bank::new(0), PhysRow::new(1), 1_000, T0);
        e.on_activations(Bank::new(1), PhysRow::new(2), 1_000, T0);
        let hits: Vec<TrrDetection> = (0..9).flat_map(|_| e.refresh_detections(T0)).collect();
        assert_eq!(hits.len(), 2, "one detection per bank on a TRR REF");
        assert_ne!(hits[0].bank, hits[1].bank);
    }

    #[test]
    fn span_matches_version() {
        assert_eq!(CounterTrr::a_trr1(1).config().span, NeighborSpan::Two);
        assert_eq!(CounterTrr::a_trr2(1).config().span, NeighborSpan::One);
    }

    #[test]
    fn reset_clears_everything() {
        let mut e = CounterTrr::a_trr1(1);
        e.on_activations(B0, PhysRow::new(10), 5_000, T0);
        for _ in 0..5 {
            e.refresh_detections(T0);
        }
        e.reset();
        assert!(e.table(B0).is_empty());
        let hits = drain_refs(&mut e, 18);
        assert!(hits.is_empty());
    }

    #[test]
    fn batched_activations_match_singles() {
        let mut batched = CounterTrr::a_trr1(1);
        let mut singles = CounterTrr::a_trr1(1);
        // An adversarial mix of rows so evictions happen.
        let rows: Vec<PhysRow> = (0..24).map(PhysRow::new).collect();
        for (i, &row) in rows.iter().enumerate() {
            let n = (i as u64 % 7) + 1;
            batched.on_activations(B0, row, n, T0);
            for _ in 0..n {
                singles.on_activations(B0, row, 1, T0);
            }
        }
        assert_eq!(batched.table(B0), singles.table(B0));
    }

    #[test]
    fn interleaved_pair_matches_singles() {
        for fill in [0u32, 8, 16] {
            let mut batched = CounterTrr::a_trr1(1);
            let mut singles = CounterTrr::a_trr1(1);
            for e in [&mut batched, &mut singles] {
                for i in 0..fill {
                    e.on_activations(B0, PhysRow::new(1_000 + i), 6, T0);
                }
            }
            let (a, b) = (PhysRow::new(1), PhysRow::new(2));
            batched.on_interleaved_pair(B0, a, b, 24, T0);
            for _ in 0..24 {
                singles.on_activations(B0, a, 1, T0);
                singles.on_activations(B0, b, 1, T0);
            }
            assert_eq!(batched.table(B0), singles.table(B0), "fill={fill}");
        }
    }

    /// Runs the §7.1 vendor-A attack shape for `intervals` REF intervals
    /// and returns (aggressor detections, total detections).
    fn run_attack_shape(
        agg_hammers: u64,
        dummies: u32,
        dummy_hammers: u64,
        intervals: u32,
    ) -> (u32, u32) {
        let mut e = CounterTrr::a_trr1(1);
        let (a0, a1) = (PhysRow::new(500), PhysRow::new(502));
        let mut aggressor_detections = 0;
        let mut total_detections = 0;
        for _ in 0..intervals {
            e.on_activations(B0, a0, agg_hammers, T0);
            e.on_activations(B0, a1, agg_hammers, T0);
            for d in 0..dummies {
                e.on_activations(B0, PhysRow::new(1_000 + d * 4), dummy_hammers, T0);
            }
            for det in e.refresh_detections(T0) {
                total_detections += 1;
                if det.aggressor == a0 || det.aggressor == a1 {
                    aggressor_detections += 1;
                }
            }
        }
        (aggressor_detections, total_detections)
    }

    #[test]
    fn sixteen_dummies_flush_the_aggressors() {
        // §7.1 vendor-A attack shape: 24 hammers per aggressor, then 16
        // dummy rows hammered 6 times each, every REF interval. Inserting
        // 16 rows into the 16-slot LRU always pushes both aggressors out
        // before the TRR-capable REF.
        let (agg, total) = run_attack_shape(24, 16, 6, 9 * 200);
        assert!(total > 100, "TRR keeps firing (on dummies), total {total}");
        assert_eq!(agg, 0, "aggressors must never be detected");
    }

    #[test]
    fn too_few_dummies_leave_aggressors_exposed() {
        // The Fig. 8 trade-off: spending the REF-interval budget on the
        // aggressors leaves too few dummy insertions to flush the LRU, so
        // an aggressor stays resident and its huge counter makes TREF_a
        // detect it.
        let (agg, total) = run_attack_shape(60, 4, 6, 9 * 200);
        assert!(
            agg as f64 > 0.3 * total as f64,
            "under-pressured LRU must expose aggressors: {agg}/{total}"
        );
    }
}
