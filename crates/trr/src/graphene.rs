//! Graphene — counter-based RowHammer protection with a deterministic
//! guarantee (Park et al., MICRO 2020), one of the "more secure
//! alternatives" the paper's conclusion points towards.
//!
//! Graphene keeps a Misra-Gries heavy-hitter table per bank with a
//! spillover counter. Every activation of a tracked row increments its
//! counter; an untracked activation either claims an entry whose count
//! equals the spillover value or increments the spillover. Whenever a
//! row's counter crosses a multiple of the threshold `T`, its neighbours
//! are refreshed *immediately* (ACT-synchronous, via the inline-detection
//! hook). The Misra-Gries invariant guarantees no row can be activated
//! `T + W/table_size` times without a refresh (`W` = activations per
//! window), so choosing `T` well below `HC_first` gives a deterministic
//! bound — there is no table to flush with 16 dummy rows and no sampler
//! to steal: the U-TRR custom patterns gain nothing.
//!
//! Counters reset every refresh window, tracked via `REF` counts.

use std::fmt;

use dram_sim::{Bank, MitigationEngine, Nanos, NeighborSpan, PhysRow, TrrDetection};

/// Configuration of a [`Graphene`] engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrapheneConfig {
    /// Tracked rows per bank.
    pub table_size: usize,
    /// Activation count at which a tracked row's neighbours are
    /// refreshed (choose ≤ `HC_first / 2` for a safety margin).
    pub threshold: u64,
    /// Counters reset every this many `REF` commands (one refresh
    /// window).
    pub window_refs: u64,
}

impl GrapheneConfig {
    /// A configuration protecting a module with the given `HC_first`:
    /// threshold at a quarter of it, a table sized for the worst-case
    /// activation budget of one refresh window.
    pub fn for_hc_first(hc_first: u64) -> Self {
        let threshold = (hc_first / 4).max(16);
        // W / threshold entries suffice for the Misra-Gries bound; one
        // window holds ~8192 × 149 single-bank activations.
        let table_size = ((8_192u64 * 149).div_ceil(threshold) as usize).clamp(8, 4_096);
        GrapheneConfig { table_size, threshold, window_refs: 8_192 }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    row: PhysRow,
    count: u64,
}

#[derive(Debug, Clone, Default)]
struct BankTable {
    entries: Vec<Entry>,
    spillover: u64,
}

impl BankTable {
    /// Records `count` activations of `row`, returning `true` when the
    /// row's counter crossed a threshold multiple. A batch that crosses
    /// several multiples coalesces into one detection; since batches are
    /// bounded by the per-interval activation budget (far below any sane
    /// threshold), the detection bound degrades by at most one batch.
    fn add(&mut self, row: PhysRow, count: u64, config: &GrapheneConfig) -> bool {
        if let Some(e) = self.entries.iter_mut().find(|e| e.row == row) {
            let crossed = (e.count + count) / config.threshold > e.count / config.threshold;
            e.count += count;
            return crossed;
        }
        if self.entries.len() < config.table_size {
            self.entries.push(Entry { row, count });
            return count >= config.threshold;
        }
        // Misra-Gries: replaying the batch one activation at a time, the
        // spillover rises by one per unmatched arrival until it reaches
        // some entry's count, at which point that entry is claimed and
        // the rest of the batch increments it. Batched equivalently: any
        // entry whose count lies in [spillover, spillover + count) gets
        // claimed (lowest such count = the first reached), and the
        // claimed row ends at spillover + count either way.
        let claimable = self
            .entries
            .iter_mut()
            .filter(|e| e.count >= self.spillover && e.count < self.spillover + count)
            .min_by_key(|e| e.count);
        if let Some(e) = claimable {
            let inherited = self.spillover + count;
            let crossed = inherited / config.threshold > e.count / config.threshold;
            self.spillover = e.count;
            *e = Entry { row, count: inherited };
            crossed
        } else {
            // No entry in reach: the whole batch feeds the spillover.
            self.spillover += count;
            false
        }
    }

    fn reset(&mut self) {
        self.entries.clear();
        self.spillover = 0;
    }
}

/// The Graphene engine. See the [module docs](self).
///
/// # Example
///
/// ```
/// use dram_sim::{MitigationEngine, MitigationEngineExt, Bank, PhysRow, Nanos};
/// use trr::{Graphene, GrapheneConfig};
///
/// let mut e = Graphene::new(GrapheneConfig::for_hc_first(10_000), 1);
/// e.on_activations(Bank::new(0), PhysRow::new(5), 2_500, Nanos::ZERO);
/// assert_eq!(e.inline_detections().len(), 1); // threshold crossed
/// ```
pub struct Graphene {
    config: GrapheneConfig,
    banks: Vec<BankTable>,
    ref_count: u64,
    pending: Vec<TrrDetection>,
    /// `trr.Graphene.detections` — present once a registry is attached.
    det_ctr: Option<obs::Counter>,
}

impl Graphene {
    /// Creates a Graphene engine. Bank tables are created on demand.
    pub fn new(config: GrapheneConfig, banks: u8) -> Self {
        Graphene {
            config,
            banks: (0..banks).map(|_| BankTable::default()).collect(),
            ref_count: 0,
            pending: Vec::new(),
            det_ctr: None,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> GrapheneConfig {
        self.config
    }

    fn observe(&mut self, bank: Bank, row: PhysRow, count: u64) {
        let config = self.config;
        let crossed = self.banks[bank.index() as usize].add(row, count, &config);
        if crossed {
            self.pending.push(TrrDetection { bank, aggressor: row, span: NeighborSpan::One });
            if let Some(c) = &self.det_ctr {
                c.inc();
            }
        }
    }
}

impl fmt::Debug for Graphene {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graphene").field("config", &self.config).finish_non_exhaustive()
    }
}

impl MitigationEngine for Graphene {
    fn on_activations(&mut self, bank: Bank, row: PhysRow, count: u64, _now: Nanos) {
        if count == 0 {
            return;
        }
        self.observe(bank, row, count);
    }

    fn on_interleaved_pair(
        &mut self,
        bank: Bank,
        first: PhysRow,
        second: PhysRow,
        pairs: u64,
        _now: Nanos,
    ) {
        if pairs == 0 {
            return;
        }
        self.observe(bank, first, pairs);
        self.observe(bank, second, pairs);
    }

    fn on_refresh(&mut self, _now: Nanos, _out: &mut Vec<TrrDetection>) {
        self.ref_count += 1;
        if self.ref_count.is_multiple_of(self.config.window_refs) {
            for table in &mut self.banks {
                table.reset();
            }
        }
    }

    fn take_inline_detections(&mut self, out: &mut Vec<TrrDetection>) {
        out.append(&mut self.pending);
    }

    fn attach_metrics(&mut self, registry: &std::sync::Arc<obs::MetricsRegistry>) {
        self.det_ctr = Some(registry.counter("trr.Graphene.detections"));
    }

    fn reset(&mut self) {
        for table in &mut self.banks {
            table.reset();
        }
        self.ref_count = 0;
        self.pending.clear();
    }

    fn name(&self) -> &str {
        "Graphene"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::MitigationEngineExt;

    const B0: Bank = Bank::new(0);
    const T0: Nanos = Nanos::ZERO;

    fn config() -> GrapheneConfig {
        GrapheneConfig { table_size: 8, threshold: 100, window_refs: 1_024 }
    }

    #[test]
    fn threshold_crossing_fires_immediately() {
        let mut e = Graphene::new(config(), 1);
        e.on_activations(B0, PhysRow::new(5), 99, T0);
        assert!(e.inline_detections().is_empty());
        e.on_activations(B0, PhysRow::new(5), 1, T0);
        let det = e.inline_detections();
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].aggressor, PhysRow::new(5));
    }

    #[test]
    fn every_threshold_multiple_fires() {
        let mut e = Graphene::new(config(), 1);
        let mut detections = 0;
        for _ in 0..10 {
            e.on_activations(B0, PhysRow::new(5), 100, T0);
            detections += e.inline_detections().len();
        }
        assert_eq!(detections, 10);
    }

    #[test]
    fn no_row_exceeds_threshold_plus_spill_without_detection() {
        // The Misra-Gries guarantee: hammer many distinct rows; any row
        // that accumulates threshold activations while tracked fires.
        let mut e = Graphene::new(config(), 1);
        let mut fired = false;
        // 20 rows against an 8-entry table, each hammered in small bursts.
        for round in 0..50 {
            for r in 0..20u32 {
                e.on_activations(B0, PhysRow::new(r), 10, T0);
                if !e.inline_detections().is_empty() {
                    fired = true;
                }
            }
            let _ = round;
        }
        assert!(fired, "sustained pressure must trigger refreshes");
    }

    #[test]
    fn window_reset_clears_counters() {
        let mut e = Graphene::new(config(), 1);
        e.on_activations(B0, PhysRow::new(5), 99, T0);
        for _ in 0..1_024 {
            e.refresh_detections(T0);
        }
        e.on_activations(B0, PhysRow::new(5), 99, T0);
        assert!(e.inline_detections().is_empty(), "counters were reset at the window");
    }

    #[test]
    fn per_bank_tables() {
        let mut e = Graphene::new(config(), 2);
        e.on_activations(Bank::new(0), PhysRow::new(5), 99, T0);
        e.on_activations(Bank::new(1), PhysRow::new(5), 1, T0);
        assert!(e.inline_detections().is_empty(), "banks do not share counters");
    }

    #[test]
    fn sizing_helper_tracks_hc_first() {
        let weak = GrapheneConfig::for_hc_first(6_000);
        let strong = GrapheneConfig::for_hc_first(100_000);
        assert!(weak.threshold < strong.threshold);
        assert!(weak.table_size > strong.table_size);
    }
}
