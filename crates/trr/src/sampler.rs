//! Vendor B's sampling-based TRR (§6.2 of the paper).
//!
//! Reverse-engineered behaviour reproduced here, by observation number:
//!
//! * **B1** — every 4th (B_TRR1), 9th (B_TRR2), or 2nd (B_TRR3) `REF`
//!   performs a TRR-induced refresh.
//! * **B2** — only the two immediately adjacent rows are refreshed
//!   (B_TRR3 refreshes four, per Table 1).
//! * **B3** — aggressors are detected by pseudo-randomly sampling the row
//!   addresses of incoming `ACT` commands; ~2K consecutive activations of
//!   one row are enough to be sampled with near certainty.
//! * **B4** — the sampling capacity is a single row, shared across *all*
//!   banks (B_TRR1/2); B_TRR3 samples per bank.
//! * **B5** — a TRR-induced refresh does not clear the sample register;
//!   the same row keeps being detected until another row is sampled.

use std::fmt;

use dram_sim::rng::SplitMix64;
use dram_sim::{Bank, MitigationEngine, Nanos, NeighborSpan, PhysRow, TrrDetection};

/// Configuration of a [`SamplerTrr`] engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerTrrConfig {
    /// Every `trr_ref_interval`-th `REF` is TRR-capable (Observation B1).
    pub trr_ref_interval: u64,
    /// Per-activation sampling probability. Observation B3 (2K
    /// consecutive `ACT`s are caught "consistently") only lower-bounds
    /// this; the §7.1 attack arithmetic pins it much harder: ~624 dummy
    /// activations in the final interval before a TRR-capable `REF`
    /// must leave the aggressors sampled in well under 1% of windows
    /// (for the 99.9% vulnerability of B0/B5-8), while the paper's
    /// 12-activation minimum must produce only marginal diversion.
    /// `p ≈ 1/100` satisfies all three: `(1-p)^2000 ≈ e^-20`,
    /// `(1-p)^624 ≈ 0.2%`, `(1-p)^12 ≈ 89%`.
    pub sample_prob: f64,
    /// Whether each bank has its own sample register (B_TRR3) or one
    /// register is shared chip-wide (Observation B4).
    pub per_bank: bool,
    /// Neighbours refreshed per detection (Observation B2).
    pub span: NeighborSpan,
}

impl SamplerTrrConfig {
    /// B_TRR1: shared register, every 4th REF, ±1 victims.
    pub const fn b_trr1() -> Self {
        SamplerTrrConfig {
            trr_ref_interval: 4,
            sample_prob: 1.0 / 100.0,
            per_bank: false,
            span: NeighborSpan::One,
        }
    }

    /// B_TRR2: shared register, every 9th REF, ±1 victims.
    pub const fn b_trr2() -> Self {
        SamplerTrrConfig { trr_ref_interval: 9, ..SamplerTrrConfig::b_trr1() }
    }

    /// B_TRR3: per-bank registers, every 2nd REF, ±1 and ±2 victims.
    /// Its 2-REF window leaves the attacker only one interval (~149
    /// activations) of diversion budget, so the attack's success on
    /// B13/B14 (99.9% of rows) pins this sampler's probability higher
    /// than the chip-wide ones: `(1-1/25)^149 ≈ 0.3%` aggressor
    /// survival.
    pub const fn b_trr3() -> Self {
        SamplerTrrConfig {
            trr_ref_interval: 2,
            sample_prob: 1.0 / 25.0,
            per_bank: true,
            span: NeighborSpan::Two,
        }
    }
}

/// Vendor B's sampling-based TRR engine. See the [module docs](self).
///
/// Sampling is pseudo-random from a seeded deterministic stream, matching
/// the paper's suspicion that "the sampling does not happen truly
/// randomly but is likely based on pseudo-random sampling of an incoming
/// ACT".
///
/// # Example
///
/// ```
/// use dram_sim::{MitigationEngine, MitigationEngineExt, Bank, PhysRow, Nanos};
/// use trr::SamplerTrr;
///
/// let mut e = SamplerTrr::b_trr1(16, 7);
/// e.on_activations(Bank::new(3), PhysRow::new(42), 2_000, Nanos::ZERO);
/// let det: Vec<_> = (0..4).flat_map(|_| e.refresh_detections(Nanos::ZERO)).collect();
/// assert_eq!(det[0].aggressor, PhysRow::new(42));
/// ```
pub struct SamplerTrr {
    config: SamplerTrrConfig,
    name: &'static str,
    /// Sample registers: index 0 when shared, one per bank otherwise.
    registers: Vec<Option<(Bank, PhysRow)>>,
    ref_count: u64,
    rng: SplitMix64,
    seed: u64,
    /// `trr.<name>.detections` — present once a registry is attached.
    det_ctr: Option<obs::Counter>,
    /// `trr.<name>.samples` — register overwrites by sampled `ACT`s.
    sample_ctr: Option<obs::Counter>,
    /// The attached registry, for flight-recorder sample events.
    registry: Option<std::sync::Arc<obs::MetricsRegistry>>,
}

impl SamplerTrr {
    /// Builds an engine with an explicit configuration.
    pub fn new(config: SamplerTrrConfig, name: &'static str, banks: u8, seed: u64) -> Self {
        let registers = if config.per_bank { vec![None; banks as usize] } else { vec![None] };
        SamplerTrr {
            config,
            name,
            registers,
            ref_count: 0,
            rng: SplitMix64::new(seed),
            seed,
            det_ctr: None,
            sample_ctr: None,
            registry: None,
        }
    }

    /// Flight-recorder event for one register overwrite.
    fn trace_sample(&self, bank: Bank, row: PhysRow, now: Nanos) {
        if let Some(registry) = &self.registry {
            registry.trace(
                obs::TraceKind::TrrSample,
                now.as_ns(),
                bank.index() as u32,
                Some(row.index()),
                &[],
                "",
            );
        }
    }

    /// The B_TRR1 mechanism (modules B0–B8 of Table 1).
    pub fn b_trr1(banks: u8, seed: u64) -> Self {
        SamplerTrr::new(SamplerTrrConfig::b_trr1(), "B_TRR1", banks, seed)
    }

    /// The B_TRR2 mechanism (modules B9–B12 of Table 1).
    pub fn b_trr2(banks: u8, seed: u64) -> Self {
        SamplerTrr::new(SamplerTrrConfig::b_trr2(), "B_TRR2", banks, seed)
    }

    /// The B_TRR3 mechanism (modules B13–B14 of Table 1).
    pub fn b_trr3(banks: u8, seed: u64) -> Self {
        SamplerTrr::new(SamplerTrrConfig::b_trr3(), "B_TRR3", banks, seed)
    }

    /// The engine configuration.
    pub fn config(&self) -> SamplerTrrConfig {
        self.config
    }

    /// Current content of the sample register(s) — test support only.
    pub fn sampled(&self) -> Vec<Option<(Bank, PhysRow)>> {
        self.registers.clone()
    }

    fn register_index(&self, bank: Bank) -> usize {
        if self.config.per_bank {
            bank.index() as usize
        } else {
            0
        }
    }
}

impl fmt::Debug for SamplerTrr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SamplerTrr")
            .field("name", &self.name)
            .field("config", &self.config)
            .field("ref_count", &self.ref_count)
            .finish_non_exhaustive()
    }
}

impl MitigationEngine for SamplerTrr {
    fn on_activations(&mut self, bank: Bank, row: PhysRow, count: u64, now: Nanos) {
        if count == 0 {
            return;
        }
        // Closed form for a same-row batch: the register ends up holding
        // this row iff at least one of the `count` activations is
        // sampled.
        let miss = (1.0 - self.config.sample_prob).powi(count.min(i32::MAX as u64) as i32);
        if self.rng.next_f64() >= miss {
            let idx = self.register_index(bank);
            self.registers[idx] = Some((bank, row));
            if let Some(c) = &self.sample_ctr {
                c.inc();
            }
            self.trace_sample(bank, row, now);
        }
    }

    fn on_interleaved_pair(
        &mut self,
        bank: Bank,
        first: PhysRow,
        second: PhysRow,
        pairs: u64,
        now: Nanos,
    ) {
        if pairs == 0 {
            return;
        }
        // Closed form over the alternating sequence f,s,f,s,…,s of length
        // 2*pairs: the register changes iff any activation is sampled
        // (prob 1 - q^(2*pairs)); given that, the *last* sampled
        // activation decides, and counting from the tail the odd
        // positions are `second`: P(second | sampled) = p·Σ q^(2j) over
        // the geometric tail = 1 / (1 + q), independent of length.
        let q = 1.0 - self.config.sample_prob;
        let any = 1.0 - q.powi((2 * pairs).min(i32::MAX as u64) as i32);
        if self.rng.next_f64() < any {
            let row = if self.rng.next_f64() < 1.0 / (1.0 + q) { second } else { first };
            let idx = self.register_index(bank);
            self.registers[idx] = Some((bank, row));
            if let Some(c) = &self.sample_ctr {
                c.inc();
            }
            self.trace_sample(bank, row, now);
        }
    }

    fn on_refresh(&mut self, _now: Nanos, out: &mut Vec<TrrDetection>) {
        self.ref_count += 1;
        if !self.ref_count.is_multiple_of(self.config.trr_ref_interval) {
            return;
        }
        // Observation B5: the register is *not* cleared by the refresh.
        let before = out.len();
        out.extend(self.registers.iter().flatten().map(|&(bank, aggressor)| TrrDetection {
            bank,
            aggressor,
            span: self.config.span,
        }));
        let detected = (out.len() - before) as u64;
        if detected > 0 {
            if let Some(c) = &self.det_ctr {
                c.add(detected);
            }
        }
    }

    fn attach_metrics(&mut self, registry: &std::sync::Arc<obs::MetricsRegistry>) {
        self.det_ctr = Some(registry.counter(&format!("trr.{}.detections", self.name)));
        self.sample_ctr = Some(registry.counter(&format!("trr.{}.samples", self.name)));
        self.registry = Some(std::sync::Arc::clone(registry));
    }

    fn detects_inline(&self) -> bool {
        // Sampler-based TRR only acts on the registers at `REF`.
        false
    }

    fn reset(&mut self) {
        for r in &mut self.registers {
            *r = None;
        }
        self.ref_count = 0;
        self.rng = SplitMix64::new(self.seed);
    }

    fn name(&self) -> &str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::MitigationEngineExt;

    const T0: Nanos = Nanos::ZERO;

    #[test]
    fn two_thousand_acts_are_reliably_sampled() {
        let mut misses = 0;
        for seed in 0..100 {
            let mut e = SamplerTrr::b_trr1(16, seed);
            e.on_activations(Bank::new(0), PhysRow::new(9), 2_000, T0);
            if e.sampled()[0].is_none() {
                misses += 1;
            }
        }
        assert_eq!(misses, 0, "2K consecutive ACTs must be caught (Obs B3)");
    }

    #[test]
    fn single_act_is_rarely_sampled() {
        let hits = (0..1_000)
            .filter(|&seed| {
                let mut e = SamplerTrr::b_trr1(16, seed);
                e.on_activations(Bank::new(0), PhysRow::new(9), 1, T0);
                e.sampled()[0].is_some()
            })
            .count();
        assert!(hits < 30, "p ≈ 1/100, observed {hits}/1000");
    }

    #[test]
    fn trr_every_fourth_ref_b1() {
        let mut e = SamplerTrr::b_trr1(16, 3);
        e.on_activations(Bank::new(0), PhysRow::new(9), 2_000, T0);
        for i in 1..=12u64 {
            let det = e.refresh_detections(T0);
            assert_eq!(!det.is_empty(), i % 4 == 0, "REF {i}");
        }
    }

    #[test]
    fn register_not_cleared_by_trr_refresh() {
        let mut e = SamplerTrr::b_trr1(16, 3);
        e.on_activations(Bank::new(0), PhysRow::new(9), 2_000, T0);
        let first: Vec<_> = (0..4).flat_map(|_| e.refresh_detections(T0)).collect();
        let second: Vec<_> = (0..4).flat_map(|_| e.refresh_detections(T0)).collect();
        assert_eq!(first, second, "Obs B5: same row keeps being detected");
    }

    #[test]
    fn newly_sampled_row_overwrites_previous() {
        let mut e = SamplerTrr::b_trr1(16, 3);
        e.on_activations(Bank::new(0), PhysRow::new(9), 5_000, T0);
        e.on_activations(Bank::new(0), PhysRow::new(11), 3_000, T0);
        let det: Vec<_> = (0..4).flat_map(|_| e.refresh_detections(T0)).collect();
        assert_eq!(det.len(), 1, "sampling capacity is one row (Obs B4)");
        assert_eq!(det[0].aggressor, PhysRow::new(11), "last sampled row wins");
    }

    #[test]
    fn shared_register_crosses_banks() {
        let mut e = SamplerTrr::b_trr1(16, 3);
        e.on_activations(Bank::new(0), PhysRow::new(9), 5_000, T0);
        e.on_activations(Bank::new(7), PhysRow::new(500), 5_000, T0);
        let det: Vec<_> = (0..4).flat_map(|_| e.refresh_detections(T0)).collect();
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].bank, Bank::new(7), "Obs B4: one register shared across banks");
    }

    #[test]
    fn per_bank_registers_in_b_trr3() {
        let mut e = SamplerTrr::b_trr3(16, 3);
        e.on_activations(Bank::new(0), PhysRow::new(9), 5_000, T0);
        e.on_activations(Bank::new(7), PhysRow::new(500), 5_000, T0);
        let det: Vec<_> = (0..2).flat_map(|_| e.refresh_detections(T0)).collect();
        assert_eq!(det.len(), 2, "B_TRR3 samples independently per bank");
    }

    #[test]
    fn interleaved_pair_samples_both_rows_evenly() {
        // The tail-geometry math gives the later row only a ~p/2 edge,
        // which is invisible at any reasonable trial count; what matters
        // is that both rows are sampled at nearly equal rates.
        let mut second_wins = 0;
        let mut first_wins = 0;
        for seed in 0..2_000 {
            let mut e = SamplerTrr::b_trr1(16, seed);
            e.on_interleaved_pair(Bank::new(0), PhysRow::new(1), PhysRow::new(2), 1_000, T0);
            match e.sampled()[0] {
                Some((_, r)) if r == PhysRow::new(2) => second_wins += 1,
                Some((_, r)) if r == PhysRow::new(1) => first_wins += 1,
                _ => {}
            }
        }
        assert!(first_wins > 800, "first row sampled often, got {first_wins}");
        assert!(second_wins > 800, "second row sampled often, got {second_wins}");
    }

    #[test]
    fn interleaved_pair_distribution_matches_singles() {
        // Statistical order-equivalence: run the batched and the looped
        // version over many seeds and compare sample frequencies.
        let trials = 3_000u32;
        let mut batched_second = 0;
        let mut looped_second = 0;
        for seed in 0..trials as u64 {
            let mut b = SamplerTrr::b_trr1(16, seed);
            b.on_interleaved_pair(Bank::new(0), PhysRow::new(1), PhysRow::new(2), 200, T0);
            if matches!(b.sampled()[0], Some((_, r)) if r == PhysRow::new(2)) {
                batched_second += 1;
            }
            let mut l = SamplerTrr::b_trr1(16, seed + 1_000_000);
            for _ in 0..200 {
                l.on_activations(Bank::new(0), PhysRow::new(1), 1, T0);
                l.on_activations(Bank::new(0), PhysRow::new(2), 1, T0);
            }
            if matches!(l.sampled()[0], Some((_, r)) if r == PhysRow::new(2)) {
                looped_second += 1;
            }
        }
        let diff = (batched_second as f64 - looped_second as f64).abs() / trials as f64;
        assert!(diff < 0.05, "distributions must agree, diff {diff}");
    }

    #[test]
    fn reset_restores_power_on_state() {
        let mut e = SamplerTrr::b_trr1(16, 3);
        e.on_activations(Bank::new(0), PhysRow::new(9), 5_000, T0);
        e.refresh_detections(T0);
        e.reset();
        assert!(e.sampled()[0].is_none());
        let det: Vec<_> = (0..8).flat_map(|_| e.refresh_detections(T0)).collect();
        assert!(det.is_empty());
    }
}
