//! Ground-truth in-DRAM Target Row Refresh (TRR) engines.
//!
//! These are the proprietary mechanisms the U-TRR paper reverse engineers
//! (§6). Each engine implements [`dram_sim::MitigationEngine`] and is
//! installed *inside* a simulated [`dram_sim::Module`]; the U-TRR tooling
//! in `utrr-core` only ever sees the DDR command interface, so the
//! reproduction's headline claim is that the methodology re-discovers the
//! parameters planted here.
//!
//! Three families, matching the paper's three vendors:
//!
//! * [`CounterTrr`] — vendor A (§6.1): a per-bank 16-entry counter table
//!   with Misra-Gries eviction (unmatched activations drain all counters,
//!   zero-count entries fall out — the policy consistent with all of
//!   Observations A3–A7 *and* with the dummy-row eviction attack of
//!   §7.1), and two alternating TRR refresh types on every 9th `REF`:
//!   `TREF_a` detects the entry with the highest count, `TREF_b` walks
//!   the table with a pointer. Both reset the detected entry's counter.
//! * [`SamplerTrr`] — vendor B (§6.2): a single pseudo-random sample
//!   register, shared across banks (B_TRR1/2) or per bank (B_TRR3),
//!   overwritten by each sampled `ACT` and *not* cleared by TRR refreshes.
//! * [`WindowTrr`] — vendor C (§6.3): detects aggressors only among the
//!   first ~2K activations per bank following a TRR-induced refresh, with
//!   earlier activations more likely to be captured, and defers its TRR
//!   slot until a candidate exists.
//!
//! Beyond the three reverse-engineered families, the crate also ships
//! the *secure* ACT-synchronous mitigations the paper's conclusion
//! points towards — [`Para`] (Kim et al., ISCA 2014) and [`Graphene`]
//! (Park et al., MICRO 2020) — so the custom patterns can be shown to
//! fail against designs without evictable/stealable tracker state
//! (`secure-mitigations` binary in `utrr-bench`).
//!
//! # Example
//!
//! ```
//! use dram_sim::{MitigationEngine, MitigationEngineExt, Bank, PhysRow, Nanos};
//! use trr::CounterTrr;
//!
//! let mut engine = CounterTrr::a_trr1(1);
//! // Hammer one row far more than everything else…
//! engine.on_activations(Bank::new(0), PhysRow::new(100), 5_000, Nanos::ZERO);
//! // …and the 9th REF detects it.
//! let det = (0..9).flat_map(|_| engine.refresh_detections(Nanos::ZERO)).next().unwrap();
//! assert_eq!(det.aggressor, PhysRow::new(100));
//! ```

pub mod counter;
pub mod graphene;
pub mod para;
pub mod sampler;
pub mod window;

pub use counter::{CounterTrr, CounterTrrConfig};
pub use graphene::{Graphene, GrapheneConfig};
pub use para::Para;
pub use sampler::{SamplerTrr, SamplerTrrConfig};
pub use window::{WindowTrr, WindowTrrConfig};

/// Builds the ground-truth engine for a named TRR version from Table 1.
///
/// `banks` is the module's bank count and `seed` drives any pseudo-random
/// behaviour (vendor B sampling, vendor C capture positions).
///
/// # Panics
///
/// Panics if `version` is not one of the eight TRR identifiers used in
/// the paper (`A_TRR1`, `A_TRR2`, `B_TRR1`..`B_TRR3`, `C_TRR1`..`C_TRR3`).
pub fn engine_for_version(
    version: &str,
    banks: u8,
    seed: u64,
) -> Box<dyn dram_sim::MitigationEngine> {
    match version {
        "A_TRR1" => Box::new(CounterTrr::a_trr1(banks)),
        "A_TRR2" => Box::new(CounterTrr::a_trr2(banks)),
        "B_TRR1" => Box::new(SamplerTrr::b_trr1(banks, seed)),
        "B_TRR2" => Box::new(SamplerTrr::b_trr2(banks, seed)),
        "B_TRR3" => Box::new(SamplerTrr::b_trr3(banks, seed)),
        "C_TRR1" => Box::new(WindowTrr::c_trr1(banks, seed)),
        "C_TRR2" => Box::new(WindowTrr::c_trr2(banks, seed)),
        "C_TRR3" => Box::new(WindowTrr::c_trr3(banks, seed)),
        other => panic!("unknown TRR version {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_version() {
        for v in ["A_TRR1", "A_TRR2", "B_TRR1", "B_TRR2", "B_TRR3", "C_TRR1", "C_TRR2", "C_TRR3"] {
            let engine = engine_for_version(v, 8, 7);
            assert_eq!(engine.name(), v);
        }
    }

    #[test]
    #[should_panic(expected = "unknown TRR version")]
    fn factory_rejects_unknown() {
        let _ = engine_for_version("X_TRR9", 8, 7);
    }
}
