//! Deterministic scoped worker pool for embarrassingly parallel sweeps.
//!
//! The bench binaries evaluate the same U-TRR methodology independently
//! across 45 modules (Table 1) or across hammer-count grid points
//! (Fig. 8) — work that parallelises trivially *if* the parallel run
//! stays bit-identical to the sequential one. This crate provides that
//! guarantee with `std` only (the build environment has no registry
//! access, so rayon is not an option):
//!
//! - [`par_map`] / [`par_map_indexed`] fan a slice out over a scoped
//!   worker pool. Workers pull task indices from one atomic cursor, so
//!   scheduling is dynamic, but every result lands in an output slot
//!   keyed by its **input index** — the returned `Vec` is always in
//!   input order regardless of completion order.
//! - Tasks that need randomness derive their stream with
//!   [`task_seed`], which delegates to `dram_sim::rng::derive_seed`.
//!   The seed depends only on `(base_seed, task_index)`, never on the
//!   executing worker, so `--threads 8` and `--threads 1` hammer the
//!   same rows in the same order within each task.
//! - A panicking task does not poison its siblings: panics are caught
//!   per task and the first one (by input index, for determinism) is
//!   re-raised on the caller's thread after the pool drains.
//! - With a [`MetricsRegistry`] attached, the pool reports
//!   `par.tasks`, `par.queue_wait_ns` / `par.task_ns` histograms, and
//!   one `par.worker` span per worker into the standard `utrr-obs/1`
//!   artifact.
//!
//! Thread count resolution (CLI `--threads` → `UTRR_THREADS` env →
//! available parallelism) lives in [`resolve_threads`] so all six
//! bench binaries agree on the precedence.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use obs::MetricsRegistry;

/// Environment variable consulted when no `--threads` flag is given.
pub const THREADS_ENV: &str = "UTRR_THREADS";

/// Number of hardware threads, with a safe floor of 1.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolves the worker count: explicit request (e.g. `--threads N`),
/// else the `UTRR_THREADS` environment variable, else available
/// parallelism. Zero and unparsable values fall through to the next
/// source.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    requested
        .filter(|&n| n > 0)
        .or_else(|| {
            std::env::var(THREADS_ENV).ok().and_then(|v| v.trim().parse().ok()).filter(|&n| n > 0)
        })
        .unwrap_or_else(available_threads)
}

/// Derives the RNG seed for one task of a sweep.
///
/// Pure function of `(base_seed, task_index)` via the splitmix-based
/// `dram_sim::rng::derive_seed`, so results cannot depend on which
/// worker picked the task up.
pub fn task_seed(base_seed: u64, task_index: u64) -> u64 {
    dram_sim::rng::derive_seed(base_seed, task_index)
}

/// How a [`par_map`] call should run.
#[derive(Debug, Clone, Default)]
pub struct ParConfig {
    /// Worker count; `0` means "use [`available_threads`]". Always
    /// clamped to the task count so short sweeps don't spawn idle
    /// threads.
    pub threads: usize,
    /// Registry receiving pool metrics and per-worker spans.
    pub registry: Option<Arc<MetricsRegistry>>,
}

impl ParConfig {
    /// Single-threaded, unmetered — runs tasks inline on the caller.
    pub fn sequential() -> Self {
        ParConfig { threads: 1, registry: None }
    }

    /// Unmetered pool with an explicit worker count.
    pub fn with_threads(threads: usize) -> Self {
        ParConfig { threads, registry: None }
    }

    /// Pool with metrics reporting into `registry`.
    pub fn metered(threads: usize, registry: Arc<MetricsRegistry>) -> Self {
        ParConfig { threads, registry: Some(registry) }
    }

    fn effective_threads(&self, tasks: usize) -> usize {
        let requested = if self.threads == 0 { available_threads() } else { self.threads };
        requested.clamp(1, tasks.max(1))
    }
}

struct PoolMetrics {
    tasks: obs::Counter,
    queue_wait_ns: obs::Histogram,
    task_ns: obs::Histogram,
}

impl PoolMetrics {
    fn attach(registry: &MetricsRegistry) -> Self {
        PoolMetrics {
            tasks: registry.counter("par.tasks"),
            queue_wait_ns: registry.histogram("par.queue_wait_ns"),
            task_ns: registry.histogram("par.task_ns"),
        }
    }

    fn record(&self, picked_at: Instant, pool_start: Instant, done_at: Instant) {
        self.tasks.inc();
        self.queue_wait_ns.record(picked_at.duration_since(pool_start).as_nanos() as u64);
        self.task_ns.record(done_at.duration_since(picked_at).as_nanos() as u64);
    }
}

/// Maps `f` over `items` on a worker pool; results are returned in
/// input order. See [`par_map_indexed`] for the full contract.
pub fn par_map<T, R, F>(config: &ParConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(config, items, |_, item| f(item))
}

/// Maps `f(index, item)` over `items` on a scoped worker pool.
///
/// Guarantees:
/// - `out[i] == f(i, &items[i])` — output order is input order, no
///   matter which worker ran which task or in what order they
///   finished.
/// - With `threads == 1` tasks run inline on the calling thread in
///   index order, making the pool a zero-cost shim for sequential
///   baselines.
/// - If any task panics, the panic payload with the **lowest task
///   index** is re-raised after all workers drain (so the surfaced
///   failure is deterministic too).
pub fn par_map_indexed<T, R, F>(config: &ParConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = config.effective_threads(n);
    let metrics = config.registry.as_deref().map(PoolMetrics::attach);
    let pool_start = Instant::now();

    if threads == 1 {
        let span = config.registry.as_ref().map(|r| opened_worker_span(r, 0, n as u64));
        let out = items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let picked = Instant::now();
                let result = f(i, item);
                if let Some(m) = &metrics {
                    m.record(picked, pool_start, Instant::now());
                }
                result
            })
            .collect();
        drop(span);
        return out;
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<std::thread::Result<R>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let f = &f;
            let cursor = &cursor;
            let slots = &slots;
            let metrics = metrics.as_ref();
            let registry = config.registry.clone();
            scope.spawn(move || {
                let mut executed = 0u64;
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    let picked = Instant::now();
                    let result = catch_unwind(AssertUnwindSafe(|| f(index, &items[index])));
                    if let Some(m) = metrics {
                        m.record(picked, pool_start, Instant::now());
                    }
                    *slots[index].lock().expect("result slot poisoned") = Some(result);
                    executed += 1;
                }
                if let Some(registry) = &registry {
                    opened_worker_span(registry, worker as u64, executed);
                }
            });
        }
    });

    let mut out = Vec::with_capacity(n);
    let mut first_panic: Option<Box<dyn Any + Send>> = None;
    for slot in slots {
        let result = slot
            .into_inner()
            .expect("result slot poisoned")
            .expect("scoped worker exited without filling its slot");
        match result {
            Ok(value) => out.push(value),
            Err(payload) => {
                first_panic.get_or_insert(payload);
            }
        }
    }
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
    out
}

/// Maps `f(index, seed, item)` with a per-task seed derived from
/// `base_seed` — the common shape for randomised sweeps.
pub fn par_map_seeded<T, R, F>(config: &ParConfig, base_seed: u64, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, u64, &T) -> R + Sync,
{
    par_map_indexed(config, items, |i, item| f(i, task_seed(base_seed, i as u64), item))
}

fn opened_worker_span(registry: &Arc<MetricsRegistry>, worker: u64, tasks: u64) -> obs::SpanGuard {
    let mut guard = MetricsRegistry::span(registry, "par.worker", 0);
    guard.set_field("worker", worker);
    guard.set_field("tasks", tasks);
    guard
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_input_order_for_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(3) ^ 17).collect();
        for threads in [1, 2, 3, 8, 64] {
            let cfg = ParConfig::with_threads(threads);
            let got = par_map(&cfg, &items, |&x| x.wrapping_mul(3) ^ 17);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn indexed_variant_sees_the_input_index() {
        let items = ["a", "b", "c", "d"];
        let cfg = ParConfig::with_threads(2);
        let got = par_map_indexed(&cfg, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let cfg = ParConfig::with_threads(0);
        let got = par_map(&cfg, &[1u64, 2, 3], |&x| x + 1);
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let cfg = ParConfig::with_threads(4);
        let got: Vec<u64> = par_map(&cfg, &[] as &[u64], |&x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<usize> = (0..100).collect();
        let cfg = ParConfig::with_threads(7);
        let _ = par_map(&cfg, &items, |_| counter.fetch_add(1, Ordering::Relaxed));
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn panic_with_lowest_index_is_propagated() {
        let items: Vec<usize> = (0..64).collect();
        let cfg = ParConfig::with_threads(8);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_map_indexed(&cfg, &items, |i, _| {
                if i == 9 || i == 40 {
                    panic!("task {i} failed");
                }
                i
            })
        }));
        let payload = caught.expect_err("pool must re-raise the task panic");
        let message = payload.downcast_ref::<String>().expect("panic payload is the format string");
        assert_eq!(message, "task 9 failed");
    }

    #[test]
    fn seeded_map_is_independent_of_thread_count() {
        let items: Vec<u32> = (0..40).collect();
        let run = |threads| {
            par_map_seeded(&ParConfig::with_threads(threads), 0xDEAD_BEEF, &items, |i, seed, &x| {
                (i, seed, x)
            })
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn task_seeds_do_not_collide_over_a_large_index_range() {
        let mut seen = HashSet::new();
        for index in 0..10_000u64 {
            assert!(seen.insert(task_seed(42, index)), "seed collision at index {index}");
        }
    }

    #[test]
    fn metrics_report_tasks_and_latencies() {
        let registry = MetricsRegistry::shared();
        let cfg = ParConfig::metered(4, Arc::clone(&registry));
        let items: Vec<u64> = (0..32).collect();
        let _ = par_map(&cfg, &items, |&x| x * 2);
        let counters = registry.counters_snapshot();
        let tasks = counters.iter().find(|(name, _)| name == "par.tasks").map(|(_, v)| *v);
        assert_eq!(tasks, Some(32));
        let histograms = registry.histograms_snapshot();
        let task_ns =
            histograms.iter().find(|(name, _)| name == "par.task_ns").map(|(_, snap)| snap.count);
        assert_eq!(task_ns, Some(32));
        let (spans, _) = registry.spans_snapshot();
        assert!(spans.iter().any(|s| s.name == "par.worker"), "worker spans must be recorded");
    }

    #[test]
    fn resolve_threads_prefers_explicit_request() {
        assert_eq!(resolve_threads(Some(6)), 6);
        assert!(resolve_threads(None) >= 1);
        assert!(resolve_threads(Some(0)) >= 1);
    }
}
