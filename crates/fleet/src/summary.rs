//! Fleet-report aggregation: turns a `utrr-fleet/1` stream back into a
//! Table-1-style population view.
//!
//! Per TRR variant the summary tracks the population share, the
//! reverse-engineering match rate, and a log₂-binned histogram of the
//! *measured* `HC_first`; variant histograms are merged via
//! [`HistogramSnapshot::merge`] into the fleet-wide distribution, so
//! quantiles come from one pass over the stream regardless of how many
//! shards produced it. Recovery counters (scout retries, quarantined
//! rows, injected faults) are totalled fleet-wide and the noisiest
//! modules are called out, making `--faults mild` sweeps auditable from
//! the report alone.

use obs::jsonl::parse_jsonl;
use obs::metrics::{Histogram, HistogramSnapshot};

use crate::record::FleetRecord;

/// Aggregate over one TRR variant's sub-population.
#[derive(Debug, Clone)]
pub struct VariantStats {
    /// Ground-truth TRR version (e.g. `B_TRR1`).
    pub trr_version: String,
    /// Modules carrying this variant.
    pub count: u64,
    /// Modules whose full reverse-engineered profile matched the
    /// planted ground truth.
    pub re_matches: u64,
    /// Distribution of measured `HC_first` across the sub-population.
    pub hc_measured: HistogramSnapshot,
    /// Sum of the vulnerable-row percentages (for the mean).
    pub vulnerable_pct_sum: f64,
}

/// Aggregate over one whole fleet stream.
#[derive(Debug, Clone)]
pub struct FleetSummary {
    /// Modules summarised.
    pub modules: u64,
    /// Modules with a fully matching reverse-engineered profile.
    pub re_matches: u64,
    /// Per-variant stats, sorted by TRR version.
    pub variants: Vec<VariantStats>,
    /// Fleet-wide measured `HC_first` distribution (variant merge).
    pub hc_measured: HistogramSnapshot,
    /// Total Row Scout validation retries across the fleet.
    pub scout_retries: u64,
    /// Total rows quarantined by the Row Scout.
    pub scout_quarantined: u64,
    /// Total faults injected across every module pipeline.
    pub faults_injected: u64,
    /// Total reverse-engineering retries (extra experiment seeds).
    pub re_retries: u64,
    /// Total majority-voted read disagreements.
    pub read_disagreements: u64,
    /// The modules with the most recovery activity
    /// (retries + quarantines), up to five, noisiest first.
    pub noisiest: Vec<(String, u64)>,
    /// Modules whose verdict is `confirmed`.
    pub tier_confirmed: u64,
    /// Modules whose verdict is `degraded`.
    pub tier_degraded: u64,
    /// Modules whose verdict is `inconclusive`.
    pub tier_inconclusive: u64,
    /// Degradation reasons tallied fleet-wide, sorted by reason.
    pub degraded_reasons: Vec<(String, u64)>,
    /// Recovery-ladder totals: vote widenings, relocations,
    /// re-profiles, budget trips.
    pub ladder: [u64; 4],
}

impl FleetSummary {
    /// Aggregates in-memory records.
    pub fn from_records(records: &[FleetRecord]) -> FleetSummary {
        let mut variants: Vec<(String, u64, u64, Histogram, f64)> = Vec::new();
        let mut recovery: Vec<(String, u64)> = Vec::new();
        let mut summary = FleetSummary {
            modules: records.len() as u64,
            re_matches: 0,
            variants: Vec::new(),
            hc_measured: HistogramSnapshot::default(),
            scout_retries: 0,
            scout_quarantined: 0,
            faults_injected: 0,
            re_retries: 0,
            read_disagreements: 0,
            noisiest: Vec::new(),
            tier_confirmed: 0,
            tier_degraded: 0,
            tier_inconclusive: 0,
            degraded_reasons: Vec::new(),
            ladder: [0; 4],
        };
        let mut reasons: Vec<(String, u64)> = Vec::new();
        for r in records {
            summary.re_matches += u64::from(r.re_match);
            summary.re_retries += u64::from(r.re_attempts.saturating_sub(1));
            summary.scout_retries += r.scout_retries;
            summary.scout_quarantined += r.scout_quarantined;
            summary.faults_injected += r.faults_injected;
            summary.read_disagreements += r.read_disagreements;
            let slot = match variants.iter().position(|(v, ..)| *v == r.trr_version) {
                Some(i) => &mut variants[i],
                None => {
                    variants.push((r.trr_version.clone(), 0, 0, Histogram::default(), 0.0));
                    variants.last_mut().expect("just pushed")
                }
            };
            slot.1 += 1;
            slot.2 += u64::from(r.re_match);
            slot.3.record(r.hc_first_measured);
            slot.4 += r.vulnerable_pct;
            let noise = r.scout_retries + r.scout_quarantined;
            if noise > 0 {
                recovery.push((r.id.clone(), noise));
            }
            match r.tier.as_str() {
                "degraded" => {
                    summary.tier_degraded += 1;
                    for reason in r.tier_reasons.split('+').filter(|s| !s.is_empty()) {
                        match reasons.iter_mut().find(|(name, _)| name == reason) {
                            Some((_, n)) => *n += 1,
                            None => reasons.push((reason.to_string(), 1)),
                        }
                    }
                }
                "inconclusive" => summary.tier_inconclusive += 1,
                // Pre-tier records read as confirmed.
                _ => summary.tier_confirmed += 1,
            }
            summary.ladder[0] += r.vote_widenings;
            summary.ladder[1] += r.relocations;
            summary.ladder[2] += r.reprofiles;
            summary.ladder[3] += r.budget_trips;
        }
        reasons.sort_by(|a, b| a.0.cmp(&b.0));
        summary.degraded_reasons = reasons;
        variants.sort_by(|a, b| a.0.cmp(&b.0));
        for (trr_version, count, re_matches, hist, vulnerable_pct_sum) in variants {
            let hc_measured = hist.snapshot();
            summary.hc_measured = summary.hc_measured.merge(&hc_measured);
            summary.variants.push(VariantStats {
                trr_version,
                count,
                re_matches,
                hc_measured,
                vulnerable_pct_sum,
            });
        }
        recovery.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        recovery.truncate(5);
        summary.noisiest = recovery;
        summary
    }

    /// Aggregates a `utrr-fleet/1` JSONL stream (the meta line and any
    /// unparsable records are skipped; their count is reported).
    ///
    /// # Errors
    ///
    /// Returns an error when the text is not parsable JSONL at all.
    pub fn from_jsonl(text: &str) -> Result<(FleetSummary, u64), String> {
        let values = parse_jsonl(text).map_err(|e| format!("fleet stream unparsable: {e}"))?;
        let mut records = Vec::new();
        let mut skipped = 0u64;
        for value in &values {
            match FleetRecord::from_json(value) {
                Some(record) => records.push(record),
                // The meta line lands here by design.
                None => skipped += 1,
            }
        }
        Ok((FleetSummary::from_records(&records), skipped))
    }

    /// Renders the Table-1-style fleet report (deterministic text).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fleet summary: {} modules, RE match {}/{} ({:.1}%)\n\n",
            self.modules,
            self.re_matches,
            self.modules,
            pct(self.re_matches, self.modules)
        ));
        out.push_str(
            "TRR variant    modules   share    RE match   HC_first p10/p50/p90      vuln%\n",
        );
        for v in &self.variants {
            let q = |p: f64| v.hc_measured.quantile(p).unwrap_or(0);
            out.push_str(&format!(
                "{:<14} {:>7}  {:>5.1}%   {:>7.1}%   {:>6}/{:>6}/{:>6}   {:>7.2}\n",
                v.trr_version,
                v.count,
                pct(v.count, self.modules),
                pct(v.re_matches, v.count),
                q(0.10),
                q(0.50),
                q(0.90),
                if v.count == 0 { 0.0 } else { v.vulnerable_pct_sum / v.count as f64 },
            ));
        }
        let q = |p: f64| self.hc_measured.quantile(p).unwrap_or(0);
        out.push_str(&format!(
            "\nfleet HC_first: min {} / p50 {} / p90 {} / max {}\n",
            self.hc_measured.quantile(0.0).unwrap_or(0),
            q(0.50),
            q(0.90),
            self.hc_measured.quantile(1.0).unwrap_or(0),
        ));
        out.push_str(&format!(
            "recovery: {} scout retries, {} quarantined rows, {} injected faults, \
             {} read disagreements, {} RE retries\n",
            self.scout_retries,
            self.scout_quarantined,
            self.faults_injected,
            self.read_disagreements,
            self.re_retries
        ));
        // Tier shares and ladder totals only appear once a run produced
        // something non-default, so `none`/`mild` reports are unchanged.
        if self.tier_degraded > 0 || self.tier_inconclusive > 0 {
            out.push_str(&format!(
                "verdict tiers: {} confirmed ({:.1}%), {} degraded ({:.1}%), \
                 {} inconclusive ({:.1}%)\n",
                self.tier_confirmed,
                pct(self.tier_confirmed, self.modules),
                self.tier_degraded,
                pct(self.tier_degraded, self.modules),
                self.tier_inconclusive,
                pct(self.tier_inconclusive, self.modules),
            ));
            if !self.degraded_reasons.is_empty() {
                out.push_str("degraded reasons:");
                for (reason, n) in &self.degraded_reasons {
                    out.push_str(&format!(" {reason}={n}"));
                }
                out.push('\n');
            }
        }
        if self.ladder.iter().any(|&n| n > 0) {
            out.push_str(&format!(
                "recovery ladder: {} vote widenings, {} relocations, {} re-profiles, \
                 {} budget trips\n",
                self.ladder[0], self.ladder[1], self.ladder[2], self.ladder[3],
            ));
        }
        if !self.noisiest.is_empty() {
            out.push_str("noisiest modules (retries+quarantines):");
            for (id, noise) in &self.noisiest {
                out.push_str(&format!(" {id}={noise}"));
            }
            out.push('\n');
        }
        out
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: u64, trr: &str, hc: u64, re_match: bool, retries: u64) -> FleetRecord {
        FleetRecord {
            index: i,
            id: format!("S{i:06}"),
            anchor: "A1".into(),
            vendor: "A".into(),
            trr_version: trr.into(),
            banks: 16,
            rows: 2048,
            seed: i,
            retention_scale: 1.0,
            hc_first_gt: hc,
            re_match,
            re_attempts: 1,
            ratio: 2,
            neighbors: 2,
            detection: "Counter(16)".into(),
            per_bank: true,
            refresh_period: 8192,
            hc_first_measured: hc,
            vulnerable_pct: 50.0,
            max_flips_per_hammer: 1.0,
            max_flips_per_word: 1,
            scout_retries: retries,
            scout_quarantined: 0,
            faults_injected: retries * 3,
            reads_voted: 100,
            read_disagreements: retries,
            write_retries: 0,
            tier: "confirmed".into(),
            tier_reasons: String::new(),
            vote_widenings: 0,
            relocations: 0,
            reprofiles: 0,
            budget_trips: 0,
        }
    }

    #[test]
    fn aggregates_variants_and_merges_histograms() {
        let records = vec![
            record(0, "A_TRR1", 10_000, true, 0),
            record(1, "A_TRR1", 30_000, true, 2),
            record(2, "B_TRR2", 20_000, false, 5),
        ];
        let summary = FleetSummary::from_records(&records);
        assert_eq!(summary.modules, 3);
        assert_eq!(summary.re_matches, 2);
        assert_eq!(summary.variants.len(), 2);
        assert_eq!(summary.variants[0].trr_version, "A_TRR1");
        assert_eq!(summary.variants[0].count, 2);
        // The fleet-wide histogram is the merge of the variant ones.
        assert_eq!(summary.hc_measured.count, 3);
        assert_eq!(summary.hc_measured.quantile(0.0), Some(10_000));
        assert_eq!(summary.hc_measured.quantile(1.0), Some(30_000));
        assert_eq!(summary.scout_retries, 7);
        assert_eq!(summary.faults_injected, 21);
        // Noisiest first, ids for ties.
        assert_eq!(summary.noisiest, vec![("S000002".into(), 5), ("S000001".into(), 2)]);
        let report = summary.render();
        assert!(report.contains("3 modules"), "{report}");
        assert!(report.contains("A_TRR1"), "{report}");
        assert!(report.contains("recovery: 7 scout retries"), "{report}");
    }

    #[test]
    fn all_confirmed_reports_omit_tier_and_ladder_lines() {
        // The mild/none byte-identity contract: a fleet with only
        // confirmed verdicts and a quiet ladder renders exactly the
        // pre-tier report.
        let summary = FleetSummary::from_records(&[record(0, "A_TRR1", 10_000, true, 0)]);
        assert_eq!(summary.tier_confirmed, 1);
        let report = summary.render();
        assert!(!report.contains("verdict tiers"), "{report}");
        assert!(!report.contains("recovery ladder"), "{report}");
    }

    #[test]
    fn hostile_tiers_and_ladder_totals_are_reported() {
        let mut degraded = record(1, "A_TRR1", 12_000, true, 1);
        degraded.tier = "degraded".into();
        degraded.tier_reasons = "scout-shortfall+act-budget".into();
        degraded.vote_widenings = 2;
        degraded.budget_trips = 1;
        let mut inconclusive = record(2, "B_TRR2", 14_000, false, 3);
        inconclusive.tier = "inconclusive".into();
        inconclusive.relocations = 3;
        inconclusive.reprofiles = 1;
        let summary = FleetSummary::from_records(&[
            record(0, "A_TRR1", 10_000, true, 0),
            degraded,
            inconclusive,
        ]);
        assert_eq!(
            (summary.tier_confirmed, summary.tier_degraded, summary.tier_inconclusive),
            (1, 1, 1)
        );
        assert_eq!(
            summary.degraded_reasons,
            vec![("act-budget".to_string(), 1), ("scout-shortfall".to_string(), 1)]
        );
        assert_eq!(summary.ladder, [2, 3, 1, 1]);
        let report = summary.render();
        assert!(report.contains("verdict tiers: 1 confirmed (33.3%), 1 degraded"), "{report}");
        assert!(report.contains("degraded reasons: act-budget=1 scout-shortfall=1"), "{report}");
        assert!(report.contains("recovery ladder: 2 vote widenings, 3 relocations"), "{report}");
    }

    #[test]
    fn jsonl_round_trip_skips_the_meta_line() {
        let records = [record(0, "A_TRR1", 10_000, true, 0)];
        let text = format!(
            "{{\"schema\":\"utrr-fleet/1\",\"modules\":1}}\n{}\n",
            records[0].to_json_line()
        );
        let (summary, skipped) = FleetSummary::from_jsonl(&text).expect("parses");
        assert_eq!(summary.modules, 1);
        assert_eq!(skipped, 1);
    }
}
