//! Fleet-scale sweep service: sharded, checkpoint/resume
//! characterisation of thousands of synthetic DRAM modules.
//!
//! The paper demonstrates the U-TRR methodology on the 45 Table-1
//! modules, swept in one process. This crate turns that loop into a
//! *service* over an unbounded module population:
//!
//! - [`gen`] synthesises modules around the Table-1 anchors: per-module
//!   geometry, retention spread, HC calibration, and TRR engine seeds
//!   are all derived from `(fleet_seed, module_index)` via SplitMix64,
//!   so module *i* is identical no matter how the population is
//!   sharded or how many worker threads run the sweep.
//! - [`executor`] partitions the population into shards, runs the full
//!   Row Scout → TRR Analyzer → verdict pipeline per module on a
//!   `par` worker pool, streams each shard's records to disk as JSONL
//!   in one buffered write, and checkpoints completed shards in a
//!   content-hashed manifest. A killed run resumes by skipping every
//!   shard whose file still matches its manifest hash, and the merged
//!   `fleet.jsonl` (schema `utrr-fleet/1`) is byte-identical to an
//!   uninterrupted run.
//! - [`record`] defines the per-module JSONL record: the generated
//!   parameters, the reverse-engineering verdict against the planted
//!   ground truth, the measured `HC_first`, the §7.1 attack columns,
//!   and the per-module recovery counters (scout retries/quarantines,
//!   injected faults) that make `--faults mild` runs auditable.
//! - [`summary`] aggregates a fleet stream into a Table-1-style report:
//!   TRR-variant population shares, `HC_first` distribution quantiles
//!   via `obs` histogram merges, and fleet-wide recovery behaviour.
//!
//! The `repro-fleet` binary drives all of it from the command line.

pub mod executor;
pub mod gen;
pub mod record;
pub mod summary;

pub use executor::{FleetConfig, RunOptions, RunOutcome};
pub use gen::{synth_spec, SynthModule};
pub use record::FleetRecord;
pub use summary::FleetSummary;

/// Schema tag of the merged fleet artifact's meta line.
pub const FLEET_SCHEMA: &str = "utrr-fleet/1";
/// Schema tag of the checkpoint manifest's meta line.
pub const MANIFEST_SCHEMA: &str = "utrr-fleet-manifest/1";

/// FNV-1a 64-bit content hash, rendered as 16 lowercase hex digits.
/// Stable across platforms and releases — manifest hashes written by one
/// build must verify under another.
pub fn content_hash(bytes: &[u8]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_is_stable_and_sensitive() {
        // Pinned value: a changed constant would silently invalidate
        // every committed manifest.
        assert_eq!(content_hash(b""), "cbf29ce484222325");
        assert_eq!(content_hash(b"utrr"), content_hash(b"utrr"));
        assert_ne!(content_hash(b"utrr"), content_hash(b"utrs"));
        assert_eq!(content_hash(b"x").len(), 16);
    }
}
