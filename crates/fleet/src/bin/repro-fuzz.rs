//! Deterministic TRR-bypass fuzzer driver: searches the frequency-domain
//! pattern space against ground-truth TRR engines and reports the best
//! bypass candidate per engine.
//!
//! Usage:
//!   repro-fuzz [--seed S] [--rounds R] [--candidates N] [--elites E]
//!              [--engines A_TRR1,B_TRR1,...] [--rows N] [--samples N]
//!              [--windows N] [--threads N] [--out FILE.jsonl]
//!              [--fleet N] [--fleet-seed S]
//!              [--faults none|mild|hostile] [--fault-seed N]
//!              [--metrics-out PATH] [--bench-out PATH]
//!              [--trace-out PATH] [--trace-chrome PATH]
//!
//! Every candidate is a pure function of `(seed, round, slot)`, so
//! stdout and the `--out` artifact (schema `utrr-fuzz/1`) are
//! byte-identical at any `--threads N` — wall-clock timing goes to
//! stderr only. The `bypass: engine <V>` leader lines are the CI
//! fuzz-smoke contract: a known-weak engine must keep producing one.
//!
//! `--fleet N` re-scores each engine's leader pattern across `N`
//! synthetic modules (the `repro-fleet` population generator), checking
//! that a bypass found against the catalog representative generalises
//! across per-die variation.

use attacks::eval::{sweep_bank, EvalConfig};
use attacks::fuzz::{render_fuzz_jsonl, run_fuzz, FuzzConfig, FuzzPattern};
use attacks::AttackBuilder;
use utrr_bench::{
    arg_value, emit_metrics, emit_trace, fault_args, install_trace, metrics_out_path, par_config,
    run_registry, threads_arg, trace_args, BenchPhases,
};
use utrr_fleet::synth_spec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = arg_value(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(1);
    let rounds: u32 = arg_value(&args, "--rounds").and_then(|v| v.parse().ok()).unwrap_or(3);
    let candidates: u32 =
        arg_value(&args, "--candidates").and_then(|v| v.parse().ok()).unwrap_or(24);
    let elites: u32 = arg_value(&args, "--elites").and_then(|v| v.parse().ok()).unwrap_or(4);
    let engines: Vec<String> = arg_value(&args, "--engines")
        .unwrap_or_else(|| "A_TRR1,B_TRR1,C_TRR1".into())
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    let rows: u32 = arg_value(&args, "--rows").and_then(|v| v.parse().ok()).unwrap_or(1_024);
    let samples: u32 = arg_value(&args, "--samples").and_then(|v| v.parse().ok()).unwrap_or(6);
    let windows: u32 = arg_value(&args, "--windows").and_then(|v| v.parse().ok()).unwrap_or(1);
    let out_path = arg_value(&args, "--out").map(std::path::PathBuf::from);
    let fleet: u64 = arg_value(&args, "--fleet").and_then(|v| v.parse().ok()).unwrap_or(0);
    let fleet_seed: u64 =
        arg_value(&args, "--fleet-seed").and_then(|v| v.parse().ok()).unwrap_or(1);
    let (fault_profile, fault_seed) = fault_args(&args);
    let metrics_path = metrics_out_path(&args);
    let bench_path = arg_value(&args, "--bench-out").map(std::path::PathBuf::from);
    let trace = trace_args(&args);
    let threads = threads_arg(&args);
    let registry = run_registry();
    install_trace(&registry, &trace);
    let pool = par_config(threads, &registry);
    let mut bench = BenchPhases::new(threads);

    let config = FuzzConfig {
        seed,
        rounds,
        candidates,
        elites,
        engines,
        eval: EvalConfig {
            sample_count: samples,
            windows,
            scaled_rows: Some(rows),
            registry: Some(std::sync::Arc::clone(&registry)),
            fault_profile,
            fault_seed,
            ..EvalConfig::quick(samples)
        },
    };

    println!(
        "# TRR-bypass fuzz — seed {seed}, {rounds} rounds x {candidates} candidates, \
         {} elites, engines [{}]",
        config.elites,
        config.engines.join(","),
    );
    println!(
        "# eval: {rows} rows/bank, {samples} positions, {windows} windows, faults {fault_profile}"
    );

    let start = std::time::Instant::now();
    let outcome = bench.time("fuzz_sweep", || {
        run_fuzz(&config, &pool).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    });
    let elapsed = start.elapsed();
    let evaluated = outcome.candidates.len();
    eprintln!("fuzzed {evaluated} candidates in {:.2}s", elapsed.as_secs_f64());
    bench.scalar("fuzz_candidates_per_sec", evaluated as f64 / elapsed.as_secs_f64().max(1e-9));

    println!();
    println!("leaderboard ({} candidates evaluated):", evaluated);
    for (e, engine) in outcome.engines.iter().enumerate() {
        match outcome.leaders.get(e) {
            Some(leader) if leader.scores[e].flips > 0 => {
                let s = leader.scores[e];
                println!(
                    "bypass: engine {engine} ({}) — {} flips, {}/{} positions \
                     [round {} candidate {}] {}",
                    outcome.specs[e],
                    s.flips,
                    s.vulnerable,
                    config.eval.sample_count,
                    leader.round,
                    leader.index,
                    leader.params.describe(),
                );
            }
            _ => println!("engine {engine} ({}): no bypass found", outcome.specs[e]),
        }
    }

    if fleet > 0 {
        println!();
        println!("fleet generalisation — {fleet} synthetic modules, fleet seed {fleet_seed}:");
        bench.time("fuzz_fleet_score", || {
            for (e, engine) in outcome.engines.iter().enumerate() {
                let Some(leader) = outcome.leaders.get(e).filter(|l| l.scores[e].flips > 0) else {
                    println!("  engine {engine}: no leader to score");
                    continue;
                };
                let params = leader.params;
                let eval = config.eval.clone();
                let indices: Vec<u64> = (0..fleet).collect();
                let flips: Vec<u64> = par::par_map(&pool, &indices, |&i| {
                    let synth = synth_spec(fleet_seed, i, rows.max(2_048));
                    let attack = AttackBuilder::from_attack(FuzzPattern { params }).build();
                    let sweep = sweep_bank(&synth.spec, &attack, &eval);
                    sweep.results.iter().map(|r| u64::from(r.flips)).sum()
                });
                let bypassed = flips.iter().filter(|&&f| f > 0).count();
                let total: u64 = flips.iter().sum();
                println!(
                    "  engine {engine}: leader bypasses {bypassed}/{fleet} modules \
                     ({total} flips total)"
                );
            }
        });
    }

    if let Some(path) = &out_path {
        let artifact = render_fuzz_jsonl(&config, &outcome);
        match std::fs::write(path, &artifact) {
            Ok(()) => eprintln!("fuzz artifact: {}", path.display()),
            Err(e) => {
                eprintln!("error: writing {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &bench_path {
        match bench.write(path) {
            Ok(()) => eprintln!("bench artifact: {}", path.display()),
            Err(e) => {
                eprintln!("error: writing {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = emit_trace(&registry, &trace) {
        eprintln!("error: writing trace artifact: {e}");
        std::process::exit(1);
    }
    if let Err(e) = emit_metrics(&registry, metrics_path.as_deref()) {
        eprintln!("error: writing metrics artifact: {e}");
        std::process::exit(1);
    }
}
