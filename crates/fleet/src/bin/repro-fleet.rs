//! Fleet-scale sweep driver: characterises a population of synthetic
//! modules with the full U-TRR pipeline, sharded and resumable.
//!
//! Usage:
//!   repro-fleet [--modules N] [--shards K] [--seed S] [--rows N]
//!               [--hc-samples N] [--samples N] [--threads N]
//!               [--out DIR] [--resume] [--stop-after-shards N]
//!               [--faults none|mild|hostile] [--fault-seed N]
//!               [--metrics-out PATH] [--bench-out PATH]
//!   repro-fleet summarise FILE.jsonl
//!
//! The sweep writes `DIR/shards/shard-NNNNN.jsonl` incrementally, a
//! checkpoint line to `DIR/manifest.jsonl` after every shard, and the
//! merged `DIR/fleet.jsonl` (schema `utrr-fleet/1`) once all shards
//! exist. A killed run continues with `--resume` against the same
//! `--out` directory; the merged output is byte-identical to an
//! uninterrupted run for any thread count. `--stop-after-shards N` is
//! the deterministic kill switch the resume tests and CI use.
//!
//! `summarise` aggregates a merged stream into the Table-1-style fleet
//! report (population shares, `HC_first` quantiles, recovery totals).

use faults::FaultProfile;
use utrr_bench::{
    arg_flag, arg_value, emit_metrics, fault_args, metrics_out_path, par_config, run_registry,
    threads_arg, BenchPhases,
};
use utrr_fleet::record::SweepParams;
use utrr_fleet::{FleetConfig, FleetSummary, RunOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("summarise") {
        summarise(&args);
        return;
    }

    let modules: u64 = arg_value(&args, "--modules").and_then(|v| v.parse().ok()).unwrap_or(64);
    let shards: u32 = arg_value(&args, "--shards").and_then(|v| v.parse().ok()).unwrap_or(8);
    let seed: u64 = arg_value(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(1);
    let rows: u32 = arg_value(&args, "--rows").and_then(|v| v.parse().ok()).unwrap_or(2_048);
    // The reverse-engineering suite needs room for its pair groups on
    // every anchor; below 2048 scaled rows the Row Scout can run dry.
    let rows = if rows < 2_048 {
        eprintln!("note: --rows {rows} is too small for the fleet pipeline; using 2048");
        2_048
    } else {
        rows
    };
    let hc_samples: u32 =
        arg_value(&args, "--hc-samples").and_then(|v| v.parse().ok()).unwrap_or(6);
    let attack_samples: u32 =
        arg_value(&args, "--samples").and_then(|v| v.parse().ok()).unwrap_or(6);
    let out_dir = arg_value(&args, "--out").unwrap_or_else(|| "fleet-out".into());
    let resume = arg_flag(&args, "--resume");
    let stop_after_shards = arg_value(&args, "--stop-after-shards").and_then(|v| v.parse().ok());
    let (fault_profile, fault_seed) = fault_args(&args);
    let metrics_path = metrics_out_path(&args);
    let bench_path = arg_value(&args, "--bench-out").map(std::path::PathBuf::from);
    let threads = threads_arg(&args);
    let registry = run_registry();
    let mut bench = BenchPhases::new(threads);

    let config = FleetConfig {
        modules,
        shards,
        params: SweepParams {
            fleet_seed: seed,
            base_rows: rows,
            hc_samples,
            attack_samples,
            fault_profile,
            fault_seed,
        },
    };
    let opts = RunOptions {
        out_dir: out_dir.clone().into(),
        resume,
        stop_after_shards,
        pool: par_config(threads, &registry),
        registry: Some(std::sync::Arc::clone(&registry)),
        progress: true,
    };

    println!(
        "# fleet sweep — {modules} modules, {} shards, seed {seed}, {rows} rows/bank, \
         {threads} threads",
        config.effective_shards()
    );
    if fault_profile != FaultProfile::None {
        println!("# fault injection: {fault_profile} profile, seed {fault_seed}");
    }

    let start = std::time::Instant::now();
    let outcome = bench.time("fleet_sweep", || run_fleet_or_exit(&config, &opts));
    let elapsed = start.elapsed();

    let swept: u64 = outcome.shards.iter().filter(|s| !s.skipped).map(|s| s.end - s.start).sum();
    if outcome.skipped_shards > 0 {
        println!("resume: skipped {} completed shards", outcome.skipped_shards);
    }
    println!(
        "swept {swept} modules across {} shards in {:.2}s",
        outcome.completed_shards,
        elapsed.as_secs_f64()
    );
    if swept > 0 {
        bench.scalar("fleet_modules_per_sec", swept as f64 / elapsed.as_secs_f64().max(1e-9));
    }

    if outcome.stopped_early {
        println!(
            "stopped early after {} shards; rerun with --resume to finish",
            outcome.completed_shards
        );
    } else if let (Some(path), Some(hash)) = (&outcome.merged_path, &outcome.merged_hash) {
        println!("merged: {} ({} records, hash {hash})", path.display(), outcome.records);
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| FleetSummary::from_jsonl(&text).map(|(summary, _)| summary))
        {
            Ok(summary) => {
                println!();
                print!("{}", summary.render());
            }
            Err(e) => eprintln!("warning: could not summarise merged stream: {e}"),
        }
    }

    if let Some(path) = &bench_path {
        match bench.write(path) {
            Ok(()) => eprintln!("bench artifact: {}", path.display()),
            Err(e) => {
                eprintln!("error: writing {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = emit_metrics(&registry, metrics_path.as_deref()) {
        eprintln!("error: writing metrics artifact: {e}");
        std::process::exit(1);
    }
}

fn run_fleet_or_exit(config: &FleetConfig, opts: &RunOptions) -> utrr_fleet::RunOutcome {
    utrr_fleet::executor::run_fleet(config, opts).unwrap_or_else(|e| {
        eprintln!("error: fleet sweep failed: {e}");
        std::process::exit(1);
    })
}

fn summarise(args: &[String]) {
    let Some(path) = args.get(1) else {
        eprintln!("usage: repro-fleet summarise FILE.jsonl");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: reading {path}: {e}");
        std::process::exit(1);
    });
    match FleetSummary::from_jsonl(&text) {
        Ok((summary, skipped)) => {
            print!("{}", summary.render());
            // One meta line is expected; anything beyond that is
            // malformed records worth knowing about.
            if skipped > 1 {
                eprintln!("note: skipped {} unparsable lines", skipped - 1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
