//! The per-module fleet record: one JSONL line per characterised
//! module, schema `utrr-fleet/1`.
//!
//! [`characterize`] runs the full per-module pipeline — synthesise the
//! spec, reverse engineer the TRR mechanism (Row Scout → TRR Analyzer →
//! verdict), measure `HC_first`, run the vendor's §7.1 custom-pattern
//! sweep — against a private metrics registry, then folds the
//! registry's recovery counters (scout retries/quarantines, injected
//! faults, voted reads) into the record so fleet runs under `--faults
//! mild` expose per-module recovery behaviour.
//!
//! Records are rendered with a fixed key order and fixed float
//! precision, so a record is a pure function of the sweep parameters
//! and the module index — the property the executor's byte-identical
//! resume contract is built on.

use attacks::eval::EvalConfig;
use dram_sim::rng::derive_seed;
use faults::FaultProfile;
use obs::jsonl::JsonValue;
use obs::MetricsRegistry;
use utrr_bench::{
    attack_columns, detection_label, measure_hc_first_faulty, try_reverse_engineer_module_faulty,
};
use utrr_core::recovery::VerdictTier;

use crate::gen::synth_spec;

/// Counter: reverse-engineering retries across a fleet run (one per
/// extra experiment seed a module needed).
pub const CTR_RE_RETRIES: &str = "utrr.fleet.re_retries";

/// Everything the per-module pipeline depends on. Two runs with equal
/// parameters produce byte-identical records for every index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepParams {
    /// Fleet seed every module stream derives from.
    pub fleet_seed: u64,
    /// Base scaled rows per bank (the generator adds its geometry step).
    pub base_rows: u32,
    /// Victim samples for the `HC_first` measurement.
    pub hc_samples: u32,
    /// Victim samples for the attack-column sweep.
    pub attack_samples: u32,
    /// Fault profile installed into every controller of the pipeline.
    pub fault_profile: FaultProfile,
    /// Base fault seed (per-module plans derive from it).
    pub fault_seed: u64,
}

/// One characterised module, as serialised into the fleet stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRecord {
    /// Position in the fleet population.
    pub index: u64,
    /// Synthetic module id (`S000042`).
    pub id: String,
    /// Table-1 anchor the module was perturbed from.
    pub anchor: String,
    /// Vendor letter.
    pub vendor: String,
    /// Ground-truth TRR version.
    pub trr_version: String,
    /// Banks per rank.
    pub banks: u8,
    /// Scaled rows per bank the module was built at.
    pub rows: u32,
    /// Per-module seed (hex, for reproduction).
    pub seed: u64,
    /// Retention-window multiplier the generator drew.
    pub retention_scale: f64,
    /// Planted `HC_first`.
    pub hc_first_gt: u64,
    /// Whether every reverse-engineered column matched the ground truth.
    pub re_match: bool,
    /// Reverse-engineering attempts used (1 = first experiment seed
    /// worked; a retry means the scout or a learner failed to converge
    /// on the previous seed and the suite re-ran on the next one).
    pub re_attempts: u32,
    /// Inferred TRR-to-REF ratio.
    pub ratio: u64,
    /// Inferred neighbours refreshed per detection.
    pub neighbors: u32,
    /// Inferred detection mechanism label.
    pub detection: String,
    /// Inferred per-bank TRR flag.
    pub per_bank: bool,
    /// Measured regular-refresh period in `REF`s.
    pub refresh_period: u64,
    /// Measured `HC_first`.
    pub hc_first_measured: u64,
    /// Attack column: % vulnerable rows.
    pub vulnerable_pct: f64,
    /// Attack column: max flips per row per hammer.
    pub max_flips_per_hammer: f64,
    /// Attack column: max flips per 8-byte dataword.
    pub max_flips_per_word: u32,
    /// Row Scout validation retries (fault recovery).
    pub scout_retries: u64,
    /// Rows the Row Scout quarantined.
    pub scout_quarantined: u64,
    /// Faults the plan injected into this module's pipeline.
    pub faults_injected: u64,
    /// Majority-voted reads issued.
    pub reads_voted: u64,
    /// Voted reads whose replicas disagreed (a recovery).
    pub read_disagreements: u64,
    /// Verified-write retries.
    pub write_retries: u64,
    /// Verdict-confidence tier label (`confirmed` / `degraded` /
    /// `inconclusive`; see [`VerdictTier`]). Additive `utrr-fleet/1`
    /// field: absent in pre-tier streams, which read as `confirmed`.
    pub tier: String,
    /// `+`-joined degradation reasons (empty unless degraded).
    pub tier_reasons: String,
    /// Recovery ladder: majority-vote width escalations.
    pub vote_widenings: u64,
    /// Recovery ladder: Row Scout window relocations.
    pub relocations: u64,
    /// Recovery ladder: retention-margin re-profiles.
    pub reprofiles: u64,
    /// Recovery ladder: ACT-budget circuit-breaker trips.
    pub budget_trips: u64,
}

/// Retry budget for the reverse-engineering suite. On arbitrary seeds a
/// few percent of modules draw a weak-cell population the scout or the
/// schedule learner cannot converge on; a fresh experiment seed (a pure
/// function of the module seed and the attempt number, so retries are
/// deterministic) recovers them.
pub const RE_ATTEMPTS: u32 = 4;

/// Runs the full pipeline for module `index` and returns its record.
///
/// Under the `hostile` profile a module whose reverse engineering
/// exhausts all [`RE_ATTEMPTS`] experiment seeds is recorded as
/// `inconclusive` — with its recovery-ladder history and the
/// RE-independent measurements (`HC_first`, attack columns) — and the
/// sweep continues: hostile faults never abort a shard.
///
/// # Panics
///
/// Panics when the reverse-engineering suite cannot complete within
/// [`RE_ATTEMPTS`] experiment seeds below hostile severity — the fleet
/// executor promises full correctness for `none` and `mild` profiles.
pub fn characterize(params: &SweepParams, index: u64) -> FleetRecord {
    let synth = synth_spec(params.fleet_seed, index, params.base_rows);
    let spec = &synth.spec;
    // A private registry per module: its counters are exactly this
    // module's pipeline traffic, nothing else's.
    let registry = MetricsRegistry::shared();
    let fault_seed = derive_seed(synth.seed ^ params.fault_seed, 5);

    let mut re_attempts = 0;
    let re = loop {
        // Streams 2..5 feed the first attempt's phases; retries move to
        // a disjoint stream block (16, 32, …) per attempt.
        let re_seed = derive_seed(synth.seed, 2 + 16 * u64::from(re_attempts));
        re_attempts += 1;
        match try_reverse_engineer_module_faulty(
            spec,
            synth.rows,
            re_seed,
            Some(&registry),
            params.fault_profile,
            fault_seed,
        ) {
            Ok(re) => break Some(re),
            Err(e) if re_attempts < RE_ATTEMPTS => {
                registry.counter(CTR_RE_RETRIES).inc();
                let _ = e;
            }
            // The retry ladder is exhausted. Hostile shards isolate the
            // failure as an inconclusive record and keep sweeping;
            // below hostile severity an exhausted ladder is a real
            // regression and still aborts loudly.
            Err(_) if params.fault_profile == FaultProfile::Hostile => break None,
            Err(e) => panic!(
                "module {} (index {index}): reverse engineering failed after \
                 {re_attempts} attempts: {e}",
                spec.id
            ),
        }
    };
    let hc = measure_hc_first_faulty(
        spec,
        synth.rows,
        params.hc_samples,
        derive_seed(synth.seed, 3),
        Some(&registry),
        params.fault_profile,
        fault_seed,
    );
    let eval = EvalConfig {
        sample_count: params.attack_samples,
        windows: 1,
        scaled_rows: Some(synth.rows),
        seed: derive_seed(synth.seed, 4),
        registry: Some(std::sync::Arc::clone(&registry)),
        fault_profile: params.fault_profile,
        fault_seed,
        ..EvalConfig::quick(params.attack_samples)
    };
    let sweep = attack_columns(spec, &eval);

    let counter = |name: &str| registry.counter(name).get();
    // An inconclusive module keeps placeholder profile columns; its
    // RE-independent measurements (HC_first, attack sweep) are real.
    let (re_match, ratio, neighbors, detection, per_bank, refresh_period, tier) = match &re {
        Some(re) => (
            re.matches.all(),
            re.profile.trr_ref_ratio,
            re.profile.neighbors_refreshed,
            detection_label(&re.profile.detection),
            re.profile.per_bank,
            re.refresh_period,
            re.tier.clone(),
        ),
        None => (false, 0, 0, "inconclusive".to_string(), false, 0, VerdictTier::Inconclusive),
    };
    FleetRecord {
        index,
        id: spec.id.clone(),
        anchor: synth.anchor_id.clone(),
        vendor: spec.vendor.to_string(),
        trr_version: spec.trr_version.to_string(),
        banks: spec.banks,
        rows: synth.rows,
        seed: synth.seed,
        retention_scale: spec.retention_scale,
        hc_first_gt: spec.hc_first,
        re_match,
        re_attempts,
        ratio,
        neighbors,
        detection,
        per_bank,
        refresh_period,
        hc_first_measured: hc,
        vulnerable_pct: sweep.vulnerable_pct(),
        max_flips_per_hammer: sweep.max_flips_per_row_per_hammer(),
        max_flips_per_word: sweep.max_flips_per_dataword(),
        scout_retries: counter(utrr_core::rowscout::CTR_SCOUT_RETRIES),
        scout_quarantined: counter(utrr_core::rowscout::CTR_SCOUT_QUARANTINED),
        faults_injected: counter(faults::CTR_INJECTED_TOTAL),
        reads_voted: counter(utrr_core::robust::CTR_VOTED_READS),
        read_disagreements: counter(utrr_core::robust::CTR_READ_DISAGREEMENTS),
        write_retries: counter(utrr_core::robust::CTR_WRITE_RETRIES),
        tier: tier.label().to_string(),
        tier_reasons: tier.reasons_string(),
        vote_widenings: counter(utrr_core::recovery::CTR_VOTE_WIDENINGS),
        relocations: counter(utrr_core::recovery::CTR_RELOCATIONS),
        reprofiles: counter(utrr_core::recovery::CTR_REPROFILES),
        budget_trips: counter(utrr_core::recovery::CTR_BUDGET_TRIPS),
    }
}

impl FleetRecord {
    /// Renders the record as one JSON line (no trailing newline), with
    /// fixed key order and fixed float precision.
    pub fn to_json_line(&self) -> String {
        format!(
            concat!(
                "{{\"i\":{},\"id\":\"{}\",\"anchor\":\"{}\",\"vendor\":\"{}\",\"trr\":\"{}\",",
                "\"banks\":{},\"rows\":{},\"seed\":\"{:016x}\",\"ret_scale\":{:.4},",
                "\"hc_gt\":{},\"re_match\":{},\"re_attempts\":{},\"ratio\":{},\"neighbors\":{},",
                "\"detection\":\"{}\",\"per_bank\":{},\"refresh_period\":{},\"hc_meas\":{},",
                "\"vuln_pct\":{:.2},\"max_flips_hammer\":{:.3},\"max_flips_word\":{},",
                "\"scout_retries\":{},\"scout_quarantined\":{},\"faults_injected\":{},",
                "\"reads_voted\":{},\"read_disagreements\":{},\"write_retries\":{},",
                "\"tier\":\"{}\",\"tier_reasons\":\"{}\",\"vote_widenings\":{},",
                "\"relocations\":{},\"reprofiles\":{},\"budget_trips\":{}}}"
            ),
            self.index,
            self.id,
            self.anchor,
            self.vendor,
            self.trr_version,
            self.banks,
            self.rows,
            self.seed,
            self.retention_scale,
            self.hc_first_gt,
            self.re_match,
            self.re_attempts,
            self.ratio,
            self.neighbors,
            self.detection,
            self.per_bank,
            self.refresh_period,
            self.hc_first_measured,
            self.vulnerable_pct,
            self.max_flips_per_hammer,
            self.max_flips_per_word,
            self.scout_retries,
            self.scout_quarantined,
            self.faults_injected,
            self.reads_voted,
            self.read_disagreements,
            self.write_retries,
            self.tier,
            self.tier_reasons,
            self.vote_widenings,
            self.relocations,
            self.reprofiles,
            self.budget_trips,
        )
    }

    /// Parses a record back from a parsed JSON object. Returns `None`
    /// for meta lines or malformed records.
    pub fn from_json(value: &JsonValue) -> Option<FleetRecord> {
        let s = |k: &str| value.get(k)?.as_str().map(str::to_string);
        let u = |k: &str| value.get(k)?.as_u64();
        let f = |k: &str| value.get(k)?.as_f64();
        let b = |k: &str| match value.get(k)? {
            JsonValue::Bool(v) => Some(*v),
            _ => None,
        };
        Some(FleetRecord {
            index: u("i")?,
            id: s("id")?,
            anchor: s("anchor")?,
            vendor: s("vendor")?,
            trr_version: s("trr")?,
            banks: u("banks")? as u8,
            rows: u("rows")? as u32,
            seed: u64::from_str_radix(&s("seed")?, 16).ok()?,
            retention_scale: f("ret_scale")?,
            hc_first_gt: u("hc_gt")?,
            re_match: b("re_match")?,
            re_attempts: u("re_attempts")? as u32,
            ratio: u("ratio")?,
            neighbors: u("neighbors")? as u32,
            detection: s("detection")?,
            per_bank: b("per_bank")?,
            refresh_period: u("refresh_period")?,
            hc_first_measured: u("hc_meas")?,
            vulnerable_pct: f("vuln_pct")?,
            max_flips_per_hammer: f("max_flips_hammer")?,
            max_flips_per_word: u("max_flips_word")? as u32,
            scout_retries: u("scout_retries")?,
            scout_quarantined: u("scout_quarantined")?,
            faults_injected: u("faults_injected")?,
            reads_voted: u("reads_voted")?,
            read_disagreements: u("read_disagreements")?,
            write_retries: u("write_retries")?,
            // Additive tier/ladder fields: pre-tier streams lack them
            // and read as confirmed with a quiet ladder.
            tier: s("tier").unwrap_or_else(|| "confirmed".to_string()),
            tier_reasons: s("tier_reasons").unwrap_or_default(),
            vote_widenings: u("vote_widenings").unwrap_or(0),
            relocations: u("relocations").unwrap_or(0),
            reprofiles: u("reprofiles").unwrap_or(0),
            budget_trips: u("budget_trips").unwrap_or(0),
        })
    }

    /// The record's verdict tier, decoded from its wire fields.
    pub fn verdict_tier(&self) -> VerdictTier {
        VerdictTier::from_wire(&self.tier, &self.tier_reasons)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::jsonl::parse_json;

    fn sample() -> FleetRecord {
        FleetRecord {
            index: 3,
            id: "S000003".into(),
            anchor: "B7".into(),
            vendor: "B".into(),
            trr_version: "B_TRR1".into(),
            banks: 16,
            rows: 2176,
            seed: 0xDEAD_BEEF_0BAD_F00D,
            retention_scale: 1.0625,
            hc_first_gt: 20_000,
            re_match: true,
            re_attempts: 1,
            ratio: 4,
            neighbors: 2,
            detection: "Sampler(shared)".into(),
            per_bank: false,
            refresh_period: 8192,
            hc_first_measured: 21_500,
            vulnerable_pct: 99.9,
            max_flips_per_hammer: 31.14,
            max_flips_per_word: 7,
            scout_retries: 2,
            scout_quarantined: 1,
            faults_injected: 40,
            reads_voted: 1000,
            read_disagreements: 3,
            write_retries: 1,
            tier: "degraded".into(),
            tier_reasons: "scout-shortfall+act-budget".into(),
            vote_widenings: 2,
            relocations: 3,
            reprofiles: 1,
            budget_trips: 1,
        }
    }

    #[test]
    fn record_json_round_trips() {
        let record = sample();
        let line = record.to_json_line();
        let value = parse_json(&line).expect("record line parses");
        let parsed = FleetRecord::from_json(&value).expect("record fields present");
        assert_eq!(parsed, record);
    }

    #[test]
    fn meta_lines_are_rejected() {
        let meta = parse_json(r#"{"schema":"utrr-fleet/1","modules":4}"#).unwrap();
        assert!(FleetRecord::from_json(&meta).is_none());
    }

    #[test]
    fn pre_tier_records_parse_with_confirmed_defaults() {
        // A line written before the tier fields existed must still
        // parse — tier fields default to a confirmed, quiet ladder.
        let mut legacy = sample();
        legacy.tier = "confirmed".into();
        legacy.tier_reasons.clear();
        legacy.vote_widenings = 0;
        legacy.relocations = 0;
        legacy.reprofiles = 0;
        legacy.budget_trips = 0;
        let line = legacy.to_json_line();
        let cut = line.find(",\"tier\"").expect("tier fields rendered");
        let pre_tier = format!("{}}}", &line[..cut]);
        let value = parse_json(&pre_tier).expect("legacy line parses");
        let parsed = FleetRecord::from_json(&value).expect("legacy record accepted");
        assert_eq!(parsed, legacy);
        assert!(parsed.verdict_tier().is_confirmed());
    }

    #[test]
    fn verdict_tier_decodes_wire_fields() {
        let tier = sample().verdict_tier();
        assert_eq!(tier.label(), "degraded");
        assert_eq!(tier.reasons_string(), "scout-shortfall+act-budget");
    }

    #[test]
    fn rendering_is_stable() {
        // Byte-stable rendering is what the resume contract hashes.
        assert_eq!(sample().to_json_line(), sample().to_json_line());
        assert!(sample().to_json_line().contains("\"seed\":\"deadbeef0badf00d\""));
    }
}
