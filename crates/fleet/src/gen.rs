//! Seeded synthetic-module generator.
//!
//! Each synthetic module is a perturbation of one Table-1 anchor: the
//! anchor fixes the organisation (vendor, banks, pins, density) and the
//! ground-truth TRR engine, while the generator spreads the per-die
//! quantities around it — `HC_first`, the vulnerable-row fraction, the
//! flip ceiling, the weak-cell retention window, and the scaled bank
//! geometry the sweep builds.
//!
//! Everything is a pure function of `(fleet_seed, module_index)`:
//! [`module_seed`] derives one SplitMix64 stream per module, so module
//! *i* is byte-identical regardless of shard layout, thread count, or
//! which other modules exist. The perturbation envelopes are public
//! constants so the property suite can pin them.

use dram_sim::rng::{derive_seed, SplitMix64};
use utrr_modules::{catalog, ModuleSpec};

/// Stream salt separating fleet module seeds from every other consumer
/// of `derive_seed` on the same base seed.
const FLEET_STREAM_SALT: u64 = 0xF1EE_7000_0000_0001;

/// Multiplicative envelope for `HC_first` around its anchor.
pub const HC_FIRST_ENVELOPE: (f64, f64) = (0.8, 1.25);
/// Multiplicative envelope for the weak-cell retention window.
pub const RETENTION_ENVELOPE: (f64, f64) = (0.8, 1.25);
/// Multiplicative envelope for the vulnerable-row percentage.
pub const VULNERABLE_ENVELOPE: (f64, f64) = (0.85, 1.15);
/// Multiplicative envelope for the per-hammer flip ceiling.
pub const FLIPS_ENVELOPE: (f64, f64) = (0.85, 1.15);
/// Additive geometry steps (rows per bank) on top of the base size.
pub const ROWS_STEPS: [u32; 3] = [0, 128, 256];

/// One synthesised module: the spec the pipeline characterises plus the
/// provenance needed to reproduce or audit it.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthModule {
    /// Position in the fleet population.
    pub index: u64,
    /// The module seed every pipeline stage derives its stream from.
    pub seed: u64,
    /// Table-1 anchor the module was perturbed from.
    pub anchor_id: String,
    /// Scaled rows-per-bank the sweep builds this module at.
    pub rows: u32,
    /// The synthesised spec (ground truth included).
    pub spec: ModuleSpec,
}

/// The per-module seed: a pure function of `(fleet_seed, index)`.
pub fn module_seed(fleet_seed: u64, index: u64) -> u64 {
    derive_seed(fleet_seed ^ FLEET_STREAM_SALT, index)
}

/// Uniform draw from a multiplicative envelope.
fn factor(rng: &mut SplitMix64, envelope: (f64, f64)) -> f64 {
    envelope.0 + (envelope.1 - envelope.0) * rng.next_f64()
}

/// Synthesises module `index` of the fleet seeded by `fleet_seed`,
/// built at `base_rows` rows per bank (plus a small per-module geometry
/// step). `base_rows` must be large enough for the reverse-engineering
/// suite (the executor enforces ≥ 2048).
pub fn synth_spec(fleet_seed: u64, index: u64, base_rows: u32) -> SynthModule {
    let seed = module_seed(fleet_seed, index);
    let mut rng = SplitMix64::new(derive_seed(seed, 1));
    let anchors = catalog();
    let anchor = &anchors[(rng.next_u64() % anchors.len() as u64) as usize];

    let mut spec = anchor.clone();
    spec.id = format!("S{index:06}");
    spec.hc_first = ((anchor.hc_first as f64 * factor(&mut rng, HC_FIRST_ENVELOPE)) as u64).max(1);
    spec.retention_scale = factor(&mut rng, RETENTION_ENVELOPE);
    let vuln_factor = factor(&mut rng, VULNERABLE_ENVELOPE);
    let scale_pct = |v: f64| (v * vuln_factor).clamp(0.5, 99.9);
    spec.paper_vulnerable_pct =
        (scale_pct(anchor.paper_vulnerable_pct.0), scale_pct(anchor.paper_vulnerable_pct.1));
    let flips_factor = factor(&mut rng, FLIPS_ENVELOPE);
    spec.paper_max_flips_per_hammer = (
        (anchor.paper_max_flips_per_hammer.0 * flips_factor).max(0.01),
        (anchor.paper_max_flips_per_hammer.1 * flips_factor).max(0.01),
    );
    let rows = base_rows + ROWS_STEPS[(rng.next_u64() % ROWS_STEPS.len() as u64) as usize];

    SynthModule { index, seed, anchor_id: anchor.id.clone(), rows, spec }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utrr_modules::by_id;

    #[test]
    fn generation_is_deterministic() {
        let a = synth_spec(42, 17, 2048);
        let b = synth_spec(42, 17, 2048);
        assert_eq!(a, b);
        assert_ne!(a.spec, synth_spec(42, 18, 2048).spec);
        assert_ne!(a.spec, synth_spec(43, 17, 2048).spec);
    }

    #[test]
    fn spec_stays_inside_the_anchor_envelope() {
        for index in 0..64 {
            let synth = synth_spec(7, index, 2048);
            let anchor = by_id(&synth.anchor_id).expect("anchor exists");
            let hc = synth.spec.hc_first as f64 / anchor.hc_first as f64;
            assert!((HC_FIRST_ENVELOPE.0..=HC_FIRST_ENVELOPE.1).contains(&hc), "hc factor {hc}");
            assert!(
                (RETENTION_ENVELOPE.0..=RETENTION_ENVELOPE.1).contains(&synth.spec.retention_scale)
            );
            assert_eq!(synth.spec.trr_version, anchor.trr_version);
            assert_eq!(synth.spec.banks, anchor.banks);
            assert!(ROWS_STEPS.iter().any(|&s| synth.rows == 2048 + s));
        }
    }

    #[test]
    fn ids_encode_the_index() {
        assert_eq!(synth_spec(1, 0, 2048).spec.id, "S000000");
        assert_eq!(synth_spec(1, 123_456, 2048).spec.id, "S123456");
    }
}
