//! The sharded sweep executor: work batches, incremental JSONL
//! streaming, and checkpoint/resume.
//!
//! A fleet run partitions the module population `0..modules` into
//! contiguous shards. Each shard is fanned over the `par` worker pool
//! (one task per module), its records are rendered in index order, and
//! the whole shard is flushed to `shards/shard-NNNNN.jsonl` in a single
//! buffered write (temp file + rename, so a kill never leaves a torn
//! shard visible). After every flushed shard one manifest line is
//! appended to `manifest.jsonl` recording the shard's range and content
//! hash — the checkpoint.
//!
//! On `resume`, the manifest is replayed: shards whose file still
//! matches the recorded hash are skipped outright, everything else is
//! recomputed. Because every record is a pure function of the sweep
//! parameters and the module index (see [`crate::record`]), the merged
//! `fleet.jsonl` produced after a kill + resume is **byte-identical**
//! to an uninterrupted run at any thread count — the property the
//! determinism suite and the CI mini-fleet job pin.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use obs::jsonl::{parse_jsonl, JsonValue};
use obs::MetricsRegistry;

use crate::record::{characterize, FleetRecord, SweepParams};
use crate::{content_hash, FLEET_SCHEMA, MANIFEST_SCHEMA};

/// One fleet sweep: the population size, the shard layout, and the
/// per-module sweep parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Population size.
    pub modules: u64,
    /// Requested shard count (clamped to the population size).
    pub shards: u32,
    /// Per-module pipeline parameters.
    pub params: SweepParams,
}

impl FleetConfig {
    /// Effective shard count: at least one, at most one per module.
    pub fn effective_shards(&self) -> u32 {
        (self.shards.max(1) as u64).min(self.modules.max(1)) as u32
    }

    /// Modules per shard (the last shard may be short).
    pub fn shard_size(&self) -> u64 {
        self.modules.max(1).div_ceil(u64::from(self.effective_shards()))
    }

    /// The module range `[start, end)` of shard `shard`.
    pub fn shard_range(&self, shard: u32) -> (u64, u64) {
        let size = self.shard_size();
        let start = u64::from(shard) * size;
        (start.min(self.modules), (start + size).min(self.modules))
    }

    /// The manifest/merged-artifact meta fields shared by both schemas.
    fn meta_fields(&self) -> String {
        format!(
            "\"modules\":{},\"shards\":{},\"seed\":{},\"rows\":{},\"hc_samples\":{},\
             \"attack_samples\":{},\"faults\":\"{}\",\"fault_seed\":{}",
            self.modules,
            self.effective_shards(),
            self.params.fleet_seed,
            self.params.base_rows,
            self.params.hc_samples,
            self.params.attack_samples,
            self.params.fault_profile,
            self.params.fault_seed,
        )
    }

    /// The manifest meta line (first line of `manifest.jsonl`).
    pub fn manifest_meta_line(&self) -> String {
        format!("{{\"schema\":\"{}\",{}}}", MANIFEST_SCHEMA, self.meta_fields())
    }

    /// The merged-artifact meta line (first line of `fleet.jsonl`).
    pub fn fleet_meta_line(&self) -> String {
        format!("{{\"schema\":\"{}\",{}}}", FLEET_SCHEMA, self.meta_fields())
    }
}

/// How one run executes (everything that must *not* affect the merged
/// bytes: directories, threading, resume, simulated kills).
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Output directory (created if missing).
    pub out_dir: PathBuf,
    /// Replay the manifest and skip shards that already checkpointed.
    pub resume: bool,
    /// Stop (without merging) after completing this many *new* shards —
    /// a deterministic stand-in for `kill -9` mid-run, used by the
    /// resume suite and the CI mini-fleet job.
    pub stop_after_shards: Option<u32>,
    /// Worker pool the per-module pipeline fans out on.
    pub pool: par::ParConfig,
    /// Run-level registry receiving fleet counters (optional).
    pub registry: Option<Arc<MetricsRegistry>>,
    /// Per-shard progress lines on stderr.
    pub progress: bool,
}

impl RunOptions {
    /// Quiet sequential run into `out_dir` — the test harness shape.
    pub fn new(out_dir: impl Into<PathBuf>) -> Self {
        RunOptions {
            out_dir: out_dir.into(),
            resume: false,
            stop_after_shards: None,
            pool: par::ParConfig::sequential(),
            registry: None,
            progress: false,
        }
    }
}

/// Status of one shard after a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: u32,
    /// Module range `[start, end)`.
    pub start: u64,
    /// End of the module range (exclusive).
    pub end: u64,
    /// Content hash of the shard file.
    pub hash: String,
    /// Whether the shard was skipped via the checkpoint manifest.
    pub skipped: bool,
}

/// Outcome of one [`run_fleet`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Per-shard statuses in shard order (only the shards this run saw:
    /// all of them unless the run stopped early).
    pub shards: Vec<ShardStatus>,
    /// Shards recomputed by this run.
    pub completed_shards: u32,
    /// Shards skipped thanks to the checkpoint manifest.
    pub skipped_shards: u32,
    /// Whether `stop_after_shards` ended the run before the merge.
    pub stopped_early: bool,
    /// Merged artifact path, once all shards are done.
    pub merged_path: Option<PathBuf>,
    /// Content hash of the merged artifact.
    pub merged_hash: Option<String>,
    /// Records in the merged artifact.
    pub records: u64,
}

/// A manifest entry parsed back from `manifest.jsonl`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ManifestEntry {
    shard: u32,
    start: u64,
    end: u64,
    hash: String,
}

fn shard_file_name(shard: u32) -> String {
    format!("shard-{shard:05}.jsonl")
}

fn io_err(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

/// Parses `manifest.jsonl`, validating its meta line against `config`.
/// Returns the recorded entries (later duplicates of a shard win).
fn read_manifest(path: &Path, config: &FleetConfig) -> std::io::Result<Vec<ManifestEntry>> {
    let text = std::fs::read_to_string(path)?;
    let values = parse_jsonl(&text).map_err(|e| io_err(format!("manifest unparsable: {e}")))?;
    let Some(meta) = values.first() else {
        return Err(io_err("manifest is empty".into()));
    };
    if meta.get("schema").and_then(JsonValue::as_str) != Some(MANIFEST_SCHEMA) {
        return Err(io_err(format!("manifest is not a {MANIFEST_SCHEMA} artifact")));
    }
    // Any sweep-parameter mismatch makes old checkpoints poison: the
    // merged stream would mix records from two different fleets.
    let expected =
        parse_jsonl(&config.manifest_meta_line()).expect("meta line is valid JSON").remove(0);
    if *meta != expected {
        return Err(io_err(
            "manifest was written with different sweep parameters; \
             use a fresh --out directory"
                .into(),
        ));
    }
    let mut entries: Vec<ManifestEntry> = Vec::new();
    for value in &values[1..] {
        let entry = (|| {
            Some(ManifestEntry {
                shard: value.get("shard")?.as_u64()? as u32,
                start: value.get("start")?.as_u64()?,
                end: value.get("end")?.as_u64()?,
                hash: value.get("hash")?.as_str()?.to_string(),
            })
        })()
        .ok_or_else(|| io_err("malformed manifest entry".into()))?;
        entries.retain(|e| e.shard != entry.shard);
        entries.push(entry);
    }
    Ok(entries)
}

/// Writes `content` to `path` atomically (temp file + rename), so a
/// kill can never leave a torn file where a complete one is expected.
fn write_atomic(path: &Path, content: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, content)?;
    std::fs::rename(&tmp, path)
}

/// Runs (or resumes) a fleet sweep. See the [module docs](self) for the
/// checkpoint/resume contract.
///
/// # Errors
///
/// I/O errors from the output directory; `InvalidData` when the
/// manifest exists but `resume` is off, or its sweep parameters differ.
pub fn run_fleet(config: &FleetConfig, opts: &RunOptions) -> std::io::Result<RunOutcome> {
    let shards_dir = opts.out_dir.join("shards");
    std::fs::create_dir_all(&shards_dir)?;
    let manifest_path = opts.out_dir.join("manifest.jsonl");

    let mut done: Vec<ManifestEntry> = Vec::new();
    if manifest_path.exists() {
        if !opts.resume {
            return Err(io_err(format!(
                "{} already holds a checkpoint manifest; pass --resume to continue it \
                 or use a fresh --out directory",
                opts.out_dir.display()
            )));
        }
        done = read_manifest(&manifest_path, config)?;
    } else {
        write_atomic(&manifest_path, format!("{}\n", config.manifest_meta_line()).as_bytes())?;
    }

    let shard_count = config.effective_shards();
    let mut outcome = RunOutcome {
        shards: Vec::new(),
        completed_shards: 0,
        skipped_shards: 0,
        stopped_early: false,
        merged_path: None,
        merged_hash: None,
        records: 0,
    };

    let fleet_counters = opts.registry.as_ref().map(|r| {
        (
            r.counter("fleet.shards_completed"),
            r.counter("fleet.shards_skipped"),
            r.counter("fleet.modules_swept"),
            r.counter("fleet.scout_retries"),
            r.counter("fleet.scout_quarantined"),
            r.counter("fleet.faults_injected"),
        )
    });

    for shard in 0..shard_count {
        let (start, end) = config.shard_range(shard);
        let path = shards_dir.join(shard_file_name(shard));

        // Checkpoint replay: trust the manifest only if the file on disk
        // still hashes to what the manifest recorded.
        if let Some(entry) = done.iter().find(|e| e.shard == shard) {
            if entry.start == start && entry.end == end {
                if let Ok(bytes) = std::fs::read(&path) {
                    if content_hash(&bytes) == entry.hash {
                        outcome.skipped_shards += 1;
                        outcome.shards.push(ShardStatus {
                            shard,
                            start,
                            end,
                            hash: entry.hash.clone(),
                            skipped: true,
                        });
                        if let Some((_, skipped, ..)) = &fleet_counters {
                            skipped.inc();
                        }
                        if opts.progress {
                            eprintln!(
                                "shard {:>3}/{shard_count} [{start}..{end}) skipped (checkpoint)",
                                shard + 1
                            );
                        }
                        continue;
                    }
                }
            }
        }

        // One task per module; records land in index order, so the
        // shard bytes are independent of scheduling.
        let indices: Vec<u64> = (start..end).collect();
        let records: Vec<FleetRecord> =
            par::par_map(&opts.pool, &indices, |&i| characterize(&config.params, i));
        let mut content = String::new();
        for record in &records {
            content.push_str(&record.to_json_line());
            content.push('\n');
        }
        write_atomic(&path, content.as_bytes())?;
        let hash = content_hash(content.as_bytes());

        // Checkpoint: one appended line, flushed before the next shard
        // starts, so a kill at any point loses at most the in-flight
        // shard.
        let mut manifest = std::fs::OpenOptions::new().append(true).open(&manifest_path)?;
        manifest.write_all(
            format!(
                "{{\"shard\":{shard},\"start\":{start},\"end\":{end},\
                 \"file\":\"shards/{}\",\"hash\":\"{hash}\",\"records\":{}}}\n",
                shard_file_name(shard),
                records.len()
            )
            .as_bytes(),
        )?;
        manifest.sync_all()?;

        if let Some((completed, _, modules, retries, quarantined, injected)) = &fleet_counters {
            completed.inc();
            modules.add(records.len() as u64);
            retries.add(records.iter().map(|r| r.scout_retries).sum());
            quarantined.add(records.iter().map(|r| r.scout_quarantined).sum());
            injected.add(records.iter().map(|r| r.faults_injected).sum());
        }
        outcome.completed_shards += 1;
        outcome.shards.push(ShardStatus { shard, start, end, hash, skipped: false });
        if opts.progress {
            eprintln!(
                "shard {:>3}/{shard_count} [{start}..{end}) done ({} modules)",
                shard + 1,
                records.len()
            );
        }

        if opts.stop_after_shards.is_some_and(|limit| outcome.completed_shards >= limit) {
            outcome.stopped_early = true;
            return Ok(outcome);
        }
    }

    // All shards on disk: merge. Reading the files back (rather than
    // keeping shard bytes in memory) means a resumed run merges exactly
    // what an uninterrupted run would.
    let mut merged = format!("{}\n", config.fleet_meta_line()).into_bytes();
    for shard in 0..shard_count {
        let bytes = std::fs::read(shards_dir.join(shard_file_name(shard)))?;
        outcome.records += bytes.iter().filter(|&&b| b == b'\n').count() as u64;
        merged.extend_from_slice(&bytes);
    }
    let merged_path = opts.out_dir.join("fleet.jsonl");
    write_atomic(&merged_path, &merged)?;
    outcome.merged_hash = Some(content_hash(&merged));
    outcome.merged_path = Some(merged_path);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::FaultProfile;

    fn config(modules: u64, shards: u32) -> FleetConfig {
        FleetConfig {
            modules,
            shards,
            params: SweepParams {
                fleet_seed: 9,
                base_rows: 2048,
                hc_samples: 4,
                attack_samples: 4,
                fault_profile: FaultProfile::None,
                fault_seed: 1,
            },
        }
    }

    #[test]
    fn shard_ranges_cover_the_population_exactly_once() {
        for (modules, shards) in [(10, 3), (1, 8), (64, 64), (7, 1), (100, 7)] {
            let cfg = config(modules, shards);
            let mut covered = 0;
            for s in 0..cfg.effective_shards() {
                let (a, b) = cfg.shard_range(s);
                assert_eq!(a, covered, "modules={modules} shards={shards}");
                assert!(b >= a);
                covered = b;
            }
            assert_eq!(covered, modules);
        }
    }

    #[test]
    fn effective_shards_clamps_to_population() {
        assert_eq!(config(3, 8).effective_shards(), 3);
        assert_eq!(config(0, 8).effective_shards(), 1);
        assert_eq!(config(8, 0).effective_shards(), 1);
    }

    #[test]
    fn meta_lines_parse_and_carry_the_parameters() {
        let cfg = config(100, 7);
        for line in [cfg.manifest_meta_line(), cfg.fleet_meta_line()] {
            let value = obs::jsonl::parse_json(&line).expect("meta line parses");
            assert_eq!(value.get("modules").and_then(JsonValue::as_u64), Some(100));
            assert_eq!(value.get("faults").and_then(JsonValue::as_str), Some("none"));
        }
    }

    #[test]
    fn manifest_round_trip_and_mismatch_detection() {
        let dir = std::env::temp_dir().join(format!("utrr-fleet-man-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.jsonl");
        let cfg = config(8, 2);
        std::fs::write(
            &path,
            format!(
                "{}\n{{\"shard\":1,\"start\":4,\"end\":8,\"file\":\"shards/shard-00001.jsonl\",\
                 \"hash\":\"abc\",\"records\":4}}\n",
                cfg.manifest_meta_line()
            ),
        )
        .unwrap();
        let entries = read_manifest(&path, &cfg).expect("manifest parses");
        assert_eq!(entries, vec![ManifestEntry { shard: 1, start: 4, end: 8, hash: "abc".into() }]);
        // A different population size must be rejected.
        let err = read_manifest(&path, &config(9, 2)).unwrap_err();
        assert!(err.to_string().contains("different sweep parameters"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
