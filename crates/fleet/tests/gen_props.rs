//! Property tests on the synthetic-module generator: every generated
//! spec stays inside the published envelopes, keeps a valid TRR
//! configuration, and gets a collision-free per-module seed that does
//! not depend on how the population is sharded.

use proptest::prelude::*;
use utrr_fleet::gen::{
    module_seed, synth_spec, FLIPS_ENVELOPE, HC_FIRST_ENVELOPE, RETENTION_ENVELOPE, ROWS_STEPS,
    VULNERABLE_ENVELOPE,
};
use utrr_modules::by_id;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated spec stays inside the perturbation envelopes
    /// around its anchor, with positive retention and sane attack
    /// targets.
    #[test]
    fn spec_is_inside_the_envelopes(
        fleet_seed in 0u64..u64::MAX,
        index in 0u64..1_000_000,
        base_rows in 2_048u32..4_096,
    ) {
        let synth = synth_spec(fleet_seed, index, base_rows);
        let spec = &synth.spec;
        let anchor = by_id(&synth.anchor_id).expect("anchor exists in the catalog");

        let hc = spec.hc_first as f64 / anchor.hc_first as f64;
        prop_assert!(spec.hc_first >= 1);
        prop_assert!(hc >= HC_FIRST_ENVELOPE.0 - 1e-6 && hc <= HC_FIRST_ENVELOPE.1 + 1e-6);

        prop_assert!(spec.retention_scale > 0.0);
        prop_assert!(
            (RETENTION_ENVELOPE.0..=RETENTION_ENVELOPE.1).contains(&spec.retention_scale)
        );

        for pct in [spec.paper_vulnerable_pct.0, spec.paper_vulnerable_pct.1] {
            prop_assert!((0.5..=99.9).contains(&pct));
        }
        let vuln = spec.paper_vulnerable_pct.1 / anchor.paper_vulnerable_pct.1;
        prop_assert!(vuln <= VULNERABLE_ENVELOPE.1 + 1e-6);

        for flips in [spec.paper_max_flips_per_hammer.0, spec.paper_max_flips_per_hammer.1] {
            prop_assert!(flips > 0.0);
        }
        let flips = spec.paper_max_flips_per_hammer.1 / anchor.paper_max_flips_per_hammer.1;
        prop_assert!(flips >= FLIPS_ENVELOPE.0 - 1e-6 && flips <= FLIPS_ENVELOPE.1 + 1e-6);

        prop_assert!(ROWS_STEPS.iter().any(|&s| synth.rows == base_rows + s));
    }

    /// The TRR configuration is always the anchor's: the engine is built
    /// from the version string, so the ground-truth columns must carry
    /// over untouched for the reverse-engineering verdict to be
    /// meaningful.
    #[test]
    fn trr_parameters_stay_valid(
        fleet_seed in 0u64..u64::MAX,
        index in 0u64..1_000_000,
    ) {
        let synth = synth_spec(fleet_seed, index, 2_048);
        let anchor = by_id(&synth.anchor_id).expect("anchor exists");
        prop_assert_eq!(&synth.spec.trr_version, &anchor.trr_version);
        prop_assert_eq!(synth.spec.banks, anchor.banks);
        prop_assert_eq!(synth.spec.trr_to_ref_ratio, anchor.trr_to_ref_ratio);
        prop_assert_eq!(synth.spec.neighbors_refreshed, anchor.neighbors_refreshed);
        prop_assert_eq!(synth.spec.detection, anchor.detection);
        prop_assert_eq!(synth.spec.per_bank_trr, anchor.per_bank_trr);
        // The planted engine still builds for the perturbed spec.
        prop_assert!(synth.spec.banks >= 2);
        prop_assert_eq!(synth.spec.id, format!("S{index:06}"));
    }

    /// Per-module seeds never collide across a window of indices, and
    /// depend only on `(fleet_seed, index)` — not on shard layout or
    /// any other run parameter.
    #[test]
    fn module_seeds_are_collision_free_and_layout_independent(
        fleet_seed in 0u64..u64::MAX,
        start in 0u64..1_000_000,
    ) {
        let mut seeds: Vec<u64> = (start..start + 128)
            .map(|i| module_seed(fleet_seed, i))
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        prop_assert_eq!(seeds.len(), 128, "seed collision in a 128-module window");
    }

    /// The full synthesis is a pure function of `(fleet_seed, index,
    /// base_rows)` — the property byte-identical resume rests on.
    #[test]
    fn synthesis_is_deterministic(
        fleet_seed in 0u64..u64::MAX,
        index in 0u64..1_000_000,
    ) {
        prop_assert_eq!(
            synth_spec(fleet_seed, index, 2_048),
            synth_spec(fleet_seed, index, 2_048)
        );
    }
}
