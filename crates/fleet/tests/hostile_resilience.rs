//! Hostile-profile contracts: recovery outcomes are deterministic
//! across thread counts, and a shard that contains modules the retry
//! ladder cannot save still checkpoints, resumes, and merges with
//! `inconclusive` records instead of aborting the sweep.

use std::path::PathBuf;

use faults::FaultProfile;
use utrr_fleet::executor::run_fleet;
use utrr_fleet::record::{FleetRecord, SweepParams};
use utrr_fleet::{FleetConfig, RunOptions};

fn hostile_config(base_rows: u32) -> FleetConfig {
    FleetConfig {
        modules: 4,
        shards: 2,
        params: SweepParams {
            fleet_seed: 11,
            base_rows,
            hc_samples: 2,
            attack_samples: 2,
            fault_profile: FaultProfile::Hostile,
            fault_seed: 1,
        },
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("utrr-hostile-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(dir: &std::path::Path, threads: usize) -> RunOptions {
    let mut opts = RunOptions::new(dir.to_path_buf());
    opts.pool = par::ParConfig::with_threads(threads);
    opts
}

fn records(path: &std::path::Path) -> Vec<FleetRecord> {
    std::fs::read_to_string(path)
        .expect("read merged")
        .lines()
        // The first line is the sweep's schema header, not a record.
        .filter_map(|l| {
            let value = obs::jsonl::parse_json(l).expect("parse json");
            FleetRecord::from_json(&value)
        })
        .collect()
}

/// The recovery ladder (vote widening, relocation, re-profiling) runs
/// inside each module's private controller, so its outcome must not
/// depend on how modules are scheduled onto worker threads.
#[test]
fn hostile_recovery_is_byte_identical_across_thread_counts() {
    let config = hostile_config(2_048);

    let ref_dir = fresh_dir("threads-ref");
    let reference = run_fleet(&config, &opts(&ref_dir, 1)).expect("reference run");
    let ref_bytes =
        std::fs::read(reference.merged_path.as_ref().expect("merged")).expect("read merged");

    for threads in [2usize, 8] {
        let dir = fresh_dir(&format!("threads-{threads}"));
        let run = run_fleet(&config, &opts(&dir, threads)).expect("threaded run");
        let bytes = std::fs::read(run.merged_path.as_ref().expect("merged")).expect("read merged");
        assert_eq!(bytes, ref_bytes, "threads={threads}: merged bytes differ");
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&ref_dir);
}

/// Below ~2048 scaled rows the Row Scout runs dry, exhausting the
/// reverse-engineering retry ladder. Under hostile severity that must
/// produce `inconclusive` records — never a shard abort — and a killed
/// run over such a shard must resume to the same merged bytes.
#[test]
fn inconclusive_modules_survive_kill_and_resume() {
    // 64 base rows starves the scout for one of the four modules at
    // this seed pair; the other three limp through as degraded.
    let config = hostile_config(64);

    let ref_dir = fresh_dir("inconclusive-ref");
    let reference = run_fleet(&config, &opts(&ref_dir, 1)).expect("hostile must not abort");
    assert!(!reference.stopped_early);
    let merged = reference.merged_path.as_ref().expect("merged");
    let ref_bytes = std::fs::read(merged).expect("read merged");

    let recs = records(merged);
    assert_eq!(recs.len(), config.modules as usize);
    let inconclusive = recs.iter().filter(|r| r.tier == "inconclusive").count();
    assert!(
        inconclusive > 0,
        "expected the dry scout to exhaust the retry ladder for at least one module"
    );
    for r in recs.iter().filter(|r| r.tier == "inconclusive") {
        assert!(!r.re_match, "an inconclusive module must not claim a match");
        assert_eq!(r.detection, "inconclusive");
        assert!(!r.verdict_tier().is_confirmed());
    }

    // Kill after shard 0, then resume: the inconclusive records come
    // back verbatim from the checkpoint and merge byte-identically.
    let dir = fresh_dir("inconclusive-kill");
    let mut killed = opts(&dir, 2);
    killed.stop_after_shards = Some(1);
    let partial = run_fleet(&config, &killed).expect("partial hostile run");
    assert!(partial.stopped_early);

    let mut resumed = opts(&dir, 2);
    resumed.resume = true;
    let full = run_fleet(&config, &resumed).expect("resumed hostile run");
    assert_eq!(full.skipped_shards, 1);
    let bytes = std::fs::read(dir.join("fleet.jsonl")).expect("read merged");
    assert_eq!(bytes, ref_bytes, "resumed merged bytes differ");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}
