//! The executor's headline contract: a killed run, resumed at any
//! thread count, merges to the byte-identical `fleet.jsonl` an
//! uninterrupted run produces.

use std::path::PathBuf;

use faults::FaultProfile;
use utrr_fleet::executor::run_fleet;
use utrr_fleet::record::SweepParams;
use utrr_fleet::{FleetConfig, RunOptions};

fn config() -> FleetConfig {
    FleetConfig {
        modules: 4,
        shards: 2,
        params: SweepParams {
            fleet_seed: 11,
            base_rows: 2_048,
            hc_samples: 2,
            attack_samples: 2,
            fault_profile: FaultProfile::None,
            fault_seed: 1,
        },
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("utrr-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(dir: &std::path::Path, threads: usize) -> RunOptions {
    let mut opts = RunOptions::new(dir.to_path_buf());
    opts.pool = par::ParConfig::with_threads(threads);
    opts
}

#[test]
fn kill_and_resume_is_byte_identical_across_thread_counts() {
    let config = config();

    // The reference: one uninterrupted sequential run.
    let ref_dir = fresh_dir("ref");
    let reference = run_fleet(&config, &opts(&ref_dir, 1)).expect("reference run");
    assert!(!reference.stopped_early);
    assert_eq!(reference.records, config.modules);
    let ref_bytes =
        std::fs::read(reference.merged_path.as_ref().expect("merged")).expect("read merged");
    let ref_hash = reference.merged_hash.clone().expect("hash");

    // The sequential reference above already covers threads=1.
    for threads in [2usize, 8] {
        let dir = fresh_dir(&format!("kill-{threads}"));

        // "Kill" after the first shard: no merged output yet.
        let mut killed = opts(&dir, threads);
        killed.stop_after_shards = Some(1);
        let partial = run_fleet(&config, &killed).expect("partial run");
        assert!(partial.stopped_early, "threads={threads}");
        assert_eq!(partial.completed_shards, 1);
        assert!(partial.merged_path.is_none());
        assert!(!dir.join("fleet.jsonl").exists());

        // Resume at this thread count: skips the checkpointed shard and
        // merges to exactly the reference bytes.
        let mut resumed = opts(&dir, threads);
        resumed.resume = true;
        let full = run_fleet(&config, &resumed).expect("resumed run");
        assert_eq!(full.skipped_shards, 1, "threads={threads}");
        assert_eq!(full.completed_shards, 1, "threads={threads}");
        assert_eq!(full.merged_hash.as_ref(), Some(&ref_hash), "threads={threads}");
        let bytes = std::fs::read(dir.join("fleet.jsonl")).expect("read merged");
        assert_eq!(bytes, ref_bytes, "threads={threads}: merged bytes differ");

        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&ref_dir);
}

#[test]
fn rerun_without_resume_is_refused() {
    let config = config();
    let dir = fresh_dir("refuse");
    let mut first = opts(&dir, 1);
    first.stop_after_shards = Some(1);
    run_fleet(&config, &first).expect("partial run");

    // Same directory, no --resume: the executor must refuse rather than
    // silently clobber the checkpoint.
    let err = run_fleet(&config, &opts(&dir, 1)).expect_err("must refuse");
    assert!(err.to_string().contains("--resume"), "{err}");

    // A parameter mismatch under --resume must also be refused.
    let mut other = config.clone();
    other.params.fleet_seed = 12;
    let mut resumed = opts(&dir, 1);
    resumed.resume = true;
    let err = run_fleet(&other, &resumed).expect_err("mismatch must be refused");
    assert!(err.to_string().contains("different sweep parameters"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_shard_is_recomputed_on_resume() {
    let config = config();
    let dir = fresh_dir("corrupt");
    let mut first = opts(&dir, 1);
    first.stop_after_shards = Some(1);
    run_fleet(&config, &first).expect("partial run");

    // Tamper with the checkpointed shard: its manifest hash no longer
    // matches, so resume must recompute it instead of trusting it.
    let shard0 = dir.join("shards/shard-00000.jsonl");
    std::fs::write(&shard0, b"garbage\n").expect("tamper");

    let mut resumed = opts(&dir, 1);
    resumed.resume = true;
    let full = run_fleet(&config, &resumed).expect("resumed run");
    assert_eq!(full.skipped_shards, 0, "corrupted shard must not be skipped");
    assert_eq!(full.completed_shards, 2);
    assert!(full.merged_path.is_some());
    let _ = std::fs::remove_dir_all(&dir);
}
