//! Histogram behaviour: log-bin boundaries, merging, and the one-bin
//! quantile error bound.

use obs::{bin_index, bin_lower_bound, bin_upper_bound, Histogram, BIN_COUNT};

#[test]
fn bin_boundaries_are_powers_of_two() {
    assert_eq!(bin_index(0), 0);
    assert_eq!(bin_index(1), 1);
    assert_eq!(bin_index(2), 2);
    assert_eq!(bin_index(3), 2);
    assert_eq!(bin_index(4), 3);
    assert_eq!(bin_index(u64::MAX), 64);
    for bin in 0..BIN_COUNT {
        let (lo, hi) = (bin_lower_bound(bin), bin_upper_bound(bin));
        assert!(lo <= hi, "bin {bin}: {lo} > {hi}");
        assert_eq!(bin_index(lo), bin, "lower bound of bin {bin} maps elsewhere");
        assert_eq!(bin_index(hi), bin, "upper bound of bin {bin} maps elsewhere");
        if bin + 1 < BIN_COUNT {
            assert_eq!(hi + 1, bin_lower_bound(bin + 1), "bins {bin},{} not adjacent", bin + 1);
        }
    }
}

#[test]
fn every_value_lands_in_its_bin() {
    let h = Histogram::default();
    for exp in 0..64u32 {
        h.record(1u64 << exp);
    }
    h.record(0);
    let snapshot = h.snapshot();
    assert_eq!(snapshot.count, 65);
    assert!(snapshot.bins.iter().all(|&n| n == 1));
    assert_eq!(snapshot.min, 0);
    assert_eq!(snapshot.max, 1 << 63);
}

#[test]
fn record_n_matches_repeated_record() {
    let batched = Histogram::default();
    let looped = Histogram::default();
    batched.record_n(500, 1000);
    batched.record_n(7, 3);
    for _ in 0..1000 {
        looped.record(500);
    }
    for _ in 0..3 {
        looped.record(7);
    }
    assert_eq!(batched.snapshot(), looped.snapshot());
}

#[test]
fn merge_equals_recording_into_one() {
    let a = Histogram::default();
    let b = Histogram::default();
    let combined = Histogram::default();
    for v in [1u64, 5, 9, 1000, 40_000] {
        a.record(v);
        combined.record(v);
    }
    for v in [0u64, 2, 1_000_000, u64::MAX] {
        b.record(v);
        combined.record(v);
    }
    let merged = a.snapshot().merge(&b.snapshot());
    assert_eq!(merged, combined.snapshot());
    // Merge is symmetric.
    assert_eq!(merged, b.snapshot().merge(&a.snapshot()));
}

#[test]
fn merge_with_empty_is_identity() {
    let a = Histogram::default();
    a.record(42);
    a.record(100);
    let empty = Histogram::default().snapshot();
    assert_eq!(a.snapshot().merge(&empty), a.snapshot());
    assert_eq!(empty.merge(&a.snapshot()), a.snapshot());
}

#[test]
fn quantiles_are_within_one_bin_of_truth() {
    // A skewed workload with a known sorted order.
    let mut values: Vec<u64> = Vec::new();
    for i in 0..1000u64 {
        values.push(i * i % 7919 + 1);
    }
    for i in 0..50u64 {
        values.push(100_000 + i * 1000);
    }
    let h = Histogram::default();
    for &v in &values {
        h.record(v);
    }
    values.sort_unstable();
    let snapshot = h.snapshot();
    for q in [0.50, 0.90, 0.99] {
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let truth = values[rank - 1];
        let estimate = snapshot.quantile(q).unwrap();
        let (truth_bin, estimate_bin) = (bin_index(truth), bin_index(estimate));
        assert!(
            truth_bin.abs_diff(estimate_bin) <= 1,
            "q={q}: estimate {estimate} (bin {estimate_bin}) vs truth {truth} (bin {truth_bin})"
        );
    }
}

#[test]
fn quantile_edge_cases() {
    let empty = Histogram::default().snapshot();
    assert_eq!(empty.quantile(0.5), None);
    assert_eq!(empty.mean(), None);

    let single = Histogram::default();
    single.record(77);
    let snapshot = single.snapshot();
    // All quantiles of a single observation are clamped to that value.
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(snapshot.quantile(q), Some(77));
    }
    assert_eq!(snapshot.mean(), Some(77.0));
}
