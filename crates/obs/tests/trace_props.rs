//! Property tests on the flight recorder: JSONL round-trip identity
//! and oldest-first ring overflow with a monotonic drop counter.

use proptest::prelude::*;

use obs::trace::{read_trace_jsonl, write_trace_jsonl, FlightRecorder, TraceFilter, TraceKind};

const KINDS: [TraceKind; 13] = [
    TraceKind::Act,
    TraceKind::Ref,
    TraceKind::BitFlip,
    TraceKind::ReadCheck,
    TraceKind::TrrDetect,
    TraceKind::TrrRefresh,
    TraceKind::TrrEvict,
    TraceKind::TrrSample,
    TraceKind::TrrReset,
    TraceKind::FaultInjected,
    TraceKind::Recovery,
    TraceKind::ScoutRetry,
    TraceKind::Verdict,
];

#[derive(Debug, Clone)]
struct RawEvent {
    kind_index: usize,
    t_sim: u64,
    bank: u32,
    row: Option<u32>,
    fields: Vec<(String, u64)>,
    detail: String,
    evidence: Vec<u64>,
}

const FIELD_KEYS: [&str; 4] = ["count", "weight", "attempt", "bit"];
const DETAILS: [&str; 5] = ["", "counter", "no_flip", "esc\"aped\\text", "line\nbreak"];

fn raw_event() -> impl Strategy<Value = RawEvent> {
    (
        (
            0usize..KINDS.len(),
            0u64..1 << 48,
            0u32..16,
            // 0 encodes a row-less event; n > 0 encodes row n - 1.
            0u32..1 << 20,
        ),
        prop::collection::vec((0usize..FIELD_KEYS.len(), 0u64..1 << 50), 0..4),
        0usize..DETAILS.len(),
        prop::collection::vec(1u64..1 << 32, 0..5),
    )
        .prop_map(|((kind_index, t_sim, bank, row_code), fields, detail_index, evidence)| {
            RawEvent {
                kind_index,
                t_sim,
                bank,
                row: row_code.checked_sub(1),
                fields: fields
                    .into_iter()
                    .map(|(key_index, value)| (FIELD_KEYS[key_index].to_string(), value))
                    .collect(),
                detail: DETAILS[detail_index].to_string(),
                evidence,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Emit → JSONL → parse-back reproduces the exact event sequence.
    #[test]
    fn jsonl_round_trip_identity(raws in prop::collection::vec(raw_event(), 0..40)) {
        let recorder = FlightRecorder::new(1024, TraceFilter::all());
        for raw in &raws {
            let fields: Vec<(&str, u64)> =
                raw.fields.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            recorder
                .record_with_evidence(
                    KINDS[raw.kind_index],
                    raw.t_sim,
                    raw.bank,
                    raw.row,
                    &fields,
                    &raw.detail,
                    &raw.evidence,
                )
                .expect("unfiltered recorder stores everything");
        }
        let (events, dropped) = recorder.snapshot();
        prop_assert_eq!(events.len(), raws.len());
        prop_assert_eq!(dropped, 0);

        let mut buffer = Vec::new();
        write_trace_jsonl(&events, dropped, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let (parsed, parsed_dropped) = read_trace_jsonl(&text).unwrap();
        prop_assert_eq!(parsed, events);
        prop_assert_eq!(parsed_dropped, dropped);
    }

    /// Overflow always evicts the oldest events, the survivors are the
    /// most recent `capacity` in order, and `dropped_events` counts
    /// exactly the evictions, monotonically.
    #[test]
    fn ring_overflow_drops_oldest_first(
        capacity in 1usize..32,
        total in 0usize..128,
    ) {
        let recorder = FlightRecorder::new(capacity, TraceFilter::all());
        let mut last_dropped = 0u64;
        for i in 0..total {
            recorder.record(TraceKind::Act, i as u64, 0, Some(i as u32), &[], "");
            let dropped = recorder.dropped_events();
            prop_assert!(dropped >= last_dropped, "drop counter went backwards");
            last_dropped = dropped;
        }
        let (events, dropped) = recorder.snapshot();
        let expected_kept = total.min(capacity);
        prop_assert_eq!(events.len(), expected_kept);
        prop_assert_eq!(dropped, (total - expected_kept) as u64);
        // Survivors are exactly the newest `expected_kept`, oldest
        // first, with contiguous monotonic ids.
        for (offset, event) in events.iter().enumerate() {
            let expected_index = total - expected_kept + offset;
            prop_assert_eq!(event.id, expected_index as u64 + 1);
            prop_assert_eq!(event.row, Some(expected_index as u32));
        }
    }
}
