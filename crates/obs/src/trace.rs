//! Event-level flight recorder: a fixed-capacity ring of structured,
//! sim-time-stamped trace events with causal evidence links.
//!
//! Where [`crate::metrics`] answers *how often* (counters, histograms),
//! the flight recorder answers *why*: every layer of the stack — the
//! device model, the TRR engines, the controller, the fault injector,
//! and the methodology passes — appends [`TraceEvent`]s to one shared
//! [`FlightRecorder`], and verdict-level events carry the IDs of the
//! observations that justify them. The `utrr-trace` binary renders the
//! resulting chain (ACT → detection → targeted REF → flip/no-flip →
//! verdict) as a per-row causal timeline.
//!
//! Recording is strictly read-only with respect to the simulation:
//! emitting (or not emitting) an event never changes device state,
//! command streams, or stdout. When no recorder is installed the hot
//! path costs one relaxed atomic load (see
//! [`crate::MetricsRegistry::tracing_enabled`]).
//!
//! A [`TraceFilter`] keeps full-bank sweeps cheap: row-addressed events
//! are only stored when the row lies within [`TraceFilter::RADIUS`] of
//! a tracked row, while row-less events (verdicts, resets) always pass.
//! On overflow the ring drops its **oldest** events and counts them in
//! a monotonic `dropped_events` tally.
//!
//! Two exporters are provided: [`write_trace_jsonl`] (schema
//! [`TRACE_SCHEMA`], parse-back via [`read_trace_jsonl`]) and
//! [`write_chrome_trace`], whose output loads directly into
//! `chrome://tracing` or Perfetto.

use std::collections::{BTreeSet, VecDeque};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::jsonl::{parse_jsonl, quote, JsonValue};

/// Trace artifact schema tag, bumped on incompatible changes.
pub const TRACE_SCHEMA: &str = "utrr-trace/1";

/// Default ring capacity; enough for a full fig9-style single-column
/// run with a handful of tracked rows.
pub const DEFAULT_TRACE_CAPACITY: usize = 262_144;

/// What happened, at the granularity the causal timeline needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceKind {
    /// Row activation(s); batched hammers carry a `count` field.
    Act,
    /// A regular `REF` command covering a tracked row.
    Ref,
    /// The device materialised disturbance bit flips in a row.
    BitFlip,
    /// A methodology pass read a row back and classified it.
    ReadCheck,
    /// The TRR engine flagged an aggressor.
    TrrDetect,
    /// The TRR engine issued a targeted refresh to a victim.
    TrrRefresh,
    /// A counter-table entry was evicted.
    TrrEvict,
    /// A sampler-style engine sampled an activation.
    TrrSample,
    /// The controller reset TRR state (reset storm).
    TrrReset,
    /// The fault injector perturbed a command.
    FaultInjected,
    /// A robustness layer recovered from (or gave up on) a fault.
    Recovery,
    /// The Row Scout retried a validation check.
    ScoutRetry,
    /// A conclusion, carrying the event IDs that constitute its
    /// evidence.
    Verdict,
}

impl TraceKind {
    /// Stable wire name (used by both exporters).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Act => "act",
            TraceKind::Ref => "ref",
            TraceKind::BitFlip => "bit_flip",
            TraceKind::ReadCheck => "read_check",
            TraceKind::TrrDetect => "trr_detect",
            TraceKind::TrrRefresh => "trr_refresh",
            TraceKind::TrrEvict => "trr_evict",
            TraceKind::TrrSample => "trr_sample",
            TraceKind::TrrReset => "trr_reset",
            TraceKind::FaultInjected => "fault_injected",
            TraceKind::Recovery => "recovery",
            TraceKind::ScoutRetry => "scout_retry",
            TraceKind::Verdict => "verdict",
        }
    }

    /// Inverse of [`TraceKind::as_str`].
    pub fn parse(name: &str) -> Option<TraceKind> {
        Some(match name {
            "act" => TraceKind::Act,
            "ref" => TraceKind::Ref,
            "bit_flip" => TraceKind::BitFlip,
            "read_check" => TraceKind::ReadCheck,
            "trr_detect" => TraceKind::TrrDetect,
            "trr_refresh" => TraceKind::TrrRefresh,
            "trr_evict" => TraceKind::TrrEvict,
            "trr_sample" => TraceKind::TrrSample,
            "trr_reset" => TraceKind::TrrReset,
            "fault_injected" => TraceKind::FaultInjected,
            "recovery" => TraceKind::Recovery,
            "scout_retry" => TraceKind::ScoutRetry,
            "verdict" => TraceKind::Verdict,
            _ => return None,
        })
    }
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded moment. IDs are unique and monotonically increasing in
/// emission order, which is what lets [`TraceEvent::evidence`] reference
/// earlier events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Unique, monotonically increasing per recorder.
    pub id: u64,
    /// Simulated time of the event, nanoseconds.
    pub t_sim: u64,
    /// Event kind.
    pub kind: TraceKind,
    /// Bank the event belongs to (0 for bank-less events).
    pub bank: u32,
    /// Physical row index, when the event is row-addressed.
    pub row: Option<u32>,
    /// Extra integer attributes, in emission order.
    pub fields: Vec<(String, u64)>,
    /// Free-text annotation (outcome names, fault kinds, …).
    pub detail: String,
    /// IDs of earlier events constituting this event's evidence
    /// (populated for [`TraceKind::Verdict`] and `ReadCheck` chains).
    pub evidence: Vec<u64>,
}

/// Which rows a recorder should keep events for.
///
/// `RowHammer` effects are spatially local, so admitting every row
/// within [`TraceFilter::RADIUS`] of a tracked row captures the
/// aggressors and blast-radius neighbours of a tracked victim without
/// recording the whole bank. Row-less events always pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFilter {
    /// Tracked physical rows; `None` tracks every row.
    rows: Option<BTreeSet<u32>>,
}

impl TraceFilter {
    /// Rows this close to a tracked row are also admitted.
    pub const RADIUS: u32 = 2;

    /// A filter that admits every event.
    pub fn all() -> TraceFilter {
        TraceFilter { rows: None }
    }

    /// A filter tracking exactly `rows` (physical indices).
    pub fn for_rows(rows: impl IntoIterator<Item = u32>) -> TraceFilter {
        TraceFilter { rows: Some(rows.into_iter().collect()) }
    }

    /// Parses a `--trace-rows` spec: `all`, or a comma-separated list
    /// of physical rows and inclusive `A-B` ranges (`"41,100-104"`).
    pub fn parse(spec: &str) -> Result<TraceFilter, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec.eq_ignore_ascii_case("all") {
            return Ok(TraceFilter::all());
        }
        let mut rows = BTreeSet::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some((lo, hi)) = part.split_once('-') {
                let lo: u32 =
                    lo.trim().parse().map_err(|_| format!("bad row range start: {part:?}"))?;
                let hi: u32 =
                    hi.trim().parse().map_err(|_| format!("bad row range end: {part:?}"))?;
                if lo > hi {
                    return Err(format!("descending row range: {part:?}"));
                }
                if u64::from(hi) - u64::from(lo) > 1 << 20 {
                    return Err(format!("row range too large: {part:?}"));
                }
                rows.extend(lo..=hi);
            } else {
                rows.insert(part.parse().map_err(|_| format!("bad row: {part:?}"))?);
            }
        }
        if rows.is_empty() {
            return Err("trace row spec selected no rows".to_string());
        }
        Ok(TraceFilter { rows: Some(rows) })
    }

    /// Whether the filter tracks every row.
    pub fn tracks_all(&self) -> bool {
        self.rows.is_none()
    }

    /// Whether an event at `row` should be stored (`None` = row-less,
    /// always admitted).
    #[inline]
    pub fn admits(&self, row: Option<u32>) -> bool {
        match (&self.rows, row) {
            (None, _) | (_, None) => true,
            (Some(rows), Some(row)) => rows
                .range(row.saturating_sub(Self::RADIUS)..=row.saturating_add(Self::RADIUS))
                .next()
                .is_some(),
        }
    }

    /// Whether any tracked row falls within `RADIUS` of the half-open
    /// physical row range `[start, end)` — used to pre-gate per-`REF`
    /// events so untracked refresh sweeps cost nothing.
    #[inline]
    pub fn admits_range(&self, start: u32, end: u32) -> bool {
        if start >= end {
            return false;
        }
        match &self.rows {
            None => true,
            Some(rows) => rows
                .range(start.saturating_sub(Self::RADIUS)..end.saturating_add(Self::RADIUS))
                .next()
                .is_some(),
        }
    }
}

#[derive(Debug, Default)]
struct RecorderInner {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// The ring buffer all layers trace into. See the [module docs](self).
#[derive(Debug)]
pub struct FlightRecorder {
    inner: Mutex<RecorderInner>,
    filter: TraceFilter,
    capacity: usize,
    next_id: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (older events are
    /// dropped first), storing only what `filter` admits.
    pub fn new(capacity: usize, filter: TraceFilter) -> FlightRecorder {
        FlightRecorder {
            inner: Mutex::new(RecorderInner::default()),
            filter,
            capacity: capacity.max(1),
            next_id: AtomicU64::new(1),
        }
    }

    /// A recorder with the default capacity, tracking every row.
    pub fn unfiltered() -> FlightRecorder {
        FlightRecorder::new(DEFAULT_TRACE_CAPACITY, TraceFilter::all())
    }

    /// The row filter this recorder applies.
    pub fn filter(&self) -> &TraceFilter {
        &self.filter
    }

    /// Records an event; returns its ID, or `None` when the filter
    /// rejects it. IDs are allocated only for stored events, so they
    /// stay monotonic in the ring.
    pub fn record(
        &self,
        kind: TraceKind,
        t_sim: u64,
        bank: u32,
        row: Option<u32>,
        fields: &[(&str, u64)],
        detail: &str,
    ) -> Option<u64> {
        self.record_with_evidence(kind, t_sim, bank, row, fields, detail, &[])
    }

    /// [`FlightRecorder::record`] plus evidence links to earlier event
    /// IDs.
    #[allow(clippy::too_many_arguments)]
    pub fn record_with_evidence(
        &self,
        kind: TraceKind,
        t_sim: u64,
        bank: u32,
        row: Option<u32>,
        fields: &[(&str, u64)],
        detail: &str,
        evidence: &[u64],
    ) -> Option<u64> {
        if !self.filter.admits(row) {
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let event = TraceEvent {
            id,
            t_sim,
            kind,
            bank,
            row,
            fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            detail: detail.to_string(),
            evidence: evidence.to_vec(),
        };
        let mut inner = self.inner.lock().unwrap();
        if inner.events.len() >= self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
        Some(id)
    }

    /// Stored events in ring order (oldest first) plus how many were
    /// dropped to make room.
    pub fn snapshot(&self) -> (Vec<TraceEvent>, u64) {
        let inner = self.inner.lock().unwrap();
        (inner.events.iter().cloned().collect(), inner.dropped)
    }

    /// Number of events currently stored.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().events.len()
    }

    /// Whether nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Oldest-first drop tally (monotonic).
    pub fn dropped_events(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// The ID the next stored event will receive. Capture it as a
    /// watermark before a work phase, then select `id >= watermark`
    /// from [`FlightRecorder::snapshot`] to recover that phase's
    /// events.
    pub fn next_id_hint(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// IDs of the most recent events still in the ring that touch
    /// `row` (within the filter radius), oldest first, capped at
    /// `limit` — the evidence set for a per-row verdict.
    pub fn evidence_for_row(&self, row: u32, limit: usize) -> Vec<u64> {
        let inner = self.inner.lock().unwrap();
        let mut ids: Vec<u64> = inner
            .events
            .iter()
            .rev()
            .filter(|event| event.row.is_some_and(|r| r.abs_diff(row) <= TraceFilter::RADIUS))
            .take(limit)
            .map(|event| event.id)
            .collect();
        ids.reverse();
        ids
    }
}

fn u64_list(values: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
    out
}

fn pairs_list(fields: &[(String, u64)]) -> String {
    let mut out = String::from("[");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        out.push_str(&quote(k));
        out.push(',');
        out.push_str(&v.to_string());
        out.push(']');
    }
    out.push(']');
    out
}

/// Serialises events as `utrr-trace/1` JSONL: one meta line, then one
/// `{"type":"trace",…}` line per event, oldest first. `fields` is an
/// array of `[key,value]` pairs so emission order survives round-trip.
pub fn write_trace_jsonl(
    events: &[TraceEvent],
    dropped: u64,
    out: &mut impl io::Write,
) -> io::Result<()> {
    writeln!(
        out,
        "{{\"type\":\"meta\",\"schema\":\"{TRACE_SCHEMA}\",\
         \"events\":{},\"dropped\":{dropped}}}",
        events.len()
    )?;
    for event in events {
        let row = match event.row {
            Some(row) => row.to_string(),
            None => "null".to_string(),
        };
        writeln!(
            out,
            "{{\"type\":\"trace\",\"id\":{},\"t_sim_ns\":{},\"kind\":{},\
             \"bank\":{},\"row\":{row},\"fields\":{},\"detail\":{},\"evidence\":{}}}",
            event.id,
            event.t_sim,
            quote(event.kind.as_str()),
            event.bank,
            pairs_list(&event.fields),
            quote(&event.detail),
            u64_list(&event.evidence),
        )?;
    }
    Ok(())
}

/// [`write_trace_jsonl`] to a file.
pub fn write_trace_jsonl_to_path(
    events: &[TraceEvent],
    dropped: u64,
    path: &std::path::Path,
) -> io::Result<()> {
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    write_trace_jsonl(events, dropped, &mut file)?;
    io::Write::flush(&mut file)
}

/// Parses a `utrr-trace/1` JSONL artifact back into events plus the
/// dropped tally — the exact inverse of [`write_trace_jsonl`].
pub fn read_trace_jsonl(text: &str) -> Result<(Vec<TraceEvent>, u64), String> {
    let lines = parse_jsonl(text).map_err(|e| e.to_string())?;
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for (index, line) in lines.iter().enumerate() {
        let line_type = line
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("line {index}: missing type"))?;
        match line_type {
            "meta" => {
                let schema = line.get("schema").and_then(JsonValue::as_str).unwrap_or("");
                if schema != TRACE_SCHEMA {
                    return Err(format!("unsupported trace schema: {schema:?}"));
                }
                dropped = line.get("dropped").and_then(JsonValue::as_u64).unwrap_or(0);
            }
            "trace" => {
                let field = |key: &str| line.get(key).and_then(JsonValue::as_u64);
                let kind_name = line
                    .get("kind")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("line {index}: missing kind"))?;
                let kind = TraceKind::parse(kind_name)
                    .ok_or_else(|| format!("line {index}: unknown kind {kind_name:?}"))?;
                let row = match line.get("row") {
                    Some(JsonValue::Null) | None => None,
                    Some(value) => {
                        Some(value.as_u64().ok_or_else(|| format!("line {index}: bad row"))? as u32)
                    }
                };
                let fields = line
                    .get("fields")
                    .and_then(JsonValue::as_array)
                    .unwrap_or(&[])
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_array().filter(|p| p.len() == 2);
                        let key = pair.and_then(|p| p[0].as_str());
                        let value = pair.and_then(|p| p[1].as_u64());
                        match (key, value) {
                            (Some(k), Some(v)) => Ok((k.to_string(), v)),
                            _ => Err(format!("line {index}: bad field pair")),
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let evidence = line
                    .get("evidence")
                    .and_then(JsonValue::as_array)
                    .unwrap_or(&[])
                    .iter()
                    .map(|v| v.as_u64().ok_or_else(|| format!("line {index}: bad evidence")))
                    .collect::<Result<Vec<_>, _>>()?;
                events.push(TraceEvent {
                    id: field("id").ok_or_else(|| format!("line {index}: missing id"))?,
                    t_sim: field("t_sim_ns")
                        .ok_or_else(|| format!("line {index}: missing t_sim_ns"))?,
                    kind,
                    bank: field("bank").unwrap_or(0) as u32,
                    row,
                    fields,
                    detail: line
                        .get("detail")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("")
                        .to_string(),
                    evidence,
                });
            }
            other => return Err(format!("line {index}: unknown line type {other:?}")),
        }
    }
    Ok((events, dropped))
}

/// Serialises events in Chrome `trace_event` JSON (instant events,
/// `ts` in microseconds, one `tid` per bank) — loadable directly in
/// `chrome://tracing` or Perfetto.
pub fn write_chrome_trace(events: &[TraceEvent], out: &mut impl io::Write) -> io::Result<()> {
    write!(out, "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")?;
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            write!(out, ",")?;
        }
        // ts is microseconds with sub-µs precision kept as decimals.
        let ts = format!("{}.{:03}", event.t_sim / 1_000, event.t_sim % 1_000);
        write!(
            out,
            "\n{{\"name\":{},\"cat\":\"utrr\",\"ph\":\"i\",\"ts\":{ts},\
             \"pid\":1,\"tid\":{},\"s\":\"t\",\"args\":{{\"id\":{}",
            quote(event.kind.as_str()),
            event.bank,
            event.id,
        )?;
        if let Some(row) = event.row {
            write!(out, ",\"row\":{row}")?;
        }
        for (key, value) in &event.fields {
            write!(out, ",{}:{value}", quote(key))?;
        }
        if !event.detail.is_empty() {
            write!(out, ",\"detail\":{}", quote(&event.detail))?;
        }
        if !event.evidence.is_empty() {
            write!(out, ",\"evidence\":{}", u64_list(&event.evidence))?;
        }
        write!(out, "}}}}")?;
    }
    writeln!(out, "\n]}}")
}

/// [`write_chrome_trace`] to a file.
pub fn write_chrome_trace_to_path(events: &[TraceEvent], path: &std::path::Path) -> io::Result<()> {
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    write_chrome_trace(events, &mut file)?;
    io::Write::flush(&mut file)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(recorder: &FlightRecorder, kind: TraceKind, row: Option<u32>) -> Option<u64> {
        recorder.record(kind, 100, 0, row, &[("n", 1)], "")
    }

    #[test]
    fn filter_parses_lists_and_ranges() {
        let filter = TraceFilter::parse("41, 100-103").unwrap();
        assert!(filter.admits(Some(41)));
        assert!(filter.admits(Some(43))); // within radius 2
        assert!(!filter.admits(Some(44)));
        assert!(filter.admits(Some(101)));
        assert!(filter.admits(Some(105)));
        assert!(!filter.admits(Some(106)));
        assert!(filter.admits(None));
        assert!(TraceFilter::parse("all").unwrap().tracks_all());
        assert!(TraceFilter::parse("").unwrap().tracks_all());
        for bad in ["x", "5-1", "1-9999999999", "1-x"] {
            assert!(TraceFilter::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn filter_range_gate_matches_row_admission() {
        let filter = TraceFilter::parse("100").unwrap();
        assert!(filter.admits_range(98, 99)); // 98 within radius of 100
        assert!(filter.admits_range(0, 99));
        assert!(!filter.admits_range(0, 98));
        assert!(filter.admits_range(102, 200));
        assert!(!filter.admits_range(103, 200));
        assert!(!filter.admits_range(50, 50));
        assert!(TraceFilter::all().admits_range(0, 1));
    }

    #[test]
    fn ring_drops_oldest_first_and_counts() {
        let recorder = FlightRecorder::new(4, TraceFilter::all());
        for i in 0..10u32 {
            event(&recorder, TraceKind::Act, Some(i)).unwrap();
        }
        let (events, dropped) = recorder.snapshot();
        assert_eq!(dropped, 6);
        assert_eq!(recorder.dropped_events(), 6);
        let rows: Vec<u32> = events.iter().map(|e| e.row.unwrap()).collect();
        assert_eq!(rows, vec![6, 7, 8, 9]);
        let ids: Vec<u64> = events.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![7, 8, 9, 10]);
    }

    #[test]
    fn filtered_events_allocate_no_ids() {
        let recorder = FlightRecorder::new(16, TraceFilter::parse("5").unwrap());
        assert_eq!(event(&recorder, TraceKind::Act, Some(50)), None);
        assert_eq!(event(&recorder, TraceKind::Act, Some(5)), Some(1));
        assert_eq!(event(&recorder, TraceKind::Verdict, None), Some(2));
        assert_eq!(recorder.len(), 2);
    }

    #[test]
    fn evidence_for_row_is_recent_and_ordered() {
        let recorder = FlightRecorder::new(64, TraceFilter::all());
        for _ in 0..5 {
            event(&recorder, TraceKind::Act, Some(10)).unwrap();
        }
        event(&recorder, TraceKind::Act, Some(99)).unwrap();
        let ids = recorder.evidence_for_row(10, 3);
        assert_eq!(ids, vec![3, 4, 5]);
        assert_eq!(recorder.evidence_for_row(11, 10).len(), 5); // radius 2
        assert!(recorder.evidence_for_row(500, 10).is_empty());
    }

    #[test]
    fn jsonl_round_trip_is_identity() {
        let recorder = FlightRecorder::new(64, TraceFilter::all());
        recorder.record(TraceKind::Act, 1_000, 0, Some(41), &[("count", 5000)], "");
        recorder.record(TraceKind::TrrDetect, 2_000, 1, Some(41), &[("weight", 3)], "counter");
        recorder.record_with_evidence(
            TraceKind::Verdict,
            3_000,
            0,
            None,
            &[("hits", 2)],
            "ratio \"2\"",
            &[1, 2],
        );
        let (events, dropped) = recorder.snapshot();
        let mut buffer = Vec::new();
        write_trace_jsonl(&events, dropped, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let (parsed, parsed_dropped) = read_trace_jsonl(&text).unwrap();
        assert_eq!(parsed, events);
        assert_eq!(parsed_dropped, dropped);
    }

    #[test]
    fn read_rejects_bad_artifacts() {
        for bad in [
            "{\"type\":\"meta\",\"schema\":\"other/9\",\"events\":0,\"dropped\":0}",
            "{\"type\":\"trace\",\"id\":1}",
            "{\"type\":\"mystery\"}",
            "not json",
        ] {
            assert!(read_trace_jsonl(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_one_entry_per_event() {
        let recorder = FlightRecorder::new(64, TraceFilter::all());
        recorder.record(TraceKind::Act, 1_500, 2, Some(7), &[("count", 3)], "x\"y");
        recorder.record(TraceKind::Verdict, 2_500, 0, None, &[], "");
        let (events, _) = recorder.snapshot();
        let mut buffer = Vec::new();
        write_chrome_trace(&events, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let value = crate::jsonl::parse_json(text.trim()).unwrap();
        let entries = value.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].get("name").unwrap().as_str(), Some("act"));
        assert_eq!(entries[0].get("tid").unwrap().as_u64(), Some(2));
        assert_eq!(entries[0].get("args").unwrap().get("row").unwrap().as_u64(), Some(7));
        assert_eq!(entries[0].get("ts").unwrap().as_f64(), Some(1.5));
    }
}
