//! Named counters, gauges, log₂-binned histograms, and events.
//!
//! Handles returned by the registry are cheap `Arc` clones over atomic
//! cells: the hot path (a simulator command) touches only relaxed
//! atomics, never the registry lock, so parallel sweeps can hammer one
//! shared registry without contention.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::span::{SpanCollector, SpanGuard, SpanRecord};
use crate::trace::{FlightRecorder, TraceKind};

/// Number of histogram bins: bin 0 holds zeros, bin `b ≥ 1` holds
/// values in `[2^(b-1), 2^b)`, up to bin 64 for the top of the u64
/// range.
pub const BIN_COUNT: usize = 65;

/// Cap on buffered [`EventRecord`]s; later events are counted as
/// dropped rather than stored.
const EVENT_CAPACITY: usize = 65_536;

/// The bin a value falls into (log₂ binning).
#[inline]
pub fn bin_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Smallest value belonging to a bin.
#[inline]
pub fn bin_lower_bound(bin: usize) -> u64 {
    if bin == 0 {
        0
    } else {
        1u64 << (bin - 1)
    }
}

/// Largest value belonging to a bin.
#[inline]
pub fn bin_upper_bound(bin: usize) -> u64 {
    if bin == 0 {
        0
    } else if bin >= 64 {
        u64::MAX
    } else {
        (1u64 << bin) - 1
    }
}

/// A monotonically increasing named count.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A named last-written value.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, value: u64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// Raises the value to `candidate` if larger.
    #[inline]
    pub fn set_max(&self, candidate: u64) {
        self.cell.fetch_max(candidate, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    bins: [AtomicU64; BIN_COUNT],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            bins: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A named log₂-binned value distribution.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of the same value in O(1) — used by the
    /// simulator's batched command paths so a 5 000-activation hammer
    /// costs one update, not 5 000.
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        // The device hot paths record one histogram observation per
        // command, so every atomic here is paid millions of times per
        // run. The total count is derivable from the bins (each record
        // lands in exactly one), and min/max stabilize after the first
        // few observations — a relaxed load screens out the RMW in the
        // overwhelmingly common no-change case. Net: two RMWs per
        // record instead of five.
        let core = &*self.core;
        core.bins[bin_index(value)].fetch_add(n, Ordering::Relaxed);
        core.sum.fetch_add(value.wrapping_mul(n), Ordering::Relaxed);
        if core.min.load(Ordering::Relaxed) > value {
            core.min.fetch_min(value, Ordering::Relaxed);
        }
        if core.max.load(Ordering::Relaxed) < value {
            core.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.core;
        let bins: [u64; BIN_COUNT] = std::array::from_fn(|b| core.bins[b].load(Ordering::Relaxed));
        HistogramSnapshot {
            count: bins.iter().sum(),
            bins,
            sum: core.sum.load(Ordering::Relaxed),
            min: core.min.load(Ordering::Relaxed),
            max: core.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`Histogram`]'s state, supporting quantile
/// estimation and merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bin observation counts (see [`bin_index`]).
    pub bins: [u64; BIN_COUNT],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping).
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { bins: [0; BIN_COUNT], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0 ..= 1.0`). The estimate is the
    /// upper bound of the bin containing the true quantile, clamped to
    /// the observed min/max — so it is off by at most one bin.
    /// Returns `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        // The extremes are known exactly — q=0 must be the observed
        // min (rank clamping below would otherwise land it in the
        // first non-empty bin's *upper* bound) and q=1 the observed
        // max.
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        // The rank of the target observation, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (bin, &n) in self.bins.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bin_upper_bound(bin).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// The arithmetic mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Combines two snapshots, as if every observation of both had been
    /// recorded into one histogram.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            bins: std::array::from_fn(|b| self.bins[b] + other.bins[b]),
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }
}

/// A rare, high-value moment: a bit flip, a TRR detection. Timestamped
/// in simulated nanoseconds with integer coordinate fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Simulated time of the event, in nanoseconds.
    pub t_sim: u64,
    /// Event kind, dotted-path style (`"dram.bit_flip"`).
    pub kind: String,
    /// Coordinates and attributes (`("bank", 1), ("row", 4242)`, …).
    pub fields: Vec<(String, u64)>,
}

#[derive(Debug, Default)]
struct EventBuffer {
    events: Vec<EventRecord>,
    dropped: u64,
}

/// Relaxed mirror of the event buffer's fill level, maintained under
/// the buffer lock. Lets `event()` skip the mutex entirely once the
/// buffer is full — a long run emits far more events than the capacity
/// holds, and the overflow path must not serialize worker threads.
#[derive(Debug, Default)]
struct EventGate {
    full: AtomicBool,
    dropped: AtomicU64,
}

/// The central sink all layers report into.
///
/// Construction is cheap; the simulator gives every `Module` a private
/// registry by default so unit tests stay isolated, and callers that
/// want one artifact per run share a single `Arc<MetricsRegistry>`
/// across modules, controllers, and methodology passes.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    events: Mutex<EventBuffer>,
    event_gate: EventGate,
    spans: SpanCollector,
    detail: AtomicBool,
    recorder: OnceLock<Arc<FlightRecorder>>,
    tracing: AtomicBool,
}

impl MetricsRegistry {
    /// An empty registry with detail recording **off**.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty shared registry with detail recording **on** — the
    /// constructor run artifacts use.
    pub fn shared() -> Arc<Self> {
        let registry = Self::new();
        registry.set_detail(true);
        Arc::new(registry)
    }

    /// Whether detail instrumentation (histograms, events) should be
    /// recorded. Counters and spans are always live; hot paths consult
    /// this flag before histogram/event work so that metrics stay
    /// within the ≤5 % command-path overhead budget when detail is not
    /// wanted.
    #[inline]
    pub fn detail_enabled(&self) -> bool {
        self.detail.load(Ordering::Relaxed)
    }

    /// Turns detail instrumentation on or off.
    pub fn set_detail(&self, enabled: bool) {
        self.detail.store(enabled, Ordering::Relaxed);
    }

    /// The counter registered under `name`, creating it at zero on
    /// first use. The handle is lock-free; keep it around rather than
    /// re-looking it up in a loop.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge registered under `name` (see [`Self::counter`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram registered under `name` (see [`Self::counter`]).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Records an event if detail is enabled and the buffer has room;
    /// overflow is tallied, not stored.
    pub fn event(&self, kind: &str, t_sim: u64, fields: &[(&str, u64)]) {
        if !self.detail_enabled() {
            return;
        }
        // Once the buffer has filled, every further event is a drop —
        // tally it on the lock-free gate instead of serializing the
        // worker threads on the buffer mutex.
        if self.event_gate.full.load(Ordering::Relaxed) {
            self.event_gate.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut buffer = self.events.lock().unwrap();
        if buffer.events.len() >= EVENT_CAPACITY {
            self.event_gate.full.store(true, Ordering::Relaxed);
            buffer.dropped += 1;
            return;
        }
        buffer.events.push(EventRecord {
            t_sim,
            kind: kind.to_string(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
        if buffer.events.len() >= EVENT_CAPACITY {
            self.event_gate.full.store(true, Ordering::Relaxed);
        }
    }

    /// Installs a flight recorder and arms the tracing fast-gate.
    /// Returns `false` (leaving the existing recorder in place) if one
    /// was already installed.
    pub fn install_recorder(&self, recorder: Arc<FlightRecorder>) -> bool {
        let installed = self.recorder.set(recorder).is_ok();
        if installed {
            self.tracing.store(true, Ordering::Relaxed);
        }
        installed
    }

    /// Whether a flight recorder is installed. The hot-path gate: one
    /// relaxed load, false for every run without `--trace-out`, so
    /// tracing-off is a no-op.
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// The installed flight recorder, if any.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.get()
    }

    /// Records a trace event (see [`FlightRecorder::record`]); returns
    /// the event ID, or `None` when tracing is off or the row filter
    /// rejects it.
    #[inline]
    pub fn trace(
        &self,
        kind: TraceKind,
        t_sim: u64,
        bank: u32,
        row: Option<u32>,
        fields: &[(&str, u64)],
        detail: &str,
    ) -> Option<u64> {
        if !self.tracing_enabled() {
            return None;
        }
        self.recorder.get()?.record(kind, t_sim, bank, row, fields, detail)
    }

    /// [`MetricsRegistry::trace`] plus evidence links.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn trace_with_evidence(
        &self,
        kind: TraceKind,
        t_sim: u64,
        bank: u32,
        row: Option<u32>,
        fields: &[(&str, u64)],
        detail: &str,
        evidence: &[u64],
    ) -> Option<u64> {
        if !self.tracing_enabled() {
            return None;
        }
        self.recorder.get()?.record_with_evidence(kind, t_sim, bank, row, fields, detail, evidence)
    }

    /// Opens a span named `name` at simulated time `sim_now`; the
    /// parent is the innermost span still open on this thread. Prefer
    /// the [`crate::span!`] macro, which also attaches fields.
    pub fn span(self: &Arc<Self>, name: &str, sim_now: u64) -> SpanGuard {
        SpanGuard::open(Arc::clone(self), name, sim_now)
    }

    /// The span collector (used by [`SpanGuard`]).
    pub(crate) fn span_collector(&self) -> &SpanCollector {
        &self.spans
    }

    /// All counters, sorted by name.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.counters.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// All gauges, sorted by name.
    pub fn gauges_snapshot(&self) -> Vec<(String, u64)> {
        self.gauges.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// All histograms, sorted by name.
    pub fn histograms_snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        self.histograms.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.snapshot())).collect()
    }

    /// Buffered events in arrival order, plus how many overflowed.
    pub fn events_snapshot(&self) -> (Vec<EventRecord>, u64) {
        let buffer = self.events.lock().unwrap();
        (buffer.events.clone(), buffer.dropped + self.event_gate.dropped.load(Ordering::Relaxed))
    }

    /// Closed spans in completion order, plus how many the ring
    /// evicted.
    pub fn spans_snapshot(&self) -> (Vec<SpanRecord>, u64) {
        self.spans.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_one_cell() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(registry.counter("x").get(), 4);
        assert_eq!(registry.counters_snapshot(), vec![("x".to_string(), 4)]);
    }

    #[test]
    fn gauge_set_and_max() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("depth");
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn events_respect_detail_flag() {
        let registry = MetricsRegistry::new();
        registry.event("dram.bit_flip", 10, &[("bank", 1)]);
        assert_eq!(registry.events_snapshot().0.len(), 0);
        registry.set_detail(true);
        registry.event("dram.bit_flip", 10, &[("bank", 1), ("row", 42)]);
        let (events, dropped) = registry.events_snapshot();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "dram.bit_flip");
        assert_eq!(events[0].fields[1], ("row".to_string(), 42));
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let snapshot = HistogramSnapshot::default();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(snapshot.quantile(q), None);
        }
    }

    #[test]
    fn quantile_extremes_return_observed_min_and_max() {
        let h = Histogram::default();
        // All mass inside one log₂ bin ([64, 128)), min != max.
        h.record(70);
        h.record(100);
        h.record(120);
        let snapshot = h.snapshot();
        assert_eq!(snapshot.quantile(0.0), Some(70));
        assert_eq!(snapshot.quantile(1.0), Some(120));
        assert_eq!(snapshot.quantile(-0.5), Some(70));
        assert_eq!(snapshot.quantile(2.0), Some(120));
        // Interior quantiles stay within [min, max] for single-bin mass.
        let p50 = snapshot.quantile(0.5).unwrap();
        assert!((70..=120).contains(&p50), "p50={p50}");
    }

    #[test]
    fn quantile_single_observation_is_that_observation() {
        let h = Histogram::default();
        h.record(42);
        let snapshot = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(snapshot.quantile(q), Some(42), "q={q}");
        }
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let h = Histogram::default();
        for v in [0u64, 1, 3, 9, 100, 5_000, 1 << 40] {
            h.record(v);
        }
        let snapshot = h.snapshot();
        let mut last = 0u64;
        for i in 0..=100 {
            let q = f64::from(i) / 100.0;
            let value = snapshot.quantile(q).unwrap();
            assert!(value >= last, "quantile not monotone at q={q}");
            last = value;
        }
        assert_eq!(snapshot.quantile(0.0), Some(0));
        assert_eq!(snapshot.quantile(1.0), Some(1 << 40));
    }

    #[test]
    fn tracing_is_off_until_a_recorder_is_installed() {
        use crate::trace::{FlightRecorder, TraceFilter, TraceKind};
        let registry = MetricsRegistry::new();
        assert!(!registry.tracing_enabled());
        assert_eq!(registry.trace(TraceKind::Act, 0, 0, Some(1), &[], ""), None);
        let recorder = Arc::new(FlightRecorder::new(16, TraceFilter::all()));
        assert!(registry.install_recorder(Arc::clone(&recorder)));
        assert!(registry.tracing_enabled());
        assert_eq!(registry.trace(TraceKind::Act, 5, 0, Some(1), &[("n", 2)], ""), Some(1));
        assert_eq!(recorder.len(), 1);
        // Second install is rejected; first recorder keeps receiving.
        assert!(!registry.install_recorder(Arc::new(FlightRecorder::unfiltered())));
        registry.trace(TraceKind::Ref, 6, 0, None, &[], "");
        assert_eq!(recorder.len(), 2);
    }

    #[test]
    fn counters_are_safe_under_parallel_writers() {
        let registry = Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    let c = registry.counter("shared");
                    let h = registry.histogram("h");
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i % 128);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(registry.counter("shared").get(), 40_000);
        assert_eq!(registry.histogram("h").snapshot().count, 40_000);
    }
}
