//! Hierarchical timed regions with wall-clock and simulated-time
//! durations, collected into a bounded ring buffer.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

use crate::metrics::MetricsRegistry;

/// Cap on retained closed spans; older spans are evicted (and counted)
/// once the ring is full.
const SPAN_CAPACITY: usize = 16_384;

/// One closed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the registry, in open order starting at 1.
    pub id: u64,
    /// Id of the enclosing span open on the same thread, if any.
    pub parent: Option<u64>,
    /// Nesting depth (root spans are 0).
    pub depth: u32,
    /// Span name, dotted-path style (`"trr_analyzer.round"`).
    pub name: String,
    /// Attached `key = value` fields in attach order.
    pub fields: Vec<(String, u64)>,
    /// Wall-clock duration, in nanoseconds.
    pub wall_ns: u64,
    /// Simulated time when the span opened, in nanoseconds.
    pub sim_start: u64,
    /// Simulated time when the span closed; equals `sim_start` when the
    /// guard was dropped without [`SpanGuard::finish`].
    pub sim_end: u64,
}

#[derive(Debug, Default)]
struct SpanState {
    ring: VecDeque<SpanRecord>,
    /// Innermost-open span ids, tracked per thread so parallel sweeps
    /// sharing one registry get correct parents.
    stacks: HashMap<ThreadId, Vec<u64>>,
    next_id: u64,
    evicted: u64,
}

/// The bounded ring of closed spans plus per-thread open-span stacks.
#[derive(Debug, Default)]
pub struct SpanCollector {
    inner: Mutex<SpanState>,
}

impl SpanCollector {
    fn open(&self) -> (u64, Option<u64>, u32) {
        let mut state = self.inner.lock().unwrap();
        state.next_id += 1;
        let id = state.next_id;
        let stack = state.stacks.entry(std::thread::current().id()).or_default();
        let parent = stack.last().copied();
        let depth = stack.len() as u32;
        stack.push(id);
        (id, parent, depth)
    }

    fn close(&self, record: SpanRecord) {
        let mut state = self.inner.lock().unwrap();
        let thread = std::thread::current().id();
        if let Some(stack) = state.stacks.get_mut(&thread) {
            // Usually the innermost; scan handles out-of-order drops.
            if let Some(pos) = stack.iter().rposition(|&id| id == record.id) {
                stack.remove(pos);
            }
            if stack.is_empty() {
                state.stacks.remove(&thread);
            }
        }
        if state.ring.len() >= SPAN_CAPACITY {
            state.ring.pop_front();
            state.evicted += 1;
        }
        state.ring.push_back(record);
    }

    /// Closed spans in completion order, plus the eviction count.
    pub fn snapshot(&self) -> (Vec<SpanRecord>, u64) {
        let state = self.inner.lock().unwrap();
        (state.ring.iter().cloned().collect(), state.evicted)
    }
}

/// An open span; closes on drop. Created via
/// [`MetricsRegistry::span`] or the [`crate::span!`] macro.
#[derive(Debug)]
pub struct SpanGuard {
    registry: Arc<MetricsRegistry>,
    id: u64,
    parent: Option<u64>,
    depth: u32,
    name: String,
    fields: Vec<(String, u64)>,
    wall_start: Instant,
    sim_start: u64,
    closed: bool,
}

impl SpanGuard {
    pub(crate) fn open(registry: Arc<MetricsRegistry>, name: &str, sim_now: u64) -> Self {
        let (id, parent, depth) = registry.span_collector().open();
        SpanGuard {
            registry,
            id,
            parent,
            depth,
            name: name.to_string(),
            fields: Vec::new(),
            wall_start: Instant::now(),
            sim_start: sim_now,
            closed: false,
        }
    }

    /// Attaches (or overwrites) a `key = value` field.
    pub fn set_field(&mut self, key: &str, value: u64) {
        if let Some(slot) = self.fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.fields.push((key.to_string(), value));
        }
    }

    /// The span's registry-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Closes the span, recording `sim_now` as its simulated end time.
    pub fn finish(mut self, sim_now: u64) {
        self.close(sim_now);
    }

    fn close(&mut self, sim_end: u64) {
        if self.closed {
            return;
        }
        self.closed = true;
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            depth: self.depth,
            name: std::mem::take(&mut self.name),
            fields: std::mem::take(&mut self.fields),
            wall_ns: self.wall_start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            sim_start: self.sim_start,
            sim_end,
        };
        self.registry.span_collector().close(record);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let sim_start = self.sim_start;
        self.close(sim_start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry::new())
    }

    #[test]
    fn nesting_produces_parent_links_and_depths() {
        let registry = registry();
        {
            let outer = registry.span("outer", 100);
            let outer_id = outer.id();
            {
                let mut inner = registry.span("inner", 150);
                inner.set_field("round", 3);
                assert_eq!(inner.id(), outer_id + 1);
                inner.finish(180);
            }
            outer.finish(200);
        }
        let (spans, evicted) = registry.spans_snapshot();
        assert_eq!(evicted, 0);
        assert_eq!(spans.len(), 2);
        let inner = &spans[0];
        let outer = &spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!((inner.depth, outer.depth), (1, 0));
        assert_eq!((inner.sim_start, inner.sim_end), (150, 180));
        assert_eq!(inner.fields, vec![("round".to_string(), 3)]);
        assert_eq!(outer.parent, None);
        assert_eq!((outer.sim_start, outer.sim_end), (100, 200));
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let registry = registry();
        let root = registry.span("root", 0);
        let root_id = root.id();
        for _ in 0..3 {
            registry.span("child", 1).finish(2);
        }
        root.finish(10);
        let (spans, _) = registry.spans_snapshot();
        let children: Vec<_> = spans.iter().filter(|s| s.name == "child").collect();
        assert_eq!(children.len(), 3);
        assert!(children.iter().all(|s| s.parent == Some(root_id)));
    }

    #[test]
    fn threads_get_independent_parent_stacks() {
        let registry = registry();
        let root = registry.span("root", 0);
        let handle = {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || registry.span("worker", 5).finish(6))
        };
        handle.join().unwrap();
        root.finish(10);
        let (spans, _) = registry.spans_snapshot();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        // The worker thread never opened "root", so its span is a root.
        assert_eq!(worker.parent, None);
        assert_eq!(worker.depth, 0);
    }

    #[test]
    fn ring_is_bounded() {
        let registry = registry();
        for i in 0..(SPAN_CAPACITY as u64 + 10) {
            registry.span("s", i).finish(i);
        }
        let (spans, evicted) = registry.spans_snapshot();
        assert_eq!(spans.len(), SPAN_CAPACITY);
        assert_eq!(evicted, 10);
        assert_eq!(spans.last().unwrap().sim_start, SPAN_CAPACITY as u64 + 9);
    }

    #[test]
    fn span_macro_attaches_fields() {
        let registry = registry();
        crate::span!(registry, "macro_span", 42, round = 7u32, bank = 2u8).finish(50);
        let (spans, _) = registry.spans_snapshot();
        assert_eq!(spans[0].name, "macro_span");
        assert_eq!(spans[0].fields, vec![("round".to_string(), 7), ("bank".to_string(), 2)]);
    }
}
