//! JSONL run artifacts: one JSON object per line, hand-rolled (no
//! serde), plus a minimal JSON parser so tests can read artifacts back.
//!
//! Line shapes (`type` field first so artifacts grep and diff well):
//!
//! ```text
//! {"type":"meta","schema":"utrr-obs/1","spans_evicted":0,"events_dropped":0}
//! {"type":"counter","name":"dram.cmd.act","value":5000}
//! {"type":"gauge","name":"scout.groups_live","value":4}
//! {"type":"histogram","name":"dram.latency.act_ns","count":…,"sum":…,
//!  "min":…,"max":…,"mean":…,"p50":…,"p90":…,"p99":…,"bins":[[lower,count],…]}
//! {"type":"span","id":3,"parent":2,"depth":1,"name":"trr_analyzer.round",
//!  "wall_ns":…,"sim_start_ns":…,"sim_end_ns":…,"fields":{"round":4}}
//! {"type":"event","t_sim_ns":…,"kind":"dram.bit_flip","fields":{"bank":1,"row":4242}}
//! ```
//!
//! Counters, gauges, and histograms are emitted in name order, so two
//! runs of the same workload produce line-diffable artifacts.

use std::fmt::Write as _;
use std::io::{self, Write};

use crate::metrics::{HistogramSnapshot, MetricsRegistry};

/// Artifact schema tag, bumped on incompatible line-shape changes.
pub const SCHEMA: &str = "utrr-obs/1";

/// Serialises the registry's full state as JSONL into `out`.
pub fn write_jsonl(registry: &MetricsRegistry, out: &mut impl Write) -> io::Result<()> {
    let (spans, spans_evicted) = registry.spans_snapshot();
    let (events, events_dropped) = registry.events_snapshot();

    writeln!(
        out,
        "{{\"type\":\"meta\",\"schema\":\"{SCHEMA}\",\
         \"spans_evicted\":{spans_evicted},\"events_dropped\":{events_dropped}}}"
    )?;

    for (name, value) in registry.counters_snapshot() {
        writeln!(out, "{{\"type\":\"counter\",\"name\":{},\"value\":{value}}}", quote(&name))?;
    }
    for (name, value) in registry.gauges_snapshot() {
        writeln!(out, "{{\"type\":\"gauge\",\"name\":{},\"value\":{value}}}", quote(&name))?;
    }
    for (name, snapshot) in registry.histograms_snapshot() {
        writeln!(out, "{}", histogram_line(&name, &snapshot))?;
    }
    for span in &spans {
        let parent = match span.parent {
            Some(id) => id.to_string(),
            None => "null".to_string(),
        };
        writeln!(
            out,
            "{{\"type\":\"span\",\"id\":{},\"parent\":{parent},\"depth\":{},\
             \"name\":{},\"wall_ns\":{},\"sim_start_ns\":{},\"sim_end_ns\":{},\
             \"fields\":{}}}",
            span.id,
            span.depth,
            quote(&span.name),
            span.wall_ns,
            span.sim_start,
            span.sim_end,
            fields_object(&span.fields),
        )?;
    }
    for event in &events {
        writeln!(
            out,
            "{{\"type\":\"event\",\"t_sim_ns\":{},\"kind\":{},\"fields\":{}}}",
            event.t_sim,
            quote(&event.kind),
            fields_object(&event.fields),
        )?;
    }
    Ok(())
}

/// Serialises the registry to a file at `path` (parent directories must
/// exist).
pub fn write_jsonl_to_path(registry: &MetricsRegistry, path: &std::path::Path) -> io::Result<()> {
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    write_jsonl(registry, &mut file)?;
    file.flush()
}

fn histogram_line(name: &str, snapshot: &HistogramSnapshot) -> String {
    let mut line = String::new();
    let _ = write!(
        line,
        "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{}",
        quote(name),
        snapshot.count,
        snapshot.sum,
    );
    if snapshot.count == 0 {
        let _ = write!(line, ",\"min\":null,\"max\":null,\"mean\":null");
        let _ = write!(line, ",\"p50\":null,\"p90\":null,\"p99\":null");
    } else {
        let _ = write!(line, ",\"min\":{},\"max\":{}", snapshot.min, snapshot.max);
        let _ = write!(line, ",\"mean\":{}", fmt_f64(snapshot.mean().unwrap_or(0.0)));
        for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
            let _ = write!(line, ",\"{label}\":{}", snapshot.quantile(q).unwrap_or(0));
        }
    }
    line.push_str(",\"bins\":[");
    let mut first = true;
    for (bin, &count) in snapshot.bins.iter().enumerate() {
        if count == 0 {
            continue;
        }
        if !first {
            line.push(',');
        }
        first = false;
        let _ = write!(line, "[{},{count}]", crate::metrics::bin_lower_bound(bin));
    }
    line.push_str("]}");
    line
}

fn fields_object(fields: &[(String, u64)]) -> String {
    let mut object = String::from("{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            object.push(',');
        }
        let _ = write!(object, "{}:{value}", quote(key));
    }
    object.push('}');
    object
}

fn fmt_f64(value: f64) -> String {
    if value.is_finite() {
        // `{:?}` round-trips f64 through parse exactly.
        format!("{value:?}")
    } else {
        "null".to_string()
    }
}

/// Quotes and escapes a string per JSON.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value (minimal model: all numbers are `f64`, exact for
/// integers up to 2⁵³ — far beyond any count this workspace produces).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, keys sorted.
    Obj(std::collections::BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Why parsing failed: a message and the byte offset it refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// What was expected or found.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses one JSON document (as emitted by [`write_jsonl`]; strings use
/// the escapes [`quote`] produces plus `\u` escapes, and `\/`).
pub fn parse_json(input: &str) -> Result<JsonValue, JsonParseError> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing input after document"));
    }
    Ok(value)
}

/// Parses a whole JSONL artifact, one [`JsonValue`] per non-empty line.
pub fn parse_jsonl(input: &str) -> Result<Vec<JsonValue>, JsonParseError> {
    input.lines().filter(|line| !line.trim().is_empty()).map(parse_json).collect()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonParseError {
        JsonParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain (non-escape, non-quote) bytes.
            while let Some(byte) = self.peek() {
                if byte == b'"' || byte == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.error("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use std::sync::Arc;

    #[test]
    fn quote_escapes_specials() {
        assert_eq!(quote("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.set_detail(true);
        registry.counter("dram.cmd.act").add(5000);
        registry.gauge("depth").set(3);
        let h = registry.histogram("lat");
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        registry.event("dram.bit_flip", 77, &[("bank", 1), ("row", 4242)]);
        {
            let outer = registry.span("outer", 10);
            registry.span("inner", 12).finish(20);
            outer.finish(30);
        }

        let mut buffer = Vec::new();
        write_jsonl(&registry, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let lines = parse_jsonl(&text).unwrap();

        let kind = |v: &JsonValue| v.get("type").unwrap().as_str().unwrap().to_string();
        assert_eq!(kind(&lines[0]), "meta");
        assert_eq!(lines[0].get("schema").unwrap().as_str(), Some(SCHEMA));

        let counter = lines.iter().find(|l| kind(l) == "counter").unwrap();
        assert_eq!(counter.get("name").unwrap().as_str(), Some("dram.cmd.act"));
        assert_eq!(counter.get("value").unwrap().as_u64(), Some(5000));

        let histogram = lines.iter().find(|l| kind(l) == "histogram").unwrap();
        assert_eq!(histogram.get("count").unwrap().as_u64(), Some(5));
        assert!(histogram.get("p50").unwrap().as_u64().is_some());
        assert!(!histogram.get("bins").unwrap().as_array().unwrap().is_empty());

        let spans: Vec<_> = lines.iter().filter(|l| kind(l) == "span").collect();
        assert_eq!(spans.len(), 2);
        let inner =
            spans.iter().find(|s| s.get("name").unwrap().as_str() == Some("inner")).unwrap();
        assert!(inner.get("parent").unwrap().as_u64().is_some());

        let event = lines.iter().find(|l| kind(l) == "event").unwrap();
        assert_eq!(event.get("kind").unwrap().as_str(), Some("dram.bit_flip"));
        assert_eq!(event.get("fields").unwrap().get("row").unwrap().as_u64(), Some(4242));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "\"unterminated", "nul", "1 2"] {
            assert!(parse_json(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn parser_handles_nested_values_and_escapes() {
        let value = parse_json(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":null,"e":true}}"#).unwrap();
        assert_eq!(value.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-3.0));
        assert_eq!(value.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(value.get("b").unwrap().get("d"), Some(&JsonValue::Null));
        assert_eq!(value.get("b").unwrap().get("e"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn empty_histogram_serialises_with_null_stats() {
        let registry = MetricsRegistry::new();
        registry.histogram("empty");
        let mut buffer = Vec::new();
        write_jsonl(&registry, &mut buffer).unwrap();
        let lines = parse_jsonl(&String::from_utf8(buffer).unwrap()).unwrap();
        let histogram =
            lines.iter().find(|l| l.get("type").unwrap().as_str() == Some("histogram")).unwrap();
        assert_eq!(histogram.get("p50"), Some(&JsonValue::Null));
        assert_eq!(histogram.get("count").unwrap().as_u64(), Some(0));
    }
}
