//! Workspace-wide instrumentation layer.
//!
//! Every layer of the U-TRR reproduction — the device model, the SoftMC
//! controller, the methodology passes, and the bench binaries — reports
//! into one [`MetricsRegistry`]:
//!
//! - **Counters and gauges** ([`Counter`], [`Gauge`]): named atomic
//!   cells. Handles are `Arc`-backed and lock-free on the hot path, so
//!   parallel sweeps can share one registry; the registry lock is taken
//!   only at registration time.
//! - **Histograms** ([`Histogram`]): log₂-binned distributions with
//!   count/sum/min/max and quantile estimates accurate to one bin.
//! - **Spans** ([`SpanGuard`], [`span!`]): hierarchical timed regions
//!   carrying both wall-clock and simulated-time durations, kept in a
//!   bounded ring buffer.
//! - **Events**: rare, high-value moments (a bit flip with its
//!   bank/row/bit coordinates, a TRR detection) timestamped in
//!   simulated time.
//! - **Flight recorder** ([`FlightRecorder`], [`trace`]): an opt-in,
//!   row-filterable ring of causal trace events with verdict
//!   provenance, exported as `utrr-trace/1` JSONL or Chrome
//!   `trace_event` JSON.
//!
//! [`jsonl::write_jsonl`] serialises all of the above as one JSON
//! object per line — diffable across runs and parseable without serde
//! via [`jsonl::parse_json`]. [`report::render_summary`] renders the
//! human-readable end-of-run table the bench binaries print.
//!
//! The crate has **no external dependencies**: serialization is
//! hand-rolled and all synchronisation is `std`.

pub mod jsonl;
pub mod metrics;
pub mod report;
pub mod span;
pub mod trace;

pub use metrics::{
    bin_index, bin_lower_bound, bin_upper_bound, Counter, EventRecord, Gauge, Histogram,
    HistogramSnapshot, MetricsRegistry, BIN_COUNT,
};
pub use span::{SpanGuard, SpanRecord};
pub use trace::{
    FlightRecorder, TraceEvent, TraceFilter, TraceKind, DEFAULT_TRACE_CAPACITY, TRACE_SCHEMA,
};

/// Opens a span on a registry: `span!(reg, "name", sim_now, key = val, …)`.
///
/// `sim_now` is the current simulated time in nanoseconds; extra
/// `key = value` pairs become span fields (values convert `as u64`).
/// The returned [`SpanGuard`] closes the span when dropped, or — to
/// also record the simulated-time duration — via
/// [`SpanGuard::finish`] with the simulated clock at close.
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:expr, $sim_now:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut guard = $crate::MetricsRegistry::span(&$registry, $name, $sim_now);
        $(guard.set_field(stringify!($key), $value as u64);)*
        guard
    }};
}
