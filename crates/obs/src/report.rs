//! Human-readable end-of-run summary, printed by the bench binaries
//! alongside the JSONL artifact.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::MetricsRegistry;

/// Renders counters, histograms, and per-span-name aggregates as an
/// aligned plain-text table. Empty sections are omitted; an empty
/// registry renders an explicit placeholder.
pub fn render_summary(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    let counters = registry.counters_snapshot();
    let gauges = registry.gauges_snapshot();
    let histograms: Vec<_> = registry
        .histograms_snapshot()
        .into_iter()
        .filter(|(_, snapshot)| snapshot.count > 0)
        .collect();
    let (spans, evicted) = registry.spans_snapshot();
    let (events, dropped) = registry.events_snapshot();

    if counters.is_empty() && gauges.is_empty() && histograms.is_empty() && spans.is_empty() {
        return "metrics: (none recorded)\n".to_string();
    }

    let name_width = counters
        .iter()
        .map(|(name, _)| name.len())
        .chain(gauges.iter().map(|(name, _)| name.len()))
        .chain(histograms.iter().map(|(name, _)| name.len()))
        .max()
        .unwrap_or(0)
        .max(12);

    if !counters.is_empty() {
        let _ = writeln!(out, "counters");
        for (name, value) in &counters {
            let _ = writeln!(out, "  {name:<name_width$} {value:>14}");
        }
    }
    if !gauges.is_empty() {
        let _ = writeln!(out, "gauges");
        for (name, value) in &gauges {
            let _ = writeln!(out, "  {name:<name_width$} {value:>14}");
        }
    }
    if !histograms.is_empty() {
        let _ = writeln!(
            out,
            "histograms ({:<width$}  {:>10} {:>12} {:>12} {:>12})",
            "name",
            "count",
            "p50",
            "p99",
            "max",
            width = name_width.saturating_sub(1),
        );
        for (name, snapshot) in &histograms {
            let _ = writeln!(
                out,
                "  {name:<name_width$} {:>10} {:>12} {:>12} {:>12}",
                snapshot.count,
                snapshot.quantile(0.50).unwrap_or(0),
                snapshot.quantile(0.99).unwrap_or(0),
                snapshot.max,
            );
        }
    }

    if !spans.is_empty() {
        // Aggregate by span name: count, total wall time, total sim time.
        let mut by_name: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
        for span in &spans {
            let entry = by_name.entry(span.name.as_str()).or_default();
            entry.0 += 1;
            entry.1 += span.wall_ns;
            entry.2 += span.sim_end.saturating_sub(span.sim_start);
        }
        let span_width = by_name.keys().map(|name| name.len()).max().unwrap_or(0).max(12);
        let _ = writeln!(
            out,
            "spans      ({:<width$}  {:>10} {:>12} {:>14})",
            "name",
            "count",
            "wall_ms",
            "sim_ms",
            width = span_width.saturating_sub(1),
        );
        for (name, (count, wall_ns, sim_ns)) in &by_name {
            let _ = writeln!(
                out,
                "  {name:<span_width$} {count:>10} {:>12.3} {:>14.3}",
                *wall_ns as f64 / 1e6,
                *sim_ns as f64 / 1e6,
            );
        }
        if evicted > 0 {
            let _ = writeln!(out, "  (ring evicted {evicted} older spans)");
        }
    }

    if !events.is_empty() || dropped > 0 {
        let mut by_kind: BTreeMap<&str, u64> = BTreeMap::new();
        for event in &events {
            *by_kind.entry(event.kind.as_str()).or_default() += 1;
        }
        let _ = writeln!(out, "events");
        for (kind, count) in &by_kind {
            let _ = writeln!(out, "  {kind:<name_width$} {count:>14}");
        }
        if dropped > 0 {
            let _ = writeln!(out, "  (buffer dropped {dropped} events)");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_registry_renders_placeholder() {
        assert_eq!(render_summary(&MetricsRegistry::new()), "metrics: (none recorded)\n");
    }

    #[test]
    fn summary_lists_every_section() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.set_detail(true);
        registry.counter("dram.cmd.act").add(9);
        registry.gauge("live").set(2);
        registry.histogram("lat").record(100);
        registry.span("pass", 0).finish(1_000_000);
        registry.event("dram.bit_flip", 5, &[("row", 1)]);
        let summary = render_summary(&registry);
        for needle in [
            "counters",
            "dram.cmd.act",
            "gauges",
            "histograms",
            "lat",
            "spans",
            "pass",
            "events",
            "dram.bit_flip",
        ] {
            assert!(summary.contains(needle), "missing {needle} in:\n{summary}");
        }
    }
}
