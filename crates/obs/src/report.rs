//! Human-readable end-of-run summary, printed by the bench binaries
//! alongside the JSONL artifact.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::MetricsRegistry;

/// Renders counters, histograms, and per-span-name aggregates as an
/// aligned plain-text table. Empty sections are omitted; an empty
/// registry renders an explicit placeholder.
pub fn render_summary(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    let counters = registry.counters_snapshot();
    let gauges = registry.gauges_snapshot();
    let histograms: Vec<_> = registry
        .histograms_snapshot()
        .into_iter()
        .filter(|(_, snapshot)| snapshot.count > 0)
        .collect();
    let (spans, evicted) = registry.spans_snapshot();
    let (events, dropped) = registry.events_snapshot();

    if counters.is_empty() && gauges.is_empty() && histograms.is_empty() && spans.is_empty() {
        return "metrics: (none recorded)\n".to_string();
    }

    let name_width = counters
        .iter()
        .map(|(name, _)| name.len())
        .chain(gauges.iter().map(|(name, _)| name.len()))
        .chain(histograms.iter().map(|(name, _)| name.len()))
        .max()
        .unwrap_or(0)
        .max(12);

    if !counters.is_empty() {
        let _ = writeln!(out, "counters");
        for (name, value) in &counters {
            let _ = writeln!(out, "  {name:<name_width$} {value:>14}");
        }
    }
    if !gauges.is_empty() {
        let _ = writeln!(out, "gauges");
        for (name, value) in &gauges {
            let _ = writeln!(out, "  {name:<name_width$} {value:>14}");
        }
    }
    if !histograms.is_empty() {
        let _ = writeln!(
            out,
            "histograms ({:<width$}  {:>10} {:>12} {:>12} {:>12})",
            "name",
            "count",
            "p50",
            "p99",
            "max",
            width = name_width.saturating_sub(1),
        );
        for (name, snapshot) in &histograms {
            let _ = writeln!(
                out,
                "  {name:<name_width$} {:>10} {:>12} {:>12} {:>12}",
                snapshot.count,
                snapshot.quantile(0.50).unwrap_or(0),
                snapshot.quantile(0.99).unwrap_or(0),
                snapshot.max,
            );
        }
    }

    if !spans.is_empty() {
        // Aggregate by span name: count, total wall time, total sim time.
        let mut by_name: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
        for span in &spans {
            let entry = by_name.entry(span.name.as_str()).or_default();
            entry.0 += 1;
            entry.1 += span.wall_ns;
            entry.2 += span.sim_end.saturating_sub(span.sim_start);
        }
        let span_width = by_name.keys().map(|name| name.len()).max().unwrap_or(0).max(12);
        let _ = writeln!(
            out,
            "spans      ({:<width$}  {:>10} {:>12} {:>14})",
            "name",
            "count",
            "wall_ms",
            "sim_ms",
            width = span_width.saturating_sub(1),
        );
        for (name, (count, wall_ns, sim_ns)) in &by_name {
            let _ = writeln!(
                out,
                "  {name:<span_width$} {count:>10} {:>12.3} {:>14.3}",
                *wall_ns as f64 / 1e6,
                *sim_ns as f64 / 1e6,
            );
        }
        if evicted > 0 {
            let _ = writeln!(out, "  (ring evicted {evicted} older spans)");
        }
    }

    // Fault-injection vs recovery, paired in one place: the injected.*
    // counters say what the fault layer did to the run, the recovery
    // counters say what the robustness layers absorbed. Both already
    // appear in the raw counter list, but only side by side does the
    // balance read at a glance.
    let injected: Vec<_> =
        counters.iter().filter(|(name, _)| name.starts_with("faults.injected.")).collect();
    let recovery: Vec<_> = counters
        .iter()
        .filter(|(name, _)| {
            name.starts_with("utrr.robust.")
                || name == "utrr.rowscout.retries"
                || name == "utrr.rowscout.quarantined"
                || name == "utrr.schedule.retries"
        })
        .collect();
    if injected.iter().any(|(_, v)| *v > 0) || recovery.iter().any(|(_, v)| *v > 0) {
        let _ = writeln!(out, "faults (injected vs recovered)");
        for (name, value) in &injected {
            let _ = writeln!(out, "  inject   {name:<name_width$} {value:>14}");
        }
        for (name, value) in &recovery {
            let _ = writeln!(out, "  recover  {name:<name_width$} {value:>14}");
        }
    }

    // The adaptive recovery ladder gets its own section: these counters
    // (vote widenings, relocations, re-profiles, budget trips) say how
    // hard the pipeline had to fight to produce its verdict. Quiet
    // ladders render nothing, so sub-hostile summaries are unchanged.
    let ladder: Vec<_> =
        counters.iter().filter(|(name, _)| name.starts_with("utrr.recovery.")).collect();
    if ladder.iter().any(|(_, v)| *v > 0) {
        let _ = writeln!(out, "recovery ladder");
        for (name, value) in &ladder {
            let _ = writeln!(out, "  {name:<name_width$} {value:>14}");
        }
    }

    // The bypass fuzzer's search balance: candidates drawn, candidate ×
    // engine evaluations, bypasses found, and how many candidates were
    // elite mutations rather than fresh samples. The hit rate is the
    // line that matters when tuning the sampling envelopes. Runs
    // without a fuzz phase render nothing.
    let fuzz: Vec<_> =
        counters.iter().filter(|(name, _)| name.starts_with("attacks.fuzz.")).collect();
    if fuzz.iter().any(|(_, v)| *v > 0) {
        let _ = writeln!(out, "fuzz search");
        for (name, value) in &fuzz {
            let _ = writeln!(out, "  {name:<name_width$} {value:>14}");
        }
        let get = |suffix: &str| {
            fuzz.iter().find(|(name, _)| name == &format!("attacks.fuzz.{suffix}")).map(|(_, v)| *v)
        };
        if let (Some(evals), Some(bypasses)) = (get("evals"), get("bypasses")) {
            if evals > 0 {
                let _ = writeln!(
                    out,
                    "  {:<name_width$} {:>13.1}%",
                    "bypass hit rate",
                    100.0 * bypasses as f64 / evals as f64,
                );
            }
        }
    }

    if !events.is_empty() || dropped > 0 {
        let mut by_kind: BTreeMap<&str, u64> = BTreeMap::new();
        for event in &events {
            *by_kind.entry(event.kind.as_str()).or_default() += 1;
        }
        let _ = writeln!(out, "events");
        for (kind, count) in &by_kind {
            let _ = writeln!(out, "  {kind:<name_width$} {count:>14}");
        }
        if dropped > 0 {
            let _ = writeln!(out, "  (buffer dropped {dropped} events)");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_registry_renders_placeholder() {
        assert_eq!(render_summary(&MetricsRegistry::new()), "metrics: (none recorded)\n");
    }

    #[test]
    fn fault_and_recovery_counters_get_a_paired_section() {
        let registry = MetricsRegistry::new();
        registry.counter("faults.injected.total").add(7);
        registry.counter("faults.injected.read_flips").add(4);
        registry.counter("utrr.robust.read_disagreements").add(3);
        registry.counter("utrr.schedule.retries").add(1);
        let summary = render_summary(&registry);
        assert!(summary.contains("faults (injected vs recovered)"), "missing section:\n{summary}");
        assert!(summary.contains("inject   faults.injected.read_flips"), "{summary}");
        assert!(summary.contains("recover  utrr.robust.read_disagreements"), "{summary}");
        assert!(summary.contains("recover  utrr.schedule.retries"), "{summary}");
    }

    #[test]
    fn recovery_ladder_counters_get_their_own_section() {
        let registry = MetricsRegistry::new();
        registry.counter("utrr.recovery.vote_widenings").add(2);
        registry.counter("utrr.recovery.budget_trips").add(1);
        let summary = render_summary(&registry);
        assert!(summary.contains("recovery ladder"), "missing section:\n{summary}");
        assert!(summary.contains("utrr.recovery.vote_widenings"), "{summary}");
    }

    #[test]
    fn quiet_ladder_renders_no_section() {
        let registry = MetricsRegistry::new();
        registry.counter("utrr.recovery.vote_widenings");
        registry.counter("dram.cmd.act").add(1);
        assert!(!render_summary(&registry).contains("recovery ladder"));
    }

    #[test]
    fn fuzz_counters_get_a_section_with_hit_rate() {
        let registry = MetricsRegistry::new();
        registry.counter("attacks.fuzz.candidates").add(64);
        registry.counter("attacks.fuzz.evals").add(192);
        registry.counter("attacks.fuzz.bypasses").add(6);
        registry.counter("attacks.fuzz.mutations").add(8);
        let summary = render_summary(&registry);
        assert!(summary.contains("fuzz search"), "missing section:\n{summary}");
        assert!(summary.contains("attacks.fuzz.bypasses"), "{summary}");
        assert!(summary.contains("bypass hit rate"), "{summary}");
        assert!(summary.contains("3.1%"), "6/192 should render as 3.1%:\n{summary}");
    }

    #[test]
    fn quiet_fuzzer_renders_no_section() {
        let registry = MetricsRegistry::new();
        registry.counter("attacks.fuzz.candidates");
        registry.counter("dram.cmd.act").add(1);
        assert!(!render_summary(&registry).contains("fuzz search"));
    }

    #[test]
    fn fault_section_absent_when_all_zero() {
        let registry = MetricsRegistry::new();
        registry.counter("faults.injected.total");
        registry.counter("dram.cmd.act").add(1);
        let summary = render_summary(&registry);
        assert!(!summary.contains("faults (injected vs recovered)"), "{summary}");
    }

    #[test]
    fn summary_lists_every_section() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.set_detail(true);
        registry.counter("dram.cmd.act").add(9);
        registry.gauge("live").set(2);
        registry.histogram("lat").record(100);
        registry.span("pass", 0).finish(1_000_000);
        registry.event("dram.bit_flip", 5, &[("row", 1)]);
        let summary = render_summary(&registry);
        for needle in [
            "counters",
            "dram.cmd.act",
            "gauges",
            "histograms",
            "lat",
            "spans",
            "pass",
            "events",
            "dram.bit_flip",
        ] {
            assert!(summary.contains(needle), "missing {needle} in:\n{summary}");
        }
    }
}
