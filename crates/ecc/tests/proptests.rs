//! Property tests on the ECC codecs' correction guarantees.

use ecc::rs::{ReedSolomon, RsDecode};
use ecc::secded::{Secded7264, SecdedDecode};
use ecc::Chipkill;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// SECDED corrects any single flip (data or check) of any word.
    #[test]
    fn secded_corrects_any_single_flip(data in any::<u64>(), bit in 0u32..72) {
        let code = Secded7264::new();
        let mut word = code.encode(data);
        if bit < 64 {
            word.data ^= 1u64 << bit;
        } else {
            word.check ^= 1u8 << (bit - 64);
        }
        prop_assert_eq!(code.decode(word).corrected(), Some(data));
    }

    /// SECDED detects any double flip and never silently corrupts.
    #[test]
    fn secded_detects_any_double_flip(
        data in any::<u64>(),
        a in 0u32..72,
        b in 0u32..72,
    ) {
        prop_assume!(a != b);
        let code = Secded7264::new();
        let mut word = code.encode(data);
        for bit in [a, b] {
            if bit < 64 {
                word.data ^= 1u64 << bit;
            } else {
                word.check ^= 1u8 << (bit - 64);
            }
        }
        prop_assert_eq!(code.decode(word), SecdedDecode::Detected);
    }

    /// Reed-Solomon corrects any ⌊parity/2⌋ symbol errors of any word.
    #[test]
    fn rs_corrects_up_to_t_errors(
        data in prop::collection::vec(any::<u8>(), 12),
        parity in 2usize..9,
        positions in prop::collection::hash_set(0usize..20, 0..4),
        magnitudes in prop::collection::vec(1u8..=255, 4),
    ) {
        let code = ReedSolomon::gf256(12, parity);
        let t = code.correctable();
        let mut word = code.encode(&data);
        let errors: Vec<usize> =
            positions.into_iter().filter(|&p| p < word.len()).take(t).collect();
        for (i, &p) in errors.iter().enumerate() {
            word[p] ^= magnitudes[i % magnitudes.len()];
        }
        let decoded = code.decode(&word);
        prop_assert_eq!(decoded.data(), Some(&data[..]));
    }

    /// Reed-Solomon never reports "clean" for a word with errors.
    #[test]
    fn rs_never_accepts_corrupted_word_as_clean(
        data in prop::collection::vec(any::<u8>(), 8),
        parity in 2usize..8,
        position in 0usize..10,
        magnitude in 1u8..=255,
    ) {
        let code = ReedSolomon::gf256(8, parity);
        let mut word = code.encode(&data);
        let p = position % word.len();
        word[p] ^= magnitude;
        match code.decode(&word) {
            RsDecode::Clean(_) => prop_assert!(false, "corrupted word accepted as clean"),
            RsDecode::Corrected(d) => prop_assert_eq!(d, data),
            RsDecode::Uncorrectable => {}
        }
    }

    /// Chipkill corrects arbitrary corruption confined to one nibble.
    #[test]
    fn chipkill_corrects_any_single_symbol(
        data in any::<u64>(),
        nibble in 0u32..16,
        pattern in 1u8..16,
    ) {
        let code = Chipkill::new();
        let bits: Vec<u32> = (0..4)
            .filter(|o| pattern >> o & 1 == 1)
            .map(|o| nibble * 4 + o)
            .collect();
        prop_assert_eq!(code.roundtrip_with_flips(data, &bits).corrected(), Some(data));
    }

    /// Chipkill never misdecodes when exactly two symbols (in the same
    /// lane) are corrupted: SSC-DSD detects them.
    #[test]
    fn chipkill_detects_double_symbols_same_lane(
        data in any::<u64>(),
        s1 in 0u32..8,
        s2 in 0u32..8,
        o1 in 0u32..4,
        o2 in 0u32..4,
    ) {
        prop_assume!(s1 != s2);
        let code = Chipkill::new();
        // Both flips in even nibbles (nibble 2·s at bit 8·s + offset):
        // both land in lane 0.
        let bits = vec![s1 * 8 + o1, s2 * 8 + o2];
        let decoded = code.roundtrip_with_flips(data, &bits);
        prop_assert_eq!(decoded.corrected(), None, "two lane-0 symbols must be detected");
    }
}
