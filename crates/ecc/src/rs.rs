//! A systematic Reed-Solomon codec over GF(2^m) with a full
//! bounded-distance decoder: syndrome computation, Berlekamp–Massey,
//! Chien search, and Forney's algorithm.
//!
//! With `p` parity symbols the code corrects `⌊p/2⌋` symbol errors; when
//! more errors occur, the decoder either reports an uncorrectable word
//! or — as on real hardware — *miscorrects* to a different codeword,
//! which is exactly the §7.4 failure mode the analysis quantifies.

use crate::gf::GaloisField;

/// Decoder outcome for one word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsDecode {
    /// Syndromes were clean: the word is accepted as-is.
    Clean(Vec<u8>),
    /// Errors found and corrected; the payload is the corrected data.
    Corrected(Vec<u8>),
    /// The decoder could not produce a consistent correction.
    Uncorrectable,
}

impl RsDecode {
    /// The accepted data, if any.
    pub fn data(&self) -> Option<&[u8]> {
        match self {
            RsDecode::Clean(d) | RsDecode::Corrected(d) => Some(d),
            RsDecode::Uncorrectable => None,
        }
    }
}

/// A systematic RS(n, k) code: `k` data symbols, `parity` check symbols,
/// `n = k + parity ≤ 2^m - 1`.
///
/// # Example
///
/// ```
/// use ecc::rs::ReedSolomon;
///
/// let code = ReedSolomon::gf256(8, 4); // corrects 2 symbol errors
/// let mut word = code.encode(&[1, 2, 3, 4, 5, 6, 7, 8]);
/// word[0] ^= 0xFF;
/// word[5] ^= 0x0F;
/// assert_eq!(code.decode(&word).data().unwrap(), &[1, 2, 3, 4, 5, 6, 7, 8]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReedSolomon {
    field: GaloisField,
    k: usize,
    parity: usize,
    /// Generator polynomial ∏ (x − α^i), lowest degree first.
    generator: Vec<u8>,
}

impl ReedSolomon {
    /// Builds an RS code over a field.
    ///
    /// # Panics
    ///
    /// Panics if `k + parity` exceeds the field's codeword limit or
    /// `parity == 0`.
    pub fn new(field: GaloisField, k: usize, parity: usize) -> Self {
        assert!(parity > 0, "a Reed-Solomon code needs parity symbols");
        assert!(
            k + parity <= field.order(),
            "codeword length {} exceeds field limit {}",
            k + parity,
            field.order()
        );
        let mut generator = vec![1u8];
        for i in 0..parity {
            generator = field.poly_mul(&generator, &[field.alpha_pow(i), 1]);
        }
        ReedSolomon { field, k, parity, generator }
    }

    /// An RS code over GF(256).
    pub fn gf256(k: usize, parity: usize) -> Self {
        ReedSolomon::new(GaloisField::gf256(), k, parity)
    }

    /// An RS code over GF(16) (4-bit symbols).
    pub fn gf16(k: usize, parity: usize) -> Self {
        ReedSolomon::new(GaloisField::gf16(), k, parity)
    }

    /// Data symbols per word.
    pub fn data_symbols(&self) -> usize {
        self.k
    }

    /// Parity symbols per word.
    pub fn parity_symbols(&self) -> usize {
        self.parity
    }

    /// Symbol errors the code corrects.
    pub fn correctable(&self) -> usize {
        self.parity / 2
    }

    /// Encodes `data` (exactly `k` symbols) into a systematic codeword
    /// `data ‖ parity`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k` or a symbol exceeds the field width.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), self.k, "expected {} data symbols", self.k);
        let width_mask = ((1u16 << self.field.bits()) - 1) as u8;
        assert!(data.iter().all(|&d| d & !width_mask == 0), "symbol out of field range");
        // Systematic encoding: parity = (data · x^parity) mod generator.
        // Symbol 0 sits at the highest degree, so the division consumes
        // the data in index order.
        let mut remainder = vec![0u8; self.parity];
        for &d in data.iter() {
            let feedback = d ^ remainder[self.parity - 1];
            for j in (1..self.parity).rev() {
                remainder[j] = remainder[j - 1] ^ self.field.mul(feedback, self.generator[j]);
            }
            remainder[0] = self.field.mul(feedback, self.generator[0]);
        }
        let mut word = data.to_vec();
        word.extend(remainder.iter().rev());
        word
    }

    /// Decodes a received word of `k + parity` symbols.
    ///
    /// # Panics
    ///
    /// Panics if the word length is wrong.
    pub fn decode(&self, received: &[u8]) -> RsDecode {
        let n = self.k + self.parity;
        assert_eq!(received.len(), n, "expected {n} symbols");
        // Codeword symbol i sits at polynomial degree n-1-i (systematic
        // data-first layout).
        let poly: Vec<u8> = received.iter().rev().copied().collect();

        // Syndromes S_j = r(α^j).
        let syndromes: Vec<u8> = (0..self.parity)
            .map(|j| self.field.poly_eval(&poly, self.field.alpha_pow(j)))
            .collect();
        if syndromes.iter().all(|&s| s == 0) {
            return RsDecode::Clean(received[..self.k].to_vec());
        }

        // Berlekamp–Massey: error locator σ(x).
        let sigma = self.berlekamp_massey(&syndromes);
        let errors = sigma.len() - 1;
        if errors == 0 || errors > self.correctable() {
            return RsDecode::Uncorrectable;
        }

        // Chien search: roots of σ give error positions.
        let mut positions = Vec::with_capacity(errors);
        for i in 0..n {
            // Position i (degree n-1-i) errored iff σ(α^{-(n-1-i)}) = 0.
            let x = self.field.alpha_pow(self.field.order() - (n - 1 - i) % self.field.order());
            if self.field.poly_eval(&sigma, x) == 0 {
                positions.push(i);
            }
        }
        if positions.len() != errors {
            return RsDecode::Uncorrectable;
        }

        // Forney: error magnitudes from Ω(x) = S(x)·σ(x) mod x^parity.
        let omega = {
            let mut o = self.field.poly_mul(&syndromes, &sigma);
            o.truncate(self.parity);
            o
        };
        let sigma_deriv: Vec<u8> = sigma
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &c)| if i % 2 == 1 { c } else { 0 })
            .collect();
        let mut corrected = received.to_vec();
        for &pos in &positions {
            let degree = n - 1 - pos;
            let x = self.field.alpha_pow(degree);
            let x_inv = self.field.alpha_pow(self.field.order() - degree % self.field.order());
            let num = self.field.poly_eval(&omega, x_inv);
            let den = self.field.poly_eval(&sigma_deriv, x_inv);
            if den == 0 {
                return RsDecode::Uncorrectable;
            }
            // Forney with the generator anchored at b = 0: the magnitude
            // carries an X_l^(1-b) = X_l factor.
            let magnitude = self.field.mul(x, self.field.div(num, den));
            corrected[pos] ^= magnitude;
        }

        // Re-check: the corrected word must be a codeword.
        let check: Vec<u8> = corrected.iter().rev().copied().collect();
        let consistent =
            (0..self.parity).all(|j| self.field.poly_eval(&check, self.field.alpha_pow(j)) == 0);
        if consistent {
            RsDecode::Corrected(corrected[..self.k].to_vec())
        } else {
            RsDecode::Uncorrectable
        }
    }

    /// Berlekamp–Massey over the syndrome sequence; returns σ(x),
    /// lowest-degree coefficient first (σ(0) = 1).
    fn berlekamp_massey(&self, syndromes: &[u8]) -> Vec<u8> {
        let mut sigma = vec![1u8];
        let mut b = vec![1u8];
        let mut l = 0usize;
        let mut m = 1usize;
        let mut bb = 1u8;
        for n in 0..syndromes.len() {
            let mut d = syndromes[n];
            for i in 1..=l {
                if i < sigma.len() {
                    d ^= self.field.mul(sigma[i], syndromes[n - i]);
                }
            }
            if d == 0 {
                m += 1;
            } else if 2 * l <= n {
                let t = sigma.clone();
                let coef = self.field.div(d, bb);
                let mut shifted = vec![0u8; m];
                shifted.extend_from_slice(&b);
                if shifted.len() > sigma.len() {
                    sigma.resize(shifted.len(), 0);
                }
                for (i, &s) in shifted.iter().enumerate() {
                    sigma[i] ^= self.field.mul(coef, s);
                }
                l = n + 1 - l;
                b = t;
                bb = d;
                m = 1;
            } else {
                let coef = self.field.div(d, bb);
                let mut shifted = vec![0u8; m];
                shifted.extend_from_slice(&b);
                if shifted.len() > sigma.len() {
                    sigma.resize(shifted.len(), 0);
                }
                for (i, &s) in shifted.iter().enumerate() {
                    sigma[i] ^= self.field.mul(coef, s);
                }
                m += 1;
            }
        }
        while sigma.last() == Some(&0) {
            sigma.pop();
        }
        sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::rng::SplitMix64;

    fn random_data(rng: &mut SplitMix64, k: usize, width: u32) -> Vec<u8> {
        (0..k).map(|_| (rng.next_u64() & ((1 << width) - 1)) as u8).collect()
    }

    #[test]
    fn clean_words_pass_through() {
        let code = ReedSolomon::gf256(16, 6);
        let data: Vec<u8> = (0..16).collect();
        let word = code.encode(&data);
        assert_eq!(word.len(), 22);
        assert_eq!(code.decode(&word), RsDecode::Clean(data));
    }

    #[test]
    fn corrects_up_to_t_errors() {
        let mut rng = SplitMix64::new(1);
        for parity in [2usize, 4, 6, 8] {
            let code = ReedSolomon::gf256(16, parity);
            let t = code.correctable();
            for trial in 0..50 {
                let data = random_data(&mut rng, 16, 8);
                let mut word = code.encode(&data);
                // Inject exactly t errors at distinct positions.
                let mut positions = Vec::new();
                while positions.len() < t {
                    let p = rng.next_below(word.len() as u64) as usize;
                    if !positions.contains(&p) {
                        positions.push(p);
                    }
                }
                for &p in &positions {
                    let e = (rng.next_below(255) + 1) as u8;
                    word[p] ^= e;
                }
                let decoded = code.decode(&word);
                assert_eq!(
                    decoded.data(),
                    Some(&data[..]),
                    "parity {parity} trial {trial} positions {positions:?}"
                );
            }
        }
    }

    #[test]
    fn detects_or_miscorrects_beyond_t() {
        let mut rng = SplitMix64::new(2);
        let code = ReedSolomon::gf256(16, 4); // t = 2
        let mut uncorrectable = 0;
        let mut silent = 0;
        for _ in 0..300 {
            let data = random_data(&mut rng, 16, 8);
            let mut word = code.encode(&data);
            for _ in 0..3 {
                let p = rng.next_below(word.len() as u64) as usize;
                word[p] ^= (rng.next_below(255) + 1) as u8;
            }
            match code.decode(&word) {
                RsDecode::Uncorrectable => uncorrectable += 1,
                RsDecode::Corrected(d) | RsDecode::Clean(d) => {
                    if d != data {
                        silent += 1;
                    }
                }
            }
        }
        assert!(uncorrectable > 200, "3 errors usually exceed the decoder: {uncorrectable}");
        // Miscorrections exist but are the minority.
        assert!(silent < 100, "mis/undetected corruption should be rare-ish: {silent}");
    }

    #[test]
    fn parity_errors_are_corrected_too() {
        let code = ReedSolomon::gf256(8, 4);
        let data: Vec<u8> = (10..18).collect();
        let mut word = code.encode(&data);
        word[9] ^= 0x55; // a parity symbol
        assert_eq!(code.decode(&word).data(), Some(&data[..]));
    }

    #[test]
    fn gf16_code_works() {
        let mut rng = SplitMix64::new(3);
        let code = ReedSolomon::gf16(11, 4); // n = 15 = field limit
        for _ in 0..50 {
            let data = random_data(&mut rng, 11, 4);
            let mut word = code.encode(&data);
            word[3] ^= 0x9 & 0xF;
            word[12] ^= 0x5;
            assert_eq!(code.decode(&word).data(), Some(&data[..]));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds field limit")]
    fn oversized_code_rejected() {
        let _ = ReedSolomon::gf16(14, 4);
    }

    #[test]
    #[should_panic(expected = "expected 8 data symbols")]
    fn wrong_data_length_rejected() {
        let code = ReedSolomon::gf256(8, 2);
        let _ = code.encode(&[1, 2, 3]);
    }
}
