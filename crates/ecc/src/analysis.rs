//! §7.4: feeding measured RowHammer flip distributions through ECC.
//!
//! The input is the Fig. 10 ingredient — how many 8-byte datawords
//! contain `k` bit flips — as produced by the attack evaluation harness.
//! For each dataword the flips are placed at uniformly random bit
//! positions ("our access patterns can cause bit flips at *arbitrary*
//! locations") and the word is pushed through a codec; the outcome
//! tallies say whether the code corrected, detected, or was silently
//! defeated.

use dram_sim::rng::SplitMix64;

use crate::chipkill::{Chipkill, ChipkillDecode};
use crate::rs::{ReedSolomon, RsDecode};
use crate::secded::{Secded7264, SecdedDecode};

/// The codes the paper's §7.4 discusses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeKind {
    /// (72, 64) SECDED Hamming.
    Secded,
    /// x4 Chipkill (SSC-DSD over nibbles).
    Chipkill,
    /// Reed-Solomon over GF(256) with this many parity symbols per
    /// 8-byte dataword.
    ReedSolomon {
        /// Parity symbols.
        parity: usize,
    },
}

impl std::fmt::Display for CodeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodeKind::Secded => write!(f, "SECDED(72,64)"),
            CodeKind::Chipkill => write!(f, "Chipkill x4"),
            CodeKind::ReedSolomon { parity } => write!(f, "RS(8+{parity})"),
        }
    }
}

/// How one dataword fared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EccOutcome {
    /// Decoded to the original data.
    Corrected,
    /// Flagged uncorrectable (a machine-check on real hardware).
    Detected,
    /// Decoded *successfully* to the wrong data — silent corruption.
    SilentCorruption,
}

/// Aggregate tallies for one code over a flip distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct EccReport {
    /// The code evaluated.
    pub code: CodeKind,
    /// Datawords decoded back to the written data.
    pub corrected: u64,
    /// Datawords flagged uncorrectable.
    pub detected: u64,
    /// Datawords silently corrupted (miscorrection or aliasing).
    pub silent: u64,
}

impl EccReport {
    /// Total datawords evaluated.
    pub fn total(&self) -> u64 {
        self.corrected + self.detected + self.silent
    }

    /// Whether the code fully protected the system (every word either
    /// corrected or at least detected).
    pub fn fully_protects(&self) -> bool {
        self.silent == 0
    }

    /// Fraction of words that ended in silent corruption.
    pub fn silent_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.silent as f64 / self.total() as f64
        }
    }
}

/// Draws `k` distinct bit positions in `0..64`.
fn draw_flips(rng: &mut SplitMix64, k: u32) -> Vec<u32> {
    let mut bits: Vec<u32> = Vec::with_capacity(k as usize);
    while bits.len() < k as usize {
        let b = rng.next_below(64) as u32;
        if !bits.contains(&b) {
            bits.push(b);
        }
    }
    bits
}

fn classify_data(original: u64, decoded: Option<u64>) -> EccOutcome {
    match decoded {
        None => EccOutcome::Detected,
        Some(d) if d == original => EccOutcome::Corrected,
        Some(_) => EccOutcome::SilentCorruption,
    }
}

/// A constructed codec, built once per [`analyze`] call rather than per
/// dataword (the Reed-Solomon tables and generator polynomial are not
/// free).
enum Codec {
    Secded(Secded7264),
    Chipkill(Chipkill),
    Rs(ReedSolomon),
}

impl Codec {
    fn new(code: CodeKind) -> Self {
        match code {
            CodeKind::Secded => Codec::Secded(Secded7264::new()),
            CodeKind::Chipkill => Codec::Chipkill(Chipkill::new()),
            CodeKind::ReedSolomon { parity } => Codec::Rs(ReedSolomon::gf256(8, parity)),
        }
    }
}

/// Evaluates one dataword with `k` random flips under a code.
fn evaluate_word(codec: &Codec, rng: &mut SplitMix64, k: u32) -> EccOutcome {
    let data = rng.next_u64();
    let flips = draw_flips(rng, k);
    match codec {
        Codec::Secded(codec) => {
            let mut word = codec.encode(data);
            for &b in &flips {
                word.data ^= 1u64 << b;
            }
            let decoded = codec.decode(word);
            classify_data(
                data,
                match decoded {
                    SecdedDecode::Detected => None,
                    other => other.corrected(),
                },
            )
        }
        Codec::Chipkill(codec) => {
            let decoded = codec.roundtrip_with_flips(data, &flips);
            classify_data(
                data,
                match decoded {
                    ChipkillDecode::Detected => None,
                    other => other.corrected(),
                },
            )
        }
        Codec::Rs(codec) => {
            let bytes: Vec<u8> = data.to_le_bytes().to_vec();
            let mut word = codec.encode(&bytes);
            for &b in &flips {
                word[(b / 8) as usize] ^= 1 << (b % 8);
            }
            match codec.decode(&word) {
                RsDecode::Uncorrectable => EccOutcome::Detected,
                decoded => {
                    let d = decoded.data().expect("not uncorrectable");
                    classify_data(data, Some(u64::from_le_bytes(d.try_into().expect("8 bytes"))))
                }
            }
        }
    }
}

/// Pushes a measured flip distribution (`(flips per dataword, word
/// count)` pairs, as produced by the attack evaluation) through a code.
/// Words with more than `cap` occurrences of a flip count are sampled
/// and scaled, keeping the run fast on full-bank histograms.
pub fn analyze(code: CodeKind, histogram: &[(u32, u64)], seed: u64) -> EccReport {
    const CAP: u64 = 2_000;
    let mut rng = SplitMix64::new(seed);
    let codec = Codec::new(code);
    let mut report = EccReport { code, corrected: 0, detected: 0, silent: 0 };
    for &(k, count) in histogram {
        if k == 0 || count == 0 {
            continue;
        }
        let samples = count.min(CAP);
        let scale = count as f64 / samples as f64;
        let mut tallies = [0u64; 3];
        for _ in 0..samples {
            match evaluate_word(&codec, &mut rng, k) {
                EccOutcome::Corrected => tallies[0] += 1,
                EccOutcome::Detected => tallies[1] += 1,
                EccOutcome::SilentCorruption => tallies[2] += 1,
            }
        }
        report.corrected += (tallies[0] as f64 * scale).round() as u64;
        report.detected += (tallies[1] as f64 * scale).round() as u64;
        report.silent += (tallies[2] as f64 * scale).round() as u64;
    }
    report
}

/// Like [`analyze`], but records the run into a metrics registry: the
/// outcome tallies land in the `ecc.words.corrected`,
/// `ecc.words.detected`, and `ecc.words.silent` counters, and the whole
/// evaluation runs under an `ecc.analyze` span. ECC analysis has no
/// simulated clock, so the span's simulated duration is zero and only
/// its wall-clock duration is meaningful.
pub fn analyze_with_registry(
    code: CodeKind,
    histogram: &[(u32, u64)],
    seed: u64,
    registry: &std::sync::Arc<obs::MetricsRegistry>,
) -> EccReport {
    let words: u64 = histogram.iter().map(|&(_, n)| n).sum();
    let span = obs::span!(std::sync::Arc::clone(registry), "ecc.analyze", 0, words = words);
    let report = analyze(code, histogram, seed);
    registry.counter("ecc.words.corrected").add(report.corrected);
    registry.counter("ecc.words.detected").add(report.detected);
    registry.counter("ecc.words.silent").add(report.silent);
    span.finish(0);
    report
}

/// Per-flip-count outcome breakdown for one code — the detailed §7.4
/// view behind [`analyze`]'s aggregate tallies.
#[derive(Debug, Clone, PartialEq)]
pub struct EccBreakdown {
    /// The code evaluated.
    pub code: CodeKind,
    /// `(flips per word, corrected, detected, silent)` rows, ascending.
    pub rows: Vec<(u32, u64, u64, u64)>,
}

impl EccBreakdown {
    /// The smallest flip count at which the code stops fully protecting,
    /// if any.
    pub fn first_unprotected_k(&self) -> Option<u32> {
        self.rows.iter().find(|&&(_, _, _, silent)| silent > 0).map(|&(k, ..)| k)
    }
}

/// Like [`analyze`], but keeps the outcome tallies separated by
/// flips-per-word.
pub fn analyze_breakdown(code: CodeKind, histogram: &[(u32, u64)], seed: u64) -> EccBreakdown {
    let rows = histogram
        .iter()
        .filter(|&&(k, count)| k > 0 && count > 0)
        .map(|&(k, count)| {
            let report = analyze(code, &[(k, count)], seed ^ k as u64);
            (k, report.corrected, report.detected, report.silent)
        })
        .collect();
    EccBreakdown { code, rows }
}

/// The minimum number of Reed-Solomon parity symbols (over GF(2^8),
/// 8-byte datawords) that *guarantees* detection of every word in a
/// measured flip distribution — the §7.4 cost question: "to detect (and
/// correct half of) the maximum number of bit flips (i.e., 7) […] a
/// Reed-Solomon code would incur a large overhead by requiring at least
/// 7 parity-check symbols."
///
/// This is the minimum-distance bound (each of `k` bit flips may land in
/// a distinct byte symbol, so detecting them all needs distance
/// `k + 1`, i.e. `k` parity symbols), not a statistical estimate —
/// random flip placements usually evade aliasing at far lower parity,
/// but a guarantee must cover the adversarial placement.
pub fn rs_parity_needed(histogram: &[(u32, u64)]) -> Option<usize> {
    let max_k = histogram.iter().filter(|&&(_, count)| count > 0).map(|&(k, _)| k).max()?;
    // At most 8 data symbols can be hit; beyond 8 parity symbols the
    // byte-level construction cannot help further.
    let symbols_hit = max_k.min(8) as usize;
    (symbols_hit >= 1).then_some(symbols_hit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flips_are_always_corrected() {
        for code in [CodeKind::Secded, CodeKind::Chipkill, CodeKind::ReedSolomon { parity: 2 }] {
            let report = analyze(code, &[(1, 500)], 1);
            assert_eq!(report.corrected, 500, "{code}");
            assert!(report.fully_protects());
        }
    }

    #[test]
    fn double_flips_never_silently_corrupt_secded() {
        let report = analyze(CodeKind::Secded, &[(2, 1_000)], 2);
        assert_eq!(report.silent, 0);
        assert_eq!(report.corrected, 0);
        assert_eq!(report.detected, 1_000);
    }

    #[test]
    fn triple_flips_defeat_secded() {
        // The paper's key §7.4 claim: ≥3 flips per dataword break
        // SECDED, mostly via silent miscorrection.
        let report = analyze(CodeKind::Secded, &[(3, 1_000)], 3);
        assert!(!report.fully_protects());
        assert!(report.silent > 500, "{report:?}");
    }

    #[test]
    fn scattered_flips_defeat_chipkill() {
        let report = analyze(CodeKind::Chipkill, &[(3, 2_000), (4, 1_000)], 4);
        assert!(!report.fully_protects(), "{report:?}");
    }

    #[test]
    fn seven_parity_symbols_detect_the_worst_case() {
        // "To detect (and correct half of) the maximum number of bit
        // flips (i.e., 7) […] a Reed-Solomon code would require at least
        // 7 parity-check symbols." 7 flips hit at most 7 of the 8 data
        // bytes; with 7 parity symbols (t = 3) the bounded-distance
        // decoder cannot be fooled within distance 8.
        let report = analyze(CodeKind::ReedSolomon { parity: 7 }, &[(7, 1_000)], 5);
        assert!(report.fully_protects(), "{report:?}");
        // A weaker RS code (2 parity) is defeated by the same load.
        let weak = analyze(CodeKind::ReedSolomon { parity: 2 }, &[(7, 1_000)], 6);
        assert!(!weak.fully_protects(), "{weak:?}");
    }

    #[test]
    fn histogram_scaling_preserves_totals() {
        let report = analyze(CodeKind::Secded, &[(1, 10_000)], 7);
        assert_eq!(report.total(), 10_000);
        assert_eq!(report.corrected, 10_000);
    }

    #[test]
    fn breakdown_splits_by_flip_count() {
        let b = analyze_breakdown(CodeKind::Secded, &[(1, 200), (2, 100), (3, 100)], 9);
        assert_eq!(b.rows.len(), 3);
        assert_eq!(b.rows[0], (1, 200, 0, 0));
        assert_eq!(b.rows[1].2, 100, "doubles all detected");
        assert_eq!(b.first_unprotected_k(), Some(3));
        let clean = analyze_breakdown(CodeKind::Secded, &[(1, 50)], 9);
        assert_eq!(clean.first_unprotected_k(), None);
    }

    #[test]
    fn parity_search_matches_the_papers_bound() {
        // The paper's worst case: 7 flips per word → 7 parity symbols.
        assert_eq!(rs_parity_needed(&[(1, 10_000), (7, 800)]), Some(7));
        // A mild distribution is satisfied much earlier…
        assert_eq!(rs_parity_needed(&[(1, 800)]), Some(1));
        // …and empty or zero-count histograms have no answer.
        assert_eq!(rs_parity_needed(&[]), None);
        assert_eq!(rs_parity_needed(&[(3, 0)]), None);
        // More flips than symbols saturate at the 8-symbol word size.
        assert_eq!(rs_parity_needed(&[(12, 5)]), Some(8));
    }

    #[test]
    fn registry_variant_tallies_outcomes() {
        let registry = std::sync::Arc::new(obs::MetricsRegistry::new());
        let report = analyze_with_registry(CodeKind::Secded, &[(1, 200), (2, 100)], 11, &registry);
        assert_eq!(registry.counter("ecc.words.corrected").get(), report.corrected);
        assert_eq!(registry.counter("ecc.words.detected").get(), report.detected);
        assert_eq!(registry.counter("ecc.words.silent").get(), report.silent);
        assert_eq!(report.total(), 300);
    }

    #[test]
    fn report_accessors() {
        let r = EccReport { code: CodeKind::Secded, corrected: 1, detected: 2, silent: 1 };
        assert_eq!(r.total(), 4);
        assert_eq!(r.silent_fraction(), 0.25);
        assert_eq!(CodeKind::ReedSolomon { parity: 7 }.to_string(), "RS(8+7)");
    }
}
