//! An extended Hamming (72, 64) SECDED code — the typical DRAM ECC the
//! paper's §7.4 evaluates ("which can be corrected using typical SECDED
//! ECC"): corrects any single bit error, detects any double bit error,
//! and may silently miscorrect three or more.
//!
//! Construction: the classic Hamming layout over codeword positions
//! 1..=71 with check bits at the power-of-two positions (7 check bits
//! cover 71 positions and leave exactly 64 data positions), plus an
//! overall parity bit for the double-error-detect extension.

/// A stored 72-bit word: 64 data bits plus 8 check bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoredWord {
    /// The 64 data bits.
    pub data: u64,
    /// 7 Hamming check bits (low bits) plus the overall parity bit
    /// (bit 7).
    pub check: u8,
}

/// Decoder outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecdedDecode {
    /// No error detected; payload is the stored data.
    Clean(u64),
    /// A single-bit error was corrected; payload is the corrected data.
    Corrected(u64),
    /// An uncorrectable (double) error was detected.
    Detected,
}

impl SecdedDecode {
    /// The data the memory controller would hand to the CPU, if any.
    pub fn corrected(&self) -> Option<u64> {
        match self {
            SecdedDecode::Clean(d) | SecdedDecode::Corrected(d) => Some(*d),
            SecdedDecode::Detected => None,
        }
    }
}

/// The (72, 64) SECDED codec. See the [module docs](self).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Secded7264 {
    _private: (),
}

/// Codeword positions 1..=71 that are *not* powers of two, in order:
/// these hold the 64 data bits.
fn data_positions() -> impl Iterator<Item = u32> {
    (1..=71u32).filter(|p| !p.is_power_of_two())
}

impl Secded7264 {
    /// Creates the codec.
    pub fn new() -> Self {
        Secded7264 { _private: () }
    }

    /// Encodes 64 data bits into a stored word.
    pub fn encode(&self, data: u64) -> StoredWord {
        // Scatter data into the Hamming positions and compute the
        // position-XOR; check bit i is the parity of all positions with
        // bit i set, which equals bit i of the XOR of all set positions.
        let mut xor_positions = 0u32;
        let mut ones = 0u32;
        for (bit, pos) in data_positions().enumerate() {
            if data >> bit & 1 == 1 {
                xor_positions ^= pos;
                ones += 1;
            }
        }
        let check7 = (xor_positions & 0x7F) as u8;
        // Overall parity covers every stored bit (data + 7 check bits).
        let total_ones = ones + check7.count_ones();
        let parity = (total_ones & 1) as u8;
        StoredWord { data, check: check7 | parity << 7 }
    }

    /// Decodes a stored word.
    pub fn decode(&self, word: StoredWord) -> SecdedDecode {
        // Recompute the Hamming check bits over the *stored* data; the
        // syndrome is the disagreement with the stored check bits.
        let mut xor_positions = 0u32;
        for (bit, pos) in data_positions().enumerate() {
            if word.data >> bit & 1 == 1 {
                xor_positions ^= pos;
            }
        }
        let syndrome = (word.check & 0x7F) ^ (xor_positions & 0x7F) as u8;
        // The overall parity covers every stored bit (data, check bits,
        // and the parity bit itself): any odd number of flips violates
        // it. `encode` chose the parity bit to make the total even.
        let parity_mismatch = (word.data.count_ones() + word.check.count_ones()) % 2 == 1;
        match (syndrome, parity_mismatch) {
            (0, false) => SecdedDecode::Clean(word.data),
            // Overall-parity bit itself flipped.
            (0, true) => SecdedDecode::Corrected(word.data),
            // Single error: the syndrome names the flipped position.
            (s, true) => {
                let pos = s as u32;
                if pos.is_power_of_two() {
                    // A check bit flipped; data is intact.
                    return SecdedDecode::Corrected(word.data);
                }
                match data_positions().position(|p| p == pos) {
                    Some(bit) => SecdedDecode::Corrected(word.data ^ 1 << bit),
                    None => SecdedDecode::Detected, // position 72+: impossible single
                }
            }
            // Non-zero syndrome with matching parity: double error.
            (_, false) => SecdedDecode::Detected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::rng::SplitMix64;

    #[test]
    fn clean_roundtrip() {
        let code = Secded7264::new();
        for data in [0u64, u64::MAX, 0xDEAD_BEEF_0123_4567, 1, 1 << 63] {
            assert_eq!(code.decode(code.encode(data)), SecdedDecode::Clean(data));
        }
    }

    #[test]
    fn corrects_every_single_data_bit_flip() {
        let code = Secded7264::new();
        let data = 0xA5A5_0F0F_3C3C_9999u64;
        for bit in 0..64 {
            let mut word = code.encode(data);
            word.data ^= 1 << bit;
            assert_eq!(code.decode(word), SecdedDecode::Corrected(data), "bit {bit}");
        }
    }

    #[test]
    fn corrects_every_single_check_bit_flip() {
        let code = Secded7264::new();
        let data = 0x0123_4567_89AB_CDEFu64;
        for bit in 0..8 {
            let mut word = code.encode(data);
            word.check ^= 1 << bit;
            let decoded = code.decode(word);
            assert_eq!(decoded.corrected(), Some(data), "check bit {bit}: {decoded:?}");
        }
    }

    #[test]
    fn detects_every_double_data_bit_flip() {
        let code = Secded7264::new();
        let data = 0xFEDC_BA98_7654_3210u64;
        let mut rng = SplitMix64::new(4);
        for _ in 0..2_000 {
            let a = rng.next_below(64) as u32;
            let b = rng.next_below(64) as u32;
            if a == b {
                continue;
            }
            let mut word = code.encode(data);
            word.data ^= 1 << a | 1 << b;
            assert_eq!(code.decode(word), SecdedDecode::Detected, "bits {a},{b}");
        }
    }

    #[test]
    fn detects_mixed_data_check_double_flips() {
        let code = Secded7264::new();
        let data = 77u64;
        for data_bit in [0u32, 13, 63] {
            for check_bit in 0..8 {
                let mut word = code.encode(data);
                word.data ^= 1 << data_bit;
                word.check ^= 1 << check_bit;
                assert_eq!(code.decode(word), SecdedDecode::Detected);
            }
        }
    }

    #[test]
    fn triple_flips_can_miscorrect() {
        // ≥3 flips break the guarantee: the decoder often "corrects" to
        // wrong data — the paper's §7.4 point.
        let code = Secded7264::new();
        let data = 0x1111_2222_3333_4444u64;
        let mut rng = SplitMix64::new(5);
        let mut miscorrected = 0;
        let mut detected = 0;
        for _ in 0..2_000 {
            let mut bits = Vec::new();
            while bits.len() < 3 {
                let b = rng.next_below(64) as u32;
                if !bits.contains(&b) {
                    bits.push(b);
                }
            }
            let mut word = code.encode(data);
            for &b in &bits {
                word.data ^= 1 << b;
            }
            match code.decode(word) {
                SecdedDecode::Detected => detected += 1,
                SecdedDecode::Corrected(d) if d != data => miscorrected += 1,
                other => panic!("3 flips cannot decode clean/right: {other:?}"),
            }
        }
        assert!(miscorrected > 500, "typical triples miscorrect: {miscorrected}");
        assert!(detected > 0, "some triples alias to invalid positions: {detected}");
    }
}
