//! A Chipkill-style symbol code: single-symbol-correct,
//! double-symbol-detect (SSC-DSD) over 4-bit symbols.
//!
//! §7.4: "Chipkill is a symbol-based code conventionally designed to
//! correct errors in one symbol (i.e., one DRAM chip failure) and detect
//! errors in two symbols. Because our access patterns cause more than
//! two bit flips in arbitrary locations […] Chipkill does not provide
//! guaranteed protection."
//!
//! Model: an x4-device system stores each 8-byte dataword as 16 data
//! nibbles (one per chip beat) plus parity nibbles; we realize the
//! SSC-DSD property with a Reed-Solomon code over GF(16) carrying three
//! parity symbols (minimum distance 4: corrects one symbol, detects
//! two). The 19-symbol codeword is split across two GF(16) codewords? No
//! — GF(16) limits codewords to 15 symbols, so the 16 data nibbles are
//! interleaved across two RS(8+3) words, exactly like real controllers
//! gang narrow channels.

use crate::rs::{ReedSolomon, RsDecode};

/// Decoder outcome for one 8-byte dataword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChipkillDecode {
    /// No error.
    Clean(u64),
    /// Errors corrected.
    Corrected(u64),
    /// Uncorrectable error detected.
    Detected,
}

impl ChipkillDecode {
    /// The data handed onward, if any.
    pub fn corrected(&self) -> Option<u64> {
        match self {
            ChipkillDecode::Clean(d) | ChipkillDecode::Corrected(d) => Some(*d),
            ChipkillDecode::Detected => None,
        }
    }
}

/// The x4 Chipkill codec. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chipkill {
    code: ReedSolomon,
}

impl Default for Chipkill {
    fn default() -> Self {
        Chipkill::new()
    }
}

impl Chipkill {
    /// Creates the codec: two interleaved RS(11, 8+3) words over GF(16).
    pub fn new() -> Self {
        Chipkill { code: ReedSolomon::gf16(8, 3) }
    }

    /// Splits a 64-bit dataword into its 16 nibbles, even nibbles to
    /// lane 0, odd nibbles to lane 1 (one nibble per chip beat).
    fn lanes(data: u64) -> ([u8; 8], [u8; 8]) {
        let mut lane0 = [0u8; 8];
        let mut lane1 = [0u8; 8];
        for i in 0..8 {
            lane0[i] = (data >> (8 * i) & 0xF) as u8;
            lane1[i] = (data >> (8 * i + 4) & 0xF) as u8;
        }
        (lane0, lane1)
    }

    fn from_lanes(lane0: &[u8], lane1: &[u8]) -> u64 {
        let mut data = 0u64;
        for i in 0..8 {
            data |= (lane0[i] as u64) << (8 * i);
            data |= (lane1[i] as u64) << (8 * i + 4);
        }
        data
    }

    /// Encodes a dataword into the two lanes' codewords (11 nibbles
    /// each).
    pub fn encode(&self, data: u64) -> (Vec<u8>, Vec<u8>) {
        let (lane0, lane1) = Self::lanes(data);
        (self.code.encode(&lane0), self.code.encode(&lane1))
    }

    /// Decodes the two stored lanes back into a dataword.
    ///
    /// # Panics
    ///
    /// Panics if a lane has the wrong length.
    pub fn decode(&self, lane0: &[u8], lane1: &[u8]) -> ChipkillDecode {
        let d0 = self.code.decode(lane0);
        let d1 = self.code.decode(lane1);
        match (&d0, &d1) {
            (RsDecode::Uncorrectable, _) | (_, RsDecode::Uncorrectable) => ChipkillDecode::Detected,
            (RsDecode::Clean(a), RsDecode::Clean(b)) => {
                ChipkillDecode::Clean(Self::from_lanes(a, b))
            }
            _ => ChipkillDecode::Corrected(Self::from_lanes(
                d0.data().expect("not uncorrectable"),
                d1.data().expect("not uncorrectable"),
            )),
        }
    }

    /// Convenience: encode, flip the given *data* bit positions
    /// (0..64), decode.
    pub fn roundtrip_with_flips(&self, data: u64, flipped_bits: &[u32]) -> ChipkillDecode {
        let (mut l0, mut l1) = self.encode(data);
        for &bit in flipped_bits {
            let nibble = bit / 4;
            let offset = bit % 4;
            if nibble % 2 == 0 {
                l0[(nibble / 2) as usize] ^= 1 << offset;
            } else {
                l1[(nibble / 2) as usize] ^= 1 << offset;
            }
        }
        self.decode(&l0, &l1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::rng::SplitMix64;

    #[test]
    fn clean_roundtrip() {
        let code = Chipkill::new();
        for data in [0u64, u64::MAX, 0x0123_4567_89AB_CDEF] {
            assert_eq!(code.roundtrip_with_flips(data, &[]), ChipkillDecode::Clean(data));
        }
    }

    #[test]
    fn corrects_any_single_symbol() {
        // Up to 4 bit flips confined to one nibble are one symbol error.
        let code = Chipkill::new();
        let data = 0xA5A5_5A5A_0FF0_1234u64;
        for nibble in 0..16u32 {
            let bits: Vec<u32> = (0..4).map(|o| nibble * 4 + o).collect();
            let decoded = code.roundtrip_with_flips(data, &bits);
            assert_eq!(decoded.corrected(), Some(data), "nibble {nibble}");
        }
    }

    #[test]
    fn corrects_one_symbol_per_lane() {
        // One bad symbol in each lane is still within both codes' power.
        let code = Chipkill::new();
        let data = 0x1111_2222_3333_4444u64;
        // Bits 0-3 (nibble 0, lane 0) and bits 4-7 (nibble 1, lane 1).
        let decoded = code.roundtrip_with_flips(data, &[0, 2, 5, 6]);
        assert_eq!(decoded.corrected(), Some(data));
    }

    #[test]
    fn detects_double_symbols_in_one_lane() {
        let code = Chipkill::new();
        let data = 0xFFFF_0000_FFFF_0000u64;
        // Nibbles 0 and 2 both live in lane 0.
        let decoded = code.roundtrip_with_flips(data, &[0, 8]);
        assert_eq!(decoded, ChipkillDecode::Detected);
    }

    #[test]
    fn many_scattered_flips_break_the_guarantee() {
        // The §7.4 scenario: ≥3 flips at arbitrary positions spread over
        // ≥3 symbols of one lane; the decoder detects most, but some
        // word patterns alias into a miscorrection.
        let code = Chipkill::new();
        let mut rng = SplitMix64::new(6);
        let mut detected = 0;
        let mut wrong = 0;
        let mut lucky = 0;
        for _ in 0..2_000 {
            let data = rng.next_u64();
            // Three flips in three distinct even nibbles (all lane 0).
            let mut nibbles = Vec::new();
            while nibbles.len() < 3 {
                let n = (rng.next_below(8) * 2) as u32;
                if !nibbles.contains(&n) {
                    nibbles.push(n);
                }
            }
            let bits: Vec<u32> =
                nibbles.iter().map(|&n| n * 4 + rng.next_below(4) as u32).collect();
            match code.roundtrip_with_flips(data, &bits) {
                ChipkillDecode::Detected => detected += 1,
                ChipkillDecode::Corrected(d) | ChipkillDecode::Clean(d) => {
                    if d == data {
                        lucky += 1;
                    } else {
                        wrong += 1;
                    }
                }
            }
        }
        assert!(detected > 1_500, "most triples are detected: {detected}");
        assert!(wrong > 0, "but miscorrections exist: {wrong} (lucky {lucky})");
    }
}
