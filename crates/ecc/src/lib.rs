//! ECC models for the paper's §7.4 analysis: can error-correcting codes
//! save a system whose TRR has been circumvented?
//!
//! The paper's finding: the custom patterns cause up to 7 bit flips in a
//! single 8-byte dataword, so typical SECDED codes (correct 1, detect 2)
//! and Chipkill-style symbol codes (correct 1 symbol, detect 2) cannot
//! provide protection, and a Reed-Solomon code strong enough to merely
//! *detect* 7 errors needs at least 7 parity-check symbols.
//!
//! * [`secded`] — an extended Hamming (72, 64) SECDED code, bit-exact;
//! * [`rs`] — Reed-Solomon over GF(2^m) with configurable parity
//!   (syndromes, Berlekamp–Massey, Chien search, Forney);
//! * [`chipkill`] — a single-symbol-correct / double-symbol-detect code
//!   over 4-bit symbols (the x4-device Chipkill model), built on the
//!   Reed-Solomon machinery;
//! * [`analysis`] — feeds measured flip distributions through each code
//!   and tallies corrected / detected / miscorrected / silently corrupt
//!   datawords.
//!
//! # Example
//!
//! ```
//! use ecc::secded::Secded7264;
//!
//! let code = Secded7264::new();
//! let word = 0xDEAD_BEEF_0123_4567u64;
//! let mut stored = code.encode(word);
//! stored.data ^= 1 << 17; // one bit flip
//! assert_eq!(code.decode(stored).corrected(), Some(word));
//! ```

pub mod analysis;
pub mod chipkill;
pub mod gf;
pub mod rs;
pub mod secded;

pub use analysis::{
    analyze, analyze_breakdown, analyze_with_registry, rs_parity_needed, CodeKind, EccBreakdown,
    EccOutcome, EccReport,
};
pub use chipkill::Chipkill;
pub use rs::ReedSolomon;
pub use secded::Secded7264;
