//! Command-level DDR4 DRAM device simulator with retention, VRT, and
//! RowHammer physics.
//!
//! This crate is the hardware substrate of the U-TRR reproduction
//! ([Hassan et al., MICRO 2021]). The paper's methodology observes a DRAM
//! module purely through DDR commands (`ACT`, `PRE`, `RD`, `WR`, `REF`) and
//! the data it reads back; everything it learns about the proprietary
//! Target Row Refresh (TRR) logic comes from *data-retention failures used
//! as a side channel*. A [`Module`] reproduces exactly that observable
//! surface:
//!
//! * per-row **weak cells** with consistent retention times, so a row that
//!   is not refreshed for longer than its retention time deterministically
//!   flips bits ([`physics`]);
//! * **variable retention time (VRT)** rows whose weak cells alternate
//!   between two retention times, which Row Scout must filter out;
//! * a **RowHammer disturbance model** with a blast radius of two rows,
//!   per-row flip thresholds anchored at a module's `HC_first`, and the
//!   interleaved-vs-cascaded hammering asymmetry the paper reports in §5.2;
//! * **logical→physical row address scrambling and remapping**
//!   ([`mapping`]), which U-TRR reverse engineers before running
//!   experiments (§5.3);
//! * a pluggable, hidden **mitigation engine** ([`MitigationEngine`]) that
//!   piggybacks TRR-induced refreshes onto `REF` commands, plus the regular
//!   round-robin refresh machinery (§6.1.3).
//!
//! The ground-truth TRR engines themselves live in the `trr` crate; this
//! crate only defines the trait so that the device and the engines do not
//! form a dependency cycle.
//!
//! # Example
//!
//! ```
//! use dram_sim::{Module, ModuleConfig, DataPattern, Bank, RowAddr, Nanos};
//!
//! # fn main() -> Result<(), dram_sim::DramError> {
//! // A small module with no TRR engine and deterministic physics.
//! let mut module = Module::new(ModuleConfig::small_test(), 42);
//! let bank = Bank::new(0);
//!
//! // Write a range of rows, let them decay with refresh disabled, and
//! // read them back: the weak rows show retention bit flips.
//! for r in 0..256 {
//!     module.write_row(bank, RowAddr::new(r), DataPattern::Ones)?;
//! }
//! module.advance(Nanos::from_ms(60_000));
//! let decayed = (0..256)
//!     .filter(|&r| !module.read_row(bank, RowAddr::new(r)).unwrap().is_clean())
//!     .count();
//! assert!(decayed > 0, "some weak cells must have decayed");
//! # Ok(())
//! # }
//! ```
//!
//! [Hassan et al., MICRO 2021]: https://doi.org/10.1145/3466752.3480110

pub mod addr;
pub mod data;
pub mod error;
pub mod fxhash;
pub mod mapping;
pub mod metrics;
pub mod mitigation;
pub mod module;
pub mod physics;
pub mod rng;
pub mod stats;
pub mod time;

pub use addr::{Bank, ColAddr, ModuleGeometry, PhysRow, RowAddr};
pub use data::{majority3_flips, DataPattern, RowReadout};
pub use error::DramError;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use mapping::{RowMapping, Topology};
pub use metrics::DeviceMetrics;
pub use mitigation::{
    MitigationEngine, MitigationEngineExt, NeighborSpan, NoMitigation, TrrDetection,
};
pub use module::{Module, ModuleConfig, RefreshConfig};
pub use physics::PhysicsConfig;
pub use stats::ModuleStats;
pub use time::{Nanos, Timings};
