//! The simulated DRAM module: command execution, refresh machinery, and
//! flip materialization.
//!
//! # Semantics
//!
//! The device keeps, per touched row, the time of its last *restore* (any
//! event that fully re-senses the row: an `ACT`, a full-row write, a
//! regular refresh, or a TRR-induced refresh) and the RowHammer
//! disturbance accumulated since then. Bit flips materialize lazily at the
//! next restore or read: a weak cell flips if the decay window exceeded
//! its retention time, and the row's hammerable cells flip if the
//! accumulated disturbance exceeded their thresholds. This matches real
//! DRAM, where a flipped cell is re-written *as flipped* by the next
//! refresh — which is precisely why retention failures work as a refresh
//! side channel (§1 of the paper: a row refreshed mid-window reads back
//! clean; an unrefreshed row reads back with its weak cells flipped).
//!
//! Regular refresh follows the DDR4 auto-refresh contract: each `REF`
//! restores the next `rows / period_refs` physical rows of every bank in
//! round-robin order, so every row is restored exactly once every
//! `period_refs` `REF` commands. The paper's Observation A8 (vendor A
//! refreshes internally every 3758 REFs instead of every ~8192) is a
//! [`RefreshConfig`] parameter.

use std::sync::Arc;

use obs::MetricsRegistry;

use crate::addr::{Bank, ModuleGeometry, PhysRow, RowAddr};
use crate::data::{DataPattern, RowData, RowReadout};
use crate::error::DramError;
use crate::mapping::{RowMapping, Topology};
use crate::metrics::{DeviceMetrics, EVT_BIT_FLIP, EVT_TRR_DETECTION};
use crate::mitigation::{MitigationEngine, NoMitigation, TrrDetection};
use crate::physics::{window_flips, PhysicsConfig, RowPhysics, RowPhysicsView};
use crate::stats::ModuleStats;
use crate::time::{Nanos, Timings};
use obs::TraceKind;

/// Time cost of streaming a full row through the column interface.
const ROW_IO: Nanos = Nanos::from_ns(500);

/// Decay windows shorter than this do not advance the VRT Markov chain
/// (back-to-back hammers are one observation, not thousands).
const VRT_OBSERVATION_FLOOR: Nanos = Nanos::from_ms(1);

/// Regular-refresh configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshConfig {
    /// Number of `REF` commands after which every row has been restored
    /// exactly once. DDR4 nominal is ~8192 (64 ms / 7.8 µs); the paper
    /// finds vendor A uses 3758 (Observation A8).
    pub period_refs: u32,
}

impl RefreshConfig {
    /// The DDR4-nominal schedule: every row once per ~8K `REF`s.
    pub const fn ddr4_nominal() -> Self {
        RefreshConfig { period_refs: 8192 }
    }
}

impl Default for RefreshConfig {
    fn default() -> Self {
        RefreshConfig::ddr4_nominal()
    }
}

/// Everything needed to construct a [`Module`] except the seed and the
/// mitigation engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleConfig {
    /// Bank/row/column geometry.
    pub geometry: ModuleGeometry,
    /// DDR timing parameters.
    pub timings: Timings,
    /// Cell failure physics.
    pub physics: PhysicsConfig,
    /// Logical→physical row mapping.
    pub mapping: RowMapping,
    /// Disturbance topology.
    pub topology: Topology,
    /// Regular-refresh schedule.
    pub refresh: RefreshConfig,
}

impl ModuleConfig {
    /// A small module for fast unit tests: 2 banks × 1024 rows, identity
    /// mapping, aggressive physics, no TRR.
    pub fn small_test() -> Self {
        ModuleConfig {
            geometry: ModuleGeometry::tiny(),
            timings: Timings::ddr4(),
            physics: PhysicsConfig::default_test(),
            mapping: RowMapping::Identity,
            topology: Topology::Linear,
            refresh: RefreshConfig { period_refs: 1024 },
        }
    }
}

/// Mutable per-row state, created on first touch.
#[derive(Debug)]
struct RowState {
    last_restore: Nanos,
    disturbance: f64,
    data: Option<RowData>,
    physics: RowPhysics,
}

/// The round-robin `REF` window `[start, end)` of the upcoming `REF`,
/// maintained incrementally (Bresenham-style) so the per-`REF` hot path
/// never divides. Invariant: with `k = ref_count % period`,
/// `start = k·rows/period`, `end = (k+1)·rows/period`, and
/// `rem = ((k+1)·rows) % period`.
#[derive(Debug, Clone, Copy)]
struct RefWindow {
    /// Position within the refresh period (`ref_count % period`).
    k: u64,
    start: u64,
    end: u64,
    /// Running remainder of `(k+1)·rows / period`.
    rem: u64,
    /// `rows / period` and `rows % period`, precomputed once.
    q: u64,
    r: u64,
    period: u64,
}

impl RefWindow {
    fn new(rows: u64, period: u64) -> Self {
        let (q, r) = (rows / period, rows % period);
        RefWindow { k: 0, start: 0, end: q, rem: r, q, r, period }
    }

    /// Advances to the next `REF`'s window.
    fn step(&mut self) {
        self.k += 1;
        if self.k == self.period {
            self.k = 0;
            self.start = 0;
            self.end = self.q;
            self.rem = self.r;
            return;
        }
        self.start = self.end;
        self.end += self.q;
        self.rem += self.r;
        if self.rem >= self.period {
            self.rem -= self.period;
            self.end += 1;
        }
    }
}

/// Per-bank interface state.
#[derive(Debug, Default, Clone, Copy)]
struct BankState {
    /// The open row, as (logical, physical), if any.
    open: Option<(RowAddr, PhysRow)>,
    /// The most recently activated physical row (for the same-row
    /// hammering discount).
    last_act: Option<PhysRow>,
}

/// A simulated DRAM module (one rank) driven at DDR-command granularity.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Module {
    config: ModuleConfig,
    engine: Box<dyn MitigationEngine>,
    /// Cached [`MitigationEngine::detects_inline`] capability. Engines
    /// that only detect at `REF` time never populate the inline drain,
    /// so the ACT hot paths skip the per-batch drain call outright.
    engine_inline: bool,
    seed: u64,
    now: Nanos,
    ref_count: u64,
    /// Incrementally maintained round-robin window of the *next* `REF`
    /// (see [`Module::refresh_window`]). Stepping it is a few adds and
    /// compares — the closed form costs three integer divisions per
    /// `REF`, which is real money at a million REFs per experiment.
    ref_window: RefWindow,
    /// Dense per-slot map from `(bank, physical row)` to an index into
    /// `row_states` (4 bytes per row of the module). The hammer/restore
    /// hot path resolves a row in two array reads — no hashing.
    /// Entries are only meaningful where the `touched` bit is set.
    row_index: Vec<u32>,
    /// Backing store of every touched row's state, in first-touch order.
    row_states: Vec<RowState>,
    /// One bit per `(bank, physical row)`: set iff the row has an entry
    /// in `row_states`. `REF`'s round-robin scan and TRR victim restores
    /// consult this O(1) index instead of probing every candidate row —
    /// untouched rows (the overwhelming majority of a 64K-row bank
    /// under a targeted attack) cost one bit test.
    touched: Vec<u64>,
    banks: Vec<BankState>,
    /// Reusable drain buffer for mitigation detections, so the `REF`
    /// and post-batch hot paths allocate nothing per command.
    detect_buf: Vec<TrrDetection>,
    /// Environmental retention multiplier (fault-injection support):
    /// decay windows are divided by this factor before the physics sees
    /// them, so values above 1.0 model cooling (longer retention) and
    /// below 1.0 heating. Exactly 1.0 is a strict no-op.
    retention_drift: f64,
    /// Override of [`PhysicsConfig::vrt_switch_prob`] while a VRT burst
    /// episode is active (fault-injection support). `None` uses the
    /// configured probability.
    vrt_switch_override: Option<f64>,
    metrics: DeviceMetrics,
}

impl Module {
    /// Creates a module with no TRR protection.
    pub fn new(config: ModuleConfig, seed: u64) -> Self {
        Module::with_engine(config, Box::new(NoMitigation), seed)
    }

    /// Creates a module protected by the given mitigation engine.
    pub fn with_engine(config: ModuleConfig, engine: Box<dyn MitigationEngine>, seed: u64) -> Self {
        let banks = vec![BankState::default(); config.geometry.banks as usize];
        let row_slots = config.geometry.banks as usize * config.geometry.rows_per_bank as usize;
        let metrics = DeviceMetrics::private();
        let mut engine = engine;
        engine.attach_metrics(metrics.registry());
        let engine_inline = engine.detects_inline();
        let ref_window =
            RefWindow::new(config.geometry.rows_per_bank as u64, config.refresh.period_refs as u64);
        Module {
            config,
            engine,
            engine_inline,
            seed,
            now: Nanos::ZERO,
            ref_count: 0,
            ref_window,
            row_index: vec![u32::MAX; row_slots],
            row_states: Vec::new(),
            touched: vec![0u64; row_slots.div_ceil(64)],
            banks,
            detect_buf: Vec::new(),
            retention_drift: 1.0,
            vrt_switch_override: None,
            metrics,
        }
    }

    /// Points this device (and its mitigation engine) at `registry`, so
    /// several devices — or a whole run — share one artifact. Call right
    /// after construction: counts already accumulated in the previous
    /// (private) registry are not migrated.
    pub fn attach_registry(&mut self, registry: Arc<MetricsRegistry>) {
        self.metrics = DeviceMetrics::new(registry);
        self.engine.attach_metrics(self.metrics.registry());
    }

    /// The metrics registry this device reports into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        self.metrics.registry()
    }

    /// The current device time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// The module configuration.
    pub fn config(&self) -> &ModuleConfig {
        &self.config
    }

    /// The module geometry.
    pub fn geometry(&self) -> ModuleGeometry {
        self.config.geometry
    }

    /// The DDR timings in effect.
    pub fn timings(&self) -> Timings {
        self.config.timings
    }

    /// Cumulative statistics (a snapshot view over the metrics
    /// registry's `dram.*` counters).
    pub fn stats(&self) -> ModuleStats {
        self.metrics.stats_view()
    }

    /// Name of the installed mitigation engine.
    pub fn engine_name(&self) -> &str {
        self.engine.name()
    }

    /// Number of `REF` commands issued so far.
    pub fn ref_count(&self) -> u64 {
        self.ref_count
    }

    /// The physical position selected by a logical row address.
    pub fn phys_of(&self, row: RowAddr) -> PhysRow {
        self.config.mapping.to_phys(row)
    }

    /// The logical address that selects a physical position.
    pub fn logical_of(&self, row: PhysRow) -> RowAddr {
        self.config.mapping.to_logical(row)
    }

    /// Lets simulated time pass with the device idle (rows decaying, no
    /// refresh).
    pub fn advance(&mut self, duration: Nanos) {
        self.now += duration;
    }

    /// Sets the environmental retention multiplier: every subsequent
    /// decay window is divided by `drift` before the physics sees it,
    /// so `drift > 1.0` lengthens effective retention (cooling) and
    /// `drift < 1.0` shortens it (heating). Non-finite or non-positive
    /// values reset to the neutral 1.0.
    pub fn set_retention_drift(&mut self, drift: f64) {
        self.retention_drift = if drift.is_finite() && drift > 0.0 { drift } else { 1.0 };
    }

    /// The retention multiplier currently in effect.
    pub fn retention_drift(&self) -> f64 {
        self.retention_drift
    }

    /// Overrides the per-observation VRT switch probability (a burst
    /// episode temporarily destabilising VRT cells); `None` restores
    /// the configured [`PhysicsConfig::vrt_switch_prob`].
    pub fn set_vrt_switch_override(&mut self, prob: Option<f64>) {
        self.vrt_switch_override = prob.map(|p| p.clamp(0.0, 1.0));
    }

    /// The active VRT switch-probability override, if any.
    pub fn vrt_switch_override(&self) -> Option<f64> {
        self.vrt_switch_override
    }

    /// Opens `row` in `bank`. The activation restores the row itself and
    /// disturbs its physical neighbours.
    ///
    /// # Errors
    ///
    /// Fails if the bank already has an open row or an address is out of
    /// range.
    pub fn activate(&mut self, bank: Bank, row: RowAddr) -> Result<(), DramError> {
        self.check_bank(bank)?;
        self.check_row(row)?;
        let state = self.banks[bank.index() as usize];
        if let Some((open, _)) = state.open {
            return Err(DramError::BankAlreadyOpen { bank, open });
        }
        let phys = self.phys_of(row);
        self.restore(bank, phys);
        // Re-opening the row that was just closed toggles the wordline
        // less effectively, exactly as in the batched hammer paths.
        let weight = if self.banks[bank.index() as usize].last_act == Some(phys) {
            self.config.physics.same_row_discount
        } else {
            1.0
        };
        self.disturb_from(bank, phys, weight);
        self.engine.on_activations(bank, phys, 1, self.now);
        self.apply_inline_detections();
        let b = &mut self.banks[bank.index() as usize];
        b.open = Some((row, phys));
        b.last_act = Some(phys);
        self.metrics.act.inc();
        if self.metrics.detail() {
            self.metrics.act_ns.record(self.config.timings.t_ras.as_ns());
        }
        self.metrics.trace(
            TraceKind::Act,
            self.now.as_ns(),
            bank.index() as u32,
            Some(phys.index()),
            &[("count", 1)],
            "",
        );
        self.now += self.config.timings.t_ras;
        Ok(())
    }

    /// Closes the open row of `bank` (no-op timing-wise if already
    /// closed is an error: real controllers never blind-precharge here).
    ///
    /// # Errors
    ///
    /// Fails if the bank index is out of range or no row is open.
    pub fn precharge(&mut self, bank: Bank) -> Result<(), DramError> {
        self.check_bank(bank)?;
        let b = &mut self.banks[bank.index() as usize];
        if b.open.is_none() {
            return Err(DramError::BankClosed { bank });
        }
        b.open = None;
        self.metrics.pre.inc();
        if self.metrics.detail() {
            self.metrics.pre_ns.record(self.config.timings.t_rp.as_ns());
        }
        self.now += self.config.timings.t_rp;
        Ok(())
    }

    /// Writes a full-row data pattern into the open row of `bank`.
    ///
    /// # Errors
    ///
    /// Fails if no row is open in the bank.
    pub fn write_open_row(&mut self, bank: Bank, pattern: DataPattern) -> Result<(), DramError> {
        self.check_bank(bank)?;
        let (logical, phys) = self.open_row(bank)?;
        let now = self.now;
        let state = self.row_state(bank, phys);
        state.data = Some(RowData::new(pattern, logical));
        state.last_restore = now;
        state.disturbance = 0.0;
        self.metrics.row_writes.inc();
        if self.metrics.detail() {
            self.metrics.write_ns.record(ROW_IO.as_ns());
        }
        self.now += ROW_IO;
        Ok(())
    }

    /// Reads the open row of `bank` back and reports which bits differ
    /// from the pattern it was last written with. Reading a row that was
    /// never written returns a clean all-zeros readout.
    ///
    /// # Errors
    ///
    /// Fails if no row is open in the bank.
    pub fn read_open_row(&mut self, bank: Bank) -> Result<RowReadout, DramError> {
        self.check_bank(bank)?;
        let (logical, phys) = self.open_row(bank)?;
        let row_bits = self.config.geometry.row_bits();
        let state = self.row_state(bank, phys);
        let readout = match &state.data {
            Some(data) => {
                RowReadout::new(logical, data.pattern.clone(), data.flips.clone(), row_bits)
            }
            None => RowReadout::new(logical, DataPattern::Zeros, Vec::new(), row_bits),
        };
        self.metrics.row_reads.inc();
        if self.metrics.detail() {
            self.metrics.read_ns.record(ROW_IO.as_ns());
        }
        self.now += ROW_IO;
        Ok(readout)
    }

    /// Composite: activate, write, precharge.
    ///
    /// # Errors
    ///
    /// Propagates any protocol error from the three steps.
    pub fn write_row(
        &mut self,
        bank: Bank,
        row: RowAddr,
        pattern: DataPattern,
    ) -> Result<(), DramError> {
        self.activate(bank, row)?;
        self.write_open_row(bank, pattern)?;
        self.precharge(bank)
    }

    /// Composite: activate, read, precharge.
    ///
    /// # Errors
    ///
    /// Propagates any protocol error from the three steps.
    pub fn read_row(&mut self, bank: Bank, row: RowAddr) -> Result<RowReadout, DramError> {
        self.activate(bank, row)?;
        let readout = self.read_open_row(bank)?;
        self.precharge(bank)?;
        Ok(readout)
    }

    /// Hammers `row`: `count` back-to-back `ACT`/`PRE` cycles. The bank
    /// must be precharged and is left precharged. Batched but
    /// behaviourally identical to `count` single activations.
    ///
    /// # Errors
    ///
    /// Fails if the bank has an open row or an address is out of range.
    pub fn hammer(&mut self, bank: Bank, row: RowAddr, count: u64) -> Result<(), DramError> {
        self.check_bank(bank)?;
        self.check_row(row)?;
        if let Some((open, _)) = self.banks[bank.index() as usize].open {
            return Err(DramError::BankAlreadyOpen { bank, open });
        }
        if count == 0 {
            return Ok(());
        }
        let phys = self.phys_of(row);
        self.restore(bank, phys);
        let discount = self.config.physics.same_row_discount;
        let first =
            if self.banks[bank.index() as usize].last_act == Some(phys) { discount } else { 1.0 };
        let weight = first + discount * (count - 1) as f64;
        self.disturb_from(bank, phys, weight);
        self.engine.on_activations(bank, phys, count, self.now);
        self.apply_inline_detections();
        self.banks[bank.index() as usize].last_act = Some(phys);
        self.metrics.act.add(count);
        if self.metrics.detail() {
            // One O(1) update for the whole batch.
            self.metrics.act_ns.record_n(self.config.timings.t_rc().as_ns(), count);
        }
        self.metrics.trace(
            TraceKind::Act,
            self.now.as_ns(),
            bank.index() as u32,
            Some(phys.index()),
            &[("count", count)],
            "",
        );
        self.now += self.config.timings.t_rc() * count;
        Ok(())
    }

    /// Like [`Module::hammer`], but without advancing the device clock:
    /// models hammering that proceeds *concurrently* in another bank
    /// while the caller accounts the interval's time once (the §7.1
    /// vendor-B pattern hammers dummy rows in four banks simultaneously,
    /// bounded by `tFAW` rather than by one bank's `tRC` budget).
    ///
    /// # Errors
    ///
    /// Fails if the bank has an open row or an address is out of range.
    pub fn hammer_overlapped(
        &mut self,
        bank: Bank,
        row: RowAddr,
        count: u64,
    ) -> Result<(), DramError> {
        let before = self.now;
        self.hammer(bank, row, count)?;
        self.now = before;
        Ok(())
    }

    /// Interleaved double-sided hammering: the alternating sequence
    /// `first, second, first, second, …` of `2 * pairs` activations.
    /// Alternating activations carry full disturbance weight, which is
    /// what makes interleaved hammering far more effective than cascaded
    /// hammering (§5.2).
    ///
    /// # Errors
    ///
    /// Fails if the bank has an open row or an address is out of range.
    pub fn hammer_pair(
        &mut self,
        bank: Bank,
        first: RowAddr,
        second: RowAddr,
        pairs: u64,
    ) -> Result<(), DramError> {
        self.check_bank(bank)?;
        self.check_row(first)?;
        self.check_row(second)?;
        let bank_idx = bank.index() as usize;
        if let Some((open, _)) = self.banks[bank_idx].open {
            return Err(DramError::BankAlreadyOpen { bank, open });
        }
        if pairs == 0 {
            return Ok(());
        }
        let p1 = self.phys_of(first);
        let p2 = self.phys_of(second);
        if p1 == p2 {
            // Degenerate: identical rows alternate into plain hammering.
            return self.hammer(bank, first, 2 * pairs);
        }
        self.restore(bank, p1);
        self.restore(bank, p2);
        let discount = self.config.physics.same_row_discount;
        let p1_was_last = self.banks[bank_idx].last_act == Some(p1);
        let first_weight = if p1_was_last { discount + (pairs - 1) as f64 } else { pairs as f64 };
        #[cfg(debug_assertions)]
        {
            // The batched accounting above must equal the loop
            // equivalent: p1's first activation carries the same-row
            // discount iff p1 was the last ACT; every later p1
            // activation follows one of p2 (full weight), as does every
            // p2 activation, and the batch issues exactly 2*pairs ACTs.
            let mut loop_w1 = if p1_was_last { discount } else { 1.0 };
            let mut loop_w2 = 0.0f64;
            let mut loop_acts = 0u64;
            for pair in 0..pairs {
                if pair > 0 {
                    loop_w1 += 1.0;
                }
                loop_w2 += 1.0;
                loop_acts += 2;
            }
            let close = |a: f64, b: f64| (a - b).abs() <= 1e-6 * (1.0 + b.abs());
            debug_assert_eq!(loop_acts, 2 * pairs, "batched ACT count != loop equivalent");
            debug_assert!(
                close(loop_w1, first_weight) && close(loop_w2, pairs as f64),
                "batched hammer weights ({first_weight}, {}) != loop equivalent \
                 ({loop_w1}, {loop_w2})",
                pairs as f64,
            );
        }
        self.disturb_from(bank, p1, first_weight);
        self.disturb_from(bank, p2, pairs as f64);
        // Each real alternation cycle re-restores both aggressors, so the
        // radius-2 disturbance they deposit on *each other* never
        // accumulates past one cycle; the batch restores them only once
        // up front, so clear the residue it would otherwise pile up.
        self.row_state(bank, p1).disturbance = 0.0;
        self.row_state(bank, p2).disturbance = 0.0;
        self.engine.on_interleaved_pair(bank, p1, p2, pairs, self.now);
        self.apply_inline_detections();
        self.banks[bank_idx].last_act = Some(p2);
        self.metrics.act.add(2 * pairs);
        if self.metrics.detail() {
            self.metrics.act_ns.record_n(self.config.timings.t_rc().as_ns(), 2 * pairs);
        }
        if self.metrics.tracing() {
            let t = self.now.as_ns();
            let b = bank.index() as u32;
            self.metrics.trace(
                TraceKind::Act,
                t,
                b,
                Some(p1.index()),
                &[("count", pairs), ("interleaved", 1)],
                "",
            );
            self.metrics.trace(
                TraceKind::Act,
                t,
                b,
                Some(p2.index()),
                &[("count", pairs), ("interleaved", 1)],
                "",
            );
        }
        self.now += self.config.timings.t_rc() * (2 * pairs);
        Ok(())
    }

    /// Issues one `REF` command: the round-robin regular refresh plus any
    /// TRR-induced refreshes the mitigation engine decides to piggyback.
    ///
    /// The regular sweep is event-driven: instead of probing every row of
    /// the round-robin window, it walks the `touched` bitmap word by word
    /// and extracts set bits with `trailing_zeros`, so untouched rows cost
    /// nothing at all and a `REF` whose window holds no touched rows goes
    /// straight to the mitigation engine's `on_refresh` hook. The restore
    /// order (ascending physical row within each bank, banks in order) is
    /// identical to the full-window probe retained in
    /// [`Module::refresh_naive`].
    pub fn refresh(&mut self) {
        self.refresh_impl(true);
    }

    /// [`Module::refresh`] with per-`REF` counter/histogram recording
    /// optionally deferred — the burst path accounts a whole burst with
    /// one counter add and one histogram record instead of paying the
    /// shared-registry atomics `count` times.
    fn refresh_impl(&mut self, record_metrics: bool) {
        let (start, end) = self.refresh_window();
        // Scaled-down geometries have more REFs per period than rows per
        // bank, so most windows are empty — skip the bank scan outright.
        if start < end {
            let rows_per_bank = self.config.geometry.rows_per_bank as usize;
            let mut restored = 0u64;
            for bank_idx in 0..self.config.geometry.banks {
                let bank = Bank::new(bank_idx);
                let base = bank_idx as usize * rows_per_bank;
                let lo = base + start as usize;
                let hi = base + end as usize;
                let mut word_idx = lo / 64;
                while word_idx * 64 < hi {
                    let word_base = word_idx * 64;
                    let mut bits = self.touched[word_idx];
                    if word_base < lo {
                        bits &= !0u64 << (lo - word_base);
                    }
                    if hi - word_base < 64 {
                        bits &= (1u64 << (hi - word_base)) - 1;
                    }
                    while bits != 0 {
                        let offset = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let phys = PhysRow::new((word_base + offset - base) as u32);
                        self.restore(bank, phys);
                        restored += 1;
                    }
                    word_idx += 1;
                }
            }
            if restored > 0 {
                self.metrics.regular_row_refreshes.add(restored);
            }
        }
        self.complete_refresh(start, end, record_metrics);
    }

    /// Reference implementation of [`Module::refresh`] that probes every
    /// row of the round-robin window whether touched or not (the
    /// behaviour before the event-driven bitmap scan). Kept so the
    /// equivalence property suite can drive randomized command traces
    /// through both implementations and assert identical observable
    /// state; not part of the simulator API.
    #[doc(hidden)]
    pub fn refresh_naive(&mut self) {
        let (start, end) = self.refresh_window();
        for bank_idx in 0..self.config.geometry.banks {
            let bank = Bank::new(bank_idx);
            for r in start..end {
                let phys = PhysRow::new(r as u32);
                if self.restore_existing(bank, phys) {
                    self.metrics.regular_row_refreshes.inc();
                }
            }
        }
        self.complete_refresh(start, end, true);
    }

    /// The physical row window `[start, end)` the next `REF` restores in
    /// every bank. `REF` number `k` of a period covers
    /// `[k·rows/period, (k+1)·rows/period)`; the window never crosses the
    /// end of the bank, and over one period the windows tile every row
    /// exactly once.
    fn refresh_window(&self) -> (u64, u64) {
        debug_assert_eq!(self.ref_window.k, self.ref_count % self.ref_window.period);
        debug_assert_eq!(self.ref_window.start, {
            let rows = self.config.geometry.rows_per_bank as u64;
            let period = self.config.refresh.period_refs as u64;
            (self.ref_count % period) * rows / period
        });
        (self.ref_window.start, self.ref_window.end)
    }

    /// Shared `REF` tail: TRR piggyback detections, counters, tracing,
    /// and timing. `start..end` is the physical window the sweep covered.
    fn complete_refresh(&mut self, start: u64, end: u64, record_metrics: bool) {
        let mut detections = std::mem::take(&mut self.detect_buf);
        detections.clear();
        self.engine.on_refresh(self.now, &mut detections);
        self.apply_detections(&detections);
        self.detect_buf = detections;
        let k = self.ref_count;
        self.ref_count += 1;
        self.ref_window.step();
        if record_metrics {
            self.metrics.refresh.inc();
            if self.metrics.detail() {
                self.metrics.ref_ns.record(self.config.timings.t_rfc.as_ns());
            }
        }
        if self.metrics.tracing() {
            // Pre-gate on the tracked row set: a full tREFW is ~8k REFs,
            // and only the handful whose round-robin window sweeps past
            // a tracked row matter to the causal timeline.
            let swept = self.metrics.registry().recorder().is_some_and(|recorder| {
                let filter = recorder.filter();
                filter.tracks_all() || (start..end).any(|r| filter.admits(Some(r as u32)))
            });
            if swept {
                self.metrics.trace(
                    TraceKind::Ref,
                    self.now.as_ns(),
                    0,
                    None,
                    &[("ref_index", k), ("sweep_start", start), ("sweep_rows", end - start)],
                    "",
                );
            }
        }
        self.now += self.config.timings.t_rfc;
    }

    /// Issues `count` `REF` commands paced one per `tREFI` (the idle gap
    /// between them is dead time). The idle gap and the engine's drain
    /// buffer are loop invariants: each `refresh()` reuses the module's
    /// detection buffer, so the burst performs no per-`REF` allocation.
    pub fn refresh_burst_at_refi(&mut self, count: u64) {
        if count == 0 {
            return;
        }
        let idle = self.config.timings.t_refi.saturating_sub(self.config.timings.t_rfc);
        for _ in 0..count {
            self.refresh_impl(false);
            self.advance(idle);
        }
        // One counter add and one histogram record for the whole burst —
        // identical totals, none of the per-`REF` shared-atomic traffic.
        self.metrics.refresh.add(count);
        if self.metrics.detail() {
            self.metrics.ref_ns.record_n(self.config.timings.t_rfc.as_ns(), count);
        }
    }

    /// Ground-truth physics of a row — **test/calibration support only**;
    /// no real-hardware analogue exists and U-TRR never calls this.
    pub fn inspect_row(&mut self, bank: Bank, row: RowAddr) -> RowPhysicsView {
        let phys = self.phys_of(row);
        RowPhysicsView::of(&self.row_state(bank, phys).physics)
    }

    /// Resets the mitigation engine to power-on state — test support; the
    /// methodology itself resets TRR state by hammering dummy rows
    /// (Requirement 4 of §5.1).
    pub fn reset_mitigation(&mut self) {
        self.engine.reset();
    }

    /// The physics-derivation stream of a row. Part of the determinism
    /// contract: per-row RNG streams are seeded from this value, so it
    /// must stay stable across storage-layout changes.
    fn key(bank: Bank, phys: PhysRow) -> u64 {
        (bank.index() as u64) << 32 | phys.index() as u64
    }

    /// Dense storage slot of `(bank, phys)`: bank-major, row-minor.
    #[inline]
    fn slot(&self, bank: Bank, phys: PhysRow) -> usize {
        bank.index() as usize * self.config.geometry.rows_per_bank as usize + phys.index() as usize
    }

    fn touched_slot(&self, bank: Bank, phys: PhysRow) -> (usize, u64) {
        let index = self.slot(bank, phys);
        (index / 64, 1u64 << (index % 64))
    }

    /// Whether `(bank, phys)` has an entry in the row table.
    #[inline]
    fn is_touched(&self, bank: Bank, phys: PhysRow) -> bool {
        let (word, mask) = self.touched_slot(bank, phys);
        self.touched[word] & mask != 0
    }

    fn check_bank(&self, bank: Bank) -> Result<(), DramError> {
        if self.config.geometry.bank_in_range(bank) {
            Ok(())
        } else {
            Err(DramError::BankOutOfRange { bank, banks: self.config.geometry.banks })
        }
    }

    fn check_row(&self, row: RowAddr) -> Result<(), DramError> {
        if self.config.geometry.row_in_range(row) {
            Ok(())
        } else {
            Err(DramError::RowOutOfRange { row, rows: self.config.geometry.rows_per_bank })
        }
    }

    fn open_row(&self, bank: Bank) -> Result<(RowAddr, PhysRow), DramError> {
        self.banks[bank.index() as usize].open.ok_or(DramError::BankClosed { bank })
    }

    /// Get-or-create the state of a row. The `touched` bit doubles as
    /// the existence check, so the common "row already exists" path
    /// costs one bit test plus two array reads — no hashing.
    #[inline]
    fn row_state(&mut self, bank: Bank, phys: PhysRow) -> &mut RowState {
        let slot = self.slot(bank, phys);
        let (word, mask) = (slot / 64, 1u64 << (slot % 64));
        if self.touched[word] & mask == 0 {
            self.touched[word] |= mask;
            let state = RowState {
                last_restore: self.now,
                disturbance: 0.0,
                data: None,
                physics: RowPhysics::derive(
                    &self.config.physics,
                    self.seed,
                    Self::key(bank, phys),
                    self.config.geometry.row_bits(),
                ),
            };
            self.row_index[slot] = u32::try_from(self.row_states.len())
                .expect("fewer than 2^32 touched rows per module");
            self.row_states.push(state);
        }
        let index = self.row_index[slot] as usize;
        &mut self.row_states[index]
    }

    /// Ends the decay window of a row: materializes retention and
    /// RowHammer flips into its data, then marks it fully restored.
    fn restore(&mut self, bank: Bank, phys: PhysRow) {
        let slot = self.slot(bank, phys);
        if self.touched[slot / 64] & (1u64 << (slot % 64)) == 0 {
            // First touch: a freshly created state is already restored.
            let _ = self.row_state(bank, phys);
            return;
        }
        let now = self.now;
        let row_bits = self.config.geometry.row_bits();
        let state = &mut self.row_states[self.row_index[slot] as usize];
        if now - state.last_restore == Nanos::ZERO && state.disturbance == 0.0 {
            return;
        }
        let cfg = &self.config.physics;
        let raw_elapsed = now - state.last_restore;
        // Retention drift scales the decay window, not the clock: a 2%
        // cooler part behaves as if 2% less time had passed. 1.0 takes
        // the untouched path so fault-free runs stay bit-identical.
        let elapsed = if self.retention_drift != 1.0 {
            Nanos::from_ns((raw_elapsed.as_ns() as f64 / self.retention_drift) as u64)
        } else {
            raw_elapsed
        };
        let mut new_flips = 0u64;
        if let Some(data) = &mut state.data {
            let flips =
                window_flips(&state.physics, cfg, elapsed, state.disturbance, row_bits, |bit| {
                    data.bit(bit)
                });
            new_flips = flips.len() as u64;
            for bit in flips {
                data.set_flipped(bit);
            }
        }
        if raw_elapsed >= VRT_OBSERVATION_FLOOR {
            let switch_prob = self.vrt_switch_override.unwrap_or(cfg.vrt_switch_prob);
            state.physics.advance_vrt(switch_prob);
        }
        state.last_restore = now;
        state.disturbance = 0.0;
        if new_flips > 0 {
            self.metrics.bit_flips.add(new_flips);
            self.metrics.event(
                EVT_BIT_FLIP,
                now.as_ns(),
                &[
                    ("bank", bank.index() as u64),
                    ("row", phys.index() as u64),
                    ("flips", new_flips),
                ],
            );
            self.metrics.trace(
                TraceKind::BitFlip,
                now.as_ns(),
                bank.index() as u32,
                Some(phys.index()),
                &[("flips", new_flips)],
                "",
            );
        }
    }

    /// Drains ACT-synchronous detections (PARA/Graphene-style engines)
    /// and refreshes their victims immediately.
    fn apply_inline_detections(&mut self) {
        if !self.engine_inline {
            // REF-time-only engines never have anything to drain; skip
            // the two virtual calls and buffer swap on every ACT batch.
            return;
        }
        let mut detections = std::mem::take(&mut self.detect_buf);
        detections.clear();
        self.engine.take_inline_detections(&mut detections);
        self.apply_detections(&detections);
        self.detect_buf = detections;
    }

    /// Refreshes the victims of mitigation detections. A targeted
    /// refresh internally *activates* the victim row, so it disturbs the
    /// victim's own neighbours — the physical lever behind the
    /// Half-Double technique (Google Project Zero, 2021; cited by the
    /// paper's related work). Regular refresh activates every row
    /// uniformly and its disturbance self-balances, so only targeted
    /// refreshes are modelled as disturbing.
    fn apply_detections(&mut self, detections: &[TrrDetection]) {
        if detections.is_empty() {
            // Nearly every ACT and REF lands here: engines detect on a
            // tiny fraction of commands, and a zero-length add is still
            // an atomic RMW per command if not skipped.
            return;
        }
        self.metrics.trr_detections.add(detections.len() as u64);
        for &det in detections {
            self.metrics.event(
                EVT_TRR_DETECTION,
                self.now.as_ns(),
                &[
                    ("bank", det.bank.index() as u64),
                    ("aggressor", det.aggressor.index() as u64),
                    ("span", det.span.per_side() as u64),
                ],
            );
            self.metrics.trace(
                TraceKind::TrrDetect,
                self.now.as_ns(),
                det.bank.index() as u32,
                Some(det.aggressor.index()),
                &[("span", det.span.per_side() as u64)],
                "",
            );
            let victims = self.config.topology.trr_victims(
                det.aggressor,
                self.config.geometry.rows_per_bank,
                det.span,
            );
            for victim in victims {
                if self.restore_existing(det.bank, victim) {
                    self.metrics.trr_row_refreshes.inc();
                }
                self.disturb_from(det.bank, victim, 1.0);
                self.metrics.trace(
                    TraceKind::TrrRefresh,
                    self.now.as_ns(),
                    det.bank.index() as u32,
                    Some(victim.index()),
                    &[("aggressor", det.aggressor.index() as u64)],
                    "",
                );
            }
        }
    }

    /// Restores a row only if it has ever been touched; returns whether a
    /// restore happened. Untouched rows have no observable state, so
    /// skipping them is semantically free and keeps `REF` cheap — the
    /// existence test is one bit in the `touched` index, no hashing.
    fn restore_existing(&mut self, bank: Bank, phys: PhysRow) -> bool {
        if self.is_touched(bank, phys) {
            self.restore(bank, phys);
            true
        } else {
            false
        }
    }

    /// Adds `weight` units of disturbance (before coupling) from an
    /// activation of `source` to its topological neighbours.
    fn disturb_from(&mut self, bank: Bank, source: PhysRow, weight: f64) {
        let coupling = {
            let slot = self.slot(bank, source);
            let pattern = if self.touched[slot / 64] & (1u64 << (slot % 64)) != 0 {
                self.row_states[self.row_index[slot] as usize].data.as_ref().map(|d| &d.pattern)
            } else {
                None
            };
            self.config.physics.aggressor_coupling(pattern)
        };
        let (targets, n) = self.config.topology.disturb_targets_fixed(
            source,
            self.config.geometry.rows_per_bank,
            self.config.physics.radius2_weight,
        );
        for &(victim, w) in &targets[..n] {
            self.row_state(bank, victim).disturbance += w * weight * coupling;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module() -> Module {
        Module::new(ModuleConfig::small_test(), 7)
    }

    /// Finds a row whose weakest cell fails between `lo` and `hi`, with
    /// the written pattern guaranteed to expose the failure.
    fn find_weak_row(m: &mut Module, bank: Bank) -> (RowAddr, Nanos) {
        for r in 0..m.geometry().rows_per_bank {
            let row = RowAddr::new(r);
            let view = m.inspect_row(bank, row);
            if let Some(ret) = view.min_retention() {
                if !view.has_vrt() {
                    return (row, ret);
                }
            }
        }
        panic!("test physics must contain a stable weak row");
    }

    #[test]
    fn written_row_reads_clean_immediately() {
        let mut m = module();
        let b = Bank::new(0);
        m.write_row(b, RowAddr::new(3), DataPattern::Ones).unwrap();
        let r = m.read_row(b, RowAddr::new(3)).unwrap();
        assert!(r.is_clean());
    }

    #[test]
    fn weak_row_decays_after_its_retention_time() {
        let mut m = module();
        let b = Bank::new(0);
        let (row, ret) = find_weak_row(&mut m, b);
        // Write both orientations so the charged value is covered.
        for pattern in [DataPattern::Ones, DataPattern::Zeros] {
            m.write_row(b, row, pattern.clone()).unwrap();
            m.advance(ret + ret);
            let readout = m.read_row(b, row).unwrap();
            m.write_row(b, row, pattern.clone()).unwrap();
            m.advance(ret / 4);
            let clean = m.read_row(b, row).unwrap();
            assert!(clean.is_clean(), "within retention the row must hold");
            if !readout.is_clean() {
                return; // decayed under one of the orientations: pass
            }
        }
        panic!("row should decay under at least one pattern");
    }

    #[test]
    fn refresh_prevents_decay() {
        let mut m = module();
        let b = Bank::new(0);
        let (row, ret) = find_weak_row(&mut m, b);
        m.write_row(b, row, DataPattern::Ones).unwrap();
        // Pace REFs so the whole bank is covered several times during 2*ret.
        let period = m.config().refresh.period_refs as u64;
        let total = ret + ret;
        let step = total / (4 * period);
        for _ in 0..4 * period {
            m.refresh();
            m.advance(step);
        }
        let readout = m.read_row(b, row).unwrap();
        assert!(readout.is_clean(), "regularly refreshed row must not decay");
    }

    #[test]
    fn double_sided_hammer_flips_victim() {
        let mut m = module();
        let b = Bank::new(0);
        let victim = RowAddr::new(500);
        m.write_row(b, victim, DataPattern::Ones).unwrap();
        let hc = m.config().physics.hc_first as u64;
        m.hammer_pair(b, victim.minus(1), victim.plus(1), hc * 4).unwrap();
        let readout = m.read_row(b, victim).unwrap();
        assert!(!readout.is_clean(), "4x HC_first double-sided must flip");
    }

    #[test]
    fn hammer_below_threshold_is_harmless() {
        let mut m = module();
        let b = Bank::new(0);
        let victim = RowAddr::new(500);
        m.write_row(b, victim, DataPattern::Ones).unwrap();
        m.hammer_pair(b, victim.minus(1), victim.plus(1), 50).unwrap();
        let readout = m.read_row(b, victim).unwrap();
        assert!(readout.is_clean());
    }

    #[test]
    fn cascaded_hammering_is_weaker_than_interleaved() {
        let flips_with = |interleaved: bool| {
            let mut m = module();
            let b = Bank::new(0);
            let victim = RowAddr::new(300);
            m.write_row(b, victim, DataPattern::Ones).unwrap();
            let n = 3 * m.config().physics.hc_first as u64;
            if interleaved {
                m.hammer_pair(b, victim.minus(1), victim.plus(1), n).unwrap();
            } else {
                m.hammer(b, victim.minus(1), n).unwrap();
                m.hammer(b, victim.plus(1), n).unwrap();
            }
            m.read_row(b, victim).unwrap().flip_count()
        };
        assert!(
            flips_with(true) > flips_with(false),
            "interleaved must beat cascaded at equal hammer count"
        );
    }

    #[test]
    fn victim_refresh_resets_disturbance() {
        let mut m = module();
        let b = Bank::new(0);
        let victim = RowAddr::new(500);
        m.write_row(b, victim, DataPattern::Ones).unwrap();
        let hc = m.config().physics.hc_first as u64;
        // Two half-threshold rounds with an intervening victim re-activate
        // (which restores it) must not flip.
        m.hammer_pair(b, victim.minus(1), victim.plus(1), (hc * 3) / 4).unwrap();
        m.activate(b, victim).unwrap();
        m.precharge(b).unwrap();
        m.hammer_pair(b, victim.minus(1), victim.plus(1), (hc * 3) / 4).unwrap();
        let readout = m.read_row(b, victim).unwrap();
        assert!(readout.is_clean(), "restore between rounds must reset disturbance");
    }

    #[test]
    fn blast_radius_two_reaches_distance_two() {
        let mut m = module();
        let b = Bank::new(0);
        let victim = RowAddr::new(400);
        m.write_row(b, victim, DataPattern::Ones).unwrap();
        // Aggressors at distance 2 on both sides.
        let hc = m.config().physics.hc_first as u64;
        let w2 = m.config().physics.radius2_weight;
        let pairs = ((hc as f64) * 6.0 / w2) as u64;
        m.hammer_pair(b, victim.minus(2), victim.plus(2), pairs).unwrap();
        let readout = m.read_row(b, victim).unwrap();
        assert!(!readout.is_clean(), "distance-2 disturbance must accumulate");
    }

    #[test]
    fn protocol_errors() {
        let mut m = module();
        let b = Bank::new(0);
        assert_eq!(m.precharge(b), Err(DramError::BankClosed { bank: b }));
        assert!(m.read_open_row(b).is_err());
        m.activate(b, RowAddr::new(1)).unwrap();
        assert_eq!(
            m.activate(b, RowAddr::new(2)),
            Err(DramError::BankAlreadyOpen { bank: b, open: RowAddr::new(1) })
        );
        assert!(m.hammer(b, RowAddr::new(5), 3).is_err());
        m.precharge(b).unwrap();
        assert!(m.activate(Bank::new(99), RowAddr::new(0)).is_err());
        assert!(m.activate(b, RowAddr::new(1 << 30)).is_err());
    }

    #[test]
    fn regular_refresh_covers_every_row_once_per_period() {
        let mut m = module();
        let b = Bank::new(0);
        let rows = m.geometry().rows_per_bank;
        // Touch every row so restores are observable through stats.
        for r in 0..rows {
            m.write_row(b, RowAddr::new(r), DataPattern::Ones).unwrap();
        }
        let before = m.stats().regular_row_refreshes;
        let period = m.config().refresh.period_refs as u64;
        for _ in 0..period {
            m.refresh();
        }
        let per_bank = m.stats().regular_row_refreshes - before; // bank 0 only touched
        assert_eq!(per_bank, rows as u64, "each touched row restored exactly once");
    }

    #[test]
    fn refresh_period_is_exactly_periodic_per_row() {
        let mut m = module();
        let b = Bank::new(0);
        let (row, ret) = find_weak_row(&mut m, b);
        m.write_row(b, row, DataPattern::Ones).unwrap();
        // Find the REF index (mod period) that covers `row`: issue REFs
        // one at a time with decay in between, and watch when it survives.
        let period = m.config().refresh.period_refs as u64;
        let phys = m.phys_of(row).index() as u64;
        let rows = m.geometry().rows_per_bank as u64;
        // REF k covers rows [k*rows/period, (k+1)*rows/period).
        let covering_ref = phys * period / rows;
        // Sanity-check the arithmetic against device behaviour.
        for _ in 0..covering_ref {
            m.refresh();
        }
        let before = m.stats().regular_row_refreshes;
        m.refresh();
        assert!(m.stats().regular_row_refreshes > before);
        let _ = ret;
    }

    #[test]
    fn hammer_batching_matches_singles() {
        let run = |batched: bool| {
            let mut m = Module::new(ModuleConfig::small_test(), 99);
            let b = Bank::new(0);
            let victim = RowAddr::new(200);
            m.write_row(b, victim, DataPattern::Ones).unwrap();
            let aggressor = victim.plus(1);
            if batched {
                m.hammer(b, aggressor, 5_000).unwrap();
            } else {
                for _ in 0..5_000 {
                    m.hammer(b, aggressor, 1).unwrap();
                }
            }
            m.read_row(b, victim).unwrap().flip_count()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn mapping_changes_physical_neighbours() {
        let mut config = ModuleConfig::small_test();
        config.mapping = RowMapping::block_mirror(3);
        let mut m = Module::new(config, 7);
        let b = Bank::new(0);
        // Logical rows 0 and 7 map to physical 7 and 0 within the first
        // block; logical 1 maps to physical 6: its physical neighbours are
        // physical 5 and 7 = logical 2 and 0.
        let victim = RowAddr::new(1);
        m.write_row(b, victim, DataPattern::Ones).unwrap();
        let hc = m.config().physics.hc_first as u64;
        m.hammer_pair(b, RowAddr::new(2), RowAddr::new(0), hc * 4).unwrap();
        assert!(!m.read_row(b, victim).unwrap().is_clean());
    }

    #[test]
    fn paired_topology_isolates_pairs() {
        let mut config = ModuleConfig::small_test();
        config.topology = Topology::Paired;
        let mut m = Module::new(config, 7);
        let b = Bank::new(0);
        let hc = m.config().physics.hc_first as u64;
        // Hammering row 11 (odd) disturbs only row 10.
        m.write_row(b, RowAddr::new(10), DataPattern::Ones).unwrap();
        m.write_row(b, RowAddr::new(12), DataPattern::Ones).unwrap();
        m.hammer(b, RowAddr::new(11), hc * 8).unwrap();
        assert!(!m.read_row(b, RowAddr::new(10)).unwrap().is_clean());
        assert!(m.read_row(b, RowAddr::new(12)).unwrap().is_clean());
    }

    #[test]
    fn time_advances_with_commands() {
        let mut m = module();
        let b = Bank::new(0);
        let t0 = m.now();
        m.hammer(b, RowAddr::new(1), 100).unwrap();
        assert_eq!(m.now() - t0, m.timings().t_rc() * 100);
        let t1 = m.now();
        m.refresh();
        assert_eq!(m.now() - t1, m.timings().t_rfc);
    }

    #[test]
    fn stats_accumulate() {
        let mut m = module();
        let b = Bank::new(0);
        m.write_row(b, RowAddr::new(1), DataPattern::Ones).unwrap();
        m.hammer(b, RowAddr::new(2), 10).unwrap();
        m.refresh();
        let s = m.stats();
        assert_eq!(s.row_writes, 1);
        assert_eq!(s.activations, 11);
        assert_eq!(s.refreshes, 1);
        assert_eq!(m.ref_count(), 1);
    }

    #[test]
    fn unwritten_row_reads_clean_zeros() {
        let mut m = module();
        let r = m.read_row(Bank::new(1), RowAddr::new(77)).unwrap();
        assert!(r.is_clean());
        assert_eq!(r.pattern(), &DataPattern::Zeros);
    }
}
