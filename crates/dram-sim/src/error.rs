//! Error type for DRAM command execution.

use std::error::Error;
use std::fmt;

use crate::addr::{Bank, PhysRow, RowAddr};
use crate::time::Nanos;

/// Errors raised when a DDR command sequence violates the device's
/// protocol or addressing constraints.
///
/// These model controller programming mistakes (the FPGA would hang or
/// corrupt data on real hardware); the physics layer itself is infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramError {
    /// A bank index outside the module geometry.
    BankOutOfRange { bank: Bank, banks: u8 },
    /// A logical row address outside the bank.
    RowOutOfRange { row: RowAddr, rows: u32 },
    /// A physical row position outside the bank.
    PhysRowOutOfRange { row: PhysRow, rows: u32 },
    /// `ACT` issued to a bank that already has an open row.
    BankAlreadyOpen { bank: Bank, open: RowAddr },
    /// A column command (`RD`/`WR`) issued to a bank with no open row.
    BankClosed { bank: Bank },
    /// Commands must carry monotonically non-decreasing timestamps.
    TimeRegression { now: Nanos, requested: Nanos },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::BankOutOfRange { bank, banks } => {
                write!(f, "bank {bank} out of range (module has {banks} banks)")
            }
            DramError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range (bank has {rows} rows)")
            }
            DramError::PhysRowOutOfRange { row, rows } => {
                write!(f, "physical row {row} out of range (bank has {rows} rows)")
            }
            DramError::BankAlreadyOpen { bank, open } => {
                write!(f, "activate to bank {bank} which already has row {open} open")
            }
            DramError::BankClosed { bank } => {
                write!(f, "column command to bank {bank} with no open row")
            }
            DramError::TimeRegression { now, requested } => {
                write!(f, "command timestamp {requested} is before device time {now}")
            }
        }
    }
}

impl Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = DramError::BankClosed { bank: Bank::new(1) };
        let msg = e.to_string();
        assert!(msg.starts_with(char::is_lowercase));
        assert!(msg.contains("B1"));
    }

    #[test]
    fn every_variant_displays_its_key_fact() {
        let cases: Vec<(DramError, &str)> = vec![
            (DramError::BankOutOfRange { bank: Bank::new(9), banks: 8 }, "8 banks"),
            (DramError::RowOutOfRange { row: RowAddr::new(4096), rows: 2048 }, "2048 rows"),
            (DramError::PhysRowOutOfRange { row: PhysRow::new(4096), rows: 2048 }, "physical row"),
            (
                DramError::BankAlreadyOpen { bank: Bank::new(2), open: RowAddr::new(7) },
                "already has row",
            ),
            (DramError::BankClosed { bank: Bank::new(3) }, "no open row"),
            (
                DramError::TimeRegression { now: Nanos::from_ms(2), requested: Nanos::from_ms(1) },
                "before device time",
            ),
        ];
        for (error, needle) in cases {
            let msg = error.to_string();
            assert!(msg.contains(needle), "{error:?} renders {msg:?} without {needle:?}");
            assert!(msg.starts_with(char::is_lowercase), "{msg:?} must start lowercase");
        }
    }

    #[test]
    fn protocol_errors_have_no_source() {
        // The physics layer is infallible, so no variant wraps another
        // error — `source()` must be `None` across the board.
        let e = DramError::BankOutOfRange { bank: Bank::new(9), banks: 8 };
        assert!(e.source().is_none());
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error + Send + Sync + 'static>(_: E) {}
        takes_error(DramError::BankClosed { bank: Bank::new(0) });
    }
}
