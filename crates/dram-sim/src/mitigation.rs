//! The interface between the DRAM device and an in-DRAM RowHammer
//! mitigation mechanism (TRR).
//!
//! Real TRR logic sits inside the chip: it observes every `ACT`, and when
//! the memory controller issues a `REF` it may piggyback extra "TRR-
//! induced" row refreshes onto it (§2.4 of the paper). The simulator
//! mirrors this split: the [`crate::Module`] calls [`MitigationEngine`]
//! hooks for activations and refreshes, and the engine answers with the
//! aggressor rows it decided to protect against. The module — which owns
//! the bank [`crate::Topology`] — expands each detection into the actual
//! victim rows and restores them.
//!
//! Concrete engines (counter-based, sampling-based, mixed) live in the
//! `trr` crate; this trait lives here to break the dependency cycle.

use std::fmt;

use crate::addr::{Bank, PhysRow};
use crate::time::Nanos;

/// How many neighbours per side a TRR detection protects.
///
/// Vendor A's A_TRR1 refreshes the four closest rows (±1 and ±2,
/// Observation A2); most other designs refresh only the immediate
/// neighbours (±1, Observation B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeighborSpan {
    /// Refresh rows at physical distance 1 (two victims).
    One,
    /// Refresh rows at physical distance 1 and 2 (four victims).
    Two,
}

impl NeighborSpan {
    /// Number of rows refreshed on each side of the aggressor.
    pub const fn per_side(self) -> u32 {
        match self {
            NeighborSpan::One => 1,
            NeighborSpan::Two => 2,
        }
    }

    /// Total victim rows refreshed per detection (edge effects aside).
    pub const fn victims(self) -> u32 {
        self.per_side() * 2
    }
}

/// One aggressor-row detection produced by a TRR engine during a `REF`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrrDetection {
    /// The bank the detection applies to.
    pub bank: Bank,
    /// The detected aggressor row (physical position).
    pub aggressor: PhysRow,
    /// Which neighbours the engine refreshes around it.
    pub span: NeighborSpan,
}

/// An in-DRAM RowHammer mitigation engine.
///
/// Engines observe activations (always in physical row space — the chip
/// knows its own decoder) and, on each `REF`, return zero or more
/// [`TrrDetection`]s. The device refreshes the victims of every detection
/// together with the regular refresh work of that `REF`.
///
/// # Batched hooks
///
/// Full-bank attack sweeps issue millions of activations; engines must
/// therefore support batch semantics. The contract for every batched hook
/// is *order equivalence*: the engine state after
/// `on_activations(b, r, n, t)` must be distributed identically to `n`
/// consecutive `on_activations(b, r, 1, t)` calls, and
/// `on_interleaved_pair(b, r1, r2, n, t)` identically to the alternating
/// sequence `r1, r2, r1, r2, …` of length `2n`. The default
/// implementation of [`MitigationEngine::on_interleaved_pair`] realizes
/// exactly that loop; engines override it with closed-form updates where
/// possible. The property tests in the `trr` crate verify the equivalence
/// for every shipped engine.
pub trait MitigationEngine: fmt::Debug {
    /// Observes `count` back-to-back activations of `row` in `bank`
    /// ending at time `now`.
    fn on_activations(&mut self, bank: Bank, row: PhysRow, count: u64, now: Nanos);

    /// Observes `pairs` alternating activations of `(first, second)`
    /// — the sequence `first, second, first, second, …` (`2 * pairs`
    /// activations, ending with `second`).
    fn on_interleaved_pair(
        &mut self,
        bank: Bank,
        first: PhysRow,
        second: PhysRow,
        pairs: u64,
        now: Nanos,
    ) {
        for _ in 0..pairs {
            self.on_activations(bank, first, 1, now);
            self.on_activations(bank, second, 1, now);
        }
    }

    /// Called for every `REF` command; appends the aggressor detections
    /// whose victims this `REF` will refresh onto `out`.
    ///
    /// The device hands every engine the same reusable buffer (cleared
    /// before the call), so the refresh hot loop performs no per-`REF`
    /// heap allocation. Engines must only *append*; anything already in
    /// `out` belongs to the caller. Tests that want an owned `Vec` use
    /// [`MitigationEngineExt::refresh_detections`].
    fn on_refresh(&mut self, now: Nanos, out: &mut Vec<TrrDetection>);

    /// Appends detections to act on *immediately*, drained after every
    /// activation batch. In-DRAM TRR never uses this (it piggybacks on
    /// `REF` — §2.4 of the paper), but proposed ACT-synchronous
    /// mitigations like PARA and Graphene refresh victims the moment an
    /// aggressor is caught. The device restores the victims right after
    /// the batch whose activations produced them, so within one batch
    /// (≤ ~149 activations, far below any flip threshold) the timing
    /// approximation is harmless. Like [`MitigationEngine::on_refresh`]
    /// this fills a caller-owned reusable buffer; the default appends
    /// nothing.
    fn take_inline_detections(&mut self, _out: &mut Vec<TrrDetection>) {}

    /// Whether this engine can *ever* surface ACT-synchronous detections
    /// through [`MitigationEngine::take_inline_detections`]. Engines that
    /// only detect at `REF` time (all in-DRAM TRR implementations) return
    /// `false`, which lets the device skip the inline-drain call after
    /// every activation batch entirely. The default is `true` — always
    /// correct, merely slower — so only engines whose
    /// `take_inline_detections` is the no-op default should override.
    fn detects_inline(&self) -> bool {
        true
    }

    /// Hands the engine the metrics registry of the device it protects,
    /// called on construction and whenever a new registry is attached
    /// ([`crate::Module::attach_registry`]). Engines that want to expose
    /// internal counters (table evictions, sampler hits, …) register
    /// them here; the default keeps engines metrics-free.
    fn attach_metrics(&mut self, _registry: &std::sync::Arc<obs::MetricsRegistry>) {}

    /// Clears all internal state (counter tables, sample registers,
    /// activation windows) back to power-on.
    fn reset(&mut self);

    /// A short identifier for logs (e.g. `"A_TRR1"`).
    fn name(&self) -> &str;
}

/// Owned-`Vec` adaptors over the buffer-filling [`MitigationEngine`]
/// hooks, for tests, benches, and call sites outside the refresh hot
/// loop. Blanket-implemented for every engine (including trait
/// objects).
pub trait MitigationEngineExt: MitigationEngine {
    /// [`MitigationEngine::on_refresh`] into a freshly allocated `Vec`.
    fn refresh_detections(&mut self, now: Nanos) -> Vec<TrrDetection> {
        let mut out = Vec::new();
        self.on_refresh(now, &mut out);
        out
    }

    /// [`MitigationEngine::take_inline_detections`] into a freshly
    /// allocated `Vec`.
    fn inline_detections(&mut self) -> Vec<TrrDetection> {
        let mut out = Vec::new();
        self.take_inline_detections(&mut out);
        out
    }
}

impl<E: MitigationEngine + ?Sized> MitigationEngineExt for E {}

/// The null mitigation: a chip without TRR. Useful as a baseline and for
/// testing the pure retention/RowHammer physics.
///
/// # Example
///
/// ```
/// use dram_sim::{MitigationEngine, MitigationEngineExt, NoMitigation, Bank, PhysRow, Nanos};
///
/// let mut none = NoMitigation;
/// none.on_activations(Bank::new(0), PhysRow::new(1), 1000, Nanos::ZERO);
/// assert!(none.refresh_detections(Nanos::ZERO).is_empty());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoMitigation;

impl MitigationEngine for NoMitigation {
    fn on_activations(&mut self, _: Bank, _: PhysRow, _: u64, _: Nanos) {}

    fn on_refresh(&mut self, _: Nanos, _out: &mut Vec<TrrDetection>) {}

    fn detects_inline(&self) -> bool {
        false
    }

    fn reset(&mut self) {}

    fn name(&self) -> &str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_counts() {
        assert_eq!(NeighborSpan::One.per_side(), 1);
        assert_eq!(NeighborSpan::One.victims(), 2);
        assert_eq!(NeighborSpan::Two.victims(), 4);
    }

    #[test]
    fn no_mitigation_never_detects() {
        let mut e = NoMitigation;
        for i in 0..100 {
            e.on_activations(Bank::new(0), PhysRow::new(i), 10_000, Nanos::ZERO);
        }
        assert!(e.refresh_detections(Nanos::from_us(8)).is_empty());
        assert!(e.inline_detections().is_empty());
        e.reset();
        assert_eq!(e.name(), "none");
    }

    #[test]
    fn default_interleaved_pair_is_a_loop() {
        // A probe engine that records the exact activation sequence.
        #[derive(Debug, Default)]
        struct Probe(Vec<(u32, u64)>);
        impl MitigationEngine for Probe {
            fn on_activations(&mut self, _: Bank, row: PhysRow, count: u64, _: Nanos) {
                self.0.push((row.index(), count));
            }
            fn on_refresh(&mut self, _: Nanos, _: &mut Vec<TrrDetection>) {}
            fn reset(&mut self) {
                self.0.clear();
            }
            fn name(&self) -> &str {
                "probe"
            }
        }

        let mut p = Probe::default();
        p.on_interleaved_pair(Bank::new(0), PhysRow::new(1), PhysRow::new(2), 3, Nanos::ZERO);
        assert_eq!(p.0, vec![(1, 1), (2, 1), (1, 1), (2, 1), (1, 1), (2, 1)]);
    }
}
