//! Simulated time and DDR4 timing parameters.
//!
//! The whole simulation runs on a single monotonically increasing clock in
//! nanoseconds. Waiting is free — advancing the clock by a retention time
//! costs nothing — which is what makes software reproduction of
//! retention-side-channel experiments practical: the paper's experiments
//! are dominated by real wall-clock waits of hundreds of milliseconds
//! (§4.1), while ours complete instantly.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, or a duration, in nanoseconds.
///
/// # Example
///
/// ```
/// use dram_sim::Nanos;
///
/// let t = Nanos::from_ms(64) + Nanos::from_us(7_800) / 1_000;
/// assert_eq!(t.as_ns(), 64_000_000 + 7_800);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Nanos(u64);

impl Nanos {
    /// Time zero / the zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a value from raw nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a value from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a value from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Returns the value in whole microseconds, truncating.
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the value in whole milliseconds, truncating.
    pub const fn as_ms(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the value in fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction: returns the zero duration instead of
    /// underflowing.
    pub const fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub const fn checked_sub(self, rhs: Nanos) -> Option<Nanos> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Nanos(v)),
            None => None,
        }
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3} ms", self.as_ms_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{} ns", self.0)
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

/// DDR4 timing parameters relevant to RowHammer experiments.
///
/// Defaults follow the typical values the paper uses in its footnote 10:
/// 35 ns activation (`tRAS`), 15 ns precharge (`tRP`), 350 ns refresh
/// (`tRFC`), one `REF` every 7.8 µs (`tREFI`), which "allows at most 149
/// hammers to a single DRAM bank" between two `REF`s.
///
/// # Example
///
/// ```
/// use dram_sim::Timings;
///
/// let t = Timings::ddr4();
/// // The paper's footnote-10 arithmetic: hammers that fit between REFs.
/// assert_eq!(t.max_hammers_per_refi(), 149);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timings {
    /// Row active time: minimum time a row stays open after `ACT`.
    pub t_ras: Nanos,
    /// Row precharge time: `PRE` to next `ACT` in the same bank.
    pub t_rp: Nanos,
    /// `ACT` to column command delay.
    pub t_rcd: Nanos,
    /// Refresh cycle time: `REF` to next command.
    pub t_rfc: Nanos,
    /// Average refresh interval: one `REF` every `tREFI`.
    pub t_refi: Nanos,
    /// Four-activation window: at most four `ACT`s per rank per `tFAW`.
    pub t_faw: Nanos,
}

impl Timings {
    /// Standard DDR4 timings as used throughout the paper.
    pub const fn ddr4() -> Self {
        Timings {
            t_ras: Nanos::from_ns(35),
            t_rp: Nanos::from_ns(15),
            t_rcd: Nanos::from_ns(15),
            t_rfc: Nanos::from_ns(350),
            t_refi: Nanos::from_ns(7_800),
            t_faw: Nanos::from_ns(20),
        }
    }

    /// The cost of one hammer: a full `ACT`/`PRE` cycle (`tRC`).
    pub const fn t_rc(&self) -> Nanos {
        Nanos::from_ns(self.t_ras.as_ns() + self.t_rp.as_ns())
    }

    /// Maximum number of single-bank hammers that fit between two `REF`
    /// commands, accounting for the refresh latency itself (footnote 10 of
    /// the paper: 149 for typical DDR4 timings).
    pub const fn max_hammers_per_refi(&self) -> u64 {
        (self.t_refi.as_ns() - self.t_rfc.as_ns()) / self.t_rc().as_ns()
    }

    /// Number of `REF` commands in one nominal 64 ms refresh period
    /// (≈ 8192 for DDR4).
    pub const fn refs_per_64ms(&self) -> u64 {
        Nanos::from_ms(64).as_ns() / self.t_refi.as_ns()
    }
}

impl Default for Timings {
    fn default() -> Self {
        Timings::ddr4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(Nanos::from_ms(1), Nanos::from_us(1_000));
        assert_eq!(Nanos::from_us(1), Nanos::from_ns(1_000));
        assert_eq!(Nanos::from_ms(64).as_ms(), 64);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos::from_ns(100);
        let b = Nanos::from_ns(30);
        assert_eq!((a + b).as_ns(), 130);
        assert_eq!((a - b).as_ns(), 70);
        assert_eq!((a * 3).as_ns(), 300);
        assert_eq!((a / 4).as_ns(), 25);
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.checked_sub(b), Some(Nanos::from_ns(70)));
        assert_eq!(b.checked_sub(a), None);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Nanos::from_ns(5).to_string(), "5 ns");
        assert_eq!(Nanos::from_us(2).to_string(), "2.000 us");
        assert_eq!(Nanos::from_ms(3).to_string(), "3.000 ms");
    }

    #[test]
    fn ddr4_footnote_10_hammer_budget() {
        let t = Timings::ddr4();
        // (7800 - 350) / 50 = 149 hammers between two REFs.
        assert_eq!(t.max_hammers_per_refi(), 149);
        assert_eq!(t.t_rc().as_ns(), 50);
    }

    #[test]
    fn refs_per_period_is_about_8k() {
        let t = Timings::ddr4();
        assert_eq!(t.refs_per_64ms(), 8205);
    }

    #[test]
    fn sum_of_durations() {
        let total: Nanos =
            [Nanos::from_ns(1), Nanos::from_ns(2), Nanos::from_ns(3)].into_iter().sum();
        assert_eq!(total.as_ns(), 6);
    }
}
