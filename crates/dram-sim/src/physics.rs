//! Cell-level failure physics: retention, variable retention time (VRT),
//! and RowHammer flip thresholds.
//!
//! The model is sparse and lazy. A 64K-row bank has billions of cells, but
//! only two kinds matter to U-TRR experiments:
//!
//! * **weak cells** — cells whose retention time falls inside the horizon
//!   a profiler would ever wait (tens of milliseconds to a few seconds).
//!   Each row owns zero or a few of them, derived deterministically from
//!   the module seed, so the same seed always yields the same "chip".
//!   A weak cell only leaks from its *charged* value (true-cell vs
//!   anti-cell orientation), so failures are data-pattern dependent just
//!   like on real silicon.
//! * **hammerable cells** — cells that flip when the accumulated
//!   disturbance on their row exceeds a per-cell threshold. A row's
//!   thresholds form an arithmetic ladder starting at the row's base
//!   threshold, so over-hammering yields progressively more flips — the
//!   behaviour behind Fig. 8 of the paper.
//!
//! Disturbance bookkeeping itself lives in [`crate::module`]; this module
//! defines the per-row parameters and the flip rules.

use crate::data::DataPattern;
use crate::rng::{derive_seed, mix, SplitMix64};
use crate::time::Nanos;

/// Tunable physics of a simulated module.
///
/// The retention-side parameters shape what Row Scout finds; the
/// `hc_*` parameters are calibrated per module so that the minimum
/// double-sided hammer count to the first bit flip matches the module's
/// `HC_first` column in Table 1 of the paper (see DESIGN.md §5 on
/// calibration).
///
/// # Example
///
/// ```
/// use dram_sim::PhysicsConfig;
///
/// let p = PhysicsConfig::default_test();
/// assert!(p.weak_row_prob > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicsConfig {
    /// Probability that a row has at least one profilable weak cell.
    pub weak_row_prob: f64,
    /// Probability of each additional weak cell beyond the first
    /// (geometric tail).
    pub extra_weak_cell_prob: f64,
    /// Shortest weak-cell retention time.
    pub retention_min: Nanos,
    /// Longest weak-cell retention time (log-uniform in between).
    pub retention_max: Nanos,
    /// Probability that a weak cell suffers from VRT.
    pub vrt_prob: f64,
    /// Per-observation probability that a VRT cell toggles between its
    /// short- and long-retention states.
    pub vrt_switch_prob: f64,
    /// Retention multiplier of a VRT cell's long state.
    pub vrt_retention_factor: f64,
    /// Module-level minimum hammer count: the fewest per-aggressor
    /// activations in a double-sided pattern that flip at least one bit in
    /// the module's weakest row (the paper's `HC_first`).
    pub hc_first: f64,
    /// Relative spread of per-row base thresholds: a row's threshold is
    /// `2 * hc_first * (1 + Exp(hc_lambda))` disturbance units (mean
    /// excess `hc_lambda`).
    pub hc_lambda: f64,
    /// Relative threshold step between successive hammerable cells of a
    /// row: cell `k` flips at `hc_base * (1 + k * hc_cell_step)`.
    pub hc_cell_step: f64,
    /// Maximum hammerable cells per row.
    pub hc_max_cells: u32,
    /// Disturbance weight of distance-2 neighbours (distance-1 = 1.0).
    pub radius2_weight: f64,
    /// Disturbance weight of an activation that re-opens the row that was
    /// just closed in the same bank. Repeated same-row hammering toggles
    /// the wordline less effectively than alternating rows, which is why
    /// the paper finds interleaved hammering up to four orders of
    /// magnitude more effective than cascaded (§5.2).
    pub same_row_discount: f64,
    /// Disturbance multiplier by aggressor data pattern: solid patterns
    /// couple fully, striped patterns slightly less.
    pub striped_aggressor_coupling: f64,
    /// Operating temperature in °C. The paper runs every experiment at
    /// 85 °C (§6), which is also this model's calibration point:
    /// retention times halve per [`PhysicsConfig::RETENTION_HALVING_C`]
    /// degrees of heating, so cooler parts hold their charge
    /// correspondingly longer and Row Scout has to wait further into its
    /// `T` sweep.
    pub temperature_c: f64,
}

impl PhysicsConfig {
    /// The temperature the retention distributions are calibrated at.
    pub const REFERENCE_TEMP_C: f64 = 85.0;

    /// Degrees of heating that halve retention times (the standard DRAM
    /// rule of thumb the retention literature uses).
    pub const RETENTION_HALVING_C: f64 = 10.0;

    /// Multiplier applied to every retention time at the configured
    /// temperature: 1.0 at the 85 °C reference, 2× per 10 °C of cooling.
    pub fn retention_scale(&self) -> f64 {
        ((Self::REFERENCE_TEMP_C - self.temperature_c) / Self::RETENTION_HALVING_C).exp2()
    }

    /// A small, aggressive configuration for unit tests: every row has a
    /// retention tail (as on real chips at 85 °C, where most rows fail
    /// within a few seconds), low hammer thresholds.
    pub fn default_test() -> Self {
        PhysicsConfig {
            weak_row_prob: 1.0,
            extra_weak_cell_prob: 0.35,
            retention_min: Nanos::from_ms(80),
            retention_max: Nanos::from_ms(480),
            vrt_prob: 0.15,
            vrt_switch_prob: 0.08,
            vrt_retention_factor: 3.0,
            hc_first: 1_000.0,
            hc_lambda: 0.4,
            hc_cell_step: 0.12,
            hc_max_cells: 64,
            radius2_weight: 0.25,
            same_row_discount: 0.5,
            striped_aggressor_coupling: 0.85,
            temperature_c: PhysicsConfig::REFERENCE_TEMP_C,
        }
    }

    /// A configuration calibrated around a Table-1 `HC_first` value.
    pub fn with_hc_first(hc_first: u64) -> Self {
        PhysicsConfig { hc_first: hc_first as f64, ..PhysicsConfig::default_test() }
    }

    /// The disturbance units at which the module's weakest possible row
    /// takes its first flip (double-sided: two units per per-aggressor
    /// hammer).
    pub fn min_base_threshold(&self) -> f64 {
        2.0 * self.hc_first
    }

    /// Disturbance coupling factor for an aggressor holding `pattern`.
    pub fn aggressor_coupling(&self, pattern: Option<&DataPattern>) -> f64 {
        match pattern {
            Some(DataPattern::Checkerboard) => self.striped_aggressor_coupling,
            // Solid, row-striped, custom, or unwritten rows couple fully.
            _ => 1.0,
        }
    }
}

/// The retention-weak cells of one row, stored struct-of-arrays: every
/// per-cell attribute lives in its own parallel array, so the restore hot
/// loop and Row Scout's weak-cell scans stream one attribute linearly
/// instead of striding over interleaved per-cell structs.
///
/// # Layout invariants
///
/// * All five arrays share the same length (the cell count); index `i`
///   addresses one cell across all of them.
/// * `vrt_long[i] == Nanos::ZERO` marks a non-VRT cell, in which case
///   `vrt_in_long[i]` is `false` and stays false. (A real VRT long state
///   is `retention × vrt_retention_factor` of a positive retention, so
///   zero can never be a legitimate long-state value.)
/// * `min_effective` caches the minimum of `effective_retention(i)` over
///   all cells ([`WeakCells::NO_CELLS`] when empty) and is recomputed
///   after every VRT state transition — it gates the restore fast path,
///   so staleness would change simulation results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WeakCells {
    /// Bit position of each cell within the row.
    bits: Vec<u32>,
    /// Short-state retention time of each cell.
    retention: Vec<Nanos>,
    /// The data value each cell leaks *from*: a flip happens only when
    /// the stored bit equals this value.
    charged: Vec<bool>,
    /// Long-state retention of each VRT cell; `Nanos::ZERO` = not VRT.
    vrt_long: Vec<Nanos>,
    /// Whether each VRT cell currently holds charge for the long time.
    vrt_in_long: Vec<bool>,
    /// Cached minimum currently-effective retention over all cells.
    min_effective: Nanos,
}

impl WeakCells {
    /// `min_effective` of a row with no weak cells: later than any decay
    /// window, so the restore fast path always skips the cell loop.
    const NO_CELLS: Nanos = Nanos::from_ns(u64::MAX);

    fn empty() -> Self {
        WeakCells {
            bits: Vec::new(),
            retention: Vec::new(),
            charged: Vec::new(),
            vrt_long: Vec::new(),
            vrt_in_long: Vec::new(),
            min_effective: Self::NO_CELLS,
        }
    }

    fn push(&mut self, bit: u32, retention: Nanos, charged: bool, vrt: Option<(Nanos, bool)>) {
        self.bits.push(bit);
        self.retention.push(retention);
        self.charged.push(charged);
        let (long, in_long) = vrt.unwrap_or((Nanos::ZERO, false));
        self.vrt_long.push(long);
        self.vrt_in_long.push(in_long);
    }

    fn recompute_min(&mut self) {
        self.min_effective =
            (0..self.len()).map(|i| self.effective_retention(i)).min().unwrap_or(Self::NO_CELLS);
    }

    /// Number of weak cells.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the row has no weak cells.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Bit position of cell `i`.
    pub fn bit(&self, i: usize) -> u32 {
        self.bits[i]
    }

    /// Short-state retention of cell `i`.
    pub fn retention(&self, i: usize) -> Nanos {
        self.retention[i]
    }

    /// The value cell `i` leaks from.
    pub fn charged(&self, i: usize) -> bool {
        self.charged[i]
    }

    /// Whether cell `i` suffers from VRT.
    pub fn is_vrt(&self, i: usize) -> bool {
        self.vrt_long[i] != Nanos::ZERO
    }

    /// The retention of cell `i` currently in effect.
    pub fn effective_retention(&self, i: usize) -> Nanos {
        if self.vrt_in_long[i] {
            self.vrt_long[i]
        } else {
            self.retention[i]
        }
    }

    /// Cached minimum currently-effective retention over all cells
    /// ([`WeakCells::NO_CELLS`] when the row has none): decay windows at
    /// or below this can not have flipped anything, which is what lets a
    /// restore skip the per-cell scan entirely.
    pub fn min_effective(&self) -> Nanos {
        self.min_effective
    }
}

/// Per-row physical parameters, derived deterministically from the module
/// seed and cached by the device on first touch.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RowPhysics {
    /// Retention-weak cells, if any (struct-of-arrays).
    pub cells: WeakCells,
    /// Disturbance units at which this row's first RowHammer flip occurs.
    pub hc_base: f64,
    /// Seed for deriving hammerable-cell positions.
    cell_seed: u64,
    /// RNG stream driving VRT transitions of this row.
    vrt_rng: SplitMix64,
}

impl RowPhysics {
    /// Derives the physics of row `stream` (a stable `(bank, phys row)`
    /// encoding chosen by the module) of a module seeded with `seed`.
    pub fn derive(cfg: &PhysicsConfig, seed: u64, stream: u64, row_bits: u32) -> Self {
        let mut rng = SplitMix64::new(derive_seed(seed, stream));
        let scale = cfg.retention_scale();
        let mut cells = WeakCells::empty();
        if rng.next_bool(cfg.weak_row_prob) {
            loop {
                let retention = Nanos::from_ns(
                    (rng.next_log_uniform(
                        cfg.retention_min.as_ns() as f64,
                        cfg.retention_max.as_ns() as f64,
                    ) * scale) as u64,
                );
                let vrt = if rng.next_bool(cfg.vrt_prob) {
                    Some((
                        Nanos::from_ns(
                            (retention.as_ns() as f64 * cfg.vrt_retention_factor) as u64,
                        ),
                        rng.next_bool(0.5),
                    ))
                } else {
                    None
                };
                let bit = rng.next_below(row_bits as u64) as u32;
                let charged = rng.next_bool(0.5);
                cells.push(bit, retention, charged, vrt);
                if !rng.next_bool(cfg.extra_weak_cell_prob) {
                    break;
                }
            }
            cells.recompute_min();
        }
        let hc_base = cfg.min_base_threshold() * (1.0 + rng.next_exp(cfg.hc_lambda));
        let cell_seed = rng.next_u64();
        let vrt_rng = SplitMix64::new(rng.next_u64());
        RowPhysics { cells, hc_base, cell_seed, vrt_rng }
    }

    /// Shortest currently-effective retention among the row's weak cells,
    /// or `None` if the row has no weak cells.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn min_retention(&self) -> Option<Nanos> {
        if self.cells.is_empty() {
            None
        } else {
            Some(self.cells.min_effective())
        }
    }

    /// Whether any weak cell of the row is VRT-afflicted.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn has_vrt(&self) -> bool {
        (0..self.cells.len()).any(|i| self.cells.is_vrt(i))
    }

    /// Advances the VRT Markov chain of every VRT cell by one observation
    /// window. Called by the device whenever a non-trivial decay window
    /// ends (a restore after time has passed). The switch probability is
    /// passed in because the device may override the configured value
    /// during an injected VRT burst episode.
    ///
    /// Draws from the VRT RNG stream for VRT cells only, in cell order —
    /// the exact draw discipline of every prior release, so seeded
    /// simulations stay bit-for-bit reproducible.
    pub fn advance_vrt(&mut self, switch_prob: f64) {
        let mut toggled = false;
        for i in 0..self.cells.len() {
            if self.cells.is_vrt(i) && self.vrt_rng.next_bool(switch_prob) {
                self.cells.vrt_in_long[i] = !self.cells.vrt_in_long[i];
                toggled = true;
            }
        }
        if toggled {
            self.cells.recompute_min();
        }
    }

    /// Number of hammerable cells whose threshold is at or below the
    /// accumulated disturbance `d`.
    pub fn hammer_flip_count(&self, cfg: &PhysicsConfig, d: f64) -> u32 {
        if d < self.hc_base {
            return 0;
        }
        let excess = d / self.hc_base - 1.0;
        let n = 1 + (excess / cfg.hc_cell_step) as u32;
        n.min(cfg.hc_max_cells)
    }

    /// The bit position and vulnerable-from value of the row's `k`-th
    /// hammerable cell.
    pub fn hammer_cell(&self, k: u32, row_bits: u32) -> (u32, bool) {
        let h = mix(self.cell_seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let bit = (h % row_bits as u64) as u32;
        let vulnerable_from = h >> 63 == 1;
        (bit, vulnerable_from)
    }
}

/// Applies weak-cell decay and RowHammer flips to a row's data for a decay
/// window of `elapsed` with accumulated disturbance `disturbance`. Returns
/// the bit flips as `(bit, new_value)`; the caller owns the data update.
pub(crate) fn window_flips(
    physics: &RowPhysics,
    cfg: &PhysicsConfig,
    elapsed: Nanos,
    disturbance: f64,
    row_bits: u32,
    stored_bit: impl Fn(u32) -> bool,
) -> Vec<u32> {
    let mut flips = Vec::new();
    // The cached minimum gates the scan: a window no longer than every
    // cell's effective retention cannot have decayed anything.
    if elapsed > physics.cells.min_effective() {
        for i in 0..physics.cells.len() {
            if elapsed > physics.cells.effective_retention(i)
                && stored_bit(physics.cells.bit(i)) == physics.cells.charged(i)
            {
                flips.push(physics.cells.bit(i));
            }
        }
    }
    let hammer_flips = physics.hammer_flip_count(cfg, disturbance);
    for k in 0..hammer_flips {
        let (bit, vulnerable_from) = physics.hammer_cell(k, row_bits);
        if stored_bit(bit) == vulnerable_from && !flips.contains(&bit) {
            flips.push(bit);
        }
    }
    flips
}

/// Introspection snapshot of a row's ground-truth physics, exposed for
/// tests and calibration tooling (real hardware offers no such window —
/// experiments must not rely on it).
#[derive(Debug, Clone, PartialEq)]
pub struct RowPhysicsView {
    /// `(bit, retention, is_vrt)` for each weak cell.
    pub weak_cells: Vec<(u32, Nanos, bool)>,
    /// First-flip disturbance threshold.
    pub hc_base: f64,
}

impl RowPhysicsView {
    pub(crate) fn of(physics: &RowPhysics) -> Self {
        let cells = &physics.cells;
        RowPhysicsView {
            weak_cells: (0..cells.len())
                .map(|i| (cells.bit(i), cells.retention(i), cells.is_vrt(i)))
                .collect(),
            hc_base: physics.hc_base,
        }
    }

    /// Shortest short-state retention among weak cells.
    pub fn min_retention(&self) -> Option<Nanos> {
        self.weak_cells.iter().map(|&(_, r, _)| r).min()
    }

    /// Whether the row has any VRT cell.
    pub fn has_vrt(&self) -> bool {
        self.weak_cells.iter().any(|&(_, _, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PhysicsConfig {
        PhysicsConfig::default_test()
    }

    #[test]
    fn derivation_is_deterministic() {
        let a = RowPhysics::derive(&cfg(), 1, 7, 2048);
        let b = RowPhysics::derive(&cfg(), 1, 7, 2048);
        assert_eq!(a, b);
        let c = RowPhysics::derive(&cfg(), 1, 8, 2048);
        assert_ne!(a.hc_base, c.hc_base);
    }

    #[test]
    fn weak_row_fraction_close_to_config() {
        let c = cfg();
        let weak =
            (0..20_000).filter(|&s| !RowPhysics::derive(&c, 3, s, 2048).cells.is_empty()).count();
        let frac = weak as f64 / 20_000.0;
        assert!((frac - c.weak_row_prob).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn retention_is_within_bounds() {
        let c = cfg();
        for s in 0..5_000 {
            let p = RowPhysics::derive(&c, 5, s, 2048);
            for i in 0..p.cells.len() {
                assert!(p.cells.retention(i) >= c.retention_min);
                assert!(p.cells.retention(i) <= c.retention_max);
            }
        }
    }

    #[test]
    fn hc_base_floor_is_twice_hc_first() {
        let c = cfg();
        let min = (0..20_000)
            .map(|s| RowPhysics::derive(&c, 9, s, 2048).hc_base)
            .fold(f64::INFINITY, f64::min);
        assert!(min >= c.min_base_threshold());
        assert!(min < c.min_base_threshold() * 1.05, "weakest row near HC_first: {min}");
    }

    #[test]
    fn hammer_flip_count_ladder() {
        let c = cfg();
        let p = RowPhysics::derive(&c, 9, 0, 2048);
        assert_eq!(p.hammer_flip_count(&c, 0.0), 0);
        assert_eq!(p.hammer_flip_count(&c, p.hc_base * 0.999), 0);
        assert_eq!(p.hammer_flip_count(&c, p.hc_base), 1);
        let heavy = p.hammer_flip_count(&c, p.hc_base * 3.0);
        assert!(heavy > 10, "over-hammering yields many flips: {heavy}");
        assert!(p.hammer_flip_count(&c, p.hc_base * 1e6) == c.hc_max_cells);
    }

    #[test]
    fn hammer_cells_are_stable_and_in_range() {
        let c = cfg();
        let p = RowPhysics::derive(&c, 2, 0, 2048);
        for k in 0..c.hc_max_cells {
            let (bit, _) = p.hammer_cell(k, 2048);
            assert!(bit < 2048);
            assert_eq!(p.hammer_cell(k, 2048), p.hammer_cell(k, 2048));
        }
    }

    #[test]
    fn vrt_cells_toggle_eventually() {
        let c = cfg();
        // Find a VRT row.
        let mut p = (0..10_000)
            .map(|s| RowPhysics::derive(&c, 11, s, 2048))
            .find(|p| p.has_vrt())
            .expect("some VRT row exists");
        let snapshot = |p: &RowPhysics| -> Vec<Nanos> {
            (0..p.cells.len()).map(|i| p.cells.effective_retention(i)).collect()
        };
        let initial = snapshot(&p);
        let mut changed = false;
        for _ in 0..1_000 {
            p.advance_vrt(c.vrt_switch_prob);
            let now = snapshot(&p);
            if now != initial {
                changed = true;
                break;
            }
        }
        assert!(changed, "VRT state must eventually switch");
    }

    #[test]
    fn non_vrt_rows_never_change() {
        let c = cfg();
        let mut p = (0..10_000)
            .map(|s| RowPhysics::derive(&c, 13, s, 2048))
            .find(|p| !p.cells.is_empty() && !p.has_vrt())
            .expect("some weak non-VRT row exists");
        let initial = p.min_retention();
        for _ in 0..1_000 {
            p.advance_vrt(c.vrt_switch_prob);
        }
        assert_eq!(p.min_retention(), initial);
    }

    #[test]
    fn window_flips_respect_data_orientation() {
        let c = cfg();
        let p = (0..10_000)
            .map(|s| RowPhysics::derive(&c, 17, s, 2048))
            .find(|p| !p.cells.is_empty())
            .expect("weak row exists");
        let (bit, charged) = (p.cells.bit(0), p.cells.charged(0));
        let long = p.cells.effective_retention(0) + Nanos::from_ms(10_000);

        // Stored at the charged value: decays.
        let flips = window_flips(&p, &c, long, 0.0, 2048, |_| charged);
        assert!(flips.contains(&bit));

        // Stored at the discharged value: nothing to lose.
        let flips = window_flips(&p, &c, long, 0.0, 2048, |_| !charged);
        assert!(!flips.contains(&bit));

        // Within retention: clean.
        let flips = window_flips(&p, &c, Nanos::from_ms(1), 0.0, 2048, |_| charged);
        assert!(flips.is_empty());
    }

    #[test]
    fn window_flips_deduplicates_hammer_and_retention() {
        let c = cfg();
        let p = RowPhysics::derive(&c, 19, 0, 2048);
        let flips = window_flips(&p, &c, Nanos::from_ms(60_000), p.hc_base * 50.0, 2048, |_| true);
        let mut sorted = flips.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), flips.len(), "no duplicate bit reports");
    }

    #[test]
    fn temperature_scales_retention() {
        let hot = cfg();
        let mut cool = cfg();
        cool.temperature_c = 45.0; // 40 °C cooler → 16× longer retention
        assert_eq!(hot.retention_scale(), 1.0);
        assert_eq!(cool.retention_scale(), 16.0);
        for s in 0..200 {
            let p_hot = RowPhysics::derive(&hot, 7, s, 2048);
            let p_cool = RowPhysics::derive(&cool, 7, s, 2048);
            assert_eq!(p_hot.cells.len(), p_cool.cells.len());
            for i in 0..p_hot.cells.len() {
                assert_eq!(p_hot.cells.bit(i), p_cool.cells.bit(i), "same cells, different clock");
                let ratio = p_cool.cells.retention(i).as_ns() as f64
                    / p_hot.cells.retention(i).as_ns() as f64;
                assert!((ratio - 16.0).abs() < 0.01, "ratio {ratio}");
            }
        }
    }

    #[test]
    fn heating_beyond_reference_shortens_retention() {
        let mut hotter = cfg();
        hotter.temperature_c = 95.0;
        assert_eq!(hotter.retention_scale(), 0.5);
        let p = (0..500)
            .map(|s| RowPhysics::derive(&hotter, 9, s, 2048))
            .find(|p| !p.cells.is_empty())
            .unwrap();
        let reference = RowPhysics::derive(&cfg(), 9, 0, 2048);
        let _ = reference;
        assert!(p.min_retention().unwrap() < cfg().retention_max);
    }

    #[test]
    fn aggressor_coupling_distinguishes_patterns() {
        let c = cfg();
        assert_eq!(c.aggressor_coupling(Some(&DataPattern::Ones)), 1.0);
        assert_eq!(c.aggressor_coupling(None), 1.0);
        assert!(c.aggressor_coupling(Some(&DataPattern::Checkerboard)) < 1.0);
    }

    #[test]
    fn physics_view_reports_ground_truth() {
        let c = cfg();
        let p = (0..10_000)
            .map(|s| RowPhysics::derive(&c, 23, s, 2048))
            .find(|p| !p.cells.is_empty())
            .unwrap();
        let view = RowPhysicsView::of(&p);
        assert_eq!(view.weak_cells.len(), p.cells.len());
        assert_eq!(view.hc_base, p.hc_base);
    }

    #[test]
    fn min_effective_cache_tracks_vrt_transitions() {
        let c = cfg();
        let brute = |p: &RowPhysics| -> Nanos {
            (0..p.cells.len())
                .map(|i| p.cells.effective_retention(i))
                .min()
                .unwrap_or(Nanos::from_ns(u64::MAX))
        };
        for s in 0..200 {
            let mut p = RowPhysics::derive(&c, 29, s, 2048);
            assert_eq!(p.cells.min_effective(), brute(&p), "stale cache at derive, stream {s}");
            for _ in 0..50 {
                p.advance_vrt(c.vrt_switch_prob);
                assert_eq!(p.cells.min_effective(), brute(&p), "stale cache after VRT step");
            }
        }
    }
}
