//! The device's bridge into the workspace [`obs`] instrumentation layer.
//!
//! Every [`crate::Module`] owns a [`DeviceMetrics`]: pre-resolved counter
//! and histogram handles into a [`MetricsRegistry`], so the per-command
//! hot path touches only relaxed atomics — no name lookups, no locks.
//! Modules start with a private registry (keeping unit tests isolated);
//! callers that want one artifact per run attach a shared registry via
//! [`crate::Module::attach_registry`].

use std::sync::Arc;

use obs::{Counter, Histogram, MetricsRegistry, TraceKind};

use crate::stats::ModuleStats;

/// Counter name for row activations (`ACT`), batched hammers included.
pub const CTR_ACT: &str = "dram.cmd.act";
/// Counter name for precharges (`PRE`).
pub const CTR_PRE: &str = "dram.cmd.pre";
/// Counter name for `REF` commands.
pub const CTR_REF: &str = "dram.cmd.ref";
/// Counter name for full-row reads.
pub const CTR_ROW_READS: &str = "dram.row.reads";
/// Counter name for full-row writes.
pub const CTR_ROW_WRITES: &str = "dram.row.writes";
/// Counter name for rows restored by the regular refresh machinery.
pub const CTR_REGULAR_ROW_REFRESHES: &str = "dram.rows.regular_refresh";
/// Counter name for rows restored by TRR-induced refreshes.
pub const CTR_TRR_ROW_REFRESHES: &str = "dram.rows.trr_refresh";
/// Counter name for TRR detections.
pub const CTR_TRR_DETECTIONS: &str = "dram.trr.detections";
/// Counter name for materialized bit flips.
pub const CTR_BIT_FLIPS: &str = "dram.bit_flips";

/// Histogram name for per-`ACT` latency, in nanoseconds.
pub const HIST_ACT_NS: &str = "dram.latency.act_ns";
/// Histogram name for per-`PRE` latency, in nanoseconds.
pub const HIST_PRE_NS: &str = "dram.latency.pre_ns";
/// Histogram name for per-`REF` latency, in nanoseconds.
pub const HIST_REF_NS: &str = "dram.latency.ref_ns";
/// Histogram name for full-row read latency, in nanoseconds.
pub const HIST_READ_NS: &str = "dram.latency.read_ns";
/// Histogram name for full-row write latency, in nanoseconds.
pub const HIST_WRITE_NS: &str = "dram.latency.write_ns";

/// Event kind emitted when a restore materializes bit flips.
pub const EVT_BIT_FLIP: &str = "dram.bit_flip";
/// Event kind emitted per TRR detection acted on.
pub const EVT_TRR_DETECTION: &str = "dram.trr.detection";

/// Pre-resolved instrument handles for one device.
#[derive(Debug, Clone)]
pub struct DeviceMetrics {
    registry: Arc<MetricsRegistry>,
    /// `ACT` count (see [`CTR_ACT`]).
    pub act: Counter,
    /// `PRE` count (see [`CTR_PRE`]).
    pub pre: Counter,
    /// `REF` count (see [`CTR_REF`]).
    pub refresh: Counter,
    /// Row-read count (see [`CTR_ROW_READS`]).
    pub row_reads: Counter,
    /// Row-write count (see [`CTR_ROW_WRITES`]).
    pub row_writes: Counter,
    /// Regular-refresh restore count (see [`CTR_REGULAR_ROW_REFRESHES`]).
    pub regular_row_refreshes: Counter,
    /// TRR-induced restore count (see [`CTR_TRR_ROW_REFRESHES`]).
    pub trr_row_refreshes: Counter,
    /// TRR detection count (see [`CTR_TRR_DETECTIONS`]).
    pub trr_detections: Counter,
    /// Bit-flip count (see [`CTR_BIT_FLIPS`]).
    pub bit_flips: Counter,
    /// `ACT` latency (see [`HIST_ACT_NS`]).
    pub act_ns: Histogram,
    /// `PRE` latency (see [`HIST_PRE_NS`]).
    pub pre_ns: Histogram,
    /// `REF` latency (see [`HIST_REF_NS`]).
    pub ref_ns: Histogram,
    /// Row-read latency (see [`HIST_READ_NS`]).
    pub read_ns: Histogram,
    /// Row-write latency (see [`HIST_WRITE_NS`]).
    pub write_ns: Histogram,
}

impl DeviceMetrics {
    /// Resolves all handles against `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        DeviceMetrics {
            act: registry.counter(CTR_ACT),
            pre: registry.counter(CTR_PRE),
            refresh: registry.counter(CTR_REF),
            row_reads: registry.counter(CTR_ROW_READS),
            row_writes: registry.counter(CTR_ROW_WRITES),
            regular_row_refreshes: registry.counter(CTR_REGULAR_ROW_REFRESHES),
            trr_row_refreshes: registry.counter(CTR_TRR_ROW_REFRESHES),
            trr_detections: registry.counter(CTR_TRR_DETECTIONS),
            bit_flips: registry.counter(CTR_BIT_FLIPS),
            act_ns: registry.histogram(HIST_ACT_NS),
            pre_ns: registry.histogram(HIST_PRE_NS),
            ref_ns: registry.histogram(HIST_REF_NS),
            read_ns: registry.histogram(HIST_READ_NS),
            write_ns: registry.histogram(HIST_WRITE_NS),
            registry,
        }
    }

    /// A private per-device registry (detail off): the default for
    /// modules constructed without an explicit registry.
    pub fn private() -> Self {
        DeviceMetrics::new(Arc::new(MetricsRegistry::new()))
    }

    /// The backing registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Whether detail instrumentation (latency histograms, events) is
    /// being recorded.
    #[inline]
    pub fn detail(&self) -> bool {
        self.registry.detail_enabled()
    }

    /// Records an event (no-op unless detail is enabled).
    #[inline]
    pub fn event(&self, kind: &str, t_sim: u64, fields: &[(&str, u64)]) {
        self.registry.event(kind, t_sim, fields);
    }

    /// Whether a flight recorder is attached (one relaxed load).
    #[inline]
    pub fn tracing(&self) -> bool {
        self.registry.tracing_enabled()
    }

    /// Emits a flight-recorder trace event (no-op unless tracing is
    /// on; see [`MetricsRegistry::trace`]).
    #[inline]
    pub fn trace(
        &self,
        kind: TraceKind,
        t_sim: u64,
        bank: u32,
        row: Option<u32>,
        fields: &[(&str, u64)],
        detail: &str,
    ) -> Option<u64> {
        self.registry.trace(kind, t_sim, bank, row, fields, detail)
    }

    /// The classic [`ModuleStats`] view over this device's counters.
    pub fn stats_view(&self) -> ModuleStats {
        ModuleStats {
            activations: self.act.get(),
            refreshes: self.refresh.get(),
            regular_row_refreshes: self.regular_row_refreshes.get(),
            trr_row_refreshes: self.trr_row_refreshes.get(),
            trr_detections: self.trr_detections.get(),
            row_reads: self.row_reads.get(),
            row_writes: self.row_writes.get(),
            bit_flips: self.bit_flips.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_view_reads_the_registry() {
        let registry = Arc::new(MetricsRegistry::new());
        let metrics = DeviceMetrics::new(Arc::clone(&registry));
        metrics.act.add(11);
        metrics.bit_flips.add(3);
        let stats = metrics.stats_view();
        assert_eq!(stats.activations, 11);
        assert_eq!(stats.bit_flips, 3);
        assert_eq!(stats.refreshes, 0);
        assert_eq!(registry.counter(CTR_ACT).get(), 11);
    }

    #[test]
    fn two_devices_can_share_one_registry() {
        let registry = Arc::new(MetricsRegistry::new());
        let a = DeviceMetrics::new(Arc::clone(&registry));
        let b = DeviceMetrics::new(Arc::clone(&registry));
        a.act.add(2);
        b.act.add(3);
        assert_eq!(a.stats_view().activations, 5);
        assert_eq!(b.stats_view().activations, 5);
    }
}
