//! Deterministic pseudo-random number generation for the simulator.
//!
//! The simulator must be bit-for-bit reproducible across runs and
//! platforms: a module seeded with the same value replays the same weak
//! cells, the same VRT transitions, and the same sampler decisions. We use
//! a self-contained SplitMix64 generator instead of an external RNG crate
//! so that the stream is stable regardless of dependency versions.
//!
//! # Example
//!
//! ```
//! use dram_sim::rng::SplitMix64;
//!
//! let mut a = SplitMix64::new(7);
//! let mut b = SplitMix64::new(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// SplitMix64 generator (Steele, Lea, Flood 2014). Passes BigCrush; one
/// 64-bit state word, constant-time stepping, and trivially seedable,
/// which makes it ideal for deriving independent per-row streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// Returns a float uniformly distributed in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 significant bits, the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Multiply-shift rejection-free mapping (Lemire); the modulo bias
        // is negligible for the bounds used in the simulator but we use
        // the widening multiply anyway for uniformity.
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a float uniformly distributed in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn next_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        lo + self.next_f64() * (hi - lo)
    }

    /// Samples an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // Inverse CDF; 1 - u avoids ln(0).
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Samples a log-uniform distribution over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if either bound is not positive or `lo > hi`.
    pub fn next_log_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo > 0.0 && hi >= lo, "log-uniform bounds must be positive and ordered");
        (self.next_range_f64(lo.ln(), hi.ln())).exp()
    }
}

/// The SplitMix64 output mixer, usable standalone as a strong 64-bit hash.
///
/// Used to derive independent per-row seeds from `(module_seed, bank, row)`
/// tuples without keeping any per-row RNG state resident.
pub fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a stable sub-seed from a parent seed and a stream index.
///
/// Sub-seeds for distinct `(seed, stream)` pairs are statistically
/// independent, which lets the module hand every row its own generator.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    mix(seed ^ mix(stream.wrapping_add(0xA076_1D64_78BD_642F)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..1000 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut rng = SplitMix64::new(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 buckets should be hit");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SplitMix64::new(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_exp(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "observed mean {mean}");
    }

    #[test]
    fn log_uniform_within_bounds() {
        let mut rng = SplitMix64::new(17);
        for _ in 0..10_000 {
            let x = rng.next_log_uniform(10.0, 1000.0);
            assert!((10.0..1000.0).contains(&x));
        }
    }

    #[test]
    fn derive_seed_distinct_streams() {
        let s0 = derive_seed(42, 0);
        let s1 = derive_seed(42, 1);
        let s2 = derive_seed(43, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut rng = SplitMix64::new(8);
        let hits = (0..100_000).filter(|_| rng.next_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "observed {frac}");
    }
}
