//! Row data representation and bit-flip reporting.
//!
//! Storing full 8 KiB images for every row of a 64K-row bank would cost
//! ~512 MiB per bank, so a row's contents are represented as a *base
//! pattern* plus a sparse set of flipped bit positions. This is lossless
//! for everything the experiments need: retention and RowHammer failures
//! are exactly "bits that differ from what was written".

use std::fmt;
use std::sync::Arc;

use crate::addr::RowAddr;

/// The data written into a DRAM row.
///
/// Patterns are functions of `(row, bit index)` so that row-stripe
/// patterns (used by RowHammer studies to maximize aggressor/victim
/// coupling) can be expressed without materializing data.
///
/// # Example
///
/// ```
/// use dram_sim::{DataPattern, RowAddr};
///
/// let p = DataPattern::Checkerboard;
/// assert_eq!(p.bit_at(RowAddr::new(0), 0), false);
/// assert_eq!(p.bit_at(RowAddr::new(0), 1), true);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DataPattern {
    /// Every bit zero.
    Zeros,
    /// Every bit one. The paper's Row Scout default (§3.1: "e.g., all ones").
    Ones,
    /// Alternating `0101…` within each byte, same for every row.
    Checkerboard,
    /// All ones on even rows, all zeros on odd rows — maximizes
    /// aggressor-to-victim coupling for double-sided hammering.
    RowStripe,
    /// A caller-supplied byte sequence, repeated cyclically across the row.
    Custom(Arc<[u8]>),
}

impl DataPattern {
    /// The value of `bit` (0-based, LSB-first within each byte) for a row
    /// at logical address `row`.
    pub fn bit_at(&self, row: RowAddr, bit: u32) -> bool {
        match self {
            DataPattern::Zeros => false,
            DataPattern::Ones => true,
            DataPattern::Checkerboard => bit % 2 == 1,
            DataPattern::RowStripe => row.index().is_multiple_of(2),
            DataPattern::Custom(bytes) => {
                let byte = bytes[(bit / 8) as usize % bytes.len()];
                byte >> (bit % 8) & 1 == 1
            }
        }
    }

    /// A short identifier used in experiment logs.
    pub fn label(&self) -> &'static str {
        match self {
            DataPattern::Zeros => "zeros",
            DataPattern::Ones => "ones",
            DataPattern::Checkerboard => "checkerboard",
            DataPattern::RowStripe => "rowstripe",
            DataPattern::Custom(_) => "custom",
        }
    }
}

impl fmt::Display for DataPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Contents of one row: the pattern that was written plus every bit that
/// has since flipped away from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RowData {
    pub pattern: DataPattern,
    /// Written-with address; patterns may be row-parity dependent.
    pub written_as: RowAddr,
    /// Bit positions currently differing from the pattern, sorted
    /// ascending with no duplicates. A row holds at most a handful of
    /// flips, so a flat sorted vector beats a tree: membership is one
    /// binary search over a cache line and a readout clone is a memcpy.
    pub flips: Vec<u32>,
}

impl RowData {
    pub fn new(pattern: DataPattern, written_as: RowAddr) -> Self {
        RowData { pattern, written_as, flips: Vec::new() }
    }

    /// Current value of a bit.
    pub fn bit(&self, bit: u32) -> bool {
        self.pattern.bit_at(self.written_as, bit) ^ self.flips.binary_search(&bit).is_ok()
    }

    /// Records that `bit` now reads back inverted relative to the
    /// pattern. Idempotent: the physics never un-flips a bit within one
    /// decay window.
    pub fn set_flipped(&mut self, bit: u32) {
        if let Err(pos) = self.flips.binary_search(&bit) {
            self.flips.insert(pos, bit);
        }
    }
}

/// The result of reading an entire row back: which bits differ from the
/// pattern the row was last written with.
///
/// # Example
///
/// ```
/// use dram_sim::{Module, ModuleConfig, DataPattern, Bank, RowAddr, Nanos};
/// # fn main() -> Result<(), dram_sim::DramError> {
/// let mut m = Module::new(ModuleConfig::small_test(), 1);
/// let (bank, row) = (Bank::new(0), RowAddr::new(5));
/// m.activate(bank, row)?;
/// m.write_open_row(bank, DataPattern::Ones)?;
/// let readout = m.read_open_row(bank)?;
/// assert!(readout.is_clean()); // no time has passed
/// # Ok(()) }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowReadout {
    row: RowAddr,
    pattern: DataPattern,
    flipped: Vec<u32>,
    row_bits: u32,
}

impl RowReadout {
    pub(crate) fn new(
        row: RowAddr,
        pattern: DataPattern,
        flipped: Vec<u32>,
        row_bits: u32,
    ) -> Self {
        RowReadout { row, pattern, flipped, row_bits }
    }

    /// The logical row address that was read.
    pub fn row(&self) -> RowAddr {
        self.row
    }

    /// The pattern the row was last written with.
    pub fn pattern(&self) -> &DataPattern {
        &self.pattern
    }

    /// Bit positions (LSB-first within the row) that read back inverted,
    /// in ascending order.
    pub fn flipped_bits(&self) -> &[u32] {
        &self.flipped
    }

    /// Number of flipped bits.
    pub fn flip_count(&self) -> usize {
        self.flipped.len()
    }

    /// `true` when the row read back exactly as written.
    pub fn is_clean(&self) -> bool {
        self.flipped.is_empty()
    }

    /// Histogram of flips per aligned 8-byte dataword, the granularity the
    /// paper uses for its ECC analysis (§7.4, Fig. 10). Returns
    /// `(chunk index, flips in chunk)` for every chunk with at least one
    /// flip.
    pub fn flips_per_dataword(&self) -> Vec<(u32, u32)> {
        // `flipped` is sorted ascending, so all flips of one chunk are
        // contiguous: gather each chunk's run into a u64 mask and pop the
        // count in one instruction. The output can never hold more entries
        // than flips or than datawords in the row — pre-size to that bound
        // so the scan never reallocates.
        let bound = self.flipped.len().min(self.dataword_count().max(1) as usize);
        let mut out: Vec<(u32, u32)> = Vec::with_capacity(bound);
        let mut i = 0;
        while i < self.flipped.len() {
            let chunk = self.flipped[i] / 64;
            let mask = gather_chunk(&self.flipped, &mut i, chunk);
            out.push((chunk, mask.count_ones()));
        }
        out
    }

    /// Number of 8-byte datawords in the row.
    pub fn dataword_count(&self) -> u32 {
        self.row_bits / 64
    }

    /// Number of bits in the row.
    pub fn row_bits(&self) -> u32 {
        self.row_bits
    }

    /// Toggles `bit` in the readout — fault-injection support: a
    /// transient read error corrupts the data *in flight*, not the cell,
    /// so the device's stored state is untouched. Toggling an
    /// already-flipped bit makes it read back clean, exactly as a bus
    /// error XORs the sensed value.
    pub fn inject_flip(&mut self, bit: u32) {
        let bit = bit % self.row_bits.max(1);
        match self.flipped.binary_search(&bit) {
            Ok(pos) => {
                self.flipped.remove(pos);
            }
            Err(pos) => self.flipped.insert(pos, bit),
        }
    }

    /// Clears every flip from the readout — a stuck read that returns
    /// the written pattern regardless of what the cells hold.
    pub fn clear_flips(&mut self) {
        self.flipped.clear();
    }

    /// A copy of this readout carrying a different flip set — support
    /// for controller-side consensus logic that reconciles several reads
    /// of the same row into one result.
    pub fn with_flips(&self, mut flips: Vec<u32>) -> RowReadout {
        flips.sort_unstable();
        flips.dedup();
        RowReadout {
            row: self.row,
            pattern: self.pattern.clone(),
            flipped: flips,
            row_bits: self.row_bits,
        }
    }
}

/// Collects the run of `list` entries belonging to 64-bit `chunk` into a
/// bit mask, advancing `i` past the run. `list` must be sorted ascending
/// and deduplicated, with `i` at or before the chunk's first entry.
fn gather_chunk(list: &[u32], i: &mut usize, chunk: u32) -> u64 {
    let mut mask = 0u64;
    while *i < list.len() && list[*i] / 64 == chunk {
        mask |= 1u64 << (list[*i] % 64);
        *i += 1;
    }
    mask
}

/// Bitwise two-of-three majority over three sorted, deduplicated flip
/// lists: a bit is in the result iff it appears in at least two of the
/// inputs. Output is sorted ascending.
///
/// This is the consensus kernel behind fault-tolerant voted row reads:
/// instead of tallying each bit position in a map, the three lists are
/// merged one aligned 64-bit dataword at a time and the majority is taken
/// with three ANDs and an OR over whole words.
///
/// # Example
///
/// ```
/// use dram_sim::majority3_flips;
///
/// let maj = majority3_flips(&[3, 70], &[3, 200], &[70, 200]);
/// assert_eq!(maj, vec![3, 70, 200]);
/// ```
pub fn majority3_flips(a: &[u32], b: &[u32], c: &[u32]) -> Vec<u32> {
    // Every majority bit is in at least two lists, hence in at least one
    // of the two smallest — their combined size bounds the output.
    let mut sizes = [a.len(), b.len(), c.len()];
    sizes.sort_unstable();
    let mut out = Vec::with_capacity(sizes[0] + sizes[1]);
    let (mut ia, mut ib, mut ic) = (0usize, 0usize, 0usize);
    loop {
        let mut chunk = u32::MAX;
        if ia < a.len() {
            chunk = chunk.min(a[ia] / 64);
        }
        if ib < b.len() {
            chunk = chunk.min(b[ib] / 64);
        }
        if ic < c.len() {
            chunk = chunk.min(c[ic] / 64);
        }
        if chunk == u32::MAX {
            return out;
        }
        let ma = gather_chunk(a, &mut ia, chunk);
        let mb = gather_chunk(b, &mut ib, chunk);
        let mc = gather_chunk(c, &mut ic, chunk);
        let mut maj = (ma & mb) | (ma & mc) | (mb & mc);
        while maj != 0 {
            out.push(chunk * 64 + maj.trailing_zeros());
            maj &= maj - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_bits() {
        let even = RowAddr::new(2);
        let odd = RowAddr::new(3);
        assert!(!DataPattern::Zeros.bit_at(even, 17));
        assert!(DataPattern::Ones.bit_at(even, 17));
        assert!(DataPattern::Checkerboard.bit_at(even, 1));
        assert!(!DataPattern::Checkerboard.bit_at(even, 2));
        assert!(DataPattern::RowStripe.bit_at(even, 9));
        assert!(!DataPattern::RowStripe.bit_at(odd, 9));
    }

    #[test]
    fn custom_pattern_cycles() {
        let p = DataPattern::Custom(Arc::from(&[0x01u8, 0x80][..]));
        let r = RowAddr::new(0);
        assert!(p.bit_at(r, 0)); // byte 0 bit 0
        assert!(!p.bit_at(r, 1));
        assert!(p.bit_at(r, 15)); // byte 1 bit 7
        assert!(p.bit_at(r, 16)); // cycles back to byte 0
    }

    #[test]
    fn row_data_flip_tracking() {
        let mut d = RowData::new(DataPattern::Ones, RowAddr::new(0));
        assert!(d.bit(5));
        d.set_flipped(5);
        assert!(!d.bit(5));
    }

    #[test]
    fn dataword_histogram_groups_by_chunk() {
        let r = RowReadout::new(RowAddr::new(0), DataPattern::Ones, vec![0, 3, 63, 64, 200], 1024);
        assert_eq!(r.flips_per_dataword(), vec![(0, 3), (1, 1), (3, 1)]);
        assert_eq!(r.dataword_count(), 16);
        assert_eq!(r.flip_count(), 5);
        assert!(!r.is_clean());
    }

    #[test]
    fn pattern_labels_are_stable() {
        assert_eq!(DataPattern::Ones.to_string(), "ones");
        assert_eq!(DataPattern::RowStripe.label(), "rowstripe");
    }

    #[test]
    fn dataword_histogram_matches_bruteforce_reference() {
        // Pin the single-pass aggregation against the obvious O(chunks ×
        // flips) reference over randomized sorted flip sets.
        let row_bits: u32 = 2048;
        for seed in 0..64u64 {
            let mut rng = crate::rng::SplitMix64::new(seed);
            let mut bits: Vec<u32> = (0..rng.next_u64() % 96)
                .map(|_| (rng.next_u64() % row_bits as u64) as u32)
                .collect();
            bits.sort_unstable();
            bits.dedup();
            let r = RowReadout::new(RowAddr::new(0), DataPattern::Ones, bits.clone(), row_bits);
            let mut expected: Vec<(u32, u32)> = Vec::new();
            for chunk in 0..row_bits / 64 {
                let n = bits.iter().filter(|&&b| b / 64 == chunk).count() as u32;
                if n > 0 {
                    expected.push((chunk, n));
                }
            }
            assert_eq!(r.flips_per_dataword(), expected, "seed {seed}");
        }
    }

    #[test]
    fn majority3_matches_tally_reference() {
        // Pin the chunked merge against the obvious per-bit tally over
        // randomized sorted flip sets, including cross-chunk spreads.
        let row_bits: u64 = 2048;
        for seed in 0..64u64 {
            let mut rng = crate::rng::SplitMix64::new(seed.wrapping_mul(0x1234_5678_9ABC_DEF1));
            let mut draw = |n: u64| -> Vec<u32> {
                let mut v: Vec<u32> = (0..n).map(|_| (rng.next_u64() % row_bits) as u32).collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            let (a, b, c) = (draw(40), draw(40), draw(40));
            let mut tally = std::collections::BTreeMap::new();
            for &bit in a.iter().chain(&b).chain(&c) {
                *tally.entry(bit).or_insert(0u32) += 1;
            }
            let expected: Vec<u32> =
                tally.into_iter().filter(|&(_, n)| n >= 2).map(|(bit, _)| bit).collect();
            assert_eq!(majority3_flips(&a, &b, &c), expected, "seed {seed}");
        }
    }

    #[test]
    fn majority3_edge_cases() {
        assert!(majority3_flips(&[], &[], &[]).is_empty());
        assert!(majority3_flips(&[5], &[], &[]).is_empty());
        assert_eq!(majority3_flips(&[5], &[5], &[]), vec![5]);
        assert_eq!(majority3_flips(&[5], &[5], &[5]), vec![5]);
        // Disjoint pairwise overlaps across distant chunks.
        assert_eq!(majority3_flips(&[0, 640], &[0, 1300], &[640, 1300]), vec![0, 640, 1300]);
    }

    #[test]
    fn dataword_histogram_edge_cases() {
        let empty = RowReadout::new(RowAddr::new(0), DataPattern::Ones, vec![], 1024);
        assert!(empty.flips_per_dataword().is_empty());
        // Every flip in the same chunk, and a flip in the last chunk.
        let dense =
            RowReadout::new(RowAddr::new(0), DataPattern::Ones, vec![64, 65, 127, 1023], 1024);
        assert_eq!(dense.flips_per_dataword(), vec![(1, 3), (15, 1)]);
    }
}
