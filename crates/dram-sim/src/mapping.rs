//! Logical→physical row address mapping and disturbance topology.
//!
//! §5.3 of the paper: "DRAM rows that have consecutive logical row
//! addresses may not be physically adjacent inside a DRAM chip" — because
//! of (i) row-decoder scrambling and (ii) post-manufacturing repair
//! remapping. U-TRR reverse engineers the mapping before any experiment by
//! hammering with refresh disabled and locating the flipped rows.
//!
//! The simulator separates two orthogonal concepts:
//!
//! * [`RowMapping`] — the address *bijection* between [`RowAddr`] and
//!   [`PhysRow`];
//! * [`Topology`] — which physical rows an activation *disturbs* (and
//!   which rows a TRR detection causes to be refreshed). Vendor C's
//!   C_TRR1 modules use the paper's "pair row" organization (§6.3
//!   Observation 3), where hammering row `R` only disturbs its pair
//!   `R ^ 1`.

use crate::addr::{PhysRow, RowAddr};

/// A bijection between logical row addresses and physical row positions
/// within a bank.
///
/// # Example
///
/// ```
/// use dram_sim::{RowMapping, RowAddr};
///
/// let m = RowMapping::block_mirror(3); // mirror within blocks of 8
/// let phys = m.to_phys(RowAddr::new(0));
/// assert_eq!(m.to_logical(phys), RowAddr::new(0)); // bijection
/// assert_eq!(phys.index(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum RowMapping {
    /// Logical address equals physical position.
    #[default]
    Identity,
    /// Reverse the order of rows inside each aligned block of
    /// `1 << block_bits` rows — models decoder schemes that mirror
    /// sub-blocks.
    BlockMirror {
        /// log2 of the mirrored block size.
        block_bits: u8,
    },
    /// XOR a low-bit mask into the address whenever a control bit is set:
    /// `phys = logical ^ ((logical >> ctrl_bit & 1) * mask)`. Models the
    /// MSB-controlled low-bit scrambling observed in real DDR4 decoders.
    /// An involution (applying it twice is the identity), so it is its own
    /// inverse. `mask` must only contain bits strictly below `ctrl_bit`.
    MsbXor {
        /// The controlling address bit.
        ctrl_bit: u8,
        /// Low bits toggled when the control bit is set.
        mask: u32,
    },
    /// A base mapping composed with a set of physical-space row swaps,
    /// modeling post-manufacturing repair (faulty rows remapped to
    /// spares). Each `(a, b)` pair exchanges physical positions `a` and
    /// `b` after the base mapping is applied.
    Remapped {
        /// The underlying decoder mapping.
        base: Box<RowMapping>,
        /// Physical position swaps applied on top, in order.
        swaps: Vec<(u32, u32)>,
    },
}

impl RowMapping {
    /// Convenience constructor for [`RowMapping::BlockMirror`].
    pub fn block_mirror(block_bits: u8) -> Self {
        RowMapping::BlockMirror { block_bits }
    }

    /// Convenience constructor for [`RowMapping::MsbXor`].
    ///
    /// # Panics
    ///
    /// Panics if `mask` has bits at or above `ctrl_bit` (the scheme would
    /// not be a bijection).
    pub fn msb_xor(ctrl_bit: u8, mask: u32) -> Self {
        assert!(
            mask & !((1u32 << ctrl_bit) - 1) == 0,
            "mask must only contain bits below the control bit"
        );
        RowMapping::MsbXor { ctrl_bit, mask }
    }

    /// Wraps a mapping with repair swaps.
    pub fn with_swaps(self, swaps: Vec<(u32, u32)>) -> Self {
        RowMapping::Remapped { base: Box::new(self), swaps }
    }

    /// Whether the mapping is a bijection over a bank of `rows` rows
    /// (every decoder scheme has an alignment requirement; repair swaps
    /// must stay in range).
    pub fn valid_for(&self, rows: u32) -> bool {
        match self {
            RowMapping::Identity => true,
            RowMapping::BlockMirror { block_bits } => rows.is_multiple_of(1 << block_bits),
            RowMapping::MsbXor { ctrl_bit, .. } => rows.is_multiple_of(1u32 << (ctrl_bit + 1)),
            RowMapping::Remapped { base, swaps } => {
                base.valid_for(rows) && swaps.iter().all(|&(a, b)| a < rows && b < rows)
            }
        }
    }

    /// Maps a logical row address to its physical position.
    pub fn to_phys(&self, row: RowAddr) -> PhysRow {
        match self {
            RowMapping::Identity => PhysRow::new(row.index()),
            RowMapping::BlockMirror { block_bits } => {
                let mask = (1u32 << block_bits) - 1;
                let l = row.index();
                PhysRow::new((l & !mask) | (mask - (l & mask)))
            }
            RowMapping::MsbXor { ctrl_bit, mask } => {
                let l = row.index();
                PhysRow::new(l ^ ((l >> ctrl_bit & 1) * mask))
            }
            RowMapping::Remapped { base, swaps } => {
                let mut p = base.to_phys(row).index();
                for &(a, b) in swaps {
                    if p == a {
                        p = b;
                    } else if p == b {
                        p = a;
                    }
                }
                PhysRow::new(p)
            }
        }
    }

    /// Maps a physical position back to the logical address that selects
    /// it.
    pub fn to_logical(&self, row: PhysRow) -> RowAddr {
        match self {
            RowMapping::Identity => RowAddr::new(row.index()),
            // BlockMirror and MsbXor are involutions.
            RowMapping::BlockMirror { .. } | RowMapping::MsbXor { .. } => {
                RowAddr::new(self.to_phys(RowAddr::new(row.index())).index())
            }
            RowMapping::Remapped { base, swaps } => {
                let mut p = row.index();
                // Swaps are involutions; undo them in reverse order.
                for &(a, b) in swaps.iter().rev() {
                    if p == a {
                        p = b;
                    } else if p == b {
                        p = a;
                    }
                }
                base.to_logical(PhysRow::new(p))
            }
        }
    }
}

/// How activations disturb physically nearby rows, and which rows TRR
/// refreshes around a detected aggressor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Conventional wordline stack: distance-1 neighbours receive full
    /// disturbance, distance-2 neighbours a configurable fraction.
    #[default]
    Linear,
    /// Vendor C's C_TRR1 organization (§6.3 Obs. 3): rows are isolated in
    /// pairs `(R, R ^ 1)`; hammering one row disturbs only its pair row.
    Paired,
}

impl Topology {
    /// Physical rows disturbed by one activation of `row`, with their
    /// relative coupling weight (distance-1 weight is 1.0).
    /// `radius2_weight` only applies to [`Topology::Linear`].
    pub fn disturb_targets(
        self,
        row: PhysRow,
        rows_per_bank: u32,
        radius2_weight: f64,
    ) -> Vec<(PhysRow, f64)> {
        let (targets, n) = self.disturb_targets_fixed(row, rows_per_bank, radius2_weight);
        targets[..n].to_vec()
    }

    /// Allocation-free form of [`Topology::disturb_targets`]: fills a
    /// fixed array (a topology disturbs at most 4 rows) and returns how
    /// many entries are valid. This is the per-`ACT` hot path — every
    /// activation resolves its victims through here, so it must not
    /// touch the heap.
    pub fn disturb_targets_fixed(
        self,
        row: PhysRow,
        rows_per_bank: u32,
        radius2_weight: f64,
    ) -> ([(PhysRow, f64); 4], usize) {
        let r = row.index();
        let mut out = [(PhysRow::new(0), 0.0f64); 4];
        let mut n = 0;
        match self {
            Topology::Linear => {
                let candidates = [
                    (r.wrapping_sub(1), 1.0),
                    (r + 1, 1.0),
                    (r.wrapping_sub(2), radius2_weight),
                    (r + 2, radius2_weight),
                ];
                for (c, w) in candidates {
                    if c < rows_per_bank && w > 0.0 {
                        out[n] = (PhysRow::new(c), w);
                        n += 1;
                    }
                }
            }
            Topology::Paired => {
                let pair = r ^ 1;
                if pair < rows_per_bank {
                    out[0] = (PhysRow::new(pair), 1.0);
                    n = 1;
                }
            }
        }
        (out, n)
    }

    /// Physical rows a TRR mechanism refreshes when it detects `row` as an
    /// aggressor and is configured to protect `span` neighbours per side.
    pub fn trr_victims(
        self,
        row: PhysRow,
        rows_per_bank: u32,
        span: crate::mitigation::NeighborSpan,
    ) -> Vec<PhysRow> {
        let r = row.index();
        match self {
            Topology::Linear => {
                let distance = span.per_side();
                let mut out = Vec::with_capacity(2 * distance as usize);
                for d in 1..=distance {
                    if let Some(above) = r.checked_sub(d) {
                        out.push(PhysRow::new(above));
                    }
                    if r + d < rows_per_bank {
                        out.push(PhysRow::new(r + d));
                    }
                }
                out
            }
            Topology::Paired => {
                let pair = r ^ 1;
                if pair < rows_per_bank {
                    vec![PhysRow::new(pair)]
                } else {
                    vec![]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mitigation::NeighborSpan;

    fn assert_bijection(m: &RowMapping, rows: u32) {
        let mut seen = vec![false; rows as usize];
        for l in 0..rows {
            let p = m.to_phys(RowAddr::new(l));
            assert!(p.index() < rows, "{m:?} maps {l} out of range");
            assert!(!seen[p.index() as usize], "{m:?} collides at {p}");
            seen[p.index() as usize] = true;
            assert_eq!(m.to_logical(p), RowAddr::new(l), "{m:?} inverse broken at {l}");
        }
    }

    #[test]
    fn identity_is_bijective() {
        assert_bijection(&RowMapping::Identity, 64);
    }

    #[test]
    fn block_mirror_is_bijective_and_mirrors() {
        let m = RowMapping::block_mirror(2);
        assert_bijection(&m, 64);
        assert_eq!(m.to_phys(RowAddr::new(0)).index(), 3);
        assert_eq!(m.to_phys(RowAddr::new(4)).index(), 7);
    }

    #[test]
    fn msb_xor_is_bijective() {
        let m = RowMapping::msb_xor(3, 0b110);
        assert_bijection(&m, 64);
        // Below the control bit nothing changes.
        assert_eq!(m.to_phys(RowAddr::new(2)).index(), 2);
        // With bit 3 set, bits 1..2 toggle.
        assert_eq!(m.to_phys(RowAddr::new(8)).index(), 8 ^ 0b110);
    }

    #[test]
    #[should_panic(expected = "below the control bit")]
    fn msb_xor_rejects_overlapping_mask() {
        let _ = RowMapping::msb_xor(2, 0b100);
    }

    #[test]
    fn validity_checks_alignment_and_range() {
        assert!(RowMapping::Identity.valid_for(1));
        assert!(RowMapping::block_mirror(3).valid_for(1024));
        assert!(!RowMapping::block_mirror(3).valid_for(1020));
        assert!(RowMapping::msb_xor(3, 0b110).valid_for(1024));
        assert!(!RowMapping::msb_xor(3, 0b110).valid_for(1032));
        assert!(RowMapping::Identity.with_swaps(vec![(1, 5)]).valid_for(8));
        assert!(!RowMapping::Identity.with_swaps(vec![(1, 9)]).valid_for(8));
    }

    #[test]
    fn remapped_swaps_apply_and_invert() {
        let m = RowMapping::Identity.with_swaps(vec![(5, 60), (7, 61)]);
        assert_bijection(&m, 64);
        assert_eq!(m.to_phys(RowAddr::new(5)).index(), 60);
        assert_eq!(m.to_phys(RowAddr::new(60)).index(), 5);
        assert_eq!(m.to_phys(RowAddr::new(7)).index(), 61);
    }

    #[test]
    fn remapped_over_scrambler_is_bijective() {
        let m = RowMapping::block_mirror(3).with_swaps(vec![(0, 50), (3, 9)]);
        assert_bijection(&m, 64);
    }

    #[test]
    fn linear_disturbance_has_blast_radius_two() {
        let t = Topology::Linear;
        let targets = t.disturb_targets(PhysRow::new(10), 100, 0.25);
        assert_eq!(
            targets,
            vec![
                (PhysRow::new(9), 1.0),
                (PhysRow::new(11), 1.0),
                (PhysRow::new(8), 0.25),
                (PhysRow::new(12), 0.25),
            ]
        );
    }

    #[test]
    fn linear_disturbance_clips_at_edges() {
        let t = Topology::Linear;
        let targets = t.disturb_targets(PhysRow::new(0), 100, 0.25);
        assert_eq!(targets, vec![(PhysRow::new(1), 1.0), (PhysRow::new(2), 0.25)]);
        let targets = t.disturb_targets(PhysRow::new(99), 100, 0.25);
        assert_eq!(targets, vec![(PhysRow::new(98), 1.0), (PhysRow::new(97), 0.25)]);
    }

    #[test]
    fn zero_radius2_weight_disables_distance_two() {
        let targets = Topology::Linear.disturb_targets(PhysRow::new(10), 100, 0.0);
        assert_eq!(targets.len(), 2);
    }

    #[test]
    fn paired_topology_only_disturbs_pair() {
        let t = Topology::Paired;
        assert_eq!(t.disturb_targets(PhysRow::new(10), 100, 0.25), vec![(PhysRow::new(11), 1.0)]);
        assert_eq!(t.disturb_targets(PhysRow::new(11), 100, 0.25), vec![(PhysRow::new(10), 1.0)]);
    }

    #[test]
    fn trr_victims_span_one_and_two() {
        let t = Topology::Linear;
        let one = t.trr_victims(PhysRow::new(10), 100, NeighborSpan::One);
        assert_eq!(one, vec![PhysRow::new(9), PhysRow::new(11)]);
        let two = t.trr_victims(PhysRow::new(10), 100, NeighborSpan::Two);
        assert_eq!(two, vec![PhysRow::new(9), PhysRow::new(11), PhysRow::new(8), PhysRow::new(12)]);
    }

    #[test]
    fn trr_victims_paired_ignores_span() {
        let t = Topology::Paired;
        assert_eq!(t.trr_victims(PhysRow::new(4), 100, NeighborSpan::Two), vec![PhysRow::new(5)]);
    }

    #[test]
    fn trr_victims_edge_rows() {
        let t = Topology::Linear;
        assert_eq!(
            t.trr_victims(PhysRow::new(0), 100, NeighborSpan::Two),
            vec![PhysRow::new(1), PhysRow::new(2)]
        );
    }
}
