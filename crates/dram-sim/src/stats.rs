//! Cumulative device statistics.

/// A point-in-time snapshot of the counters accumulated over a
/// [`crate::Module`]'s lifetime. Useful for asserting experiment cost
/// envelopes and for the benchmark harness.
///
/// Since the observability refactor this is a *view*: the live counts
/// are named counters in the module's [`obs::MetricsRegistry`] (see
/// [`crate::metrics`]), and [`crate::Module::stats`] materializes them
/// into this struct. When several modules share one registry the view
/// aggregates across all of them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModuleStats {
    /// Total row activations (batched hammers count individually).
    pub activations: u64,
    /// Total `REF` commands.
    pub refreshes: u64,
    /// Rows restored by the regular (round-robin) refresh machinery.
    pub regular_row_refreshes: u64,
    /// Rows restored by TRR-induced refreshes.
    pub trr_row_refreshes: u64,
    /// TRR detections (aggressor rows acted upon).
    pub trr_detections: u64,
    /// Full-row reads.
    pub row_reads: u64,
    /// Full-row writes.
    pub row_writes: u64,
    /// Bit flips materialized (retention + RowHammer).
    pub bit_flips: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = ModuleStats::default();
        assert_eq!(s.activations, 0);
        assert_eq!(s.bit_flips, 0);
    }
}
