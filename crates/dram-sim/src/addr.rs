//! DRAM address types and module geometry.
//!
//! The simulator distinguishes *logical* row addresses ([`RowAddr`], what
//! the memory controller puts on the bus) from *physical* row positions
//! ([`PhysRow`], where the wordline actually sits in silicon). The two are
//! related by a [`crate::RowMapping`], which U-TRR must reverse engineer
//! before it can reason about adjacency (§5.3 of the paper).

use std::fmt;

/// A bank index within a DRAM chip/rank.
///
/// # Example
///
/// ```
/// use dram_sim::Bank;
/// let b = Bank::new(3);
/// assert_eq!(b.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bank(u8);

impl Bank {
    /// Creates a bank index.
    pub const fn new(index: u8) -> Self {
        Bank(index)
    }

    /// Returns the raw index.
    pub const fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Bank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A *logical* row address: the address the memory controller issues with
/// an `ACT` command. Logical adjacency does **not** imply physical
/// adjacency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowAddr(u32);

impl RowAddr {
    /// Creates a logical row address.
    pub const fn new(row: u32) -> Self {
        RowAddr(row)
    }

    /// Returns the raw address.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// The logical address `distance` rows above, saturating at zero.
    pub const fn minus(self, distance: u32) -> RowAddr {
        RowAddr(self.0.saturating_sub(distance))
    }

    /// The logical address `distance` rows below.
    pub const fn plus(self, distance: u32) -> RowAddr {
        RowAddr(self.0 + distance)
    }
}

impl fmt::Display for RowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A *physical* row position inside a bank: index along the wordline
/// stack. RowHammer disturbance and TRR victim selection operate in this
/// space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysRow(u32);

impl PhysRow {
    /// Creates a physical row position.
    pub const fn new(row: u32) -> Self {
        PhysRow(row)
    }

    /// Returns the raw position.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for PhysRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A column (bit-line group) address within a row. Only used by the data
/// layer to localize bit flips; RowHammer experiments operate on whole
/// rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColAddr(u32);

impl ColAddr {
    /// Creates a column address.
    pub const fn new(col: u32) -> Self {
        ColAddr(col)
    }

    /// Returns the raw address.
    pub const fn index(self) -> u32 {
        self.0
    }
}

/// Static geometry of a simulated module (one rank's worth of banks).
///
/// # Example
///
/// ```
/// use dram_sim::ModuleGeometry;
///
/// let g = ModuleGeometry::ddr4_8gbit_x8();
/// assert_eq!(g.banks, 16);
/// assert_eq!(g.row_bits(), 8192 * 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModuleGeometry {
    /// Number of banks.
    pub banks: u8,
    /// Number of rows per bank.
    pub rows_per_bank: u32,
    /// Row size in bytes (typical DDR4: 8 KiB).
    pub row_bytes: u32,
}

impl ModuleGeometry {
    /// Geometry of an 8 Gbit x8 DDR4 chip: 16 banks of 32K rows.
    pub const fn ddr4_8gbit_x8() -> Self {
        ModuleGeometry { banks: 16, rows_per_bank: 32 * 1024, row_bytes: 8192 }
    }

    /// Geometry of an 8 Gbit x16 DDR4 chip: 8 banks of 64K rows.
    pub const fn ddr4_8gbit_x16() -> Self {
        ModuleGeometry { banks: 8, rows_per_bank: 64 * 1024, row_bytes: 8192 }
    }

    /// A deliberately small geometry for fast unit tests.
    pub const fn tiny() -> Self {
        ModuleGeometry { banks: 2, rows_per_bank: 1024, row_bytes: 256 }
    }

    /// Number of data bits in one row.
    pub const fn row_bits(&self) -> u32 {
        self.row_bytes * 8
    }

    /// Whether a bank index is in range.
    pub const fn bank_in_range(&self, bank: Bank) -> bool {
        bank.index() < self.banks
    }

    /// Whether a logical row address is in range.
    pub const fn row_in_range(&self, row: RowAddr) -> bool {
        row.index() < self.rows_per_bank
    }

    /// Whether a physical row position is in range.
    pub const fn phys_in_range(&self, row: PhysRow) -> bool {
        row.index() < self.rows_per_bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_addr_arithmetic() {
        let r = RowAddr::new(10);
        assert_eq!(r.plus(2), RowAddr::new(12));
        assert_eq!(r.minus(2), RowAddr::new(8));
        assert_eq!(RowAddr::new(1).minus(5), RowAddr::new(0));
    }

    #[test]
    fn geometry_range_checks() {
        let g = ModuleGeometry::tiny();
        assert!(g.bank_in_range(Bank::new(1)));
        assert!(!g.bank_in_range(Bank::new(2)));
        assert!(g.row_in_range(RowAddr::new(1023)));
        assert!(!g.row_in_range(RowAddr::new(1024)));
        assert!(g.phys_in_range(PhysRow::new(0)));
        assert!(!g.phys_in_range(PhysRow::new(9999)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bank::new(2).to_string(), "B2");
        assert_eq!(RowAddr::new(7).to_string(), "r7");
        assert_eq!(PhysRow::new(7).to_string(), "p7");
    }

    #[test]
    fn standard_geometries_match_table1_organizations() {
        // Table 1 lists 16-bank x8 modules with 32K rows/bank and 8-bank
        // x16 modules with 64K rows/bank (§7.3 discussion).
        let x8 = ModuleGeometry::ddr4_8gbit_x8();
        assert_eq!((x8.banks, x8.rows_per_bank), (16, 32768));
        let x16 = ModuleGeometry::ddr4_8gbit_x16();
        assert_eq!((x16.banks, x16.rows_per_bank), (8, 65536));
    }
}
