//! A hand-rolled FxHash-style hasher for the device's internal maps.
//!
//! The row-state map is keyed by `(bank << 32) | physical_row` — small,
//! already well-mixed integers produced millions of times per sweep.
//! `std`'s default SipHash buys DoS resistance the simulator does not
//! need and pays for it on every `ACT`/`REF`. This hasher is the
//! classic "rotate, xor, multiply by a golden-ratio-derived odd
//! constant" word mixer used by rustc's FxHash: one multiply per `u64`
//! of input, no finalisation round.
//!
//! Not DoS-resistant and not a stable hash across platforms — use only
//! for in-process tables keyed by trusted integers.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant: 2^64 / φ rounded to odd (same as rustc's).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-multiply-per-word `Hasher`. See the module docs for caveats.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with FxHash instead of SipHash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with FxHash instead of SipHash.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_u64(v: u64) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn deterministic_within_process() {
        for v in [0u64, 1, 0xFFFF_FFFF, u64::MAX, (3 << 32) | 12345] {
            assert_eq!(hash_u64(v), hash_u64(v));
        }
    }

    #[test]
    fn distinct_row_keys_spread() {
        // Row-state keys for a full module must not collide in practice:
        // hash all (bank, row) keys of a 16-bank × 4096-row geometry.
        let mut seen = std::collections::HashSet::new();
        for bank in 0u64..16 {
            for row in 0u64..4096 {
                seen.insert(hash_u64((bank << 32) | row));
            }
        }
        assert_eq!(seen.len(), 16 * 4096);
    }

    #[test]
    fn byte_stream_matches_word_padding() {
        // write() must consume trailing partial words (zero-padded).
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 0, 0, 0, 0, 0]));
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn fx_map_works_as_row_table() {
        let mut map: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            map.insert(i, (i * 7) as u32);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&500), Some(&3500));
    }
}
