//! Equivalence property: the event-driven bitmap-scan `refresh()` must be
//! observationally identical to the retained naive full-window reference
//! (`refresh_naive()`) — same row data, same metrics counters, same TRR
//! detections — across randomized command traces.
//!
//! The event-driven sweep only visits touched rows; the naive reference
//! walks every row of the window and relies on the touched-set check
//! inside `restore_existing`. Any divergence (a masking bug at window
//! boundaries, a missed bank, a double-restore) shows up as a readout,
//! counter, or detection mismatch here.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use dram_sim::{
    Bank, DataPattern, MitigationEngine, Module, ModuleConfig, Nanos, PhysRow, RowAddr,
    TrrDetection,
};
use proptest::prelude::*;

/// A deterministic counter-based TRR: rows whose activation count crosses
/// the threshold are detected at the next `REF` (ties broken by row
/// order), counters cleared on detection. Every detection is also pushed
/// onto a shared log so the test can compare what the device was told.
#[derive(Debug)]
struct CountingTrr {
    acts: BTreeMap<(u8, u32), u64>,
    threshold: u64,
    log: Arc<Mutex<Vec<(u64, TrrDetection)>>>,
    refs_seen: u64,
}

impl CountingTrr {
    fn new(threshold: u64, log: Arc<Mutex<Vec<(u64, TrrDetection)>>>) -> Self {
        CountingTrr { acts: BTreeMap::new(), threshold, log, refs_seen: 0 }
    }
}

impl MitigationEngine for CountingTrr {
    fn on_activations(&mut self, bank: Bank, row: PhysRow, count: u64, _now: Nanos) {
        *self.acts.entry((bank.index(), row.index())).or_insert(0) += count;
    }

    fn on_refresh(&mut self, _now: Nanos, out: &mut Vec<TrrDetection>) {
        self.refs_seen += 1;
        let hot: Vec<(u8, u32)> =
            self.acts.iter().filter(|&(_, &n)| n >= self.threshold).map(|(&key, _)| key).collect();
        for (bank, row) in hot {
            self.acts.remove(&(bank, row));
            let det = TrrDetection {
                bank: Bank::new(bank),
                aggressor: PhysRow::new(row),
                span: dram_sim::NeighborSpan::One,
            };
            self.log.lock().unwrap().push((self.refs_seen, det));
            out.push(det);
        }
    }

    fn reset(&mut self) {
        self.acts.clear();
        self.refs_seen = 0;
    }

    fn name(&self) -> &str {
        "counting-test"
    }
}

/// One step of a randomized command trace.
#[derive(Debug, Clone)]
enum Op {
    Write(u32, bool),
    Hammer(u32, u64),
    Advance(u64),
    Refresh(u32),
}

fn op_strategy(rows: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..rows, any::<bool>()).prop_map(|(r, ones)| Op::Write(r, ones)),
        (0..rows, 1u64..300).prop_map(|(r, n)| Op::Hammer(r, n)),
        (1u64..5_000u64).prop_map(Op::Advance),
        // Bursts long enough to push the round-robin pointer through
        // multiple windows, including the wrap.
        (1u32..40).prop_map(Op::Refresh),
    ]
}

/// Final observable state of one trace run: per-row readouts of every
/// written row, the per-REF detection log, device stats, and the clock.
type TraceOutcome = (Vec<(u32, Vec<u32>)>, Vec<(u64, TrrDetection)>, dram_sim::ModuleStats, Nanos);

/// Runs `ops` against a fresh module; `event_driven` selects which
/// refresh implementation services the Refresh steps.
fn run_trace(seed: u64, ops: &[Op], event_driven: bool) -> TraceOutcome {
    let log = Arc::new(Mutex::new(Vec::new()));
    let engine = Box::new(CountingTrr::new(600, Arc::clone(&log)));
    let mut m = Module::with_engine(ModuleConfig::small_test(), engine, seed);
    let bank = Bank::new(0);
    let mut written: Vec<u32> = Vec::new();
    for op in ops {
        match *op {
            Op::Write(r, ones) => {
                let pattern = if ones { DataPattern::Ones } else { DataPattern::Zeros };
                m.write_row(bank, RowAddr::new(r), pattern).unwrap();
                if !written.contains(&r) {
                    written.push(r);
                }
            }
            Op::Hammer(r, n) => m.hammer(bank, RowAddr::new(r), n).unwrap(),
            Op::Advance(us) => m.advance(Nanos::from_us(us)),
            Op::Refresh(n) => {
                for _ in 0..n {
                    if event_driven {
                        m.refresh();
                    } else {
                        m.refresh_naive();
                    }
                }
            }
        }
    }
    let mut readouts = Vec::with_capacity(written.len());
    written.sort_unstable();
    for &r in &written {
        readouts.push((r, m.read_row(bank, RowAddr::new(r)).unwrap().flipped_bits().to_vec()));
    }
    let stats = m.stats();
    let now = m.now();
    let log = log.lock().unwrap().clone();
    (readouts, log, stats, now)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The bitmap-scan refresh and the naive full-window walk agree on
    /// every observable: row contents, device counters, simulated time,
    /// and the exact TRR detections (per REF) the engine produced.
    #[test]
    fn event_driven_refresh_matches_naive_reference(
        seed in 0u64..300,
        ops in prop::collection::vec(op_strategy(512), 1..40),
    ) {
        let (fast_rows, fast_log, fast_stats, fast_now) = run_trace(seed, &ops, true);
        let (ref_rows, ref_log, ref_stats, ref_now) = run_trace(seed, &ops, false);
        prop_assert_eq!(fast_rows, ref_rows, "row data diverged");
        prop_assert_eq!(fast_log, ref_log, "TRR detections diverged");
        prop_assert_eq!(fast_stats, ref_stats, "device stats diverged");
        prop_assert_eq!(fast_now, ref_now, "sim clocks diverged");
    }
}

/// A full refresh period restores the same number of rows (every touched
/// row — including rows touched only through neighbor disturbance —
/// exactly once) under both implementations.
#[test]
fn full_period_restore_counts_match() {
    let count = |event_driven: bool| {
        let mut m = Module::new(ModuleConfig::small_test(), 5);
        let bank = Bank::new(0);
        for r in [0u32, 17, 300, 511] {
            m.write_row(bank, RowAddr::new(r), DataPattern::Ones).unwrap();
        }
        let before = m.stats().regular_row_refreshes;
        for _ in 0..m.config().refresh.period_refs {
            if event_driven {
                m.refresh();
            } else {
                m.refresh_naive();
            }
        }
        m.stats().regular_row_refreshes - before
    };
    let fast = count(true);
    let naive = count(false);
    assert_eq!(fast, naive);
    assert!(fast >= 4, "at least the four written rows are covered, got {fast}");
}
