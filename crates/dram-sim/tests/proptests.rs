//! Property tests on the device's core invariants: mapping bijectivity,
//! batched-hammer equivalence, refresh coverage, and flip monotonicity.

use dram_sim::{Bank, DataPattern, Module, ModuleConfig, PhysRow, RowAddr, RowMapping, Topology};
use proptest::prelude::*;

fn mapping_strategy() -> impl Strategy<Value = RowMapping> {
    prop_oneof![
        Just(RowMapping::Identity),
        (1u8..5).prop_map(RowMapping::block_mirror),
        (2u8..6).prop_map(|ctrl| {
            // A mask strictly below the control bit.
            RowMapping::msb_xor(ctrl, (1 << (ctrl - 1)) | 1)
        }),
        (1u8..4, prop::collection::vec((0u32..512, 512u32..1024), 0..4))
            .prop_map(|(bits, swaps)| RowMapping::block_mirror(bits).with_swaps(swaps)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every supported mapping is a bijection over the bank, and
    /// `to_logical` inverts `to_phys`.
    #[test]
    fn mappings_are_bijective(mapping in mapping_strategy()) {
        let rows = 1024u32;
        let mut seen = vec![false; rows as usize];
        for l in 0..rows {
            let p = mapping.to_phys(RowAddr::new(l));
            prop_assert!(p.index() < rows);
            prop_assert!(!seen[p.index() as usize], "collision at {}", p);
            seen[p.index() as usize] = true;
            prop_assert_eq!(mapping.to_logical(p), RowAddr::new(l));
        }
    }

    /// A batched hammer produces exactly the same victim flips as the
    /// equivalent sequence of single hammers.
    #[test]
    fn batched_hammer_equals_singles(
        seed in 0u64..500,
        count in 1u64..4_000,
        victim in 100u32..900,
    ) {
        let run = |batched: bool| {
            let mut m = Module::new(ModuleConfig::small_test(), seed);
            let bank = Bank::new(0);
            let v = RowAddr::new(victim);
            m.write_row(bank, v, DataPattern::Ones).unwrap();
            let aggressor = v.plus(1);
            if batched {
                m.hammer(bank, aggressor, count).unwrap();
            } else {
                for _ in 0..count {
                    m.hammer(bank, aggressor, 1).unwrap();
                }
            }
            m.read_row(bank, v).unwrap().flipped_bits().to_vec()
        };
        prop_assert_eq!(run(true), run(false));
    }

    /// More hammers never yield fewer flips (monotonicity of the flip
    /// ladder), all else equal.
    #[test]
    fn flips_are_monotonic_in_hammers(
        seed in 0u64..200,
        base in 500u64..3_000,
        extra in 0u64..8_000,
        victim in 100u32..900,
    ) {
        let flips = |pairs: u64| {
            let mut m = Module::new(ModuleConfig::small_test(), seed);
            let bank = Bank::new(0);
            let v = RowAddr::new(victim);
            m.write_row(bank, v, DataPattern::Ones).unwrap();
            m.hammer_pair(bank, v.minus(1), v.plus(1), pairs).unwrap();
            m.read_row(bank, v).unwrap().flip_count()
        };
        prop_assert!(flips(base + extra) >= flips(base));
    }

    /// Regular refresh restores every touched row exactly once per
    /// period, for any refresh-period configuration.
    #[test]
    fn refresh_covers_each_row_once_per_period(period in 16u32..2_000) {
        let mut config = ModuleConfig::small_test();
        config.refresh.period_refs = period;
        let mut m = Module::new(config, 3);
        let bank = Bank::new(0);
        for r in 0..64 {
            m.write_row(bank, RowAddr::new(r), DataPattern::Ones).unwrap();
        }
        let before = m.stats().regular_row_refreshes;
        for _ in 0..period {
            m.refresh();
        }
        // 64 written rows plus the two disturbance-tracked neighbours of
        // the last written row (rows 64 and 65) carry state.
        prop_assert_eq!(m.stats().regular_row_refreshes - before, 66);
    }

    /// Paired topology never lets disturbance cross a pair boundary.
    #[test]
    fn paired_topology_isolation(seed in 0u64..100, aggressor in 100u32..900) {
        let mut config = ModuleConfig::small_test();
        config.topology = Topology::Paired;
        let mut m = Module::new(config, seed);
        let bank = Bank::new(0);
        let pair = RowAddr::new(aggressor ^ 1);
        let outside_a = RowAddr::new(aggressor.wrapping_sub(2).max(2));
        let outside_b = RowAddr::new(aggressor + 2);
        for &row in &[pair, outside_a, outside_b] {
            m.write_row(bank, row, DataPattern::Ones).unwrap();
        }
        m.hammer(bank, RowAddr::new(aggressor), 50_000).unwrap();
        // Only the pair row may flip; rows outside the pair stay clean
        // (their decay horizon is far beyond the hammering time).
        prop_assert!(m.read_row(bank, outside_a).unwrap().is_clean());
        prop_assert!(m.read_row(bank, outside_b).unwrap().is_clean());
    }

    /// Readout dataword histograms always account for every flip.
    #[test]
    fn dataword_histogram_is_complete(seed in 0u64..200, pairs in 2_000u64..20_000) {
        let mut m = Module::new(ModuleConfig::small_test(), seed);
        let bank = Bank::new(0);
        let v = RowAddr::new(500);
        m.write_row(bank, v, DataPattern::Ones).unwrap();
        m.hammer_pair(bank, v.minus(1), v.plus(1), pairs).unwrap();
        let readout = m.read_row(bank, v).unwrap();
        let from_hist: usize =
            readout.flips_per_dataword().iter().map(|&(_, n)| n as usize).sum();
        prop_assert_eq!(from_hist, readout.flip_count());
    }

    /// Physical mapping changes never alter *how many* cells flip for a
    /// fixed physical victim and hammer count — only addressing changes.
    #[test]
    fn scrambling_is_transparent_to_physics(
        mapping in mapping_strategy(),
        pairs in 3_000u64..10_000,
    ) {
        let flips_with = |mapping: RowMapping| {
            let mut config = ModuleConfig::small_test();
            config.mapping = mapping;
            let mut m = Module::new(config, 77);
            let bank = Bank::new(0);
            let victim_phys = PhysRow::new(500);
            let victim = m.logical_of(victim_phys);
            let up = m.logical_of(PhysRow::new(499));
            let down = m.logical_of(PhysRow::new(501));
            m.write_row(bank, victim, DataPattern::Ones).unwrap();
            m.hammer_pair(bank, up, down, pairs).unwrap();
            m.read_row(bank, victim).unwrap().flip_count()
        };
        prop_assert_eq!(flips_with(mapping), flips_with(RowMapping::Identity));
    }
}
