//! Instrumentation overhead smoke test: the Module command path with a
//! shared (detail-on) registry attached must stay within a few percent
//! of the default detail-off configuration.
//!
//! Wall-clock assertions are inherently noisy, so the test is built to
//! be flake-resistant rather than precise: both variants run several
//! interleaved trials, each side keeps its *minimum* (the least
//! scheduler-disturbed run), and the bound allows a small absolute
//! epsilon on top of the relative budget so sub-millisecond jitter on
//! fast machines cannot fail it.

use std::time::{Duration, Instant};

use dram_sim::{Bank, DataPattern, Module, ModuleConfig, RowAddr};

/// A command mix heavy on the per-command path: unbatched hammers (one
/// ACT each), explicit activate/read/precharge cycles, and periodic
/// refreshes.
fn run_workload(module: &mut Module) {
    let bank = Bank::new(0);
    module.write_row(bank, RowAddr::new(500), DataPattern::Ones).expect("in range");
    for i in 0..6_000u32 {
        let row = RowAddr::new(400 + (i % 128));
        module.hammer(bank, row, 1).expect("in range");
        if i % 64 == 0 {
            module.refresh();
        }
    }
    let _ = module.read_row(bank, RowAddr::new(500)).expect("in range");
}

fn timed(detail: bool) -> Duration {
    let mut module = Module::new(ModuleConfig::small_test(), 7);
    if detail {
        module.attach_registry(obs::MetricsRegistry::shared());
    }
    let start = Instant::now();
    run_workload(&mut module);
    start.elapsed()
}

#[test]
fn metrics_detail_overhead_is_small() {
    // Warm up code paths and caches once per variant.
    let _ = timed(false);
    let _ = timed(true);

    const TRIALS: usize = 7;
    let mut best_off = Duration::MAX;
    let mut best_on = Duration::MAX;
    for _ in 0..TRIALS {
        best_off = best_off.min(timed(false));
        best_on = best_on.min(timed(true));
    }

    // 5% relative budget plus 10ms absolute epsilon for timer jitter.
    let budget = best_off + best_off / 20 + Duration::from_millis(10);
    assert!(
        best_on <= budget,
        "detail-on command path too slow: {best_on:?} vs detail-off {best_off:?} (budget {budget:?})"
    );
}
