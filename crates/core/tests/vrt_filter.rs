//! The VRT-filtering property (§4.1): a row group returned by Row Scout
//! must never contain a VRT-afflicted row, because a cell that toggles
//! its retention time mid-experiment silently corrupts the retention
//! side channel every later stage depends on.
//!
//! With `vrt_probe` enabled, the scout tracks bit-level failure
//! signatures across validation checks and climbs a ladder of longer
//! decay horizons, so even VRT cells whose short retention hides above
//! the profiled bucket get caught toggling. The check runs over several
//! fixed module seeds (deterministic replays, not sampled randomness),
//! verifying the filter against ground truth the scout itself never
//! sees: the simulator's per-row physics.

use dram_sim::{Bank, Module, ModuleConfig};
use softmc::MemoryController;
use utrr_core::{RowGroupLayout, RowScout, ScoutConfig};

const BANK: Bank = Bank::new(0);
const SEEDS: [u64; 5] = [3, 11, 29, 61, 101];

#[test]
fn vrt_probe_never_returns_a_vrt_row() {
    let mut groups_checked = 0usize;
    for seed in SEEDS {
        let module = Module::new(ModuleConfig::small_test(), seed);
        let mut mc = MemoryController::new(module);
        let mut cfg = ScoutConfig::new(BANK, 1_024, RowGroupLayout::single_aggressor_pair(), 4);
        cfg.vrt_probe = true;
        let report = RowScout::new(cfg).scan_report(&mut mc).expect("scan runs");
        assert!(report.is_complete(), "seed {seed}: probe must not exhaust the bank");
        for group in &report.groups {
            groups_checked += 1;
            for profiled in &group.rows {
                let view = mc.module_mut().inspect_row(BANK, profiled.row);
                assert!(
                    !view.has_vrt(),
                    "seed {seed}: scout returned VRT row {} (phys {})",
                    profiled.row,
                    profiled.phys,
                );
            }
        }
    }
    assert!(groups_checked >= SEEDS.len(), "the property must cover real groups");
}

#[test]
fn plain_scan_and_probe_scan_agree_on_clean_banks() {
    // On a bank where the plain scan already returns VRT-free groups,
    // enabling the probe must not change which groups are found — the
    // extra traffic only rejects rows, never reorders the search.
    let seed = 11;
    let plain = {
        let mut mc = MemoryController::new(Module::new(ModuleConfig::small_test(), seed));
        let cfg = ScoutConfig::new(BANK, 1_024, RowGroupLayout::single_aggressor_pair(), 3);
        RowScout::new(cfg).scan(&mut mc).expect("plain scan finds groups")
    };
    let probed = {
        let mut mc = MemoryController::new(Module::new(ModuleConfig::small_test(), seed));
        let mut cfg = ScoutConfig::new(BANK, 1_024, RowGroupLayout::single_aggressor_pair(), 3);
        cfg.vrt_probe = true;
        RowScout::new(cfg).scan(&mut mc).expect("probed scan finds groups")
    };
    let plain_vrt_free = plain.iter().all(|g| {
        let mut mc = MemoryController::new(Module::new(ModuleConfig::small_test(), seed));
        g.rows.iter().all(|p| !mc.module_mut().inspect_row(BANK, p.row).has_vrt())
    });
    if plain_vrt_free {
        assert_eq!(probed, plain, "probe must not disturb an already-clean scan");
    }
}
