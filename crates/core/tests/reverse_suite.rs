//! End-to-end reverse-engineering tests: U-TRR, seeing only the DDR
//! command interface, must re-discover the parameters of every planted
//! ground-truth TRR engine (the §6 experiments).

use dram_sim::{Bank, MitigationEngine, Module, ModuleConfig, NeighborSpan};
use softmc::MemoryController;
use trr::{CounterTrr, CounterTrrConfig, SamplerTrr, WindowTrr};
use utrr_core::reverse::{self, ReverseOptions};
use utrr_core::schedule::learn_group_schedules;
use utrr_core::{ProfiledRowGroup, RowGroupLayout, RowScout, ScoutConfig, TrrAnalyzer};

const BANK: Bank = Bank::new(0);

fn controller(engine: Box<dyn MitigationEngine>, seed: u64) -> MemoryController {
    MemoryController::new(Module::with_engine(ModuleConfig::small_test(), engine, seed))
}

fn scout(mc: &mut MemoryController, layout: &str, count: usize) -> Vec<ProfiledRowGroup> {
    let layout: RowGroupLayout = layout.parse().unwrap();
    RowScout::new(ScoutConfig::new(BANK, 1024, layout, count)).scan(mc).unwrap()
}

fn analyzer_for(mc: &mut MemoryController, groups: &[ProfiledRowGroup]) -> TrrAnalyzer {
    analyzer_for_bank(mc, BANK, groups)
}

fn analyzer_for_bank(
    mc: &mut MemoryController,
    bank: Bank,
    groups: &[ProfiledRowGroup],
) -> TrrAnalyzer {
    let mut analyzer = TrrAnalyzer::new();
    for g in groups {
        learn_group_schedules(mc, bank, g, &mut analyzer).unwrap();
    }
    analyzer
}

fn opts() -> ReverseOptions {
    ReverseOptions {
        trigger_hammers: 400,
        ratio_iterations: 72,
        long_iterations: 200,
        phase_act_budget: None,
    }
}

#[test]
fn ratio_of_counter_trr_is_nine() {
    // Observation A1. Use several groups so both TREF_a and TREF_b land
    // on experiment aggressors.
    let mut mc = controller(Box::new(CounterTrr::a_trr1(2)), 101);
    let groups = scout(&mut mc, "RAR", 8);
    let analyzer = analyzer_for(&mut mc, &groups);
    let ratio =
        reverse::discover_trr_ref_ratio(&mut mc, &analyzer, BANK, &groups, &opts()).unwrap();
    assert_eq!(ratio, Some(9));
}

#[test]
fn ratio_of_sampler_trr_is_four() {
    // Observation B1 (B_TRR1).
    let mut mc = controller(Box::new(SamplerTrr::b_trr1(2, 7)), 103);
    let groups = scout(&mut mc, "RAR", 4);
    let mut o = opts();
    o.trigger_hammers = 2_000; // ensure sampling (Obs B3)
    let analyzer = analyzer_for(&mut mc, &groups);
    let ratio = reverse::discover_trr_ref_ratio(&mut mc, &analyzer, BANK, &groups, &o).unwrap();
    assert_eq!(ratio, Some(4));
}

#[test]
fn ratio_of_window_trr_is_nine() {
    // Observation C1 (C_TRR2).
    let mut mc = controller(Box::new(WindowTrr::c_trr2(2, 7)), 107);
    let groups = scout(&mut mc, "RAR", 4);
    let analyzer = analyzer_for(&mut mc, &groups);
    let ratio =
        reverse::discover_trr_ref_ratio(&mut mc, &analyzer, BANK, &groups, &opts()).unwrap();
    assert_eq!(ratio, Some(9));
}

#[test]
fn neighbors_refreshed_matches_span() {
    // Observations A2 and B2: A_TRR1 refreshes ±1 and ±2 (4 rows),
    // A_TRR2 and B_TRR1 refresh ±1 (2 rows).
    for (engine, expected) in [
        (Box::new(CounterTrr::a_trr1(2)) as Box<dyn MitigationEngine>, 4u32),
        (Box::new(CounterTrr::a_trr2(2)), 2),
    ] {
        let mut mc = controller(engine, 109);
        let probe = scout(&mut mc, "RRARR", 1).remove(0);
        let analyzer = analyzer_for(&mut mc, std::slice::from_ref(&probe));
        let n = reverse::discover_neighbors_refreshed(&mut mc, &analyzer, BANK, &probe, &opts())
            .unwrap();
        assert_eq!(n, expected);
    }
    let mut mc = controller(Box::new(SamplerTrr::b_trr1(2, 9)), 109);
    let probe = scout(&mut mc, "RRARR", 1).remove(0);
    let mut o = opts();
    o.trigger_hammers = 2_000;
    let analyzer = analyzer_for(&mut mc, std::slice::from_ref(&probe));
    let n = reverse::discover_neighbors_refreshed(&mut mc, &analyzer, BANK, &probe, &o).unwrap();
    assert_eq!(n, 2);
}

#[test]
fn counter_capacity_is_discovered() {
    // Observation A4, scaled to a 6-entry table so the sweep stays fast;
    // the full 16-entry sweep runs in the Table-1 repro binary.
    let config = CounterTrrConfig { table_size: 6, ..CounterTrrConfig::a_trr1() };
    let engine = CounterTrr::new(config, "A_TRR1_small", 2);
    let mut mc = controller(Box::new(engine), 113);
    let groups = scout(&mut mc, "RAR", 8);
    let analyzer = analyzer_for(&mut mc, &groups);
    let capacity =
        reverse::discover_counter_capacity(&mut mc, &analyzer, BANK, &groups, 9, &opts()).unwrap();
    assert_eq!(capacity, 6);
}

#[test]
fn low_count_first_row_is_evicted() {
    // Observation A5: with 5 groups against a 4-entry table, the
    // first-hammered, lowest-count aggressor is never detected.
    let config = CounterTrrConfig { table_size: 4, ..CounterTrrConfig::a_trr1() };
    let engine = CounterTrr::new(config, "A_TRR1_small", 2);
    let mut mc = controller(Box::new(engine), 127);
    let groups = scout(&mut mc, "RAR", 5);
    let analyzer = analyzer_for(&mut mc, &groups);
    let evicted =
        reverse::discover_eviction_of_low_count_row(&mut mc, &analyzer, BANK, &groups, &opts())
            .unwrap();
    assert!(evicted);
}

#[test]
fn counter_reset_lets_both_rows_be_detected() {
    // Observation A6: with unequal hammer counts, per-detection counter
    // resets let the lower-count aggressor win periodically.
    let mut mc = controller(Box::new(CounterTrr::a_trr1(2)), 131);
    let groups = scout(&mut mc, "RAR", 2);
    let pair = [groups[0].clone(), groups[1].clone()];
    let analyzer = analyzer_for(&mut mc, &groups);
    let (low, high) =
        reverse::discover_counter_reset(&mut mc, &analyzer, BANK, &pair, &opts()).unwrap();
    assert!(high > 0, "the higher-count aggressor is detected");
    assert!(low > 0, "counter resets let the lower-count aggressor be detected too");
}

#[test]
fn counter_entries_persist() {
    // Observation A7: after hammering once, TREF_b keeps re-detecting
    // the stale entry indefinitely.
    let mut mc = controller(Box::new(CounterTrr::a_trr1(2)), 137);
    let group = scout(&mut mc, "RAR", 1).remove(0);
    let mut o = opts();
    o.long_iterations = 400; // TREF_b revisits an entry every ≤ 16×18 REFs
    let analyzer = analyzer_for(&mut mc, std::slice::from_ref(&group));
    let tail_hits =
        reverse::discover_table_persistence(&mut mc, &analyzer, BANK, &group, &o).unwrap();
    assert!(tail_hits > 0, "stale entries must keep being detected");
}

#[test]
fn sampler_detects_last_hammered_row() {
    // Observation B3: the most recently hammered row wins even with
    // fewer hammers.
    let mut mc = controller(Box::new(SamplerTrr::b_trr1(2, 11)), 139);
    let groups = scout(&mut mc, "RAR", 2);
    let pair = [groups[0].clone(), groups[1].clone()];
    let mut o = opts();
    o.trigger_hammers = 5_000;
    let analyzer = analyzer_for(&mut mc, &groups);
    let bias = reverse::discover_last_hammered_bias(&mut mc, &analyzer, BANK, &pair, 3_000, 4, &o)
        .unwrap();
    assert!(bias > 0.9, "sampler must detect the last hammered row, bias {bias}");
}

#[test]
fn counter_trr_detects_highest_count_not_last() {
    // The same discriminator applied to a counter engine: the
    // higher-count (first) aggressor dominates.
    let mut mc = controller(Box::new(CounterTrr::a_trr1(2)), 149);
    let groups = scout(&mut mc, "RAR", 2);
    let pair = [groups[0].clone(), groups[1].clone()];
    let mut o = opts();
    o.trigger_hammers = 5_000;
    let analyzer = analyzer_for(&mut mc, &groups);
    let bias = reverse::discover_last_hammered_bias(&mut mc, &analyzer, BANK, &pair, 3_000, 9, &o)
        .unwrap();
    assert!(bias < 0.5, "counter TRR must not favour the last row, bias {bias}");
}

#[test]
fn shared_sampler_is_detected_across_banks() {
    // Observation B4: B_TRR1's single register is shared chip-wide.
    let mut mc = controller(Box::new(SamplerTrr::b_trr1(2, 13)), 151);
    let groups0 = scout(&mut mc, "RAR", 1);
    let mut scout_cfg =
        ScoutConfig::new(Bank::new(1), 1024, RowGroupLayout::single_aggressor_pair(), 1);
    scout_cfg.consistency_checks = 50;
    let groups1 = RowScout::new(scout_cfg).scan(&mut mc).unwrap();
    let pair = [groups0[0].clone(), groups1[0].clone()];
    let mut o = opts();
    o.trigger_hammers = 3_000;
    let mut analyzer = analyzer_for(&mut mc, &groups0);
    learn_group_schedules(&mut mc, Bank::new(1), &groups1[0], &mut analyzer).unwrap();
    let (first, second) =
        reverse::discover_cross_bank_sharing(&mut mc, &analyzer, [BANK, Bank::new(1)], &pair, &o)
            .unwrap();
    assert_eq!(first, 0, "the bank-0 sample must be overwritten by bank 1's");
    assert!(second > 0, "bank 1's victims are refreshed");
}

#[test]
fn per_bank_sampler_serves_both_banks() {
    // Observation B4, B_TRR3 exception: per-bank registers.
    let mut mc = controller(Box::new(SamplerTrr::b_trr3(2, 13)), 157);
    let groups0 = scout(&mut mc, "RAR", 1);
    let mut scout_cfg =
        ScoutConfig::new(Bank::new(1), 1024, RowGroupLayout::single_aggressor_pair(), 1);
    scout_cfg.consistency_checks = 50;
    let groups1 = RowScout::new(scout_cfg).scan(&mut mc).unwrap();
    let pair = [groups0[0].clone(), groups1[0].clone()];
    let mut o = opts();
    o.trigger_hammers = 3_000;
    let mut analyzer = analyzer_for(&mut mc, &groups0);
    learn_group_schedules(&mut mc, Bank::new(1), &groups1[0], &mut analyzer).unwrap();
    let (first, second) =
        reverse::discover_cross_bank_sharing(&mut mc, &analyzer, [BANK, Bank::new(1)], &pair, &o)
            .unwrap();
    assert!(first > 0, "bank 0 keeps its own sample");
    assert!(second > 0, "bank 1 keeps its own sample");
}

#[test]
fn act_window_is_bracketed() {
    // Observation C2, adapted: under the strongly front-loaded capture
    // bias the §7.2 attack arithmetic implies, positional probing
    // recovers the *effective capture horizon* (the paper's own "at
    // least 252 dummy hammers" quantity), not the architectural 2K cap
    // — see DESIGN.md. The horizon must land between a few dozen and a
    // few thousand activations.
    let mut mc = controller(Box::new(WindowTrr::c_trr2(2, 17)), 163);
    let group = scout(&mut mc, "RAR", 1).remove(0);
    let analyzer = analyzer_for(&mut mc, std::slice::from_ref(&group));
    let window = reverse::discover_act_window(
        &mut mc,
        &analyzer,
        BANK,
        &group,
        &[64, 256, 1_024, 4_096],
        &opts(),
    )
    .unwrap();
    let horizon = window.expect("a horizon must be found");
    assert!((256..=1_024).contains(&horizon), "effective capture horizon out of range: {horizon}");
}

#[test]
fn classify_identifies_the_sampler() {
    let mut mc = controller(Box::new(SamplerTrr::b_trr1(2, 19)), 167);
    let groups = scout(&mut mc, "RAR", 4);
    let probe = scout(&mut mc, "RRARR", 1).remove(0);
    let mut o = opts();
    o.trigger_hammers = 2_500;
    let profile = reverse::classify(&mut mc, BANK, &groups, &probe, None, &o).unwrap();
    assert_eq!(profile.trr_ref_ratio, 4);
    assert_eq!(profile.neighbors_refreshed, 2);
    assert!(matches!(profile.detection, reverse::DetectionKind::Sampler { .. }));
}

#[test]
fn classify_identifies_the_window_tracker() {
    let mut mc = controller(Box::new(WindowTrr::c_trr2(2, 23)), 173);
    let groups = scout(&mut mc, "RAR", 4);
    let probe = scout(&mut mc, "RRARR", 1).remove(0);
    let profile = reverse::classify(&mut mc, BANK, &groups, &probe, None, &opts()).unwrap();
    assert_eq!(profile.trr_ref_ratio, 9);
    assert_eq!(profile.neighbors_refreshed, 2);
    assert!(
        matches!(profile.detection, reverse::DetectionKind::Window { max_window } if max_window <= 8_192)
    );
}

#[test]
fn classify_identifies_the_counter_table() {
    let config = CounterTrrConfig { table_size: 5, ..CounterTrrConfig::a_trr1() };
    let engine = CounterTrr::new(config, "A_TRR1_small", 2);
    let mut mc = controller(Box::new(engine), 179);
    let groups = scout(&mut mc, "RAR", 7);
    let probe = scout(&mut mc, "RRARR", 1).remove(0);
    let profile = reverse::classify(&mut mc, BANK, &groups, &probe, None, &opts()).unwrap();
    assert_eq!(profile.trr_ref_ratio, 9);
    assert_eq!(profile.neighbors_refreshed, 4);
    match profile.detection {
        reverse::DetectionKind::Counter { capacity, counters_reset, persistent_entries } => {
            assert_eq!(capacity, 5);
            assert!(counters_reset);
            assert!(persistent_entries);
        }
        other => panic!("expected a counter table, got {other:?}"),
    }
    assert!(profile.per_bank);
}

/// The span enum is part of the ground truth we compare against.
#[test]
fn span_sanity() {
    assert_eq!(NeighborSpan::Two.victims(), 4);
}
