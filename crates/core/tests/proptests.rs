//! Property tests on the U-TRR support types: layout parsing and
//! refresh-schedule arithmetic.

use proptest::prelude::*;
use utrr_core::{RefreshSchedule, RowGroupLayout};

fn layout_string() -> impl Strategy<Value = String> {
    prop::collection::vec(prop_oneof![Just('R'), Just('A'), Just('-')], 1..24)
        .prop_filter("needs a profiled row", |chars| chars.contains(&'R'))
        .prop_map(|chars| chars.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Layout parsing and display round-trip for every valid string.
    #[test]
    fn layout_roundtrip(s in layout_string()) {
        let layout: RowGroupLayout = s.parse().expect("valid layout");
        prop_assert_eq!(layout.to_string(), s);
        prop_assert_eq!(layout.span() as usize, layout.to_string().len());
        // Offsets are sorted, unique, disjoint, and in range.
        let all: Vec<u32> =
            layout.profiled().iter().chain(layout.aggressors()).copied().collect();
        for &o in &all {
            prop_assert!(o < layout.span());
        }
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), all.len());
    }

    /// `covers` agrees with a brute-force scan of the schedule.
    #[test]
    fn schedule_covers_matches_bruteforce(
        period in 1u64..500,
        anchor_raw in 0u64..500,
        from in 0u64..2_000,
        len in 0u64..600,
    ) {
        let anchor = anchor_raw % period;
        let s = RefreshSchedule { period, anchor };
        let to = from + len;
        let brute = (from + 1..=to).any(|k| k % period == anchor);
        prop_assert_eq!(s.covers(from, to), brute);
    }

    /// `next_after` returns the first scheduled index strictly after the
    /// argument, and it is always covered.
    #[test]
    fn schedule_next_after_is_exact(
        period in 1u64..500,
        anchor_raw in 0u64..500,
        after in 0u64..5_000,
    ) {
        let anchor = anchor_raw % period;
        let s = RefreshSchedule { period, anchor };
        let next = s.next_after(after);
        prop_assert!(next > after);
        prop_assert_eq!(next % period, anchor);
        prop_assert!(next - after <= period);
        prop_assert!(s.covers(after, next));
        prop_assert!(!s.covers(after, next - 1));
    }
}
