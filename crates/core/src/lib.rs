//! U-TRR: the paper's contribution — a methodology for reverse
//! engineering in-DRAM RowHammer protection (Target Row Refresh)
//! through the data-retention side channel.
//!
//! The crate mirrors the paper's architecture (Fig. 3):
//!
//! * [`RowScout`] (§4) profiles retention times and finds row groups in
//!   prescribed physical layouts, filtering out VRT-afflicted rows;
//! * [`TrrAnalyzer`] (§5) runs hammer-and-refresh experiments over the
//!   profiled rows and classifies every victim as TRR-refreshed,
//!   regularly refreshed, or not refreshed — using a learned
//!   [`RefreshSchedule`] to subtract the periodic regular refresh;
//! * [`mapping_re`] (§5.3) reverse engineers the logical→physical row
//!   mapping and verifies aggressor/victim adjacency;
//! * [`reverse`] (§6) packages the paper's experiments — TRR-to-REF
//!   ratio, neighbour span, counter capacity, eviction, counter reset,
//!   persistence, sampling bias, cross-bank sharing, activation window —
//!   and assembles them into a [`TrrProfile`].
//!
//! Everything here observes the module exclusively through the DDR
//! command interface provided by [`softmc::MemoryController`]; the
//! ground-truth TRR engines planted by the `trr` crate stay invisible,
//! which is what makes the reproduction meaningful.
//!
//! # Example
//!
//! ```no_run
//! use dram_sim::{Bank, Module, ModuleConfig};
//! use softmc::MemoryController;
//! use utrr_core::{RowScout, ScoutConfig, RowGroupLayout, reverse};
//!
//! # fn main() -> Result<(), utrr_core::UtrrError> {
//! let mut mc = MemoryController::new(Module::new(ModuleConfig::small_test(), 1));
//! let bank = Bank::new(0);
//! let groups = RowScout::new(ScoutConfig::new(
//!     bank, 1024, RowGroupLayout::single_aggressor_pair(), 4,
//! ))
//! .scan(&mut mc)?;
//! let opts = reverse::ReverseOptions::default();
//! let analyzer = utrr_core::TrrAnalyzer::new();
//! let ratio = reverse::discover_trr_ref_ratio(&mut mc, &analyzer, bank, &groups, &opts)?;
//! println!("TRR-capable REF every {ratio:?} REFs");
//! # Ok(())
//! # }
//! ```

pub mod analyzer;
pub mod arena;
pub mod characterize;
pub mod error;
pub mod layout;
pub mod mapping_re;
pub mod recovery;
pub mod reverse;
pub mod robust;
pub mod rowscout;
pub mod schedule;

pub use analyzer::{
    flush_tracker, Experiment, ExperimentOutcome, TrrAnalyzer, VictimOutcome, CTR_NOT_REFRESHED,
    CTR_REGULAR_REFRESH, CTR_TRR_REFRESH,
};
pub use arena::{ArenaStats, ScratchArena};
pub use characterize::{compare_hammer_modes, data_pattern_sensitivity, measure_hc_first};
pub use error::UtrrError;
pub use layout::RowGroupLayout;
pub use recovery::{DriftEstimator, PhaseBudget, VerdictTier};
pub use reverse::{DetectionKind, ReverseOptions, TrrProfile};
pub use robust::{read_row_voted, write_row_checked};
pub use rowscout::{
    ProfiledRow, ProfiledRowGroup, QuarantineReason, RowDiagnostics, RowScout, ScoutConfig,
    ScoutReport,
};
pub use schedule::{learn_group_schedules, learn_refresh_schedule, RefreshSchedule};
