//! Learning the regular-refresh schedule of a row (§6.1.3 of the paper).
//!
//! TRR Analyzer must distinguish TRR-induced refreshes from regular
//! refreshes. The paper's lever: "regular refreshes happen periodically
//! (a row is refreshed by a regular refresh at a fixed REF command
//! interval)". This module *measures* that schedule for a profiled row —
//! with which it also reproduces Observation A8 (vendor A refreshes each
//! row once every 3758 REFs instead of the expected ~8K).
//!
//! The learner uses the retention side channel itself: write the row,
//! issue a burst of `REF` commands, decay past the retention time, read.
//! A clean read means one of the burst's `REF`s restored the row. A
//! coarse pass (bursts of 64) brackets two consecutive restore events;
//! a fine pass (single `REF` per trial) pins their exact indices, whose
//! difference is the per-row refresh period.

use softmc::MemoryController;

use crate::error::UtrrError;
use crate::robust;
use crate::rowscout::ProfiledRowGroup;

/// Counter: schedule-learning attempts that were retried (fault-aware
/// mode only).
pub const CTR_SCHEDULE_RETRIES: &str = "utrr.schedule.retries";

/// The learned schedule: the probe row is restored by the regular
/// refresh machinery at every global `REF` index `k` with
/// `k ≡ anchor (mod period)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshSchedule {
    /// `REF` commands between two regular refreshes of the row.
    pub period: u64,
    /// Residue of the refreshing `REF` indices.
    pub anchor: u64,
}

impl RefreshSchedule {
    /// Whether any scheduled regular refresh falls in the half-open
    /// `REF`-index interval `(from, to]`.
    pub fn covers(&self, from: u64, to: u64) -> bool {
        if to <= from {
            return false;
        }
        let rem = (from + 1) % self.period;
        let delta = (self.anchor + self.period - rem) % self.period;
        from + 1 + delta <= to
    }

    /// The first scheduled refresh index strictly greater than `after`.
    pub fn next_after(&self, after: u64) -> u64 {
        let rem = (after + 1) % self.period;
        let delta = (self.anchor + self.period - rem) % self.period;
        after + 1 + delta
    }
}

/// Learns the regular-refresh schedule of every profiled row of `group`
/// and registers the schedules with `analyzer`.
///
/// # Errors
///
/// Propagates [`learn_row_schedule`] errors.
pub fn learn_group_schedules(
    mc: &mut MemoryController,
    bank: dram_sim::Bank,
    group: &ProfiledRowGroup,
    analyzer: &mut crate::analyzer::TrrAnalyzer,
) -> Result<(), UtrrError> {
    for profiled in &group.rows {
        if analyzer.schedule(profiled.row).is_none() {
            let schedule =
                learn_row_schedule(mc, bank, profiled.row, group.retention, &group.pattern)?;
            analyzer.add_schedule(profiled.row, schedule);
        }
    }
    Ok(())
}

/// Learns the regular-refresh schedule of the first profiled row of
/// `group`.
///
/// # Errors
///
/// [`UtrrError::ScheduleNotFound`] if no periodic restore is observed
/// within a generous search budget; device errors are propagated.
pub fn learn_refresh_schedule(
    mc: &mut MemoryController,
    group: &ProfiledRowGroup,
    bank: dram_sim::Bank,
) -> Result<RefreshSchedule, UtrrError> {
    learn_row_schedule(mc, bank, group.rows[0].row, group.retention, &group.pattern)
}

/// Learns the regular-refresh schedule of one retention-profiled row.
///
/// Under fault injection the whole measurement is retried a bounded
/// number of times, and every learned schedule must pass a predictive
/// verification (its covers/doesn't-cover prediction has to match a
/// handful of fresh trials) before it is accepted — a schedule learned
/// from a fault-corrupted trial would silently misclassify TRR
/// refreshes for the rest of the run. Fault-free, the measurement runs
/// exactly once with no verification, as before.
///
/// # Errors
///
/// [`UtrrError::ScheduleNotFound`] if no periodic restore is observed
/// (or verification keeps failing) within the retry budget; device
/// errors are propagated.
pub fn learn_row_schedule(
    mc: &mut MemoryController,
    bank: dram_sim::Bank,
    probe: dram_sim::RowAddr,
    retention: dram_sim::Nanos,
    pattern: &dram_sim::DataPattern,
) -> Result<RefreshSchedule, UtrrError> {
    // The recovery ladder escalates the retry budget: hostile fault
    // rates make three attempts per row a near-certain loss over the
    // ~40 schedule learns of a classification, while each extra
    // attempt is cheap and independently verified. Mild keeps the
    // original budget, fault-free runs measure exactly once.
    let ladder = crate::recovery::ladder_active(mc);
    let attempts = if ladder {
        10
    } else if mc.faults_enabled() {
        3
    } else {
        1
    };
    let registry = std::sync::Arc::clone(mc.registry());
    let mut last = UtrrError::ScheduleNotFound;
    for attempt in 0..attempts {
        if attempt > 0 {
            registry.counter(CTR_SCHEDULE_RETRIES).inc();
            registry.trace(
                obs::TraceKind::Recovery,
                mc.now().as_ns(),
                u32::from(bank.index()),
                Some(mc.module().phys_of(probe).index()),
                &[("attempt", attempt as u64)],
                "schedule_retry",
            );
        }
        // Trial timing. The scout's retention bins only bracket the
        // row's true retention R in (0.55 T, T], and hostile drift
        // swings R by another ±8% — no timing derived from the bin
        // alone can separate restored from unrestored decay across
        // that whole band. The ladder therefore re-profiles the row's
        // *current* retention (a DriftEstimator escalation stage) on
        // every attempt, so the window tracks the live drift phase:
        // restored rows decay 0.58 R̂ (< 0.92 R̂ even when the estimate
        // was taken at peak drift), unrestored rows decay 1.2 R̂
        // (> 1.08 R̂ even at trough). Below the ladder the symmetric
        // ±4% window is bit-identical to before.
        let timing = if ladder {
            let estimate = reprofile_retention(mc, bank, probe, pattern, retention)?;
            mc.recovery_mut().reprofiles += 1;
            crate::recovery::ladder_event(
                mc,
                crate::recovery::CTR_REPROFILES,
                "schedule_reprofile",
                bank,
                Some(probe),
            );
            (estimate * 62 / 100, estimate * 58 / 100)
        } else {
            (retention / 2, retention / 2 + retention / 25)
        };
        match learn_row_schedule_once(mc, bank, probe, pattern, timing) {
            Ok(schedule) => {
                if !mc.faults_enabled()
                    || verify_schedule(mc, bank, probe, pattern, timing, &schedule)?
                {
                    return Ok(schedule);
                }
                last = UtrrError::ScheduleNotFound;
            }
            Err(e @ UtrrError::ScheduleNotFound) => last = e,
            Err(e) => return Err(e),
        }
    }
    Err(last)
}

/// Bisects the probe row's retention as it stands right now (recovery
/// ladder only): five voted write-decay-read trials between 0.4 and
/// 1.3 of the scout's binned estimate. A row the faults have rendered
/// permanently dirty collapses the bracket to its floor, which the
/// subsequent coarse pass then fails — the group is dropped rather
/// than learned from garbage.
fn reprofile_retention(
    mc: &mut MemoryController,
    bank: dram_sim::Bank,
    probe: dram_sim::RowAddr,
    pattern: &dram_sim::DataPattern,
    hint: dram_sim::Nanos,
) -> Result<dram_sim::Nanos, UtrrError> {
    let mut lo = hint * 2 / 5;
    let mut hi = hint * 13 / 10;
    for _ in 0..5 {
        let mid = (lo + hi) / 2;
        robust::write_row_checked(mc, bank, probe, pattern)?;
        mc.wait_no_refresh(mid);
        if robust::read_row_voted(mc, bank, probe)?.is_clean() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok((lo + hi) / 2)
}

/// Predictive verification of a learned schedule (fault-aware mode
/// only): four fresh burst trials must match the schedule's
/// covers/doesn't-cover prediction in at least three cases.
fn verify_schedule(
    mc: &mut MemoryController,
    bank: dram_sim::Bank,
    probe: dram_sim::RowAddr,
    pattern: &dram_sim::DataPattern,
    (pre_burst, post_burst): (dram_sim::Nanos, dram_sim::Nanos),
    schedule: &RefreshSchedule,
) -> Result<bool, UtrrError> {
    const TRIALS: u32 = 4;
    let mut correct = 0u32;
    for i in 0..TRIALS {
        let burst = if i % 2 == 0 { 32 } else { 64 };
        let before = mc.module().ref_count();
        robust::write_row_checked(mc, bank, probe, pattern)?;
        mc.wait_no_refresh(pre_burst);
        mc.refresh(burst);
        mc.wait_no_refresh(post_burst);
        let clean = robust::read_row_voted(mc, bank, probe)?.is_clean();
        if clean == schedule.covers(before, before + burst) {
            correct += 1;
        }
    }
    Ok(correct >= TRIALS - 1)
}

/// One unretried schedule measurement (see [`learn_row_schedule`]).
fn learn_row_schedule_once(
    mc: &mut MemoryController,
    bank: dram_sim::Bank,
    probe: dram_sim::RowAddr,
    pattern: &dram_sim::DataPattern,
    (pre_burst, post_burst): (dram_sim::Nanos, dram_sim::Nanos),
) -> Result<RefreshSchedule, UtrrError> {
    const COARSE_BURST: u64 = 64;
    let pattern = pattern.clone();

    // Flush the TRR tracker first: activating plenty of far-away dummy
    // rows evicts any stale entry *adjacent* to the probe (left over
    // from scouting or earlier experiments). TRR never refreshes the
    // detected row itself, only its neighbours — so once no tracker
    // entry sits near the probe, nothing can TRR-refresh it and corrupt
    // the periodicity measurement (a lightweight instance of the
    // paper's Requirement 4).
    // 64 rows × 48 activations: enough insertions to flush any counter
    // table, and enough total activations (3072) that a probabilistic
    // sampler's register holds a dummy with overwhelming probability.
    crate::analyzer::flush_tracker(mc, bank, &[probe], 100)?;
    // The burst sits in the middle of the decay window (see
    // `learn_row_schedule` for the timing: symmetric around 0.5 T
    // below the ladder, re-profiled and drift-proof under it): a
    // restored row decays only `post_burst` (inside its retention), an
    // unrestored row decays `pre_burst + post_burst` (past it).
    // One coarse trial: does a burst of `burst` REFs restore the row?
    // Voted reads and verified writes are no-ops fault-free; under
    // fault injection they keep single in-flight faults from forging a
    // restore observation.
    let trial = |mc: &mut MemoryController, burst: u64| -> Result<bool, UtrrError> {
        robust::write_row_checked(mc, bank, probe, &pattern)?;
        mc.wait_no_refresh(pre_burst);
        mc.refresh(burst);
        mc.wait_no_refresh(post_burst);
        Ok(robust::read_row_voted(mc, bank, probe)?.is_clean())
    };

    // Coarse pass: find two consecutive restore windows.
    let mut windows = Vec::new();
    let budget = 3 * 16_384 / COARSE_BURST;
    for _ in 0..budget {
        let before = mc.module().ref_count();
        if trial(mc, COARSE_BURST)? {
            windows.push(before);
            if windows.len() == 2 {
                break;
            }
        }
    }
    let [w1, w2] = windows[..] else {
        return Err(UtrrError::ScheduleNotFound);
    };
    let period_coarse = w2 - w1;

    // Fine pass: single-REF trials to pin the exact restore index. We
    // start a little before the predicted next restore.
    let pin_exact = |mc: &mut MemoryController| -> Result<Option<u64>, UtrrError> {
        for _ in 0..3 * COARSE_BURST {
            let before = mc.module().ref_count();
            if trial(mc, 1)? {
                return Ok(Some(before + 1));
            }
        }
        Ok(None)
    };

    // Skip to just before the next predicted window.
    let skip_to = w2 + period_coarse;
    let current = mc.module().ref_count();
    if skip_to > current + COARSE_BURST {
        mc.refresh(skip_to - current - COARSE_BURST);
    }
    let Some(e1) = pin_exact(mc)? else {
        return Err(UtrrError::ScheduleNotFound);
    };
    // Skip one more period and pin again for the exact period.
    mc.refresh(period_coarse.saturating_sub(2 * COARSE_BURST).max(1));
    let Some(e2) = pin_exact(mc)? else {
        return Err(UtrrError::ScheduleNotFound);
    };
    let period = e2 - e1;
    if period == 0 {
        return Err(UtrrError::ScheduleNotFound);
    }
    Ok(RefreshSchedule { period, anchor: e1 % period })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::RowGroupLayout;
    use crate::rowscout::{RowScout, ScoutConfig};
    use dram_sim::{Bank, Module, ModuleConfig};

    #[test]
    fn covers_math() {
        let s = RefreshSchedule { period: 10, anchor: 3 };
        assert!(s.covers(2, 3));
        assert!(!s.covers(3, 12));
        assert!(s.covers(3, 13));
        assert!(s.covers(0, 100));
        assert!(!s.covers(4, 4));
        assert_eq!(s.next_after(3), 13);
        assert_eq!(s.next_after(12), 13);
        assert_eq!(s.next_after(13), 23);
    }

    #[test]
    fn learns_the_device_period() {
        let mut mc = MemoryController::new(Module::new(ModuleConfig::small_test(), 31));
        let bank = Bank::new(0);
        let groups =
            RowScout::new(ScoutConfig::new(bank, 512, RowGroupLayout::single_aggressor_pair(), 1))
                .scan(&mut mc)
                .unwrap();
        let schedule = learn_refresh_schedule(&mut mc, &groups[0], bank).unwrap();
        // small_test refreshes each of the 1024 rows once per 1024 REFs.
        assert_eq!(schedule.period, 1024);
        // The anchor must predict the device's actual behaviour: REF k
        // restores physical row k % 1024 (one row per REF).
        let phys = groups[0].rows[0].phys.index() as u64;
        assert_eq!(schedule.anchor, (phys + 1) % 1024);
    }

    #[test]
    fn learned_schedule_predicts_cleanliness() {
        let mut mc = MemoryController::new(Module::new(ModuleConfig::small_test(), 37));
        let bank = Bank::new(0);
        let groups =
            RowScout::new(ScoutConfig::new(bank, 512, RowGroupLayout::single_aggressor_pair(), 1))
                .scan(&mut mc)
                .unwrap();
        let g = &groups[0];
        let schedule = learn_refresh_schedule(&mut mc, g, bank).unwrap();
        // Run a few more trials and check the prediction each time.
        for burst in [32u64, 64, 128] {
            for _ in 0..8 {
                let before = mc.module().ref_count();
                mc.write_row(bank, g.rows[0].row, g.pattern.clone()).unwrap();
                mc.wait_no_refresh(g.retention / 2);
                mc.refresh(burst);
                mc.wait_no_refresh(g.retention / 2 + g.retention / 25);
                let clean = mc.read_row(bank, g.rows[0].row).unwrap().is_clean();
                assert_eq!(
                    clean,
                    schedule.covers(before, before + burst),
                    "prediction failed at ref {before} burst {burst}"
                );
            }
        }
    }
}
